#include "interconnect/topology.hpp"

#include "common/error.hpp"
#include "parcel/network.hpp"

namespace pimsim::interconnect {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFlat: return "flat";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kMesh2D: return "mesh2d";
    case TopologyKind::kTorus2D: return "torus2d";
  }
  return "?";
}

std::uint32_t Topology::next_link(std::uint32_t router, NodeId dst) const {
  require(router < routers_, "Topology::next_link: router out of range");
  require(dst < nodes_, "Topology::next_link: node out of range");
  return route_[router * nodes_ + dst];
}

std::size_t Topology::hops(NodeId src, NodeId dst) const {
  require(src < nodes_ && dst < nodes_, "Topology::hops: node out of range");
  // Walk the routing table exactly as a head flit would; arrival at
  // attach(dst) after >= 1 link ejects, so the flat self-route (through
  // the crossbar and back) counts its two links.
  std::uint32_t router = attach(src);
  std::size_t count = 0;
  while (!(router == attach(dst) &&
           (count > 0 || route_[router * nodes_ + dst] == kNoLink))) {
    const std::uint32_t link = route_[router * nodes_ + dst];
    ensure(link != kNoLink, "Topology::hops: routing dead end");
    router = links_[link].dst_router;
    ++count;
    ensure(count <= routers_ + 1, "Topology::hops: routing loop");
  }
  return count;
}

namespace {

std::uint32_t add_link(std::vector<Link>& links, std::uint32_t src,
                       std::uint32_t dst) {
  links.push_back(Link{src, dst});
  return static_cast<std::uint32_t>(links.size() - 1);
}

}  // namespace

Topology TopologyBuilder::flat(std::size_t nodes) {
  require(nodes > 0, "TopologyBuilder::flat: need at least one node");
  Topology t;
  t.kind_ = TopologyKind::kFlat;
  t.nodes_ = nodes;
  t.routers_ = nodes + 1;  // node routers 0..n-1 plus the crossbar at n
  const auto crossbar = static_cast<std::uint32_t>(nodes);
  // Uplinks 0..n-1, downlinks n..2n-1.
  for (std::uint32_t i = 0; i < nodes; ++i) {
    add_link(t.links_, i, crossbar);
  }
  for (std::uint32_t i = 0; i < nodes; ++i) {
    add_link(t.links_, crossbar, i);
  }
  t.route_.assign(t.routers_ * nodes, kNoLink);
  for (std::uint32_t r = 0; r < nodes; ++r) {
    for (NodeId d = 0; d < nodes; ++d) {
      t.route_[r * nodes + d] = r;  // every packet goes up to the crossbar
    }
  }
  for (NodeId d = 0; d < nodes; ++d) {
    t.route_[crossbar * nodes + d] = static_cast<std::uint32_t>(nodes + d);
  }
  return t;
}

Topology TopologyBuilder::ring(std::size_t nodes) {
  require(nodes > 0, "TopologyBuilder::ring: need at least one node");
  Topology t;
  t.kind_ = TopologyKind::kRing;
  t.nodes_ = nodes;
  t.routers_ = nodes;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    add_link(t.links_, i, static_cast<std::uint32_t>((i + 1) % nodes));
  }
  t.route_.assign(nodes * nodes, kNoLink);
  for (std::uint32_t r = 0; r < nodes; ++r) {
    for (NodeId d = 0; d < nodes; ++d) {
      if (r != d) t.route_[r * nodes + d] = r;  // forward link of router r
    }
  }
  return t;
}

namespace {

/// Per-router channel directions of the grid topologies.
enum Dir : std::size_t { kXPos = 0, kXNeg = 1, kYPos = 2, kYNeg = 3 };

}  // namespace

/// Shared mesh/torus construction: per-router directed channels in up to
/// four directions, dimension-ordered (X then Y) routing.
Topology TopologyBuilder::grid(TopologyKind kind, std::size_t width,
                               std::size_t height) {
  require(width > 0 && height > 0, "TopologyBuilder: empty grid");
  const bool wrap = kind == TopologyKind::kTorus2D;
  const std::size_t nodes = width * height;
  Topology t;
  t.kind_ = kind;
  t.nodes_ = nodes;
  t.routers_ = nodes;
  t.width_ = width;
  t.height_ = height;

  // dir_links[router][dir]: outgoing channel per direction, if it exists.
  // On a wrap dimension of size 2 the forward and backward channel would
  // duplicate each other; only the forward one is built (routing always
  // prefers it on distance ties anyway).
  std::vector<std::uint32_t> dir_links(nodes * 4, kNoLink);
  auto router_at = [&](std::size_t x, std::size_t y) {
    return static_cast<std::uint32_t>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::uint32_t r = router_at(x, y);
      if (x + 1 < width) {
        dir_links[r * 4 + kXPos] = add_link(t.links_, r, router_at(x + 1, y));
      } else if (wrap && width > 1) {
        dir_links[r * 4 + kXPos] = add_link(t.links_, r, router_at(0, y));
      }
      if (x > 0 && !(wrap && width == 2)) {
        dir_links[r * 4 + kXNeg] = add_link(t.links_, r, router_at(x - 1, y));
      } else if (wrap && width > 2) {
        dir_links[r * 4 + kXNeg] =
            add_link(t.links_, r, router_at(width - 1, y));
      }
      if (y + 1 < height) {
        dir_links[r * 4 + kYPos] = add_link(t.links_, r, router_at(x, y + 1));
      } else if (wrap && height > 1) {
        dir_links[r * 4 + kYPos] = add_link(t.links_, r, router_at(x, 0));
      }
      if (y > 0 && !(wrap && height == 2)) {
        dir_links[r * 4 + kYNeg] = add_link(t.links_, r, router_at(x, y - 1));
      } else if (wrap && height > 2) {
        dir_links[r * 4 + kYNeg] =
            add_link(t.links_, r, router_at(x, height - 1));
      }
    }
  }

  // Dimension-ordered routing; on the torus each dimension moves in its
  // shortest wrap direction, preferring positive on ties.
  auto step_dir = [&](std::size_t from, std::size_t to,
                      std::size_t size) -> std::size_t {
    const std::size_t fwd = (to + size - from) % size;
    const std::size_t bwd = (from + size - to) % size;
    if (!wrap) return to > from ? kXPos : kXNeg;  // caller offsets for Y
    return fwd <= bwd ? kXPos : kXNeg;
  };
  t.route_.assign(nodes * nodes, kNoLink);
  for (std::uint32_t r = 0; r < nodes; ++r) {
    const std::size_t x = r % width;
    const std::size_t y = r / width;
    for (NodeId d = 0; d < nodes; ++d) {
      const std::size_t dx = d % width;
      const std::size_t dy = d / width;
      std::size_t dir;
      if (x != dx) {
        dir = step_dir(x, dx, width);  // kXPos or kXNeg
      } else if (y != dy) {
        dir = step_dir(y, dy, height) + 2;  // shift to kYPos/kYNeg
      } else {
        continue;  // local: kNoLink
      }
      const std::uint32_t link = dir_links[r * 4 + dir];
      ensure(link != kNoLink, "TopologyBuilder: missing grid channel");
      t.route_[r * nodes + d] = link;
    }
  }
  return t;
}

Topology TopologyBuilder::mesh2d(std::size_t width, std::size_t height) {
  return grid(TopologyKind::kMesh2D, width, height);
}

Topology TopologyBuilder::torus2d(std::size_t width, std::size_t height) {
  return grid(TopologyKind::kTorus2D, width, height);
}

Topology TopologyBuilder::build(const std::string& kind, std::size_t nodes) {
  require(nodes > 0, "TopologyBuilder::build: need at least one node");
  if (kind == "flat") return flat(nodes);
  if (kind == "ring") return ring(nodes);
  if (kind == "mesh2d" || kind == "torus" || kind == "torus2d") {
    const std::size_t width = parcel::square_grid_side(kind, nodes);
    return kind == "mesh2d" ? mesh2d(width, width) : torus2d(width, width);
  }
  throw InvalidArgument("TopologyBuilder::build: unknown topology '" + kind +
                        "'; valid topologies are flat, ring, mesh2d, torus");
}

}  // namespace pimsim::interconnect
