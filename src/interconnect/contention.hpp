// Contention-aware drop-in for the analytic parcel::Interconnect models.
//
// ContentionInterconnect plugs a PacketNetwork in behind the Interconnect
// seam: one_way_latency() reports the zero-load (single head flit) latency
// of the topology, and deliver() segments the message into flits and
// injects them into the simulated network, where contended links queue.
// With a single message in flight the delivered latency equals the
// analytic model's closed form; under load it diverges — which is exactly
// what the topology/injection-rate ablations measure.
//
// The adapter is constructed unbound and attaches itself to the first
// des::Simulation that delivers through it (the parcel systems build their
// Simulation after their Interconnect, so the network must be spawned
// lazily).  One instance serves exactly one Simulation; reusing it in a
// second Simulation throws LogicError — build a fresh adapter per run.
//
// The packet network is event-driven (no worker processes), so harnesses
// that audit suspended processes (ParcelMachine::run) see nothing extra:
// idle_processes() is 0.
#pragma once

#include <memory>
#include <string>

#include "interconnect/network.hpp"
#include "interconnect/packet.hpp"
#include "interconnect/topology.hpp"
#include "parcel/network.hpp"

namespace pimsim::interconnect {

class ContentionInterconnect final : public parcel::Interconnect {
 public:
  explicit ContentionInterconnect(Topology topology, PacketConfig config = {});

  /// Zero-load latency of a single-flit message (the contention model's
  /// analytic degenerate: head flit pays every hop, nothing queues).
  [[nodiscard]] Cycles one_way_latency(NodeId src, NodeId dst) const override;
  const char* name() const override { return name_.c_str(); }

  /// Injects the message into the packet network (binding to `sim` on
  /// first use); `arrive` fires when the last flit reaches dst.
  void deliver(des::Simulation& sim, NodeId src, NodeId dst, std::size_t bytes,
               std::function<void()> arrive) const override;

  /// Spawns the packet network into `sim` eagerly (deliver() binds
  /// lazily; binding up front lets callers inspect network() first).
  void bind(des::Simulation& sim) const;

  /// The live network, or nullptr before the first deliver()/bind().
  [[nodiscard]] PacketNetwork* network() const { return net_.get(); }

  /// Contention-free latency of a `bytes`-byte message (closed form).
  [[nodiscard]] Cycles zero_load_latency(NodeId src, NodeId dst,
                                         std::size_t bytes) const;

  /// The event-driven network parks no processes; the base-class default
  /// (0) is already right, restated here so the intent is explicit.
  [[nodiscard]] std::size_t idle_processes() const override { return 0; }

  /// Delegates to PacketNetwork::collect_metrics (no-op before bind()).
  void collect_metrics(obs::MetricsRegistry& registry) const override;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const PacketConfig& config() const { return cfg_; }

 private:
  Topology topo_;
  PacketConfig cfg_;
  std::string name_;
  // Bound lazily on first deliver(): the adapter outlives no Simulation,
  // it just has to be constructible before one exists.
  mutable std::unique_ptr<PacketNetwork> net_;
  mutable des::Simulation* sim_ = nullptr;
};

/// Packet-level counterpart of the analytic make_interconnect factory:
/// same topology names (flat, ring, mesh2d, torus), calibrated so the
/// zero-load single-flit latency of every node pair equals the analytic
/// model's one_way_latency for the same (kind, nodes, round_trip) — the
/// per-hop budget is split into flit_cycle serialization plus link
/// propagation, and router_latency is folded to zero.  flit_bytes and
/// histogram settings are taken from `config`; `config.credits` is a
/// floor, raised to the calibrated link's bandwidth-delay product so the
/// wires can reach full utilization before backpressure sets in.
[[nodiscard]] std::unique_ptr<ContentionInterconnect> make_contention_interconnect(
    const std::string& kind, std::size_t nodes, Cycles round_trip,
    PacketConfig config = {});

}  // namespace pimsim::interconnect
