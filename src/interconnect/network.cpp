#include "interconnect/network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pimsim::interconnect {

namespace {

/// FIFO order of two queue entries: enqueue time, then calendar key (the
/// sequence an eager enqueue event would have dispatched under).
inline bool fifo_before(double ready_a, std::uint64_t key_a, double ready_b,
                        std::uint64_t key_b) {
  if (ready_a != ready_b) return ready_a < ready_b;
  return key_a < key_b;
}

}  // namespace

// --- segment ring --------------------------------------------------------

void PacketNetwork::SegRing::push_back(const Segment& seg) {
  if (count == buf.size()) {
    std::vector<Segment> grown(buf.empty() ? 8 : buf.size() * 2);
    for (std::size_t i = 0; i < count; ++i) {
      grown[i] = buf[(head + i) & (buf.size() - 1)];
    }
    buf.swap(grown);
    head = 0;
  }
  buf[(head + count) & (buf.size() - 1)] = seg;
  ++count;
}

// --- packet pool ---------------------------------------------------------

PacketNetwork::PacketRec& PacketNetwork::rec(Handle handle) {
  const auto index = static_cast<std::uint32_t>(handle);
  PacketRec& r = pool_[index];
  ensure(r.generation == static_cast<std::uint32_t>(handle >> 32),
         "PacketNetwork: stale packet handle");
  return r;
}

PacketNetwork::Handle PacketNetwork::alloc_packet() {
  std::uint32_t index;
  if (pool_free_ != 0xffffffffu) {
    index = pool_free_;
    pool_free_ = pool_[index].next_free;
  } else {
    pool_.emplace_back();
    index = static_cast<std::uint32_t>(pool_.size() - 1);
  }
  return (static_cast<Handle>(pool_[index].generation) << 32) | index;
}

void PacketNetwork::free_packet(Handle handle) {
  const auto index = static_cast<std::uint32_t>(handle);
  PacketRec& r = pool_[index];
  if (++r.generation == 0) r.generation = 1;
  r.on_delivered = nullptr;
  r.next_free = pool_free_;
  pool_free_ = index;
}

// --- construction --------------------------------------------------------

PacketNetwork::PacketNetwork(des::Simulation& sim, Topology topology,
                             PacketConfig config)
    : sim_(sim),
      topo_(std::move(topology)),
      cfg_(config),
      latency_hist_(0.0, config.hist_max, config.hist_bins) {
  cfg_.validate();
  links_.resize(topo_.links().size());
  for (LinkState& link : links_) {
    link.credits = static_cast<std::int64_t>(cfg_.credits);
  }
  // Elision margin: a deferred ejection release matures link_latency
  // after its flit leaves the wire; until then the serializer can pop at
  // most ceil(link_latency / flit_cycle) more flits.  One credit beyond
  // that and no pop through the maturity instant can be decided by the
  // release's visibility — in the original cascade a release landing on
  // the same cycle as a pop became visible only after it, so the margin
  // must make that pop succeed without it.  A strictly positive
  // link_latency keeps maturities out of the current timestep.
  if (cfg_.flit_cycle > 0.0 && cfg_.link_latency > 0.0) {
    elide_need_ = static_cast<std::uint32_t>(
        std::ceil(cfg_.link_latency / cfg_.flit_cycle)) + 1;
  }
  // Lazily appended arrivals need a strictly positive wire latency (a
  // zero-latency arrival lands in the current timestep, i.e. must be a
  // real event) and no router latency (which splits the old arrival into
  // an arrive + a delayed enqueue with its own calendar position).
  lazy_arrivals_ = cfg_.link_latency > 0.0 && cfg_.router_latency <= 0.0;
  if (sim_.metrics_enabled()) {
    m_latency_ = &sim_.metrics().summary("net.packet_latency_cycles");
  }
}

// --- observability -------------------------------------------------------

des::LabelId PacketNetwork::occupancy_label(std::uint32_t link) {
  if (link_trace_labels_.empty()) {
    link_trace_labels_.assign(links_.size(), des::kLabelUninterned);
  }
  des::LabelId& label = link_trace_labels_[link];
  if (label == des::kLabelUninterned) {
    label = sim_.trace_label("net.link" + std::to_string(link) + ".occupancy");
  }
  return label;
}

void PacketNetwork::trace_occupancy(std::uint32_t link) {
  if (!sim_.tracing_enabled()) return;
  sim_.trace(des::TraceKind::kCounter, occupancy_label(link),
             static_cast<std::uint64_t>(links_[link].occupancy.current()));
}

void PacketNetwork::collect_metrics(obs::MetricsRegistry& registry) {
  registry.counter("net.packets_sent").add(sent_);
  registry.counter("net.packets_delivered").add(delivered_);
  registry.counter("net.flit_hops").add(flit_hops_);
  obs::Summary& util = registry.summary("net.link_utilization");
  obs::Summary& occupancy = registry.summary("net.link_occupancy_mean");
  for (std::uint32_t li = 0; li < links_.size(); ++li) {
    const LinkStats stats = link_stats(li);
    util.add(stats.utilization);
    occupancy.add(stats.mean_occupancy);
  }
}

// --- public API ----------------------------------------------------------

void PacketNetwork::send(NodeId src, NodeId dst, std::size_t bytes,
                         std::function<void()> on_delivered) {
  require(src < topo_.nodes() && dst < topo_.nodes(),
          "PacketNetwork::send: node out of range");
  const Handle handle = alloc_packet();
  PacketRec& p = pool_[static_cast<std::uint32_t>(handle)];
  p.src = src;
  p.dst = dst;
  p.flits = static_cast<std::uint32_t>(flit_count(bytes, cfg_.flit_bytes));
  p.ejected = 0;
  p.injected_at = sim_.now();
  p.on_delivered = std::move(on_delivered);
  ++sent_;

  const std::uint32_t first = topo_.next_link(topo_.attach(src), dst);
  if (first == kNoLink) {
    // Local delivery (src == dst on a direct topology): no network
    // traversal; complete behind pending same-time events, mirroring the
    // analytic models' schedule_in(0) behaviour.
    schedule_ev(sim_.now(), Ev::kLocal, 0, handle);
    return;
  }
  // The whole message is one O(1) queue entry; the link's serializer
  // meters flits off it one per flit_cycle (FIFO order is identical to
  // enqueueing every flit up front, without the O(flits) live objects).
  Segment seg;
  seg.packet = handle;
  seg.ready = sim_.now();
  seg.key = sim_.current_dispatch_seq();
  seg.count = p.flits;
  seg.from_link = kNoLink;
  links_[first].mat.push_back(seg);
  poke(first);
}

Cycles PacketNetwork::zero_load_latency(NodeId src, NodeId dst,
                                        std::size_t bytes) const {
  return zero_load_cycles(topo_.hops(src, dst),
                          flit_count(bytes, cfg_.flit_bytes), cfg_);
}

LinkStats PacketNetwork::link_stats(std::uint32_t link) {
  require(link < links_.size(), "PacketNetwork::link_stats: bad link id");
  LinkState& l = links_[link];
  fold_ledger(l, sim_.now());
  LinkStats out;
  out.flits = l.flits;
  out.utilization = l.busy.mean(sim_.now());
  out.mean_occupancy = l.occupancy.mean(sim_.now());
  out.peak_occupancy = l.occupancy.max();
  return out;
}

// --- event plumbing ------------------------------------------------------

void PacketNetwork::schedule_ev(SimTime at, Ev ev, std::uint32_t link,
                                Handle packet) {
  const std::uint64_t a =
      static_cast<std::uint64_t>(ev) | (static_cast<std::uint64_t>(link) << 8);
  (void)sim_.schedule_static_at(at, &PacketNetwork::on_event, this, a, packet);
}

void PacketNetwork::on_event(void* self, std::uint64_t a, std::uint64_t b) {
  auto* net = static_cast<PacketNetwork*>(self);
  const auto link = static_cast<std::uint32_t>((a >> 8) & 0xffffffu);
  switch (static_cast<Ev>(a & 0xffu)) {
    case Ev::kStart:
      net->on_start(link);
      return;
    case Ev::kGrant:
      net->on_grant(link);
      return;
    case Ev::kAdvance:
      net->on_advance(link);
      return;
    case Ev::kArrive:
      net->on_arrive(link, b, (a >> 32) != 0);
      return;
    case Ev::kFwd:
      net->on_fwd(link, b, static_cast<std::uint32_t>(a >> 32));
      return;
    case Ev::kLocal: {
      PacketRec& p = net->rec(b);
      p.ejected = p.flits;
      net->complete(b);
      return;
    }
    case Ev::kWake:
      net->on_wake(link);
      return;
    case Ev::kCreditWake:
      net->on_credit_wake(link);
      return;
    case Ev::kComplete:
      // Final flit of an ejection train lands: free its buffer slot and
      // finish the message (the train ledgered every earlier flit).
      net->release_credit(link);
      net->complete(b);
      return;
  }
}

// --- ledger --------------------------------------------------------------

void PacketNetwork::push_run(LinkState& link, double first, double stride,
                             std::uint32_t left) {
  if (!link.ledger.empty() && left == 1) {
    // Extend an arithmetic run in place (per-flit elided ejections on a
    // streaming link arrive here one flit_cycle apart).
    OpRun& last = link.ledger.back();
    if (last.left == 1 && first > last.first) {
      last.stride = first - last.first;
      last.left = 2;
      return;
    }
    if (first == last.first + last.stride * static_cast<double>(last.left)) {
      ++last.left;
      return;
    }
  }
  link.ledger.push_back(OpRun{first, stride, left});
}

void PacketNetwork::fold_ledger(LinkState& link, double t) {
  // The ledger holds only deferred credit returns.  In wormhole mode a
  // blocked serializer is woken by a credit-wake event armed for the
  // maturity cycle, so folding just banks matured credits (bulk per run:
  // the occupancy decrement lands at the fold time, a shade late, which
  // only smooths the mean-occupancy diagnostic).  In flit-interleaved
  // mode the elision margin guarantees the link can never be starving
  // while a return is pending, and each return is replayed at its exact
  // cycle to keep the occupancy accumulator bit-identical to the
  // pre-rewrite engine's.
  if (link.ledger.empty()) return;
  if (cfg_.wormhole) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < link.ledger.size(); ++i) {
      OpRun& run = link.ledger[i];
      // Advance iteratively so maturity times stay bit-identical with the
      // times a credit-wake was armed against (no recomputed products).
      std::uint32_t due = 0;
      while (run.left > 0 && run.first <= t) {
        ++due;
        --run.left;
        run.first += run.stride;
      }
      if (due > 0) {
        link.credits += due;
        link.occupancy.add(t, -static_cast<double>(due));
      }
      if (run.left > 0) link.ledger[keep++] = run;
    }
    link.ledger.resize(keep);
    return;
  }
  while (!link.ledger.empty()) {
    // Earliest op across pending runs; a linear scan over the handful of
    // active runs beats any ordering structure.
    std::size_t best = link.ledger.size();
    for (std::size_t i = 0; i < link.ledger.size(); ++i) {
      const OpRun& run = link.ledger[i];
      if (run.first > t) continue;
      if (best == link.ledger.size() || run.first < link.ledger[best].first) {
        best = i;
      }
    }
    if (best == link.ledger.size()) return;
    OpRun& run = link.ledger[best];
    ensure(link.phase != Phase::kBlocked,
           "PacketNetwork: deferred credit release on a blocked link");
    link.occupancy.add(run.first, -1.0);
    ++link.credits;
    run.first += run.stride;
    if (--run.left == 0) {
      link.ledger.erase(link.ledger.begin() +
                        static_cast<std::ptrdiff_t>(best));
    }
  }
}

// --- credit flow ---------------------------------------------------------

void PacketNetwork::release_credit(std::uint32_t li) {
  LinkState& link = links_[li];
  fold_ledger(link, sim_.now());
  link.occupancy.add(sim_.now(), -1.0);
  trace_occupancy(li);
  if (link.phase == Phase::kBlocked) {
    // Strict FIFO hand-off: the staged head flit takes the slot at the
    // release instant (occupancy never dips).
    link.occupancy.add(sim_.now(), 1.0);
    trace_occupancy(li);
    if (cfg_.wormhole) {
      // Restart the wire directly; the lane hop below only exists to
      // reproduce the legacy engine's resume positions.
      begin(li);
      return;
    }
    link.phase = Phase::kGranted;
    schedule_ev(sim_.now(), Ev::kGrant, li, 0);
  } else {
    ++link.credits;
  }
}

void PacketNetwork::arm_credit_wake(std::uint32_t li) {
  LinkState& link = links_[li];
  if (link.credit_wake_armed) return;
  double earliest = 0.0;
  bool found = false;
  for (const OpRun& run : link.ledger) {

    if (!found || run.first < earliest) {
      earliest = run.first;
      found = true;
    }
  }
  if (!found) return;
  link.credit_wake_armed = true;
  schedule_ev(earliest, Ev::kCreditWake, li, 0);
}

void PacketNetwork::on_credit_wake(std::uint32_t li) {
  LinkState& link = links_[li];
  link.credit_wake_armed = false;
  if (link.phase != Phase::kBlocked) return;  // stale: already granted
  fold_ledger(link, sim_.now());
  if (link.credits >= 1) {
    // The matured return funds the staged head flit at its exact cycle.
    --link.credits;
    link.occupancy.add(sim_.now(), 1.0);
    trace_occupancy(li);
    begin(li);
    return;
  }
  arm_credit_wake(li);
}

// --- serializer state machine --------------------------------------------

PacketNetwork::SegRing* PacketNetwork::fifo_front(LinkState& link) {
  const bool has_mat = !link.mat.empty();
  const bool has_net = !link.net.empty();
  if (!has_mat && !has_net) return nullptr;
  if (has_mat && (!has_net || fifo_before(link.mat.front().ready,
                                          link.mat.front().key,
                                          link.net.front().ready,
                                          link.net.front().key))) {
    return &link.mat;
  }
  return &link.net;
}

// Materialize the front arrival's wake-up at its own calendar key so it
// dispatches exactly where its eager arrival event would have.
void PacketNetwork::arm_wake(std::uint32_t li, double ready,
                             std::uint64_t key) {
  LinkState& link = links_[li];
  if (link.wake_armed && link.wake_ready <= ready) return;
  const std::uint64_t a = static_cast<std::uint64_t>(Ev::kWake) |
                          (static_cast<std::uint64_t>(li) << 8);
  (void)sim_.schedule_static_at_seq(ready, key, &PacketNetwork::on_event,
                                    this, a, 0);
  link.wake_armed = true;
  link.wake_ready = ready;
}

void PacketNetwork::poke(std::uint32_t li) {
  LinkState& link = links_[li];
  if (link.phase != Phase::kIdle || link.start_pending) return;
  SegRing* ring = fifo_front(link);
  if (ring == nullptr) return;
  const Segment& front = ring->front();
  if (front.ready <= sim_.now()) {
    if (cfg_.wormhole) {
      // Begin synchronously; the lane hop only reproduces the legacy
      // engine's mailbox-resume positions.
      try_begin(li);
      return;
    }
    link.start_pending = true;
    schedule_ev(sim_.now(), Ev::kStart, li, 0);
  } else {
    arm_wake(li, front.ready, front.key);
  }
}

void PacketNetwork::on_wake(std::uint32_t li) {
  links_[li].wake_armed = false;
  poke(li);
}

void PacketNetwork::on_start(std::uint32_t li) {
  LinkState& link = links_[li];
  link.start_pending = false;
  ensure(link.phase == Phase::kIdle, "PacketNetwork: start on a busy link");
  try_begin(li);
}

void PacketNetwork::on_grant(std::uint32_t li) {
  LinkState& link = links_[li];
  ensure(link.phase == Phase::kGranted, "PacketNetwork: grant lost its flit");
  begin(li);
}

void PacketNetwork::begin(std::uint32_t li) {
  LinkState& link = links_[li];
  link.phase = Phase::kSerializing;
  link.busy.set(sim_.now(), 1.0);
  schedule_ev(sim_.now() + cfg_.flit_cycle, Ev::kAdvance, li, 0);
}

void PacketNetwork::try_begin(std::uint32_t li) {
  LinkState& link = links_[li];
  fold_ledger(link, sim_.now());
  SegRing* ring = fifo_front(link);
  if (ring == nullptr) return;
  Segment& front = ring->front();
  if (front.ready > sim_.now()) {
    // Head not arrived yet: park until its calendar position comes up.
    arm_wake(li, front.ready, front.key);
    return;
  }

  const Handle packet = front.packet;
  const std::uint32_t from = front.from_link;
  // Trains assume pure wire delay between hops; a router_latency keeps
  // the (rarely used) per-flit switch-delay path authoritative.
  if (cfg_.wormhole && cfg_.router_latency <= 0.0 && link.credits >= 2 &&
      front.count >= 2) {
    // Wormhole fast path: the head packet owns the wire for a whole run.
    // Every flit of a segment is streamable (ready + i * stride never
    // trails the wire at one start per flit_cycle), so the train length
    // is just the segment bounded by available credits.
    const auto flits = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(front.count,
                                static_cast<std::uint64_t>(link.credits)));
    run_train(li, ring, flits, sim_.now());
    return;
  }

  // Pop one flit off the head segment.
  if (front.count > 1) {
    front.ready += front.stride;
    --front.count;
  } else {
    ring->pop_front();
  }
  link.cur_packet = packet;
  link.cur_from = from;
  if (link.credits == 0) {
    link.phase = Phase::kBlocked;
    if (cfg_.wormhole) arm_credit_wake(li);
    return;
  }
  --link.credits;
  link.occupancy.add(sim_.now(), 1.0);
  trace_occupancy(li);
  begin(li);
}

// --- flit-train coalescing (wormhole mode) -------------------------------
//
// The head packet owns the wire for `flits` consecutive flit_cycles from
// `start` (now, or the head flit's future arrival when a whole in-flight
// stream is committed onto an idle link); one calendar event ends the
// whole train.  The per-flit side effects — buffer occupancy, credit
// returns to this link (ejection) and to the upstream link — are pushed
// onto the links' ledgers and replayed when next observed; downstream
// arrivals leave as a single streaming segment committed onto the next
// idle hop the same way, so an uncontended traversal costs O(hops)
// calendar events, not O(hops x flits).
void PacketNetwork::run_train(std::uint32_t li, SegRing* ring,
                              std::uint32_t flits, double start) {
  // `start` is sim_.now() today; the retroactive busy accounting below
  // keeps the door open for committing future trains without touching
  // the stats path.
  LinkState& link = links_[li];
  const double fc = cfg_.flit_cycle;
  Segment& front = ring->front();
  const Handle packet = front.packet;
  const std::uint32_t from = front.from_link;

  if (front.count > flits) {
    front.count -= flits;
    front.ready += static_cast<double>(flits) * front.stride;
  } else {
    ring->pop_front();
  }
  // The train's buffer slots are all debited up front (flit i actually
  // claims its slot i flit_cycles after `start`), so mean/peak occupancy
  // read a shade high mid-train but never exceed the buffer capacity:
  // every debit is backed by an available credit.  The wire-busy window
  // [start, start + flits * fc) is accounted retroactively by the train's
  // advance event, keeping the accumulator's clock monotonic even when
  // `start` is in the future.
  link.credits -= flits;
  link.occupancy.add(sim_.now(), static_cast<double>(flits));
  trace_occupancy(li);
  link.train_busy_from = start;
  link.train_active = true;
  link.phase = Phase::kSerializing;
  schedule_ev(start + static_cast<double>(flits) * fc, Ev::kAdvance, li, 0);

  if (from != kNoLink) {
    push_run(links_[from], start + fc, fc, flits);
    if (links_[from].phase == Phase::kBlocked) arm_credit_wake(from);
  }
  link.flits += flits;
  flit_hops_ += flits;

  PacketRec& p = rec(packet);
  const std::uint32_t router = topo_.links()[li].dst_router;
  if (router == topo_.attach(p.dst)) {
    // Ejection: flits are consumed at the NIC link_latency after leaving
    // the wire; the final one (if it ends the packet) completes it.
    const bool has_final = p.ejected + flits == p.flits;
    p.ejected += flits;
    const std::uint32_t elided = flits - (has_final ? 1 : 0);
    if (elided > 0) {
      push_run(link, start + fc + cfg_.link_latency, fc, elided);
    }
    if (has_final) {
      const std::uint64_t a = static_cast<std::uint64_t>(Ev::kComplete) |
                              (static_cast<std::uint64_t>(li) << 8);
      (void)sim_.schedule_static_at(
          start + static_cast<double>(flits) * fc + cfg_.link_latency,
          &PacketNetwork::on_event, this, a, packet);
    }
  } else {
    const std::uint32_t next = topo_.next_link(router, p.dst);
    ensure(next != kNoLink, "PacketNetwork: routing dead end");
    append_net(next, packet, start + fc + cfg_.link_latency, fc, flits, li);
    poke(next);
  }
}

// Credit conservation for one link: folded credits stay in range, every
// pending ledger run still owes at least one return, and folded +
// pending returns never exceed the downstream buffer's capacity.  A
// violation here is the packet-level analogue of a heap-order break in
// the kernel: state that *will* corrupt results, caught at the event
// where it first exists.
void PacketNetwork::audit_check_link(const LinkState& link) const {
  ensure(link.credits >= 0,
         "PacketNetwork audit: negative folded credit count");
  std::int64_t pending = 0;
  for (const OpRun& run : link.ledger) {
    ensure(run.left > 0, "PacketNetwork audit: drained run left in ledger");
    pending += static_cast<std::int64_t>(run.left);
  }
  ensure(link.credits + pending <= static_cast<std::int64_t>(cfg_.credits),
         "PacketNetwork audit: credits + pending returns exceed capacity");
}

// --- serialization end ---------------------------------------------------

void PacketNetwork::on_advance(std::uint32_t li) {
  LinkState& link = links_[li];
  fold_ledger(link, sim_.now());
  // Audit mode: self-check this link's credit conservation on the same
  // event that already walks its ledger (so the sweep stays O(ledger)).
  if (sim_.audit_enabled()) audit_check_link(link);
  if (link.train_active) {
    // Train epilogue: every per-flit effect (credit returns, occupancy,
    // counters, deliveries) was ledgered or batch-appended when the train
    // was scheduled — only the retroactive wire-busy window and the wire
    // hand-off remain.
    link.busy.set(link.train_busy_from, 1.0);
    link.busy.set(sim_.now(), 0.0);
    link.train_active = false;
    link.phase = Phase::kIdle;
    try_begin(li);
    return;
  }
  link.busy.set(sim_.now(), 0.0);
  if (link.cur_from != kNoLink) release_credit(link.cur_from);
  ++link.flits;
  ++flit_hops_;
  deliver_flit(li);
  link.phase = Phase::kIdle;
  try_begin(li);
}

void PacketNetwork::deliver_flit(std::uint32_t li) {
  LinkState& link = links_[li];
  const Handle handle = link.cur_packet;
  PacketRec& p = rec(handle);
  const std::uint32_t router = topo_.links()[li].dst_router;
  if (router == topo_.attach(p.dst)) {
    // Flits of a packet leave the ejection wire in order, so position —
    // not an arrival count — identifies the one whose landing completes
    // the message (elision perturbs the counting order, never the
    // positions).
    const bool final_flit = p.ejected + 1 == p.flits;
    ++p.ejected;
    if (!final_flit &&
        (cfg_.wormhole ||
         link.credits >= static_cast<std::int64_t>(elide_need_))) {
      // Non-final ejecting flit: its only future effect is returning this
      // link's buffer slot at the NIC, one link_latency out.  With the
      // elision margin in hand the serializer provably cannot starve
      // before the return matures, so it is ledgered — no calendar event.
      push_run(link, sim_.now() + cfg_.link_latency, 0.0, 1);
      return;
    }
    const std::uint64_t a = static_cast<std::uint64_t>(Ev::kArrive) |
                            (static_cast<std::uint64_t>(li) << 8) |
                            (final_flit ? (1ull << 32) : 0ull);
    (void)sim_.schedule_static_at(sim_.now() + cfg_.link_latency,
                                  &PacketNetwork::on_event, this, a, handle);
    return;
  }
  const std::uint32_t next = topo_.next_link(router, p.dst);
  ensure(next != kNoLink, "PacketNetwork: routing dead end");
  if (!lazy_arrivals_) {
    schedule_ev(sim_.now() + cfg_.link_latency, Ev::kArrive, li, handle);
    return;
  }
  // Lazy arrival: append to the next link's ring under the sequence key
  // an eager arrival event would have held; a real wake-up is scheduled
  // only if the serializer is parked.
  append_net(next, handle, sim_.now() + cfg_.link_latency, cfg_.flit_cycle, 1,
             li);
  poke(next);
}

void PacketNetwork::append_net(std::uint32_t li, Handle packet, double ready,
                               double stride, std::uint32_t count,
                               std::uint32_t from) {
  SegRing& net = links_[li].net;
  if (cfg_.wormhole && !net.empty()) {
    // Glue a continuation of the tail packet's stream back together so a
    // train split upstream (by credit pressure) can still coalesce here.
    Segment& tail = net.back();
    if (tail.packet == packet && tail.from_link == from &&
        tail.ready + static_cast<double>(tail.count) * stride == ready) {
      tail.stride = stride;
      tail.count += count;
      return;
    }
  }
  Segment seg;
  seg.packet = packet;
  seg.ready = ready;
  seg.stride = count > 1 ? stride : 0.0;
  seg.key = sim_.allocate_seq();
  seg.count = count;
  seg.from_link = from;
  links_[li].net.push_back(seg);
}

// --- arrival (the non-elided path) ---------------------------------------

void PacketNetwork::on_arrive(std::uint32_t li, Handle handle,
                              bool final_flit) {
  PacketRec& p = rec(handle);
  const std::uint32_t router = topo_.links()[li].dst_router;
  if (router == topo_.attach(p.dst)) {
    // Ejection: the NIC consumes the flit immediately, freeing its credit.
    release_credit(li);
    if (final_flit) complete(handle);
    return;
  }
  const std::uint32_t next = topo_.next_link(router, p.dst);
  ensure(next != kNoLink, "PacketNetwork: routing dead end");
  if (cfg_.router_latency > 0.0) {
    const std::uint64_t a = static_cast<std::uint64_t>(Ev::kFwd) |
                            (static_cast<std::uint64_t>(next) << 8) |
                            (static_cast<std::uint64_t>(li) << 32);
    (void)sim_.schedule_static_at(sim_.now() + cfg_.router_latency,
                                  &PacketNetwork::on_event, this, a, handle);
    return;
  }
  on_fwd(next, handle, li);
}

void PacketNetwork::on_fwd(std::uint32_t next, Handle handle,
                           std::uint32_t from) {
  Segment seg;
  seg.packet = handle;
  seg.ready = sim_.now();
  seg.key = sim_.current_dispatch_seq();
  seg.count = 1;
  seg.from_link = from;
  links_[next].mat.push_back(seg);
  poke(next);
}

// --- completion ----------------------------------------------------------

void PacketNetwork::complete(Handle handle) {
  PacketRec& p = rec(handle);
  const double latency = sim_.now() - p.injected_at;
  latency_.add(latency);
  latency_hist_.add(latency);
  if (m_latency_) m_latency_->add(latency);
  ++delivered_;
  std::function<void()> cb = std::move(p.on_delivered);
  free_packet(handle);
  if (cb) cb();
}

}  // namespace pimsim::interconnect
