#include "interconnect/network.hpp"

#include <utility>

#include "common/error.hpp"

namespace pimsim::interconnect {

PacketNetwork::PacketNetwork(des::Simulation& sim, Topology topology,
                             PacketConfig config)
    : sim_(sim),
      topo_(std::move(topology)),
      cfg_(config),
      latency_hist_(0.0, config.hist_max, config.hist_bins) {
  cfg_.validate();
  links_.reserve(topo_.links().size());
  for (std::uint32_t id = 0; id < topo_.links().size(); ++id) {
    links_.push_back(std::make_unique<LinkState>(sim_, id, cfg_.credits));
    sim_.spawn(link_worker(*links_.back(), id));
  }
}

void PacketNetwork::send(NodeId src, NodeId dst, std::size_t bytes,
                         std::function<void()> on_delivered) {
  require(src < topo_.nodes() && dst < topo_.nodes(),
          "PacketNetwork::send: node out of range");
  auto packet = std::make_shared<Packet>();
  packet->src = src;
  packet->dst = dst;
  packet->flits = flit_count(bytes, cfg_.flit_bytes);
  packet->injected_at = sim_.now();
  packet->on_delivered = std::move(on_delivered);
  ++sent_;

  const std::uint32_t first = topo_.next_link(topo_.attach(src), dst);
  if (first == kNoLink) {
    // Local delivery (src == dst on a direct topology): no network
    // traversal; complete behind pending same-time events, mirroring the
    // analytic models' schedule_in(0) behaviour.
    sim_.schedule_now([this, packet] {
      packet->arrived = packet->flits;
      complete(*packet);
    });
    return;
  }
  // The NIC hands every flit to the first link's arbitration queue; the
  // link's serializer paces them onto the wire at one per flit_cycle.
  for (std::size_t i = 0; i < packet->flits; ++i) {
    links_[first]->queue.send(Flit{packet, kNoLink});
  }
}

Cycles PacketNetwork::zero_load_latency(NodeId src, NodeId dst,
                                        std::size_t bytes) const {
  return zero_load_cycles(topo_.hops(src, dst),
                          flit_count(bytes, cfg_.flit_bytes), cfg_);
}

LinkStats PacketNetwork::link_stats(std::uint32_t link) const {
  require(link < links_.size(), "PacketNetwork::link_stats: bad link id");
  const LinkState& l = *links_[link];
  LinkStats out;
  out.flits = l.flits;
  out.utilization = l.busy.mean(sim_.now());
  out.mean_occupancy =
      l.buffer.utilization() * static_cast<double>(l.buffer.capacity());
  out.peak_occupancy = l.buffer.peak_in_use();
  return out;
}

des::Process PacketNetwork::link_worker(LinkState& link, std::uint32_t id) {
  while (true) {
    Flit flit = co_await link.queue.receive();
    // Credit-based flow control: claim a slot in the downstream input
    // buffer before occupying the wire.  If the buffer is full the whole
    // link stalls (head-of-line), propagating backpressure upstream.
    co_await link.buffer.acquire();
    link.busy.set(sim_.now(), 1.0);
    co_await des::delay(sim_, cfg_.flit_cycle);
    link.busy.set(sim_.now(), 0.0);
    // The flit has left the upstream buffer: return its credit.
    if (flit.held_buffer != kNoLink) {
      links_[flit.held_buffer]->buffer.release();
    }
    ++link.flits;
    ++flit_hops_;
    sim_.schedule_in(cfg_.link_latency, [this, id, flit = std::move(flit)] {
      arrive(id, flit);
    });
  }
}

void PacketNetwork::arrive(std::uint32_t link_id, Flit flit) {
  flit.held_buffer = link_id;
  const std::uint32_t router = topo_.links()[link_id].dst_router;
  Packet& packet = *flit.packet;
  if (router == topo_.attach(packet.dst)) {
    // Ejection: the NIC consumes the flit immediately, freeing its credit.
    links_[link_id]->buffer.release();
    if (++packet.arrived == packet.flits) complete(packet);
    return;
  }
  const std::uint32_t next = topo_.next_link(router, packet.dst);
  ensure(next != kNoLink, "PacketNetwork: routing dead end");
  if (cfg_.router_latency > 0.0) {
    sim_.schedule_in(cfg_.router_latency, [this, next, flit = std::move(flit)] {
      links_[next]->queue.send(flit);
    });
  } else {
    links_[next]->queue.send(std::move(flit));
  }
}

void PacketNetwork::complete(Packet& packet) {
  const double latency = sim_.now() - packet.injected_at;
  latency_.add(latency);
  latency_hist_.add(latency);
  ++delivered_;
  if (packet.on_delivered) packet.on_delivered();
}

}  // namespace pimsim::interconnect
