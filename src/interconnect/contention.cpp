#include "interconnect/contention.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace pimsim::interconnect {

ContentionInterconnect::ContentionInterconnect(Topology topology,
                                               PacketConfig config)
    : topo_(std::move(topology)),
      cfg_(config),
      name_(std::string("packet-") + topo_.name()) {
  cfg_.validate();
}

Cycles ContentionInterconnect::one_way_latency(NodeId src, NodeId dst) const {
  return zero_load_latency(src, dst, 0);  // 0 bytes -> one head flit
}

Cycles ContentionInterconnect::zero_load_latency(NodeId src, NodeId dst,
                                                 std::size_t bytes) const {
  return zero_load_cycles(topo_.hops(src, dst),
                          flit_count(bytes, cfg_.flit_bytes), cfg_);
}

void ContentionInterconnect::bind(des::Simulation& sim) const {
  if (net_ != nullptr) {
    ensure(sim_ == &sim,
           "ContentionInterconnect: already bound to a different Simulation; "
           "build one adapter per run");
    return;
  }
  net_ = std::make_unique<PacketNetwork>(sim, topo_, cfg_);
  sim_ = &sim;
}

void ContentionInterconnect::deliver(des::Simulation& sim, NodeId src,
                                     NodeId dst, std::size_t bytes,
                                     std::function<void()> arrive) const {
  bind(sim);
  net_->send(src, dst, bytes, std::move(arrive));
}

void ContentionInterconnect::collect_metrics(obs::MetricsRegistry& registry) const {
  if (net_ != nullptr) net_->collect_metrics(registry);
}

std::unique_ptr<ContentionInterconnect> make_contention_interconnect(
    const std::string& kind, std::size_t nodes, Cycles round_trip,
    PacketConfig config) {
  require(nodes > 0, "make_contention_interconnect: need at least one node");
  require(round_trip >= 0.0,
          "make_contention_interconnect: latency must be non-negative");
  Topology topo = TopologyBuilder::build(kind, nodes);

  // Per-link zero-load cost reproducing the analytic factory's
  // calibration: the shared mean-hop denominator keeps the two factories
  // pairwise latency-compatible by construction (for flat, mean hops is
  // the fixed 2-link crossbar path, giving L/4 per link and L/2 one way;
  // for the others, per_hop is exactly make_interconnect's).
  const double mean_hops = parcel::mean_interconnect_hops(kind, nodes);
  const double hop_cost = (round_trip / 2.0) / std::max(mean_hops, 1.0);

  // Split the per-hop budget: flit_cycle of serialization (capped at the
  // budget so tiny latencies stay exact), the rest as wire propagation.
  // Router latency is folded into the budget as zero so per-pair latency
  // is exactly hops * hop_cost, matching the analytic models.
  config.router_latency = 0.0;
  config.flit_cycle = std::min(config.flit_cycle, hop_cost);
  config.link_latency = hop_cost - config.flit_cycle;
  // Size each input buffer to the link's bandwidth-delay product (a
  // credit is held for ~link_latency + 2 flit_cycles): deep calibrated
  // wires would otherwise be credit-starved far below wire bandwidth,
  // and contention should appear as queueing, not as under-buffering.
  // `config.credits` acts as a floor for callers that want deeper buffers.
  if (config.flit_cycle > 0.0) {
    const double bdp =
        (config.link_latency + 2.0 * config.flit_cycle) / config.flit_cycle;
    config.credits = std::max(config.credits,
                              static_cast<std::size_t>(std::ceil(bdp)));
  }
  return std::make_unique<ContentionInterconnect>(std::move(topo), config);
}

}  // namespace pimsim::interconnect
