// Flit-level message framing for the packet interconnect.
//
// A parcel (or any message) entering the packet network is segmented into
// flits — fixed-size flow-control units.  The head flit carries the route;
// body flits follow it hop by hop.  Segmentation is the only place where a
// message's byte size matters to the network: everything downstream (link
// serialization, credit accounting, buffer occupancy) is per-flit.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pimsim::interconnect {

/// Number of flits needed to carry `bytes` of payload.  A zero-byte
/// message still occupies one (head) flit.
[[nodiscard]] constexpr std::size_t flit_count(std::size_t bytes,
                                               std::size_t flit_bytes) {
  return bytes == 0 ? 1 : (bytes + flit_bytes - 1) / flit_bytes;
}

/// Timing and flow-control parameters of the packet network.
///
/// Zero-load end-to-end latency of an F-flit packet over a path of H links
/// (H >= 1) is
///
///   H * (flit_cycle + link_latency) + (H - 1) * router_latency
///     + (F - 1) * flit_cycle
///
/// (head flit pays every hop; body flits pipeline behind it at one flit
/// per flit_cycle), provided `credits` is large enough that an otherwise
/// idle path never stalls the pipeline.
struct PacketConfig {
  std::size_t flit_bytes = 16;  ///< payload bytes per flit
  Cycles flit_cycle = 1.0;      ///< link serialization time per flit
  Cycles link_latency = 1.0;    ///< link propagation delay
  Cycles router_latency = 0.0;  ///< per-flit route/switch delay at each hop
  std::size_t credits = 8;      ///< input-buffer slots per link (flow control)
  double hist_max = 16384.0;    ///< latency histogram upper edge (cycles)
  std::size_t hist_bins = 128;  ///< latency histogram bin count

  /// Link arbitration granularity.  true (default): wormhole-style — once
  /// a packet's head flit wins a link, its body flits follow without
  /// interleaving, which lets the engine advance whole flit trains with
  /// single events (the fast path behind contention-mode figure sweeps).
  /// false: flit-interleaved — every flit arbitrates individually, and
  /// the engine replays the pre-rewrite per-flit event cascade
  /// bit-exactly (the golden timing tests pin this mode against
  /// recordings of the retired implementation).  Zero-load timing is
  /// identical in both modes; they differ only in how same-cycle
  /// contention between packets is interleaved.
  bool wormhole = true;

  void validate() const {
    require(flit_bytes > 0, "PacketConfig: flit_bytes must be positive");
    require(flit_cycle >= 0.0 && link_latency >= 0.0 && router_latency >= 0.0,
            "PacketConfig: latencies must be non-negative");
    require(credits > 0, "PacketConfig: need at least one credit per link");
    require(hist_max > 0.0 && hist_bins > 0, "PacketConfig: bad histogram");
  }
};

/// The zero-load closed form above, shared by PacketNetwork (whose DES
/// reproduces it bit-exactly for integer-valued timings) and the
/// ContentionInterconnect adapter's analytic-facing queries.
[[nodiscard]] inline Cycles zero_load_cycles(std::size_t hops,
                                             std::size_t flits,
                                             const PacketConfig& cfg) {
  if (hops == 0) return 0.0;
  return static_cast<double>(hops) * (cfg.flit_cycle + cfg.link_latency) +
         static_cast<double>(hops - 1) * cfg.router_latency +
         (static_cast<double>(flits) - 1.0) * cfg.flit_cycle;
}

}  // namespace pimsim::interconnect
