// Discrete-event, packet-level interconnect model.
//
// Messages are segmented into flits (packet.hpp) and injected through the
// source node's NIC into the topology's link graph (topology.hpp).  Each
// directed link is a DES component: a FIFO arbitration queue, a wire that
// serializes one flit per flit_cycle, and a credit-counted input buffer at
// its downstream router.  A flit may start crossing a link only when the
// wire is free AND a downstream buffer slot (credit) is available, so a
// congested router backpressures its upstream links hop by hop — the
// contention the analytic latency models assume away.
//
// The model is deterministic: routing is table-driven, all queues are
// FIFO, and the event kernel dispatches same-time events in scheduling
// order, so repeated runs of the same traffic are bit-identical.
//
// Known limitation (documented, acceptable for the ablation studies): no
// virtual channels/datelines, so the wrap cycles of ring/torus topologies
// can deadlock at sustained injection beyond saturation.  packets_in_flight()
// exposes undrained traffic so harnesses can detect this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "interconnect/packet.hpp"
#include "interconnect/topology.hpp"

namespace pimsim::interconnect {

/// Aggregate statistics of one directed link.
struct LinkStats {
  std::uint64_t flits = 0;       ///< flits carried
  double utilization = 0.0;      ///< busy fraction of the wire
  double mean_occupancy = 0.0;   ///< mean downstream buffer occupancy (flits)
  double peak_occupancy = 0.0;   ///< peak downstream buffer occupancy (flits)
};

class PacketNetwork {
 public:
  /// Spawns one worker process per link into `sim` (they idle on their
  /// arbitration queues for the simulation's lifetime).
  PacketNetwork(des::Simulation& sim, Topology topology,
                PacketConfig config = {});

  PacketNetwork(const PacketNetwork&) = delete;
  PacketNetwork& operator=(const PacketNetwork&) = delete;

  /// Injects a `bytes`-byte message from src to dst; `on_delivered` (may
  /// be empty) fires when the last flit is consumed at the destination.
  void send(NodeId src, NodeId dst, std::size_t bytes,
            std::function<void()> on_delivered = {});

  /// Contention-free end-to-end latency of a `bytes`-byte message (the
  /// closed form from PacketConfig; assumes credits never stall the
  /// pipeline, which holds on an otherwise idle path with enough credits).
  [[nodiscard]] Cycles zero_load_latency(NodeId src, NodeId dst,
                                         std::size_t bytes) const;

  // --- statistics -------------------------------------------------------
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t packets_in_flight() const {
    return sent_ - delivered_;
  }
  /// Total link traversals completed by flits (the bench's work unit).
  [[nodiscard]] std::uint64_t flit_hops() const { return flit_hops_; }
  [[nodiscard]] LinkStats link_stats(std::uint32_t link) const;
  /// End-to-end delivered-packet latency, in cycles.
  [[nodiscard]] const RunningStats& latency_stats() const { return latency_; }
  [[nodiscard]] const Histogram& latency_histogram() const {
    return latency_hist_;
  }

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const PacketConfig& config() const { return cfg_; }

 private:
  struct Packet {
    NodeId src = 0;
    NodeId dst = 0;
    std::size_t flits = 1;
    std::size_t arrived = 0;
    SimTime injected_at = 0.0;
    std::function<void()> on_delivered;
  };

  /// One flow-control unit in flight.  `held_buffer` is the link whose
  /// downstream buffer slot the flit currently occupies (kNoLink while
  /// still in the source NIC).
  struct Flit {
    std::shared_ptr<Packet> packet;
    std::uint32_t held_buffer = kNoLink;
  };

  struct LinkState {
    LinkState(des::Simulation& sim, std::uint32_t id, std::size_t credits)
        : queue(sim, "link" + std::to_string(id) + ".q"),
          buffer(sim, credits, "link" + std::to_string(id) + ".buf") {}
    des::Mailbox<Flit> queue;  ///< flits waiting to cross (FIFO arbitration)
    des::Resource buffer;      ///< downstream input-buffer credits
    TimeWeighted busy;         ///< wire occupancy
    std::uint64_t flits = 0;
  };

  des::Process link_worker(LinkState& link, std::uint32_t id);
  void arrive(std::uint32_t link_id, Flit flit);
  void complete(Packet& packet);

  des::Simulation& sim_;
  Topology topo_;
  PacketConfig cfg_;
  std::vector<std::unique_ptr<LinkState>> links_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t flit_hops_ = 0;
  RunningStats latency_;
  Histogram latency_hist_;
};

}  // namespace pimsim::interconnect
