// Discrete-event, packet-level interconnect model.
//
// Messages are segmented into flits (packet.hpp) and injected through the
// source node's NIC into the topology's link graph (topology.hpp).  Each
// directed link is a FIFO arbitration queue, a wire that serializes one
// flit per flit_cycle, and a credit-counted input buffer at its downstream
// router.  A flit may start crossing a link only when the wire is free AND
// a downstream buffer slot (credit) is available, so a congested router
// backpressures its upstream links hop by hop — the contention the
// analytic latency models assume away.
//
// Engine (rewritten for throughput; see src/interconnect/README.md):
//
//  * Packets live in a generation-tagged slab pool; queue entries are POD
//    segments holding index handles.  No shared_ptr, no per-message heap
//    allocation once the pools are warm, and a NIC injection is one O(1)
//    segment the serializer meters flits off as the wire drains.
//  * Each link is a flat LinkState driven by direct calendar events (a
//    dedicated EventAction static-call kind) instead of a coroutine
//    parked on a mailbox and a resource.  In-flight arrivals are appended
//    to the downstream link's ring under a pre-allocated sequence key; a
//    real arrival event is scheduled only when that serializer is parked,
//    and then at exactly the calendar position the eager event would have
//    held.
//  * Flit-train coalescing (wormhole mode, the default): when a link's
//    queue head is a run of consecutive flits of one packet and credits
//    cover the run, a single event advances the whole train by
//    n * flit_cycle, and the train's arrivals leave as one streaming
//    segment the next hop serves as a train of its own — an uncontended
//    traversal costs O(hops) events, not O(hops x flits).  Per-flit
//    credit returns are replayed cycle-exactly from a per-link ledger
//    (blocked serializers arm a wake-up for the next return's maturity
//    cycle), so backpressure timing is unchanged.
//
// Arbitration granularity is PacketConfig::wormhole: the default keeps a
// packet on the wire for its whole queued run; wormhole = false makes
// every flit arbitrate individually and replays the retired coroutine
// engine's event cascade sequence-exactly — bit-identical per-packet
// delivery times, pinned by tests/test_interconnect_golden.cpp against
// recordings of the pre-rewrite implementation.  The modes agree exactly
// wherever no two packets contend for a link in the same cycle (zero
// load in particular) and always carry identical flit-hop totals.
//
// The model is deterministic in both modes: routing is table-driven, all
// queues are FIFO, and the event kernel dispatches same-time events in
// scheduling order, so repeated runs of the same traffic are
// bit-identical.
//
// Known limitation (documented, acceptable for the ablation studies): no
// virtual channels/datelines, so the wrap cycles of ring/torus topologies
// can deadlock at sustained injection beyond saturation.  packets_in_flight()
// exposes undrained traffic so harnesses can detect this.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "des/simulation.hpp"
#include "interconnect/packet.hpp"
#include "interconnect/topology.hpp"

namespace pimsim::obs {
class MetricsRegistry;
class Summary;
}  // namespace pimsim::obs

namespace pimsim::interconnect {

/// Aggregate statistics of one directed link.
struct LinkStats {
  std::uint64_t flits = 0;       ///< flits carried
  double utilization = 0.0;      ///< busy fraction of the wire
  double mean_occupancy = 0.0;   ///< mean downstream buffer occupancy (flits)
  double peak_occupancy = 0.0;   ///< peak downstream buffer occupancy (flits)
};

class PacketNetwork {
 public:
  PacketNetwork(des::Simulation& sim, Topology topology,
                PacketConfig config = {});

  PacketNetwork(const PacketNetwork&) = delete;
  PacketNetwork& operator=(const PacketNetwork&) = delete;

  /// Injects a `bytes`-byte message from src to dst; `on_delivered` (may
  /// be empty) fires when the last flit is consumed at the destination.
  /// The NIC holds the message as one O(1) queue entry and meters flits
  /// onto the first link as its serializer drains.
  void send(NodeId src, NodeId dst, std::size_t bytes,
            std::function<void()> on_delivered = {});

  /// Contention-free end-to-end latency of a `bytes`-byte message (the
  /// closed form from PacketConfig; assumes credits never stall the
  /// pipeline, which holds on an otherwise idle path with enough credits).
  [[nodiscard]] Cycles zero_load_latency(NodeId src, NodeId dst,
                                         std::size_t bytes) const;

  // --- statistics -------------------------------------------------------
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t packets_in_flight() const {
    return sent_ - delivered_;
  }
  /// Total link traversals completed by flits (the bench's work unit).
  [[nodiscard]] std::uint64_t flit_hops() const { return flit_hops_; }
  /// Non-const: reading the stats folds the link's deferred credit
  /// ledger up to now() (observable results are unchanged; the fold is
  /// when pending occupancy decrements land in the accumulators).
  [[nodiscard]] LinkStats link_stats(std::uint32_t link);
  /// End-to-end delivered-packet latency, in cycles.
  [[nodiscard]] const RunningStats& latency_stats() const { return latency_; }
  [[nodiscard]] const Histogram& latency_histogram() const {
    return latency_hist_;
  }

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const PacketConfig& config() const { return cfg_; }

  /// Publishes per-link utilization/occupancy summaries and the packet
  /// counters into `registry` (end-of-run; folds the credit ledgers, hence
  /// non-const).  Callers guard with sim.metrics_enabled().
  void collect_metrics(obs::MetricsRegistry& registry);

 private:
  /// Pooled packet record; (generation << 32 | index) handles detect
  /// stale references across slot reuse.
  struct PacketRec {
    NodeId src = 0;
    NodeId dst = 0;
    std::uint32_t flits = 1;
    std::uint32_t ejected = 0;  ///< flits that have left the ejection wire
    std::uint32_t generation = 1;
    std::uint32_t next_free = 0xffffffffu;
    SimTime injected_at = 0.0;
    std::function<void()> on_delivered;
  };
  using Handle = std::uint64_t;

  /// A run of `count` consecutive flits of one packet waiting in (or in
  /// flight toward) a link's arbitration queue.  Flit i becomes available
  /// at ready + i * stride (stride 0: all queued at once, e.g. a NIC
  /// injection; stride flit_cycle: streaming off an upstream wire).
  /// `key` is the calendar sequence the enqueue holds in the global FIFO
  /// order (see the deferred-event hooks in des/simulation.hpp).
  struct Segment {
    Handle packet = 0;
    double ready = 0.0;
    double stride = 0.0;
    std::uint64_t key = 0;
    std::uint32_t count = 1;
    std::uint32_t from_link = kNoLink;
  };

  /// Flat FIFO ring of segments (amortized allocation-free).
  struct SegRing {
    std::vector<Segment> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] Segment& front() { return buf[head]; }
    [[nodiscard]] const Segment& front() const { return buf[head]; }
    [[nodiscard]] Segment& back() {
      return buf[(head + count - 1) & (buf.size() - 1)];
    }
    void pop_front() {
      head = (head + 1) & (buf.size() - 1);
      --count;
    }
    void push_back(const Segment& seg);
  };

  /// A pending stream of deferred credit returns at times first,
  /// first+stride, ...: what a coalesced train (or an elided ejection
  /// arrival) still owes a link's input buffer.
  struct OpRun {
    double first = 0.0;
    double stride = 0.0;
    std::uint32_t left = 0;
  };

  enum class Phase : std::uint8_t {
    kIdle,         ///< wire free, no staged flit
    kSerializing,  ///< a flit (or train) is crossing; an advance is scheduled
    kBlocked,      ///< head flit staged, waiting for a downstream credit
    kGranted,      ///< credit granted; begin event pending in the lane
  };

  struct LinkState {
    SegRing mat;  ///< materialized entries: NIC injections, routed pushes
    SegRing net;  ///< lazily appended in-flight arrivals (ready-monotone)
    std::vector<OpRun> ledger;  ///< pending micro-ops, folded on touch
    std::int64_t credits = 0;   ///< folded available downstream credits
    Phase phase = Phase::kIdle;
    bool start_pending = false;  ///< a begin event sits in the lane
    bool wake_armed = false;     ///< a keyed wake-up is scheduled
    bool credit_wake_armed = false;  ///< wake for a deferred credit return
    bool train_active = false;   ///< current advance covers a whole train
    double train_busy_from = 0.0;  ///< wire-busy window start of the train
    double wake_ready = 0.0;     ///< earliest armed wake-up time
    Handle cur_packet = 0;       ///< flit on the wire / staged (see phase)
    std::uint32_t cur_from = kNoLink;
    std::uint64_t flits = 0;
    TimeWeighted busy;       ///< wire occupancy
    TimeWeighted occupancy;  ///< downstream input-buffer occupancy
  };

  // --- event plumbing (EventAction::call trampolines) -------------------
  enum class Ev : std::uint64_t {
    kStart,    ///< lane: begin serialization after an enqueue wake-up
    kGrant,    ///< lane: begin serialization after a credit grant
    kAdvance,  ///< heap: serialization end of the current flit/train
    kArrive,   ///< heap: flit lands at the downstream router
    kFwd,      ///< heap: router-latency-delayed enqueue on the next link
    kLocal,    ///< lane: src == dst local delivery
    kWake,     ///< heap: keyed wake-up for a lazily appended arrival
    kCreditWake,  ///< heap: a ledgered credit return matures for a
                  ///< blocked serializer (wormhole mode)
    kComplete,    ///< heap: delivery of a train's final ejected flit
  };
  static void on_event(void* self, std::uint64_t a, std::uint64_t b);
  void schedule_ev(SimTime at, Ev ev, std::uint32_t link, Handle packet);

  // --- engine -----------------------------------------------------------
  void on_start(std::uint32_t link);
  void on_grant(std::uint32_t link);
  void on_advance(std::uint32_t link);
  void on_arrive(std::uint32_t link, Handle handle, bool final_flit);
  void on_fwd(std::uint32_t link, Handle handle, std::uint32_t from);
  void on_wake(std::uint32_t link);
  void on_credit_wake(std::uint32_t link);

  void fold_ledger(LinkState& link, double t);
  /// Audit-mode credit-conservation check (see des/audit.hpp); called on
  /// link-advance events when sim_.audit_enabled().
  void audit_check_link(const LinkState& link) const;
  void push_run(LinkState& link, double first, double stride,
                std::uint32_t left);
  void release_credit(std::uint32_t link);
  void arm_credit_wake(std::uint32_t link);
  [[nodiscard]] SegRing* fifo_front(LinkState& link);  ///< nullptr if empty
  void arm_wake(std::uint32_t link, double ready, std::uint64_t key);
  void poke(std::uint32_t link);  ///< wake an idle serializer if work is due
  void try_begin(std::uint32_t link);
  void begin(std::uint32_t link);
  void run_train(std::uint32_t link, SegRing* ring, std::uint32_t flits,
                 double start);
  void deliver_flit(std::uint32_t link);  ///< arrival side of on_advance
  void append_net(std::uint32_t link, Handle packet, double ready,
                  double stride, std::uint32_t count, std::uint32_t from);
  void complete(Handle handle);

  [[nodiscard]] PacketRec& rec(Handle handle);
  [[nodiscard]] Handle alloc_packet();
  void free_packet(Handle handle);

  /// Emits a link-occupancy counter trace record (no-op unless tracing).
  void trace_occupancy(std::uint32_t link);
  [[nodiscard]] des::LabelId occupancy_label(std::uint32_t link);

  des::Simulation& sim_;
  Topology topo_;
  PacketConfig cfg_;
  std::vector<LinkState> links_;
  std::vector<PacketRec> pool_;
  std::uint32_t pool_free_ = 0xffffffffu;
  /// Elision margin for deferred ejection releases: a release maturing
  /// link_latency after its flit leaves the wire is unobservable iff the
  /// link cannot credit-starve first, and the serializer consumes at most
  /// one credit per flit_cycle, so ceil(link_latency / flit_cycle) folded
  /// credits at the decision point are sufficient.  0xffffffff disables
  /// elision (flit_cycle == 0 or link_latency == 0).
  std::uint32_t elide_need_ = 0xffffffffu;
  /// Lazily appended arrivals need a strictly positive link latency (a
  /// zero-latency arrival would have to land in the current timestep).
  bool lazy_arrivals_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t flit_hops_ = 0;
  RunningStats latency_;
  Histogram latency_hist_;
  /// Metrics handle, bound at construction when metrics are enabled; null
  /// otherwise (one predicted branch per delivery).
  obs::Summary* m_latency_ = nullptr;
  /// Lazily interned per-link counter-track labels (tracing only).
  std::vector<des::LabelId> link_trace_labels_;
};

}  // namespace pimsim::interconnect
