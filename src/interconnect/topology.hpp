// Network topologies for the packet-level interconnect.
//
// A Topology is a directed graph of routers and links plus a deterministic
// routing table.  Every PIM node attaches to one router (identity mapping;
// the flat/crossbar topology adds one extra central router all nodes hang
// off).  Routing is table-driven and minimal:
//
//   flat     star through a single crossbar router: every path is exactly
//            two links (node -> crossbar -> node), so contention appears
//            only at the ejection link — the closest packet-level analogue
//            of the paper's flat (fixed-delay) model;
//   ring     unidirectional, forward routing (matches RingInterconnect);
//   mesh2d   dimension-ordered X-then-Y routing (matches Mesh2DInterconnect);
//   torus2d  dimension-ordered with per-dimension shortest wrap direction,
//            ties broken toward the positive direction (deterministic).
//
// TopologyBuilder constructs the graphs; build(kind, nodes) resolves the
// same topology names the analytic make_interconnect factory accepts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "parcel/parcel.hpp"

namespace pimsim::interconnect {

using parcel::NodeId;

/// Sentinel link id: no link (local delivery / routing table "eject here").
inline constexpr std::uint32_t kNoLink = 0xffffffffu;

enum class TopologyKind : std::uint8_t { kFlat, kRing, kMesh2D, kTorus2D };

[[nodiscard]] const char* to_string(TopologyKind kind);

/// A directed channel between two routers.
struct Link {
  std::uint32_t src_router = 0;
  std::uint32_t dst_router = 0;
};

class Topology {
 public:
  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] const char* name() const { return to_string(kind_); }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::size_t routers() const { return routers_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  /// Grid extents; 0 for non-grid topologies.
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }

  /// Router a node's NIC attaches to.
  [[nodiscard]] std::uint32_t attach(NodeId node) const {
    return static_cast<std::uint32_t>(node);
  }

  /// Next link on the route from `router` toward node `dst`; kNoLink when
  /// the packet should be injected/ejected locally.  A flit that has
  /// traversed at least one link ejects whenever it reaches attach(dst)
  /// (on the flat topology the routing table sends a freshly injected
  /// self-addressed flit through the crossbar, like every other flit).
  [[nodiscard]] std::uint32_t next_link(std::uint32_t router, NodeId dst) const;

  /// Number of links on the route from src to dst (0 for local delivery).
  [[nodiscard]] std::size_t hops(NodeId src, NodeId dst) const;

 private:
  friend class TopologyBuilder;

  TopologyKind kind_ = TopologyKind::kFlat;
  std::size_t nodes_ = 0;
  std::size_t routers_ = 0;
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<Link> links_;
  std::vector<std::uint32_t> route_;  ///< routers x nodes -> link id
};

class TopologyBuilder {
 public:
  /// Star through one central crossbar router; every path is two links.
  [[nodiscard]] static Topology flat(std::size_t nodes);
  /// Unidirectional ring: link i connects router i to router (i+1) % n.
  [[nodiscard]] static Topology ring(std::size_t nodes);
  /// width x height grid, row-major node layout, bidirectional channels.
  [[nodiscard]] static Topology mesh2d(std::size_t width, std::size_t height);
  /// Mesh plus wrap-around channels in both dimensions.
  [[nodiscard]] static Topology torus2d(std::size_t width, std::size_t height);

  /// Builds by the analytic factory's topology names (flat, ring, mesh2d,
  /// torus); grid topologies require a square node count.  Throws
  /// InvalidArgument for unknown names, listing the valid ones.
  [[nodiscard]] static Topology build(const std::string& kind,
                                      std::size_t nodes);

 private:
  static Topology grid(TopologyKind kind, std::size_t width,
                       std::size_t height);
};

}  // namespace pimsim::interconnect
