#include "arch/host_system.hpp"

#include <memory>
#include <optional>

#include "common/error.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "memory/memory_system.hpp"
#include "workload/workload.hpp"

namespace pimsim::arch {

void HostConfig::validate() const {
  params.validate();
  workload.validate();
  require(lwp_nodes > 0, "HostConfig: need at least one LWP node");
  require(phases > 0, "HostConfig: need at least one phase");
  require(batch_ops > 0, "HostConfig: batch_ops must be positive");
}

namespace {

/// Everything one run needs to share between master and worker coroutines.
struct RunState {
  des::Simulation sim;
  std::unique_ptr<mem::MemorySystem> memory;
  std::vector<std::unique_ptr<Lwp>> lwps;
  std::optional<Hwp> hwp;
  double hwp_cycles = 0.0;
  double lwp_cycles = 0.0;
};

/// One LWP worker thread of a fork/join phase.
des::Process lwp_thread(Lwp& lwp, std::uint64_t ops,
                        des::CountdownLatch& barrier) {
  co_await des::spawn_join(lwp.sim_ref(), lwp.run(ops));
  barrier.count_down();
}

/// The HWP's share of an overlapped phase.
des::Process hwp_part(RunState& state, std::uint64_t ops,
                      des::CountdownLatch& barrier, SimTime* finished_at) {
  co_await des::spawn_join(state.sim, state.hwp->run(ops));
  *finished_at = state.sim.now();
  barrier.count_down();
}

/// The master control flow of Figure 4.
des::Process master(RunState& state, const HostConfig& config) {
  const auto phase_plan = wl::make_phases(config.workload, config.phases);
  const std::size_t threads = config.lwp_nodes;
  for (const auto& phase : phase_plan) {
    if (config.overlap_phases) {
      // Extension mode: host and PIM array run their parts concurrently;
      // the phase ends when the slower side finishes.
      const SimTime start = state.sim.now();
      const std::size_t parties = (phase.hwp_ops > 0 ? 1u : 0u) +
                                  (phase.lwp_ops_total > 0 ? threads : 0u);
      if (parties == 0) continue;
      des::CountdownLatch barrier(state.sim, parties);
      SimTime hwp_end = start;
      SimTime lwp_end = start;
      if (phase.hwp_ops > 0) {
        state.sim.spawn(hwp_part(state, phase.hwp_ops, barrier, &hwp_end));
      }
      if (phase.lwp_ops_total > 0) {
        const auto shares = wl::split_evenly(phase.lwp_ops_total, threads);
        for (std::size_t t = 0; t < threads; ++t) {
          state.sim.spawn(lwp_thread(*state.lwps[t], shares[t], barrier));
        }
      }
      co_await barrier.wait();
      lwp_end = state.sim.now();
      state.hwp_cycles += hwp_end - start;
      state.lwp_cycles += lwp_end - start;
      continue;
    }
    if (phase.hwp_ops > 0) {
      const SimTime start = state.sim.now();
      co_await des::spawn_join(state.sim, state.hwp->run(phase.hwp_ops));
      state.hwp_cycles += state.sim.now() - start;
    }
    if (phase.lwp_ops_total > 0) {
      const SimTime start = state.sim.now();
      // Fork: one uniform-length thread per LWP execution context;
      // join: barrier until all complete (the phase ends at the slowest).
      const auto shares = wl::split_evenly(phase.lwp_ops_total, threads);
      des::CountdownLatch barrier(state.sim, threads);
      for (std::size_t t = 0; t < threads; ++t) {
        state.sim.spawn(lwp_thread(*state.lwps[t], shares[t], barrier));
      }
      co_await barrier.wait();
      state.lwp_cycles += state.sim.now() - start;
    }
  }
}

HostResult run_impl(const HostConfig& config) {
  config.validate();
  RunState state;
  Rng root(config.seed);

  // The memory seam: latency constants and the node count always come
  // from the machine parameters, so the analytic backend charges the
  // identical doubles the models used to inline (bitwise-equal figures)
  // and the banked backend's zero-load latencies degenerate to them.
  mem::MemoryConfig mc = config.memory;
  mc.nodes = config.lwp_nodes;
  mc.lwp_row_cycles = config.params.t_ml;
  mc.hwp_miss_cycles = config.params.t_mh;
  state.memory = mem::make_memory(mc);

  state.hwp.emplace(state.sim, config.params, root.split(0), config.batch_ops,
                    state.memory.get());

  const std::size_t threads = config.lwp_nodes;
  state.lwps.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    state.lwps.push_back(std::make_unique<Lwp>(
        state.sim, config.params, root.split(100 + t), config.batch_ops,
        state.memory.get(), t));
  }

  state.sim.spawn(master(state, config));
  state.sim.run();
  if (state.sim.metrics_enabled()) {
    state.memory->collect_metrics(state.sim.metrics());
  }

  HostResult out;
  out.total_cycles = state.sim.now();
  out.hwp_cycles = state.hwp_cycles;
  out.lwp_cycles = state.lwp_cycles;
  out.hwp_ops = state.hwp->counts().ops;
  for (const auto& lwp : state.lwps) out.lwp_ops += lwp->counts().ops;
  out.hwp_observed_miss_rate = state.hwp->observed_miss_rate();
  out.mem_accesses = state.memory->accesses();
  out.mem_row_hit_rate = state.memory->row_hit_rate();
  return out;
}

}  // namespace

HostResult run_host_system(const HostConfig& config) { return run_impl(config); }

HostResult run_control_system(const HostConfig& config) {
  // Control run: "the HWP performed all of the work" — same W, %WL = 0.
  HostConfig control = config;
  control.workload.lwp_fraction = 0.0;
  control.memory = mem::MemoryConfig{};
  control.overlap_phases = false;
  return run_impl(control);
}

double simulated_gain(const HostConfig& config) {
  const HostResult test = run_host_system(config);
  const HostResult control = run_control_system(config);
  ensure(test.total_cycles > 0.0, "simulated_gain: empty test run");
  return control.total_cycles / test.total_cycles;
}

}  // namespace pimsim::arch
