#include "arch/host_system.hpp"

#include <memory>
#include <optional>

#include "common/error.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "workload/workload.hpp"

namespace pimsim::arch {

void HostConfig::validate() const {
  params.validate();
  workload.validate();
  require(lwp_nodes > 0, "HostConfig: need at least one LWP node");
  require(phases > 0, "HostConfig: need at least one phase");
  require(batch_ops > 0, "HostConfig: batch_ops must be positive");
  require(lwps_per_bank > 0, "HostConfig: lwps_per_bank must be positive");
  require(model_bank_conflicts || lwps_per_bank == 1,
          "HostConfig: lwps_per_bank > 1 requires model_bank_conflicts");
}

namespace {

/// Everything one run needs to share between master and worker coroutines.
struct RunState {
  des::Simulation sim;
  std::vector<std::unique_ptr<Lwp>> lwps;
  std::vector<std::unique_ptr<des::Resource>> ports;  // ablation only
  std::optional<Hwp> hwp;
  double hwp_cycles = 0.0;
  double lwp_cycles = 0.0;
};

/// One LWP worker thread of a fork/join phase.
des::Process lwp_thread(Lwp& lwp, std::uint64_t ops,
                        des::CountdownLatch& barrier) {
  co_await des::spawn_join(lwp.sim_ref(), lwp.run(ops));
  barrier.count_down();
}

/// The HWP's share of an overlapped phase.
des::Process hwp_part(RunState& state, std::uint64_t ops,
                      des::CountdownLatch& barrier, SimTime* finished_at) {
  co_await des::spawn_join(state.sim, state.hwp->run(ops));
  *finished_at = state.sim.now();
  barrier.count_down();
}

/// The master control flow of Figure 4.
des::Process master(RunState& state, const HostConfig& config) {
  const auto phase_plan = wl::make_phases(config.workload, config.phases);
  const std::size_t threads = config.lwp_nodes;
  for (const auto& phase : phase_plan) {
    if (config.overlap_phases) {
      // Extension mode: host and PIM array run their parts concurrently;
      // the phase ends when the slower side finishes.
      const SimTime start = state.sim.now();
      const std::size_t parties = (phase.hwp_ops > 0 ? 1u : 0u) +
                                  (phase.lwp_ops_total > 0 ? threads : 0u);
      if (parties == 0) continue;
      des::CountdownLatch barrier(state.sim, parties);
      SimTime hwp_end = start;
      SimTime lwp_end = start;
      if (phase.hwp_ops > 0) {
        state.sim.spawn(hwp_part(state, phase.hwp_ops, barrier, &hwp_end));
      }
      if (phase.lwp_ops_total > 0) {
        const auto shares = wl::split_evenly(phase.lwp_ops_total, threads);
        for (std::size_t t = 0; t < threads; ++t) {
          state.sim.spawn(lwp_thread(*state.lwps[t], shares[t], barrier));
        }
      }
      co_await barrier.wait();
      lwp_end = state.sim.now();
      state.hwp_cycles += hwp_end - start;
      state.lwp_cycles += lwp_end - start;
      continue;
    }
    if (phase.hwp_ops > 0) {
      const SimTime start = state.sim.now();
      co_await des::spawn_join(state.sim, state.hwp->run(phase.hwp_ops));
      state.hwp_cycles += state.sim.now() - start;
    }
    if (phase.lwp_ops_total > 0) {
      const SimTime start = state.sim.now();
      // Fork: one uniform-length thread per LWP execution context;
      // join: barrier until all complete (the phase ends at the slowest).
      const auto shares = wl::split_evenly(phase.lwp_ops_total, threads);
      des::CountdownLatch barrier(state.sim, threads);
      for (std::size_t t = 0; t < threads; ++t) {
        state.sim.spawn(lwp_thread(*state.lwps[t], shares[t], barrier));
      }
      co_await barrier.wait();
      state.lwp_cycles += state.sim.now() - start;
    }
  }
}

HostResult run_impl(const HostConfig& config) {
  config.validate();
  RunState state;
  Rng root(config.seed);

  state.hwp.emplace(state.sim, config.params, root.split(0), config.batch_ops);

  const std::size_t threads = config.lwp_nodes;
  if (config.model_bank_conflicts) {
    // Single-ported banks; lwps_per_bank LWPs share each one. With
    // lwps_per_bank == 1 this measures pure per-access serialization
    // (each LWP has a private bank, so no conflicts, only event overhead).
    const std::size_t banks =
        (config.lwp_nodes + config.lwps_per_bank - 1) / config.lwps_per_bank;
    state.ports.reserve(banks);
    for (std::size_t b = 0; b < banks; ++b) {
      state.ports.push_back(std::make_unique<des::Resource>(
          state.sim, 1, "bank" + std::to_string(b) + ".port"));
    }
  }
  state.lwps.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    des::Resource* port = config.model_bank_conflicts
                              ? state.ports[t / config.lwps_per_bank].get()
                              : nullptr;
    state.lwps.push_back(std::make_unique<Lwp>(state.sim, config.params,
                                               root.split(100 + t),
                                               config.batch_ops, port));
  }

  state.sim.spawn(master(state, config));
  state.sim.run();

  HostResult out;
  out.total_cycles = state.sim.now();
  out.hwp_cycles = state.hwp_cycles;
  out.lwp_cycles = state.lwp_cycles;
  out.hwp_ops = state.hwp->counts().ops;
  for (const auto& lwp : state.lwps) out.lwp_ops += lwp->counts().ops;
  out.hwp_observed_miss_rate = state.hwp->observed_miss_rate();
  return out;
}

}  // namespace

HostResult run_host_system(const HostConfig& config) { return run_impl(config); }

HostResult run_control_system(const HostConfig& config) {
  // Control run: "the HWP performed all of the work" — same W, %WL = 0.
  HostConfig control = config;
  control.workload.lwp_fraction = 0.0;
  control.model_bank_conflicts = false;
  control.lwps_per_bank = 1;
  control.overlap_phases = false;
  return run_impl(control);
}

double simulated_gain(const HostConfig& config) {
  const HostResult test = run_host_system(config);
  const HostResult control = run_control_system(config);
  ensure(test.total_cycles > 0.0, "simulated_gain: empty test run");
  return control.total_cycles / test.total_cycles;
}

}  // namespace pimsim::arch
