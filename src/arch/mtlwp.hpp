// Discrete-event model of a multithreaded LWP node: K hardware thread
// contexts share one LWP pipeline; a thread's row-buffer access (TML)
// overlaps with other threads' compute, hiding local memory latency the
// way parcels hide network latency (paper Section 5.2, after [27]).
//
// This is the simulation counterpart of analytic/multithreading.hpp; the
// test suite checks the two against each other in the linear and
// saturated regimes.
#pragma once

#include <cstdint>
#include <memory>

#include "arch/hwp.hpp"
#include "arch/params.hpp"
#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "memory/memory_system.hpp"

namespace pimsim::arch {

class MultithreadedLwp {
 public:
  /// A node with `threads` contexts; switching costs `switch_cost` HWP
  /// cycles whenever a different context takes the pipeline (K >= 2).
  /// The off-pipeline row-buffer stall goes through the MemorySystem
  /// seam when `memory` is wired (issued from `node`); nullptr charges
  /// the Table 1 TML constant directly, as the paper assumes.
  MultithreadedLwp(des::Simulation& sim, const SystemParams& params, Rng rng,
                   std::size_t threads, double switch_cost,
                   const mem::MemorySystem* memory = nullptr,
                   std::size_t node = 0);

  /// Coroutine that executes `ops` operations split evenly across the
  /// node's thread contexts; completes when the slowest thread finishes.
  [[nodiscard]] des::Process run(std::uint64_t ops);

  [[nodiscard]] const OpCounts& counts() const { return counts_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  /// Pipeline busy fraction (switch cycles count as busy).
  [[nodiscard]] double utilization() const { return pipeline_.utilization(); }

 private:
  des::Process thread_body(std::uint64_t ops, Rng rng,
                           des::CountdownLatch& done);

  des::Simulation& sim_;
  SystemParams params_;
  Rng rng_;
  std::size_t threads_;
  double switch_cost_;
  const mem::MemorySystem* memory_;
  std::size_t node_;
  std::uint64_t next_offset_ = 0;  ///< contended path: next address offset
  des::Resource pipeline_;
  OpCounts counts_;
};

}  // namespace pimsim::arch
