// Lightweight PIM processor model (paper Figure 3).
//
// An LWP has no cache; it sits next to a memory row buffer, so every
// load/store costs TML (already normalized to HWP cycles) and every other
// operation costs one LWP cycle (TLcycle HWP cycles).  Memory timing goes
// through the mem::MemorySystem seam: with no memory (or the analytic
// backend) the paper's contention-free model is reproduced bitwise via
// batched charging; a contended backend (memory=banked) switches to
// per-access issue so bank queueing and shared-port arbitration are
// visible — the bank-conflict ablation's measurement path.
#pragma once

#include <cstdint>

#include "arch/hwp.hpp"
#include "arch/params.hpp"
#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "memory/memory_system.hpp"

namespace pimsim::arch {

class Lwp {
 public:
  /// `memory == nullptr` (or an uncontended backend) reproduces the
  /// paper's contention-free model with batched charging.  A contended
  /// backend issues every access individually from `node` (use small op
  /// counts: that path is per-access, not batched).
  Lwp(des::Simulation& sim, const SystemParams& params, Rng rng,
      std::uint64_t batch_ops = 100'000,
      const mem::MemorySystem* memory = nullptr, std::size_t node = 0);

  /// Coroutine that executes `ops` LWP operations.
  [[nodiscard]] des::Process run(std::uint64_t ops);

  [[nodiscard]] const OpCounts& counts() const { return counts_; }
  [[nodiscard]] des::Simulation& sim_ref() { return sim_; }

 private:
  /// Row-buffer access latency, read through the seam when one is wired.
  [[nodiscard]] double row_latency() const {
    return memory_ == nullptr
               ? params_.t_ml
               : memory_->zero_load_latency(mem::AccessKind::kLwpRow);
  }

  des::Process run_batched(std::uint64_t ops);
  des::Process run_contended(std::uint64_t ops);

  des::Simulation& sim_;
  SystemParams params_;
  Rng rng_;
  std::uint64_t batch_ops_;
  const mem::MemorySystem* memory_;
  std::size_t node_;
  OpCounts counts_;
};

}  // namespace pimsim::arch
