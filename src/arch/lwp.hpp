// Lightweight PIM processor model (paper Figure 3).
//
// An LWP has no cache; it sits next to a memory row buffer, so every
// load/store costs TML (already normalized to HWP cycles) and every other
// operation costs one LWP cycle (TLcycle HWP cycles).  The default is the
// paper's contention-free model ("bank conflicts are not modeled");
// setting `memory_port` routes every memory access through a shared
// des::Resource so the bank-conflict ablation can quantify what that
// assumption hides.
#pragma once

#include <cstdint>

#include "arch/hwp.hpp"
#include "arch/params.hpp"
#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"

namespace pimsim::arch {

class Lwp {
 public:
  /// `memory_port == nullptr` reproduces the paper's contention-free model.
  /// With a port, *memory* time is serialized through it access-by-access
  /// (use small op counts: this path is per-access, not batched).
  Lwp(des::Simulation& sim, const SystemParams& params, Rng rng,
      std::uint64_t batch_ops = 100'000, des::Resource* memory_port = nullptr);

  /// Coroutine that executes `ops` LWP operations.
  [[nodiscard]] des::Process run(std::uint64_t ops);

  [[nodiscard]] const OpCounts& counts() const { return counts_; }
  [[nodiscard]] des::Simulation& sim_ref() { return sim_; }

 private:
  des::Process run_batched(std::uint64_t ops);
  des::Process run_with_port(std::uint64_t ops);

  des::Simulation& sim_;
  SystemParams params_;
  Rng rng_;
  std::uint64_t batch_ops_;
  des::Resource* memory_port_;
  OpCounts counts_;
};

}  // namespace pimsim::arch
