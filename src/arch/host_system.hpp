// Composition of the paper's Section 3 system (Figure 1): one heavyweight
// host processor plus an array of N lightweight PIM nodes, executing the
// alternating-phase workload of Figure 4 (at any time either the HWP or
// the LWP array runs, never both; each LWP phase is a fork/join of N
// uniform threads, one per node).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/hwp.hpp"
#include "arch/lwp.hpp"
#include "arch/params.hpp"
#include "memory/memory_system.hpp"
#include "workload/workload.hpp"

namespace pimsim::arch {

/// Full configuration of one simulated point.
struct HostConfig {
  SystemParams params;            ///< Table 1 machine parameters
  wl::WorkloadSpec workload;      ///< W, %WL, mix
  std::size_t lwp_nodes = 8;      ///< N
  std::size_t phases = 4;         ///< alternating segments (Figure 4)
  std::uint64_t batch_ops = 100'000;  ///< statistical batching granularity
  std::uint64_t seed = 1;

  // The memory seam (paper: "bank conflicts are not modeled"): kind
  // "analytic" reproduces the paper's constant-latency charging bitwise;
  // "banked" runs the DES banked-DRAM backend, with `banks` < lwp_nodes
  // making consecutive node groups share a bank and `queue` limiting the
  // shared access ports.  The latency constants and node count are
  // overridden from `params`/`lwp_nodes` at run time, so only kind /
  // banks / queue need to be set here.
  mem::MemoryConfig memory;

  // Extension: concurrent host+PIM execution. The paper's Figure 4 flow
  // serializes the HWP and LWP parts of each phase ("at any one time,
  // either the HWP or LWP array is executing but not both"); with
  // overlap_phases the two parts of a phase run concurrently and the
  // phase ends when both finish — the "PIM augmenting a host" mode the
  // introduction motivates.
  bool overlap_phases = false;

  void validate() const;
};

/// Measured outcome of one run.
struct HostResult {
  double total_cycles = 0.0;  ///< makespan, HWP cycles
  double hwp_cycles = 0.0;    ///< time spent in HWP phases
  double lwp_cycles = 0.0;    ///< time spent in LWP fork/join phases
  std::uint64_t hwp_ops = 0;
  std::uint64_t lwp_ops = 0;
  double hwp_observed_miss_rate = 0.0;
  std::uint64_t mem_accesses = 0;     ///< banked backend: accesses issued
  double mem_row_hit_rate = 0.0;      ///< banked backend: open-row hit rate

  /// Makespan in nanoseconds under the configured HWP clock.
  [[nodiscard]] double total_ns(const SystemParams& p) const {
    return p.clock().to_ns(total_cycles);
  }
};

/// Runs the PIM-augmented system to completion (simulation experiment).
[[nodiscard]] HostResult run_host_system(const HostConfig& config);

/// Runs the control: the HWP executes *all* work with its cache behaviour.
[[nodiscard]] HostResult run_control_system(const HostConfig& config);

/// Convenience: simulated gain = control makespan / test makespan.
[[nodiscard]] double simulated_gain(const HostConfig& config);

}  // namespace pimsim::arch
