#include "arch/params.hpp"

#include "common/error.hpp"

namespace pimsim::arch {

void SystemParams::validate() const {
  require(th_cycle_ns > 0.0, "SystemParams: THcycle must be positive");
  require(tl_cycle >= 1.0,
          "SystemParams: TLcycle must be >= 1 HWP cycle (LWPs are slower)");
  require(t_mh >= 0.0 && t_ch >= 0.0 && t_ml >= 0.0,
          "SystemParams: access times must be non-negative");
  require(p_miss >= 0.0 && p_miss <= 1.0,
          "SystemParams: Pmiss must be in [0,1]");
  require(ls_mix >= 0.0 && ls_mix <= 1.0,
          "SystemParams: ls_mix must be in [0,1]");
}

double SystemParams::hwp_cost_per_op() const {
  validate();
  return 1.0 + ls_mix * (t_ch - 1.0 + p_miss * t_mh);
}

double SystemParams::lwp_cost_per_op() const {
  validate();
  return tl_cycle + ls_mix * (t_ml - tl_cycle);
}

double SystemParams::nb() const { return lwp_cost_per_op() / hwp_cost_per_op(); }

}  // namespace pimsim::arch
