#include "arch/pim_chip.hpp"

#include "common/error.hpp"

namespace pimsim::arch {

void PimChipSpec::validate() const {
  macro.validate();
  require(nodes > 0, "PimChipSpec: need at least one node");
  require(lwp_cycle_ns > 0.0, "PimChipSpec: LWP cycle time must be positive");
  require(macro_rows > 0, "PimChipSpec: need at least one row");
}

std::size_t PimChipSpec::node_capacity_bytes() const {
  validate();
  return macro_rows * macro.row_bits / 8;
}

std::size_t PimChipSpec::chip_capacity_bytes() const {
  return node_capacity_bytes() * nodes;
}

double PimChipSpec::peak_bandwidth_gbps() const {
  validate();
  return macro.chip_bandwidth_gbps(nodes);
}

double PimChipSpec::lwp_access_ns() const {
  validate();
  return macro.row_access_ns + macro.page_access_ns;
}

SystemParams PimChipSpec::derive_params(const SystemParams& host_side) const {
  validate();
  host_side.validate();
  SystemParams out = host_side;
  // TLcycle and TML in HWP cycles, from this chip's clock and DRAM timing.
  out.tl_cycle = lwp_cycle_ns / host_side.th_cycle_ns;
  out.t_ml = lwp_access_ns() / host_side.th_cycle_ns;
  out.validate();
  return out;
}

double PimChipSpec::peak_gops(double ls_mix) const {
  validate();
  require(ls_mix >= 0.0 && ls_mix <= 1.0, "PimChipSpec: bad ls_mix");
  // Per node: ops take lwp_cycle_ns, accesses take lwp_access_ns; the
  // mean op cost is the mix-weighted blend (no overlap assumed).
  const double mean_ns =
      (1.0 - ls_mix) * lwp_cycle_ns + ls_mix * lwp_access_ns();
  return static_cast<double>(nodes) / mean_ns;  // ops/ns = Gops/s
}

}  // namespace pimsim::arch
