#include "arch/hwp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pimsim::arch {

Hwp::Hwp(des::Simulation& sim, const SystemParams& params, Rng rng,
         std::uint64_t batch_ops, const mem::MemorySystem* memory)
    : sim_(sim), params_(params), rng_(rng), batch_ops_(batch_ops),
      memory_(memory) {
  params_.validate();
  require(batch_ops > 0, "Hwp: batch_ops must be positive");
}

des::Process Hwp::run(std::uint64_t ops) {
  std::uint64_t remaining = ops;
  while (remaining > 0) {
    const std::uint64_t batch = std::min(remaining, batch_ops_);
    remaining -= batch;

    const std::uint64_t mem = rng_.binomial(batch, params_.ls_mix);
    const std::uint64_t misses = rng_.binomial(mem, params_.p_miss);
    // Non-memory ops issue in 1 cycle; memory ops pay the cache access and,
    // on a miss, additionally the main-memory access.
    const double cycles = static_cast<double>(batch - mem) +
                          static_cast<double>(mem) * params_.t_ch +
                          static_cast<double>(misses) * miss_penalty();
    co_await des::delay(sim_, cycles);

    counts_.ops += batch;
    counts_.mem_ops += mem;
    counts_.misses += misses;
    counts_.busy_cycles += cycles;
  }
}

des::Process Hwp::run_trace(std::uint64_t ops, wl::AccessPattern& pattern,
                            mem::SetAssocCache& cache) {
  std::uint64_t remaining = ops;
  while (remaining > 0) {
    // Compute run until the next load/store (geometric in the mix), then
    // one access resolved against the structural cache.
    const std::uint64_t gap =
        std::min(rng_.geometric(params_.ls_mix),
                 remaining > 0 ? remaining - 1 : 0);
    double cycles = static_cast<double>(gap);
    const bool miss =
        cache.access(pattern.next()) == mem::CacheOutcome::kMiss;
    cycles += params_.t_ch + (miss ? miss_penalty() : 0.0);
    co_await des::delay(sim_, cycles);
    counts_.ops += gap + 1;
    counts_.mem_ops += 1;
    counts_.misses += miss ? 1 : 0;
    counts_.busy_cycles += cycles;
    remaining -= gap + 1;
  }
}

double Hwp::observed_miss_rate() const {
  return counts_.mem_ops == 0 ? 0.0
                              : static_cast<double>(counts_.misses) /
                                    static_cast<double>(counts_.mem_ops);
}

}  // namespace pimsim::arch
