// Heavyweight processor model (paper Figure 2).
//
// The HWP issues one operation per cycle; a load/store goes through the
// cache (TCH cycles) and pays the main-memory penalty TMH on a miss
// (probability Pmiss).  Operations are executed in batches: the number of
// memory operations in a batch and the number of misses among them are
// sampled from the exact binomial distributions, which is statistically
// identical to per-operation Bernoulli draws but keeps event counts small
// enough to run the paper's 10^8-operation points in milliseconds.
#pragma once

#include <cstdint>

#include "arch/params.hpp"
#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "memory/cache.hpp"
#include "memory/memory_system.hpp"
#include "workload/access_pattern.hpp"

namespace pimsim::arch {

/// Cumulative operation accounting for one processor model.
struct OpCounts {
  std::uint64_t ops = 0;       ///< operations completed
  std::uint64_t mem_ops = 0;   ///< of which loads/stores
  std::uint64_t misses = 0;    ///< of which cache misses (HWP only)
  double busy_cycles = 0.0;    ///< cycles spent executing
};

class Hwp {
 public:
  /// `memory == nullptr` charges the Table 1 constants directly; with a
  /// MemorySystem the miss penalty is read through the seam
  /// (zero_load_latency(kHwpMiss)).  The HWP is the memory's only host-
  /// side accessor, so by the zero-load degeneracy guarantee its charging
  /// stays batched — a contended backend cannot queue against it.
  Hwp(des::Simulation& sim, const SystemParams& params, Rng rng,
      std::uint64_t batch_ops = 100'000,
      const mem::MemorySystem* memory = nullptr);

  /// Coroutine that executes `ops` operations, advancing simulated time.
  /// Cache misses are statistical (Bernoulli Pmiss, batched exactly).
  [[nodiscard]] des::Process run(std::uint64_t ops);

  /// Trace-driven variant: every load/store walks `pattern` through the
  /// structural `cache`, so the miss rate *emerges* from the access
  /// stream instead of being assumed.  Per-operation granularity — use
  /// moderate op counts.  The observed miss rate is available afterwards
  /// via observed_miss_rate().
  [[nodiscard]] des::Process run_trace(std::uint64_t ops,
                                       wl::AccessPattern& pattern,
                                       mem::SetAssocCache& cache);

  [[nodiscard]] const OpCounts& counts() const { return counts_; }
  [[nodiscard]] const SystemParams& params() const { return params_; }
  /// Observed cache miss rate over all memory operations so far.
  [[nodiscard]] double observed_miss_rate() const;

 private:
  /// Main-memory miss penalty, read through the seam when one is wired.
  [[nodiscard]] double miss_penalty() const {
    return memory_ == nullptr
               ? params_.t_mh
               : memory_->zero_load_latency(mem::AccessKind::kHwpMiss);
  }

  des::Simulation& sim_;
  SystemParams params_;
  Rng rng_;
  std::uint64_t batch_ops_;
  const mem::MemorySystem* memory_;
  OpCounts counts_;
};

}  // namespace pimsim::arch
