// A PIM chip: many LWP/memory-macro pairs on one die (paper Sections 2.1
// and 3.1).  This model ties the DRAM-level substrate (mem::DramMacroSpec)
// to the Table 1 system abstraction: the lightweight memory access time
// TML and the chip's aggregate bandwidth both *derive* from the row-buffer
// geometry and timing instead of being free parameters.
//
// "The memory capacity on a single PIM chip may be partitioned into many
//  separate memory banks, each with its own arithmetic and control logic.
//  Each such bank, or node, is capable of independent and concurrent
//  action..."
#pragma once

#include <cstddef>

#include "arch/params.hpp"
#include "memory/dram.hpp"

namespace pimsim::arch {

/// Physical description of one PIM chip.
struct PimChipSpec {
  mem::DramMacroSpec macro;        ///< per-node DRAM macro
  std::size_t nodes = 32;          ///< LWP/macro pairs on the die
  double lwp_cycle_ns = 5.0;       ///< LWP clock (Table 1: TLcycle = 5 ns)
  std::size_t macro_rows = 4096;   ///< rows per macro (capacity knob)

  void validate() const;

  /// Memory capacity of one node in bytes (rows * row_bits / 8).
  [[nodiscard]] std::size_t node_capacity_bytes() const;
  /// Total chip capacity in bytes.
  [[nodiscard]] std::size_t chip_capacity_bytes() const;

  /// Chip-level peak on-chip bandwidth in Gbit/s (all nodes draining
  /// their row buffers concurrently) — the paper's "> 1 Tbit/s" figure.
  [[nodiscard]] double peak_bandwidth_gbps() const;

  /// LWP memory access time implied by the macro timing (row activation
  /// plus one wide-word page-out), in nanoseconds.
  [[nodiscard]] double lwp_access_ns() const;

  /// Derives the Table 1 machine parameters for a host with the given
  /// cycle time, keeping the host-side cache parameters of `host_side`:
  /// TLcycle and TML come from this chip's physics.
  [[nodiscard]] SystemParams derive_params(const SystemParams& host_side) const;

  /// Peak operation rate of the chip in Gops/s: one op per LWP cycle per
  /// node, de-rated by the fraction of time lost to memory stalls at the
  /// given load/store mix (contention-free bound).
  [[nodiscard]] double peak_gops(double ls_mix) const;
};

}  // namespace pimsim::arch
