// Table 1 of the paper: "Parametric Assumptions and Metrics".
//
//   Parameter  Description                               Experimental Value
//   W          total work = WH + WL                      100,000,000 operations
//   %WH        percent heavyweight work                  varied 0% to 100%
//   %WL        percent lightweight work                  varied 0% to 100%
//   THcycle    heavyweight cycle time                    1 nsec
//   TLcycle    lightweight cycle time                    5 nsec
//   TMH        heavyweight memory access time            90 cycles
//   TCH        heavyweight cache access time              2 cycles
//   TML        lightweight memory access time            30 cycles
//   Pmiss      heavyweight cache miss rate               0.1
//   mix l/s    instruction mix for load and store ops    0.30
//
// All times are normalized to HWP cycles ("the units of cycles refers to
// HWP cycles to normalize all times to the same base level").
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace pimsim::arch {

/// The machine-side parameters of the paper's Section 3 model.
struct SystemParams {
  double th_cycle_ns = 1.0;  ///< THcycle: HWP cycle time in nanoseconds
  double tl_cycle = 5.0;     ///< TLcycle: LWP cycle time, in HWP cycles
  double t_mh = 90.0;        ///< TMH: HWP memory access time (miss penalty)
  double t_ch = 2.0;         ///< TCH: HWP cache access time
  double t_ml = 30.0;        ///< TML: LWP memory access time, in HWP cycles
  double p_miss = 0.1;       ///< Pmiss: HWP cache miss rate
  double ls_mix = 0.30;      ///< mix l/s: fraction of ops that load/store

  /// Throws ConfigError on out-of-range values.
  void validate() const;

  /// The exact Table 1 values (also the default construction).
  [[nodiscard]] static SystemParams table1() { return SystemParams{}; }

  /// Mean HWP cycles per operation:
  ///   1 + mix * (TCH - 1 + Pmiss * TMH)
  /// (every op issues in 1 cycle; a load/store replaces that with a cache
  /// access and pays the memory penalty on a miss).
  [[nodiscard]] double hwp_cost_per_op() const;

  /// Mean HWP cycles per LWP operation:
  ///   TLcycle + mix * (TML - TLcycle)
  /// (an LWP op takes an LWP cycle; a load/store takes the row-buffer
  /// access time instead).
  [[nodiscard]] double lwp_cost_per_op() const;

  /// The paper's third orthogonal parameter:
  ///   NB = lwp_cost_per_op / hwp_cost_per_op.
  /// For N > NB PIM-augmented time is always <= the control's.
  [[nodiscard]] double nb() const;

  /// HWP clock for converting cycles to wall time.
  [[nodiscard]] ClockSpec clock() const { return ClockSpec{th_cycle_ns}; }
};

}  // namespace pimsim::arch
