#include "arch/mtlwp.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "workload/workload.hpp"

namespace pimsim::arch {

MultithreadedLwp::MultithreadedLwp(des::Simulation& sim,
                                   const SystemParams& params, Rng rng,
                                   std::size_t threads, double switch_cost,
                                   const mem::MemorySystem* memory,
                                   std::size_t node)
    : sim_(sim), params_(params), rng_(rng), threads_(threads),
      switch_cost_(switch_cost), memory_(memory), node_(node),
      pipeline_(sim, 1, "mtlwp.pipeline") {
  params_.validate();
  require(threads >= 1, "MultithreadedLwp: need at least one thread");
  require(switch_cost >= 0.0,
          "MultithreadedLwp: switch cost must be non-negative");
  require(params_.ls_mix > 0.0,
          "MultithreadedLwp: multithreading needs memory accesses (mix > 0)");
}

des::Process MultithreadedLwp::run(std::uint64_t ops) {
  const auto shares = wl::split_evenly(ops, threads_);
  auto latch = std::make_unique<des::CountdownLatch>(sim_, threads_);
  for (std::size_t t = 0; t < threads_; ++t) {
    sim_.spawn(thread_body(shares[t], rng_.split(7000 + t), *latch));
  }
  co_await latch->wait();
}

des::Process MultithreadedLwp::thread_body(std::uint64_t ops, Rng rng,
                                           des::CountdownLatch& done) {
  std::uint64_t remaining = ops;
  while (remaining > 0) {
    co_await pipeline_.acquire();
    if (threads_ >= 2 && switch_cost_ > 0.0) {
      co_await des::delay(sim_, switch_cost_);
      counts_.busy_cycles += switch_cost_;
    }
    // Compute run until the next memory access (geometric in the mix).
    const std::uint64_t gap = std::min(rng.geometric(params_.ls_mix),
                                       remaining > 0 ? remaining - 1 : 0);
    if (gap > 0) {
      const double cycles = static_cast<double>(gap) * params_.tl_cycle;
      co_await des::delay(sim_, cycles);
      counts_.ops += gap;
      counts_.busy_cycles += cycles;
      remaining -= gap;
    }
    // The access itself: issue, then stall *off* the pipeline so other
    // threads can run (the row-buffer access is overlappable).
    pipeline_.release();
    if (memory_ != nullptr && memory_->contended()) {
      // Node-interleaved stride: the threads share the node's row buffer.
      const std::uint64_t addr =
          static_cast<std::uint64_t>(node_) * (std::uint64_t{1} << 32) +
          next_offset_;
      next_offset_ += 32;  // one wide word (word_bits / 8)
      co_await mem::AccessAwaitable{*memory_, sim_, node_, addr,
                                    mem::AccessKind::kLwpRow};
    } else {
      co_await des::delay(sim_,
                          memory_ == nullptr
                              ? params_.t_ml
                              : memory_->zero_load_latency(
                                    mem::AccessKind::kLwpRow));
    }
    counts_.ops += 1;
    counts_.mem_ops += 1;
    remaining -= 1;
  }
  done.count_down();
}

}  // namespace pimsim::arch
