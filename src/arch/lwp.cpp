#include "arch/lwp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pimsim::arch {

namespace {
/// Address stride of the contended path's access stream: one wide word
/// (word_bits / 8 bytes at the default geometry), so consecutive accesses
/// walk the row buffer and the open-row hit rate reflects spatial
/// locality instead of being degenerate.
constexpr std::uint64_t kAccessStrideBytes = 32;
/// Each node streams through its own address region.
constexpr std::uint64_t kNodeRegionBytes = std::uint64_t{1} << 32;
}  // namespace

Lwp::Lwp(des::Simulation& sim, const SystemParams& params, Rng rng,
         std::uint64_t batch_ops, const mem::MemorySystem* memory,
         std::size_t node)
    : sim_(sim), params_(params), rng_(rng), batch_ops_(batch_ops),
      memory_(memory), node_(node) {
  params_.validate();
  require(batch_ops > 0, "Lwp: batch_ops must be positive");
}

des::Process Lwp::run(std::uint64_t ops) {
  return memory_ != nullptr && memory_->contended() ? run_contended(ops)
                                                    : run_batched(ops);
}

des::Process Lwp::run_batched(std::uint64_t ops) {
  std::uint64_t remaining = ops;
  while (remaining > 0) {
    const std::uint64_t batch = std::min(remaining, batch_ops_);
    remaining -= batch;

    const std::uint64_t mem = rng_.binomial(batch, params_.ls_mix);
    const double cycles = static_cast<double>(batch - mem) * params_.tl_cycle +
                          static_cast<double>(mem) * row_latency();
    co_await des::delay(sim_, cycles);

    counts_.ops += batch;
    counts_.mem_ops += mem;
    counts_.busy_cycles += cycles;
  }
}

des::Process Lwp::run_contended(std::uint64_t ops) {
  // Per-access path: compute runs are still aggregated (they cannot
  // conflict), but each memory access is issued through the seam, where
  // it queues at its home bank behind other accessors.
  std::uint64_t addr = static_cast<std::uint64_t>(node_) * kNodeRegionBytes;
  std::uint64_t remaining = ops;
  while (remaining > 0) {
    // Length of the compute run until the next memory access.
    const std::uint64_t gap = rng_.geometric(params_.ls_mix);
    const std::uint64_t compute = std::min(gap, remaining);
    if (compute > 0) {
      co_await des::delay(sim_, static_cast<double>(compute) * params_.tl_cycle);
      counts_.ops += compute;
      counts_.busy_cycles += static_cast<double>(compute) * params_.tl_cycle;
      remaining -= compute;
    }
    if (remaining == 0) break;

    const SimTime start = sim_.now();
    co_await mem::AccessAwaitable{*memory_, sim_, node_, addr,
                                  mem::AccessKind::kLwpRow};
    addr += kAccessStrideBytes;
    counts_.ops += 1;
    counts_.mem_ops += 1;
    counts_.busy_cycles += sim_.now() - start;  // includes bank queueing
    remaining -= 1;
  }
}

}  // namespace pimsim::arch
