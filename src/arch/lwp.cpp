#include "arch/lwp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pimsim::arch {

Lwp::Lwp(des::Simulation& sim, const SystemParams& params, Rng rng,
         std::uint64_t batch_ops, des::Resource* memory_port)
    : sim_(sim), params_(params), rng_(rng), batch_ops_(batch_ops),
      memory_port_(memory_port) {
  params_.validate();
  require(batch_ops > 0, "Lwp: batch_ops must be positive");
}

des::Process Lwp::run(std::uint64_t ops) {
  return memory_port_ == nullptr ? run_batched(ops) : run_with_port(ops);
}

des::Process Lwp::run_batched(std::uint64_t ops) {
  std::uint64_t remaining = ops;
  while (remaining > 0) {
    const std::uint64_t batch = std::min(remaining, batch_ops_);
    remaining -= batch;

    const std::uint64_t mem = rng_.binomial(batch, params_.ls_mix);
    const double cycles = static_cast<double>(batch - mem) * params_.tl_cycle +
                          static_cast<double>(mem) * params_.t_ml;
    co_await des::delay(sim_, cycles);

    counts_.ops += batch;
    counts_.mem_ops += mem;
    counts_.busy_cycles += cycles;
  }
}

des::Process Lwp::run_with_port(std::uint64_t ops) {
  // Per-access path: compute runs are still aggregated (they cannot
  // conflict), but each memory access holds the shared port for TML.
  std::uint64_t remaining = ops;
  while (remaining > 0) {
    // Length of the compute run until the next memory access.
    const std::uint64_t gap = rng_.geometric(params_.ls_mix);
    const std::uint64_t compute = std::min(gap, remaining);
    if (compute > 0) {
      co_await des::delay(sim_, static_cast<double>(compute) * params_.tl_cycle);
      counts_.ops += compute;
      counts_.busy_cycles += static_cast<double>(compute) * params_.tl_cycle;
      remaining -= compute;
    }
    if (remaining == 0) break;

    const SimTime start = sim_.now();
    co_await memory_port_->acquire();
    co_await des::delay(sim_, params_.t_ml);
    memory_port_->release();
    counts_.ops += 1;
    counts_.mem_ops += 1;
    counts_.busy_cycles += sim_.now() - start;  // includes port queueing
    remaining -= 1;
  }
}

}  // namespace pimsim::arch
