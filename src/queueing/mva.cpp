#include "queueing/mva.hpp"

#include "common/error.hpp"

namespace pimsim::queueing {

MvaResult mva(const std::vector<Station>& stations, std::size_t customers) {
  require(!stations.empty(), "mva: need at least one station");
  require(customers >= 1, "mva: need at least one customer");
  for (const auto& s : stations) {
    require(s.service >= 0.0, "mva: service times must be non-negative");
    require(s.visits >= 0.0, "mva: visit ratios must be non-negative");
  }

  const std::size_t m = stations.size();
  std::vector<double> queue(m, 0.0);  // Q_i(n-1)
  MvaResult out;
  out.residence.assign(m, 0.0);

  for (std::size_t n = 1; n <= customers; ++n) {
    double total = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& st = stations[i];
      const double r = st.kind == Station::Kind::kQueueing
                           ? st.service * (1.0 + queue[i])
                           : st.service;
      out.residence[i] = st.visits * r;
      total += out.residence[i];
    }
    ensure(total > 0.0, "mva: zero total residence time");
    const double x = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < m; ++i) {
      queue[i] = x * out.residence[i];
    }
    out.throughput = x;
    out.cycle_time = total;
  }

  out.queue_length = queue;
  out.utilization.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    out.utilization[i] =
        out.throughput * stations[i].visits * stations[i].service;
  }
  return out;
}

}  // namespace pimsim::queueing
