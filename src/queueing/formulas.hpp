// Closed-form steady-state results for Markovian queues.
//
// These formulas serve as ground truth for validating the discrete-event
// kernel (tests compare simulated M/M/1 and M/M/c stations against them),
// mirroring how one would qualify a commercial tool like SES/Workbench
// before trusting the paper's models.
#pragma once

#include <cstddef>

namespace pimsim::queueing {

/// Offered load rho = lambda / (c * mu); must be < 1 for stability.
[[nodiscard]] double offered_load(double lambda, double mu, std::size_t servers);

/// M/M/1 mean number in system: rho / (1 - rho).
[[nodiscard]] double mm1_mean_in_system(double lambda, double mu);
/// M/M/1 mean response (sojourn) time: 1 / (mu - lambda).
[[nodiscard]] double mm1_mean_response(double lambda, double mu);
/// M/M/1 mean waiting time in queue: rho / (mu - lambda).
[[nodiscard]] double mm1_mean_wait(double lambda, double mu);
/// M/M/1 mean queue length (excluding in service): rho^2 / (1 - rho).
[[nodiscard]] double mm1_mean_queue_length(double lambda, double mu);

/// Erlang-C: probability an arrival must wait in an M/M/c queue.
[[nodiscard]] double erlang_c(double lambda, double mu, std::size_t servers);
/// M/M/c mean waiting time in queue.
[[nodiscard]] double mmc_mean_wait(double lambda, double mu, std::size_t servers);
/// M/M/c mean response time.
[[nodiscard]] double mmc_mean_response(double lambda, double mu,
                                       std::size_t servers);

/// M/G/1 mean waiting time (Pollaczek-Khinchine):
///   Wq = lambda * E[S^2] / (2 * (1 - rho)),
/// with E[S^2] = variance + mean^2.
[[nodiscard]] double mg1_mean_wait(double lambda, double mean_service,
                                   double service_variance);

/// M/G/1 mean response time: Wq + E[S].
[[nodiscard]] double mg1_mean_response(double lambda, double mean_service,
                                       double service_variance);

/// M/D/1 (deterministic service) mean waiting time: half the M/M/1 wait.
[[nodiscard]] double md1_mean_wait(double lambda, double service);

}  // namespace pimsim::queueing
