// Open-network harness: a Poisson source feeding a service center.
//
// Used by the validation suite to qualify the DES kernel against the
// M/M/1 and M/M/c closed forms in formulas.hpp, and available to clients
// as a building block for quick capacity studies.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace pimsim::queueing {

/// Configuration of one open M/M/c experiment.
struct OpenNetworkSpec {
  double lambda = 0.5;        ///< arrival rate (jobs per cycle)
  double mu = 1.0;            ///< per-server service rate (jobs per cycle)
  std::size_t servers = 1;    ///< c
  std::uint64_t jobs = 20000; ///< number of arrivals to generate
  std::uint64_t warmup_jobs = 2000;  ///< departures ignored for statistics
  std::uint64_t seed = 1;
};

/// Steady-state estimates measured from one run.
struct OpenNetworkResult {
  double mean_response = 0.0;      ///< sojourn time per job
  double mean_wait = 0.0;          ///< queueing delay per job
  double utilization = 0.0;        ///< busy-server fraction
  double mean_queue_length = 0.0;  ///< time-average queue length
  std::uint64_t completed = 0;     ///< jobs measured (post-warmup)
};

/// Runs the open network to completion and reports steady-state estimates.
[[nodiscard]] OpenNetworkResult run_open_network(const OpenNetworkSpec& spec);

}  // namespace pimsim::queueing
