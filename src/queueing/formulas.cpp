#include "queueing/formulas.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pimsim::queueing {

namespace {
void check_stable(double lambda, double mu, std::size_t servers) {
  require(lambda > 0.0 && mu > 0.0, "queueing: rates must be positive");
  require(servers > 0, "queueing: need at least one server");
  require(lambda < mu * static_cast<double>(servers),
          "queueing: unstable queue (lambda >= c*mu)");
}
}  // namespace

double offered_load(double lambda, double mu, std::size_t servers) {
  check_stable(lambda, mu, servers);
  return lambda / (mu * static_cast<double>(servers));
}

double mm1_mean_in_system(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  const double rho = lambda / mu;
  return rho / (1.0 - rho);
}

double mm1_mean_response(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  return 1.0 / (mu - lambda);
}

double mm1_mean_wait(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  return (lambda / mu) / (mu - lambda);
}

double mm1_mean_queue_length(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  const double rho = lambda / mu;
  return rho * rho / (1.0 - rho);
}

double erlang_c(double lambda, double mu, std::size_t servers) {
  check_stable(lambda, mu, servers);
  const double a = lambda / mu;  // offered traffic in Erlangs
  const double c = static_cast<double>(servers);
  // Sum_{k=0}^{c-1} a^k / k!  computed incrementally to avoid overflow.
  double term = 1.0;  // a^0 / 0!
  double sum = 1.0;
  for (std::size_t k = 1; k < servers; ++k) {
    term *= a / static_cast<double>(k);
    sum += term;
  }
  const double ac_over_cfact = term * a / c;  // a^c / c!
  const double tail = ac_over_cfact * (c / (c - a));
  return tail / (sum + tail);
}

double mmc_mean_wait(double lambda, double mu, std::size_t servers) {
  const double pw = erlang_c(lambda, mu, servers);
  const double c = static_cast<double>(servers);
  return pw / (c * mu - lambda);
}

double mmc_mean_response(double lambda, double mu, std::size_t servers) {
  return mmc_mean_wait(lambda, mu, servers) + 1.0 / mu;
}

double mg1_mean_wait(double lambda, double mean_service,
                     double service_variance) {
  require(lambda > 0.0 && mean_service > 0.0 && service_variance >= 0.0,
          "mg1_mean_wait: bad parameters");
  const double rho = lambda * mean_service;
  require(rho < 1.0, "mg1_mean_wait: unstable queue (rho >= 1)");
  const double second_moment = service_variance + mean_service * mean_service;
  return lambda * second_moment / (2.0 * (1.0 - rho));
}

double mg1_mean_response(double lambda, double mean_service,
                         double service_variance) {
  return mg1_mean_wait(lambda, mean_service, service_variance) + mean_service;
}

double md1_mean_wait(double lambda, double service) {
  return mg1_mean_wait(lambda, service, 0.0);
}

}  // namespace pimsim::queueing
