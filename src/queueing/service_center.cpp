#include "queueing/service_center.hpp"

#include "common/error.hpp"

namespace pimsim::queueing {

ServiceCenter::ServiceCenter(des::Simulation& sim, std::size_t servers,
                             ServiceTimeFn service_time, std::string name)
    : sim_(sim), servers_(sim, servers, name + ".servers"),
      service_time_(std::move(service_time)), name_(std::move(name)) {
  require(static_cast<bool>(service_time_),
          "ServiceCenter '" + name_ + "': service time sampler required");
}

void ServiceCenter::submit(Job job) { sim_.spawn(serve(job)); }

des::Process ServiceCenter::serve(Job job) {
  const SimTime arrived = sim_.now();
  co_await servers_.acquire();
  const Cycles demand = service_time_();
  ensure(demand >= 0.0, "ServiceCenter '" + name_ + "': negative service time");
  co_await des::delay(sim_, demand);
  servers_.release();
  ++completed_;
  response_.add(sim_.now() - arrived);
  if (on_departure_) on_departure_(job, sim_.now());
}

DelayCenter::DelayCenter(des::Simulation& sim, ServiceTimeFn service_time,
                         std::string name)
    : sim_(sim), service_time_(std::move(service_time)), name_(std::move(name)) {
  require(static_cast<bool>(service_time_),
          "DelayCenter '" + name_ + "': service time sampler required");
}

void DelayCenter::submit(Job job) { sim_.spawn(serve(job)); }

des::Process DelayCenter::serve(Job job) {
  const SimTime arrived = sim_.now();
  const Cycles demand = service_time_();
  ensure(demand >= 0.0, "DelayCenter '" + name_ + "': negative service time");
  co_await des::delay(sim_, demand);
  ++completed_;
  response_.add(sim_.now() - arrived);
  if (on_departure_) on_departure_(job, sim_.now());
}

}  // namespace pimsim::queueing
