// Transaction service stations in the SES/Workbench style.
//
// A ServiceCenter is a c-server FCFS station: submitted jobs queue for a
// server, hold it for a sampled service time, and depart.  A DelayCenter
// is an infinite-server ("pure delay") station.  Both collect the standard
// steady-state observables.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"

namespace pimsim::queueing {

/// A unit of work flowing through the network.
struct Job {
  std::uint64_t id = 0;
  SimTime created_at = 0.0;
};

/// Samples a service demand in cycles.
using ServiceTimeFn = std::function<Cycles()>;
/// Invoked when a job departs a station.
using DepartureFn = std::function<void(const Job&, SimTime departed_at)>;

/// FCFS station with `servers` identical servers.
class ServiceCenter {
 public:
  ServiceCenter(des::Simulation& sim, std::size_t servers,
                ServiceTimeFn service_time, std::string name = "center");

  /// Enqueues a job; it departs after queueing + service.
  void submit(Job job);

  /// Departure hook (e.g. to chain stations or record response times).
  void set_on_departure(DepartureFn fn) { on_departure_ = std::move(fn); }

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] double utilization() const { return servers_.utilization(); }
  [[nodiscard]] double mean_queue_length() const {
    return servers_.mean_queue_length();
  }
  /// Waiting time in queue (excludes service).
  [[nodiscard]] const RunningStats& wait_stats() const {
    return servers_.wait_stats();
  }
  /// Sojourn time (queue + service) per job.
  [[nodiscard]] const RunningStats& response_stats() const { return response_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  des::Process serve(Job job);

  des::Simulation& sim_;
  des::Resource servers_;
  ServiceTimeFn service_time_;
  DepartureFn on_departure_;
  RunningStats response_;
  std::uint64_t completed_ = 0;
  std::string name_;
};

/// Infinite-server delay station: every job is served immediately.
class DelayCenter {
 public:
  DelayCenter(des::Simulation& sim, ServiceTimeFn service_time,
              std::string name = "delay");

  void submit(Job job);
  void set_on_departure(DepartureFn fn) { on_departure_ = std::move(fn); }

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] const RunningStats& response_stats() const { return response_; }

 private:
  des::Process serve(Job job);

  des::Simulation& sim_;
  ServiceTimeFn service_time_;
  DepartureFn on_departure_;
  RunningStats response_;
  std::uint64_t completed_ = 0;
  std::string name_;
};

}  // namespace pimsim::queueing
