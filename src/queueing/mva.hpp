// Exact Mean Value Analysis (MVA) for single-class closed queueing
// networks: N customers circulating through FIFO queueing stations and
// pure-delay (infinite-server) stations.
//
// This is the classical recursion (Reiser & Lavenberg):
//   R_i(n) = S_i * (1 + Q_i(n-1))   queueing station
//   R_i(n) = S_i                    delay station
//   X(n)   = n / sum_i V_i R_i(n)
//   Q_i(n) = X(n) * V_i * R_i(n)
//
// pimsim uses it to model a parcel node *exactly at the saturation knee*,
// where the linear/saturated two-regime model of parcel_model.hpp is
// optimistic: the node's P parcel contexts are the customers, the
// processor is a queueing station, and the network round trip is a delay
// station.
#pragma once

#include <cstddef>
#include <vector>

namespace pimsim::queueing {

/// One station of a closed network.
struct Station {
  enum class Kind { kQueueing, kDelay } kind = Kind::kQueueing;
  double service = 1.0;  ///< mean service time per visit, S_i
  double visits = 1.0;   ///< visit ratio per circulation, V_i
};

/// Steady-state solution for a population of `customers`.
struct MvaResult {
  double throughput = 0.0;               ///< circulations per time unit, X
  double cycle_time = 0.0;               ///< mean time per circulation
  std::vector<double> residence;         ///< V_i * R_i per station
  std::vector<double> queue_length;      ///< Q_i per station
  std::vector<double> utilization;       ///< X * V_i * S_i (queueing only)
};

/// Exact MVA; throws ConfigError on empty/invalid inputs.
[[nodiscard]] MvaResult mva(const std::vector<Station>& stations,
                            std::size_t customers);

}  // namespace pimsim::queueing
