#include "queueing/network.hpp"

#include <memory>

#include "common/error.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "queueing/service_center.hpp"

namespace pimsim::queueing {

namespace {

/// Poisson job source: exponential interarrival gaps at rate lambda.
des::Process poisson_source(des::Simulation& sim, ServiceCenter& center,
                            Rng& rng, double lambda, std::uint64_t jobs) {
  for (std::uint64_t i = 0; i < jobs; ++i) {
    co_await des::delay(sim, rng.exponential(1.0 / lambda));
    center.submit(Job{i, sim.now()});
  }
}

}  // namespace

OpenNetworkResult run_open_network(const OpenNetworkSpec& spec) {
  require(spec.lambda > 0.0 && spec.mu > 0.0,
          "run_open_network: rates must be positive");
  require(spec.warmup_jobs < spec.jobs,
          "run_open_network: warmup must be smaller than total jobs");

  des::Simulation sim;
  Rng arrivals(spec.seed, /*stream_id=*/1);
  Rng services(spec.seed, /*stream_id=*/2);

  ServiceCenter center(
      sim, spec.servers,
      [&services, mu = spec.mu]() { return services.exponential(1.0 / mu); },
      "mmc");

  RunningStats response;
  RunningStats wait;
  std::uint64_t measured = 0;
  center.set_on_departure([&](const Job& job, double departed) {
    if (job.id < spec.warmup_jobs) return;
    ++measured;
    response.add(departed - job.created_at);
  });

  sim.spawn(poisson_source(sim, center, arrivals, spec.lambda, spec.jobs));
  sim.run();

  OpenNetworkResult out;
  out.mean_response = response.mean();
  // Waiting time from the center's own queue accounting (all jobs); the
  // response estimate above is warmup-filtered, which is what tests use.
  out.mean_wait = center.wait_stats().mean();
  out.utilization = center.utilization();
  out.mean_queue_length = center.mean_queue_length();
  out.completed = measured;
  return out;
}

}  // namespace pimsim::queueing
