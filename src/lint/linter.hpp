// pimsim-lint: the determinism static-analysis pass.
//
// Every figure golden, CI `cmp` gate, and sweep fingerprint in this repo
// rests on one contract: bitwise-identical output at any sweep_threads /
// jobs count.  `pimsim verify` tells you *that* the contract broke; this
// linter catches the classes of bugs that break it at the source line,
// before they ever reach a fingerprint:
//
//   unordered-container  declaring std::unordered_map/std::unordered_set
//                        without a lookup-only justification — hash- or
//                        pointer-ordered traversal leaks into results.
//   unordered-iter       actually iterating one (range-for or .begin())
//                        — includes the floating-point accumulation
//                        trap, where a sum's rounding depends on hash
//                        order.
//   raw-entropy          rand()/srand()/std::random_device/time()/
//                        system_clock outside src/common/rng.* — all
//                        randomness must flow through seeded Rng
//                        streams, all timestamps through sim.now().
//                        (steady_clock wall-time *measurement* is fine;
//                        it never feeds simulation results.)
//   mutable-static       mutable static / global / thread_local state —
//                        order-dependent across translation units and a
//                        data race under SweepRunner.
//   const-cast           const_cast — hides mutation from the type
//                        system, which is how "observationally const"
//                        state changes sneak past review and TSan.
//   unguarded-trace      a `.trace(...)` / `.metrics()` member call in
//                        src/ without a tracing_enabled() /
//                        metrics_enabled() guard on the same line or the
//                        two lines above — argument evaluation (label
//                        interning, registry lookups) is not free, so
//                        the off path must stay one predicted branch
//                        (src/obs/ and the Tracer itself are exempt).
//
// Suppressions: a comment of the form `// lint:allow(const-cast): why
// it is safe` — any rule id, comma-separate several — on the same line
// or the line directly above silences one finding; the reason is
// mandatory (an unexplained allow is itself a finding).  The scanner is
// token-aware (comments, string and char literals are stripped before
// matching) but deliberately not a compiler: it has no cross-file or
// cross-variable dataflow, so copying an unordered container into a
// local and iterating the copy escapes it.  docs/DETERMINISM.md has the
// full rationale per rule.
#pragma once

#include <string>
#include <vector>

namespace pimsim::lint {

/// One rule violation at a source line.
struct Finding {
  std::string file;     ///< path label as given to lint_source
  int line = 0;         ///< 1-based line number
  std::string rule;     ///< rule id, e.g. "unordered-iter"
  std::string message;  ///< human-readable explanation
};

/// All rule ids, for --list-rules and suppression validation.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Lints one translation unit's text.  `path` is used both as the label
/// on findings and for path-based rule policy (raw-entropy is exempt in
/// src/common/rng.*).  Deterministic: findings are in line order.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& content);

/// Renders a finding as "file:line: [rule] message".
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace pimsim::lint
