#include "lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>

namespace pimsim::lint {
namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// The source with comments and string/char literals blanked to spaces
/// (newlines preserved), so token scans cannot match inside either, plus
/// the `lint:allow` annotations harvested from the comments.
struct Masked {
  std::string text;
  std::vector<std::size_t> line_starts;               // offset of line i (0-based)
  std::vector<std::vector<std::string>> line_allows;  // rules allowed per line
  std::vector<Finding> allow_findings;                // malformed annotations

  [[nodiscard]] int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());  // 1-based
  }
};

/// Parses every allow directive (rule list + mandatory reason, e.g.
/// `lint:allow(raw-entropy,const-cast): replaying a captured trace`)
/// inside one comment,
/// recording the allowed rules on `line`.  A missing reason or an unknown
/// rule id is itself a finding: an unexplained suppression is exactly the
/// kind of silent determinism debt this pass exists to surface.
void parse_allows(const std::string& comment, const std::string& path,
                  int line, Masked& out) {
  static const std::string kTag = "lint:allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    const std::size_t open = pos + kTag.size() - 1;
    const std::size_t close = comment.find(')', open);
    pos = open;
    if (close == std::string::npos) {
      out.allow_findings.push_back(
          {path, line, "bad-allow", "unclosed lint:allow(...)"});
      return;
    }
    // Split the rule list on commas.
    std::vector<std::string> rules;
    std::string name;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!name.empty()) rules.push_back(name);
        name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        name += c;
      }
    }
    const auto& known = rule_ids();
    bool ok = !rules.empty();
    for (const std::string& r : rules) {
      if (std::find(known.begin(), known.end(), r) == known.end()) {
        out.allow_findings.push_back(
            {path, line, "bad-allow",
             "unknown rule '" + r + "' in lint:allow (see --list-rules)"});
        ok = false;
      }
    }
    // Require a justification after the closing paren: ":" or "--" then text.
    std::size_t after = close + 1;
    while (after < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[after]))) {
      ++after;
    }
    bool has_reason = false;
    if (after < comment.size() &&
        (comment[after] == ':' ||
         (comment[after] == '-' && after + 1 < comment.size() &&
          comment[after + 1] == '-'))) {
      std::size_t text_at = after + (comment[after] == ':' ? 1 : 2);
      while (text_at < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[text_at]))) {
        ++text_at;
      }
      has_reason = text_at < comment.size();
    }
    if (!has_reason) {
      out.allow_findings.push_back(
          {path, line, "bad-allow",
           "lint:allow needs a justification: lint:allow(rule): why"});
      ok = false;
    }
    if (ok) {
      auto& allowed = out.line_allows[static_cast<std::size_t>(line - 1)];
      allowed.insert(allowed.end(), rules.begin(), rules.end());
    }
    pos = close;
  }
}

Masked mask(const std::string& path, const std::string& src) {
  Masked out;
  out.text.assign(src.size(), ' ');
  out.line_starts.push_back(0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') {
      out.text[i] = '\n';
      out.line_starts.push_back(i + 1);
    }
  }
  out.line_allows.resize(out.line_starts.size());

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string comment;       // accumulates the current comment's text
  int comment_line = 0;      // line the current comment started on
  std::string raw_delim;     // raw-string closing delimiter ")delim""
  const auto flush_comment = [&] {
    if (!comment.empty()) parse_allows(comment, path, comment_line, out);
    comment.clear();
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = out.line_of(i);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = out.line_of(i);
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — the only literal form that can span
          // lines and contain unescaped quotes.
          if (i > 0 && src[i - 1] == 'R' &&
              (i < 2 || !is_ident(src[i - 2]))) {
            raw_delim.clear();
            raw_delim.push_back(')');
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(') raw_delim += src[j++];
            raw_delim += '"';
            i = j;  // consume through the opening '('
            state = State::kRaw;
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && !(i > 0 && is_ident(src[i - 1]))) {
          // Not a digit separator (1'000'000).
          state = State::kChar;
        } else if (c != '\n') {
          out.text[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          flush_comment();
          state = State::kCode;
        } else {
          comment += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          ++i;
        } else {
          comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (c == ')' && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  flush_comment();
  return out;
}

/// Whole-token occurrences of `word` in the masked text.
std::vector<std::size_t> token_occurrences(const std::string& text,
                                           const std::string& word) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = end;
  }
  return out;
}

bool on_preprocessor_line(const Masked& m, std::size_t offset) {
  const int line = m.line_of(offset);
  std::size_t i = m.line_starts[static_cast<std::size_t>(line - 1)];
  while (i < m.text.size() &&
         (m.text[i] == ' ' || m.text[i] == '\t')) {
    ++i;
  }
  return i < m.text.size() && m.text[i] == '#';
}

std::size_t skip_ws(const std::string& text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return i;
}

/// Offset just past the `>` matching the `<` at `open` (npos if unmatched).
std::size_t match_angle(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>' && --depth == 0) return i + 1;
    if (text[i] == ';' || text[i] == '{') break;  // clearly not a template
  }
  return std::string::npos;
}

struct Ruleset {
  const Masked& m;
  const std::string& path;
  std::vector<Finding>& findings;

  [[nodiscard]] bool allowed(const std::string& rule, int line) const {
    for (int l : {line, line - 1}) {
      if (l < 1 || l > static_cast<int>(m.line_allows.size())) continue;
      const auto& rules = m.line_allows[static_cast<std::size_t>(l - 1)];
      if (std::find(rules.begin(), rules.end(), rule) != rules.end()) {
        return true;
      }
    }
    return false;
  }

  void report(const std::string& rule, std::size_t offset,
              const std::string& message) const {
    const int line = m.line_of(offset);
    if (allowed(rule, line)) return;
    findings.push_back({path, line, rule, message});
  }
};

// --- const-cast ----------------------------------------------------------

void rule_const_cast(const Ruleset& r) {
  for (const std::size_t pos : token_occurrences(r.m.text, "const_cast")) {
    r.report("const-cast", pos,
             "const_cast hides mutation from the type system; use a mutable "
             "member or a non-const accessor");
  }
}

// --- raw-entropy ---------------------------------------------------------

void rule_raw_entropy(const Ruleset& r) {
  // All randomness flows through pimsim::Rng streams; rng.cpp/.hpp are
  // where the engine itself lives.
  if (r.path.find("src/common/rng.") != std::string::npos) return;
  struct Banned {
    const char* token;
    bool call_only;  // must be followed by '(' (avoids struct fields etc.)
  };
  static constexpr Banned kBanned[] = {
      {"rand", true},          {"srand", true},
      {"rand_r", true},        {"drand48", true},
      {"random_device", false}, {"system_clock", false},
      {"high_resolution_clock", false},
      {"time", true},          {"clock", true},
      {"gettimeofday", true},
  };
  for (const Banned& b : kBanned) {
    for (const std::size_t pos : token_occurrences(r.m.text, b.token)) {
      if (on_preprocessor_line(r.m, pos)) continue;
      const std::size_t end = pos + std::string(b.token).size();
      if (b.call_only) {
        const std::size_t after = skip_ws(r.m.text, end);
        if (after >= r.m.text.size() || r.m.text[after] != '(') continue;
        // Member calls (entry.time(), sim->time()) are fine; only the
        // global/std:: functions read ambient wall-clock state.
        std::size_t before = pos;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 r.m.text[before - 1]))) {
          --before;
        }
        if (before >= 1 && (r.m.text[before - 1] == '.')) continue;
        if (before >= 2 && r.m.text[before - 2] == '-' &&
            r.m.text[before - 1] == '>') {
          continue;
        }
        // A preceding identifier means a declaration (`SimTime time()`,
        // `ClockSpec clock()`), not a call — unless it is a statement
        // keyword (`return time(...)`).
        if (before >= 1 && is_ident(r.m.text[before - 1])) {
          std::size_t start = before;
          while (start > 0 && is_ident(r.m.text[start - 1])) --start;
          const std::string prev = r.m.text.substr(start, before - start);
          if (prev != "return" && prev != "co_return" && prev != "co_yield" &&
              prev != "else" && prev != "do") {
            continue;
          }
        }
      }
      r.report("raw-entropy", pos,
               std::string(b.token) +
                   " is nondeterministic input; derive randomness from a "
                   "seeded pimsim::Rng stream and time from sim.now()");
    }
  }
}

// --- mutable-static ------------------------------------------------------

void rule_mutable_static(const Ruleset& r) {
  std::vector<std::size_t> sites = token_occurrences(r.m.text, "static");
  for (const std::size_t pos : token_occurrences(r.m.text, "thread_local")) {
    sites.push_back(pos);
  }
  std::sort(sites.begin(), sites.end());
  for (const std::size_t pos : sites) {
    if (on_preprocessor_line(r.m, pos)) continue;
    // Examine the declaration up to its first ';', '=', or '{'.  A '('
    // first means a function (fine); 'const'/'constexpr'/'consteval'
    // before the terminator means immutable (fine).
    const std::size_t begin = pos + (r.m.text[pos] == 's' ? 6 : 12);
    bool immutable = false;
    bool function_like = false;
    std::size_t i = begin;
    std::string word;
    for (; i < r.m.text.size(); ++i) {
      const char c = r.m.text[i];
      if (is_ident(c)) {
        word += c;
        continue;
      }
      if (word == "const" || word == "constexpr" || word == "consteval" ||
          word == "constinit") {
        immutable = true;
      }
      word.clear();
      if (c == '(') {
        function_like = true;
        break;
      }
      if (c == ';' || c == '=' || c == '{') break;
    }
    if (word == "const" || word == "constexpr") immutable = true;
    if (immutable || function_like) continue;
    r.report("mutable-static", pos,
             "mutable static/thread_local state is initialization-order and "
             "thread-schedule dependent; pass state explicitly or mark it "
             "const/constexpr");
  }
}

// --- unordered containers ------------------------------------------------

void rule_unordered(const Ruleset& r) {
  // Pass 1: declarations.  Every unordered_map/unordered_set must carry a
  // lookup-only justification; collect the declared names for pass 2.
  std::set<std::string> names;
  for (const char* kind : {"unordered_map", "unordered_set"}) {
    for (const std::size_t pos : token_occurrences(r.m.text, kind)) {
      if (on_preprocessor_line(r.m, pos)) continue;  // #include <...>
      const std::size_t open = r.m.text.find('<', pos);
      std::size_t after = std::string::npos;
      if (open != std::string::npos && open < pos + std::string(kind).size() + 2) {
        after = match_angle(r.m.text, open);
      }
      // Extract the declared name: skip refs/pointers/cv to the first
      // identifier after the template arguments.
      if (after != std::string::npos) {
        std::size_t i = skip_ws(r.m.text, after);
        while (i < r.m.text.size() &&
               (r.m.text[i] == '&' || r.m.text[i] == '*')) {
          i = skip_ws(r.m.text, i + 1);
        }
        std::string word;
        while (i < r.m.text.size() && is_ident(r.m.text[i])) {
          word += r.m.text[i++];
        }
        if (word == "const") {
          i = skip_ws(r.m.text, i);
          word.clear();
          while (i < r.m.text.size() && is_ident(r.m.text[i])) {
            word += r.m.text[i++];
          }
        }
        if (!word.empty()) names.insert(word);
      }
      r.report("unordered-container", pos,
               std::string(kind) +
                   " orders elements by hash (and pointer keys by address): "
                   "justify lookup-only use with lint:allow, or use an "
                   "order-deterministic structure");
    }
  }

  // Pass 2: iteration over a name declared above.  Hash-ordered traversal
  // is how address-layout noise (ASLR, allocation order) reaches results
  // — including the FP-accumulation trap, where `sum += v` rounds
  // differently per visit order.
  const auto report_iter = [&](std::size_t offset, const std::string& name) {
    r.report("unordered-iter", offset,
             "iteration over unordered container '" + name +
                 "' visits elements in hash/pointer order; results and FP "
                 "accumulations inherit that order");
  };
  for (const std::string& name : names) {
    for (const std::size_t pos : token_occurrences(r.m.text, name)) {
      const std::size_t end = pos + name.size();
      // name.begin() / name.cbegin() / name.rbegin()
      if (end < r.m.text.size() && r.m.text[end] == '.') {
        const std::size_t call = skip_ws(r.m.text, end + 1);
        for (const char* it : {"begin", "cbegin", "rbegin"}) {
          const std::string fn(it);
          if (r.m.text.compare(call, fn.size(), fn) == 0 &&
              call + fn.size() < r.m.text.size() &&
              r.m.text[call + fn.size()] == '(') {
            report_iter(pos, name);
          }
        }
      }
      // for (... : name)
      std::size_t before = pos;
      while (before > 0 && std::isspace(static_cast<unsigned char>(
                               r.m.text[before - 1]))) {
        --before;
      }
      if (before >= 1 && r.m.text[before - 1] == ':' &&
          (before < 2 || r.m.text[before - 2] != ':')) {
        report_iter(pos, name);
      }
    }
  }
}

// --- unguarded-trace -----------------------------------------------------

void rule_unguarded_trace(const Ruleset& r) {
  // Scope: production sources only.  The observability layer itself and
  // the Tracer implementation are the machinery behind the guards, so
  // they are exempt (tests and tools call these freely anyway).
  if (r.path.find("src/") == std::string::npos) return;
  if (r.path.find("src/obs/") != std::string::npos) return;
  if (r.path.find("src/des/trace.") != std::string::npos) return;

  struct Hot {
    const char* token;
    const char* guard;
  };
  static constexpr Hot kHot[] = {
      {"trace", "tracing_enabled"},
      {"metrics", "metrics_enabled"},
  };
  for (const Hot& h : kHot) {
    // Lines carrying the guard (typically `if (sim.tracing_enabled())`).
    std::vector<int> guard_lines;
    for (const std::size_t pos : token_occurrences(r.m.text, h.guard)) {
      guard_lines.push_back(r.m.line_of(pos));
    }
    for (const std::size_t pos : token_occurrences(r.m.text, h.token)) {
      // Only member calls (`sim.trace(...)`, `sim->metrics()`): the
      // guard contract covers the Simulation hot-path accessors, not
      // local helpers that happen to share the name.
      std::size_t before = pos;
      while (before > 0 && std::isspace(static_cast<unsigned char>(
                               r.m.text[before - 1]))) {
        --before;
      }
      const bool member =
          (before >= 1 && r.m.text[before - 1] == '.') ||
          (before >= 2 && r.m.text[before - 2] == '-' &&
           r.m.text[before - 1] == '>');
      if (!member) continue;
      const std::size_t after =
          skip_ws(r.m.text, pos + std::string(h.token).size());
      if (after >= r.m.text.size() || r.m.text[after] != '(') continue;
      const int line = r.m.line_of(pos);
      const bool guarded =
          std::any_of(guard_lines.begin(), guard_lines.end(),
                      [line](int g) { return g <= line && g >= line - 2; });
      if (guarded) continue;
      r.report("unguarded-trace", pos,
               std::string(".") + h.token + "() without a " + h.guard +
                   "() guard on the same line or the two lines above; "
                   "observability must cost one predicted branch when off "
                   "(argument evaluation is not free)");
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kRules = {
      "unordered-container", "unordered-iter", "raw-entropy",
      "mutable-static",      "const-cast",     "bad-allow",
      "unguarded-trace",
  };
  return kRules;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  const Masked m = mask(path, content);
  std::vector<Finding> findings = m.allow_findings;
  const Ruleset r{m, path, findings};
  rule_const_cast(r);
  rule_raw_entropy(r);
  rule_mutable_static(r);
  rule_unordered(r);
  rule_unguarded_trace(r);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace pimsim::lint
