// On-chip DRAM macro model (paper Section 2.1).
//
// "A single DRAM macro is typically organized in rows with 2048 bits each.
//  During a read operation, an entire row is latched in a digital row
//  buffer ... data can be paged out of the row buffer to the processing
//  logic in wide words of typically 256 bits.  Assuming a very conservative
//  row access time of 20 ns and a page access time of 2 ns, a single
//  on-chip DRAM macro could sustain a bandwidth of over 50 Gbit/s."
//
// DramMacroSpec captures those constants and the closed-form bandwidth
// arithmetic; DramBank adds open-row (row buffer) state so timing depends
// on the access stream; BankedMemory composes banks with a shared-port
// conflict model used by the bank-conflict ablation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"

namespace pimsim::mem {

/// Geometry and timing of one on-chip DRAM macro.
struct DramMacroSpec {
  std::size_t row_bits = 2048;    ///< bits latched per row activation
  std::size_t word_bits = 256;    ///< bits paged out per access
  double row_access_ns = 20.0;    ///< activation (row) access time
  double page_access_ns = 2.0;    ///< page-out time per wide word

  /// Validates geometry/timing; throws ConfigError if inconsistent.
  void validate() const;

  /// Wide words held by one row (row_bits / word_bits).
  [[nodiscard]] std::size_t words_per_row() const;

  /// Time to activate a row and stream out all of its words (ns).
  [[nodiscard]] double row_drain_ns() const;

  /// Sustained bandwidth when rows are drained back-to-back (Gbit/s).
  /// This is the paper's "over 50 Gbit/s" figure.
  [[nodiscard]] double sustained_bandwidth_gbps() const;

  /// Peak page-out (row-buffer hit) bandwidth (Gbit/s).
  [[nodiscard]] double burst_bandwidth_gbps() const;

  /// Chip-level peak bandwidth with `nodes` independent macros (Gbit/s).
  /// The paper: "an on-chip peak memory bandwidth of greater than
  /// 1 Tbit/s is possible per chip".
  [[nodiscard]] double chip_bandwidth_gbps(std::size_t nodes) const;
};

/// One DRAM bank with open-row (row-buffer) state.
///
/// Timing-only model: access() returns the latency of the access and
/// updates the open row; callers advance simulated time themselves.
class DramBank {
 public:
  explicit DramBank(DramMacroSpec spec = {});

  /// Latency in ns of reading `row`; opens that row.
  [[nodiscard]] double access_ns(std::uint64_t row);

  /// Latency without the row-buffer (always pays the row access): the
  /// "conventional path" a cacheless off-chip access would take.
  [[nodiscard]] double closed_page_access_ns() const;

  [[nodiscard]] bool row_open(std::uint64_t row) const;
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const;
  [[nodiscard]] const DramMacroSpec& spec() const { return spec_; }

  void reset_stats();

 private:
  DramMacroSpec spec_;
  std::uint64_t open_row_ = 0;
  bool any_open_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// A node-local memory composed of `banks` DRAM banks behind `ports`
/// simultaneous access ports.  Used by the bank-conflict ablation:
/// with ports == banks there is no conflict; fewer ports serialize.
class BankedMemory {
 public:
  BankedMemory(des::Simulation& sim, std::size_t banks, std::size_t ports,
               DramMacroSpec spec = {}, std::string name = "mem");

  /// Bank index an address maps to (low-order interleaving by wide word).
  [[nodiscard]] std::size_t bank_of(std::uint64_t address) const;
  /// Row index an address maps to within its bank.
  [[nodiscard]] std::uint64_t row_of(std::uint64_t address) const;

  /// Coroutine access: waits for a port, pays the bank timing, releases.
  /// Latency depends on the open-row state of the target bank.
  [[nodiscard]] des::Process access(std::uint64_t address, ClockSpec clock);

  /// Waits for a port and occupies it for exactly `cycles` (statistical
  /// path used by the LWP model when per-address detail is not needed).
  [[nodiscard]] des::Process access_for(Cycles cycles);

  [[nodiscard]] std::size_t banks() const { return banks_.size(); }
  [[nodiscard]] des::Resource& ports() { return ports_; }
  [[nodiscard]] DramBank& bank(std::size_t i);
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

 private:
  des::Simulation& sim_;
  std::vector<DramBank> banks_;
  des::Resource ports_;
  std::uint64_t accesses_ = 0;
};

}  // namespace pimsim::mem
