// Contention-aware drop-in for the analytic MemorySystem: banked open-row
// DRAM on the event kernel, behind the same seam.
//
// Structure: `banks` DRAM banks (DramBank carries the open-row state),
// each with its own FIFO request queue, behind `ports` shared access
// ports.  A request from node n goes to that node's home bank
// (consecutive node groups share a bank when banks < nodes — the layout
// the bank-conflict ablation sweeps); it waits behind earlier requests to
// the same bank, and behind other banks when fewer ports than banks are
// configured (banks park in an arrival-ordered waiter ring).  Service
// time is exactly zero_load_latency(kind) — the Table 1 constant — so an
// uncontended access is bit-identical to the analytic model and
// contention shows up purely as queueing delay, mirroring how
// make_contention_interconnect calibrates the packet network.  The
// DramBank row-buffer state is driven by the address stream for hit-rate
// statistics (row_hit_rate()); it does not perturb timing, keeping the
// zero-load degeneracy exact.
//
// Implementation is the PR 4 hot-path recipe: requests live in a slab
// with an intrusive free list (steady state allocates nothing), every
// event is a static-call EventAction, and each request pre-allocates its
// calendar sequence number at issue time, so same-time completions
// dispatch in arrival order and the whole structure is deterministic by
// construction.  In audit mode (sim.audit_enabled()) every touched bank
// is checked against a queue-occupancy conservation invariant — enqueued
// == completed + queued + in-service — alongside the kernel's own sweeps,
// the memory-side analogue of the packet network's credit-ledger check.
//
// Like ContentionInterconnect, the model is constructed unbound and
// attaches to the first Simulation that accesses through it; reusing it
// in a second Simulation throws LogicError — build one per run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "memory/memory_system.hpp"

namespace pimsim::mem {

class ContentionMemory final : public MemorySystem {
 public:
  explicit ContentionMemory(MemoryConfig config);
  ~ContentionMemory() override;

  [[nodiscard]] const char* name() const override { return "banked"; }
  [[nodiscard]] bool contended() const override { return true; }
  [[nodiscard]] Cycles zero_load_latency(AccessKind kind) const override;

  void access(des::Simulation& sim, std::size_t node, std::uint64_t addr,
              AccessKind kind, bool is_write, des::EventAction::StaticFn done,
              void* ctx, std::uint64_t a, std::uint64_t b) const override;

  /// Binds to `sim` eagerly (access() binds lazily on first use).
  void bind(des::Simulation& sim) const;

  [[nodiscard]] std::uint64_t accesses() const override;
  /// Row-buffer hit rate over all banks (stats-only open-row model).
  [[nodiscard]] double row_hit_rate() const override;

  /// Publishes access/row-hit counters and the per-bank row-hit-rate
  /// summary (no-op before the first access binds the engine).
  void collect_metrics(obs::MetricsRegistry& registry) const override;

  [[nodiscard]] std::size_t banks() const { return cfg_.resolved_banks(); }
  [[nodiscard]] std::size_t ports() const { return cfg_.resolved_ports(); }
  [[nodiscard]] const MemoryConfig& config() const { return cfg_; }

  /// Home bank of an accessor node (consecutive-node grouping).
  [[nodiscard]] std::size_t bank_of(std::size_t node) const;
  /// Row an address maps to within its bank.
  [[nodiscard]] std::uint64_t row_of(std::uint64_t addr) const;

 private:
  struct Engine;

  MemoryConfig cfg_;
  // Bound lazily on first access(): the model outlives no Simulation, it
  // just has to be constructible before one exists.
  mutable std::unique_ptr<Engine> eng_;
  mutable des::Simulation* sim_ = nullptr;
};

}  // namespace pimsim::mem
