#include "memory/contention_memory.hpp"

#include <limits>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pimsim::mem {

namespace {
constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
}  // namespace

/// The bound per-run state: request slab + per-bank queues + port ring.
struct ContentionMemory::Engine {
  /// One in-flight request.  Lives in the slab; `next` links it into its
  /// bank's FIFO while queued, or into the free list while idle.
  struct Request {
    des::EventAction::StaticFn done = nullptr;
    void* ctx = nullptr;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t seq = 0;  ///< calendar key, allocated at issue time
    std::uint64_t row = 0;
    std::uint32_t bank = 0;
    AccessKind kind = AccessKind::kLwpRow;
    std::uint32_t next = kNone;
  };

  struct Bank {
    std::uint32_t qhead = kNone;  ///< FIFO of queued (not in-service) reqs
    std::uint32_t qtail = kNone;
    std::uint32_t qlen = 0;
    bool busy = false;     ///< a request is in service at this bank
    bool parked = false;   ///< waiting in the port ring for a free port
    DramBank rows;         ///< open-row state, statistics only
    // Queue-occupancy conservation (audit mode): everything that entered
    // must be queued, in service, or completed.
    std::uint64_t enqueued = 0;
    std::uint64_t completed = 0;
  };

  des::Simulation& sim;
  const ContentionMemory& owner;
  std::vector<Bank> banks;
  std::vector<Request> slab;
  std::uint32_t free_head = kNone;
  // Arrival-ordered ring of banks waiting for a port (each bank parks at
  // most once, so capacity == banks suffices).
  std::vector<std::uint32_t> ring;
  std::size_t ring_head = 0;
  std::size_t ring_count = 0;
  std::size_t ports = 0;
  std::size_t in_service = 0;
  std::uint64_t total_accesses = 0;
  /// Metrics handle, bound at engine construction when metrics are
  /// enabled; null otherwise (one predicted branch per issue/complete).
  obs::Gauge* m_queued = nullptr;
  /// Lazily interned per-bank queue-depth counter labels (tracing only).
  std::vector<des::LabelId> bank_trace_labels;

  Engine(des::Simulation& s, const ContentionMemory& m)
      : sim(s), owner(m), ports(m.cfg_.resolved_ports()) {
    banks.resize(m.cfg_.resolved_banks());
    for (auto& b : banks) b.rows = DramBank(m.cfg_.spec);
    ring.resize(banks.size());
    slab.reserve(64);
    if (sim.metrics_enabled()) {
      m_queued = &sim.metrics().gauge("mem.queued_requests");
    }
  }

  des::LabelId bank_label(std::uint32_t bank_idx) {
    if (bank_trace_labels.empty()) {
      bank_trace_labels.assign(banks.size(), des::kLabelUninterned);
    }
    des::LabelId& label = bank_trace_labels[bank_idx];
    if (label == des::kLabelUninterned) {
      label = sim.trace_label("mem.bank" + std::to_string(bank_idx) + ".queue");
    }
    return label;
  }

  /// Emits a bank-queue-depth counter record (no-op unless tracing).
  void trace_queue(std::uint32_t bank_idx) {
    if (!sim.tracing_enabled()) return;
    sim.trace(des::TraceKind::kCounter, bank_label(bank_idx), banks[bank_idx].qlen);
  }

  std::uint32_t alloc() {
    if (free_head != kNone) {
      const std::uint32_t idx = free_head;
      free_head = slab[idx].next;
      return idx;
    }
    slab.emplace_back();
    return static_cast<std::uint32_t>(slab.size() - 1);
  }

  void release(std::uint32_t idx) {
    slab[idx].done = nullptr;
    slab[idx].next = free_head;
    free_head = idx;
  }

  void park(std::uint32_t bank_idx) {
    Bank& b = banks[bank_idx];
    ensure(!b.parked, "ContentionMemory: bank parked twice");
    b.parked = true;
    ring[(ring_head + ring_count) % ring.size()] = bank_idx;
    ++ring_count;
  }

  /// Puts the head of `bank`'s queue into service and schedules its
  /// completion under the request's pre-allocated calendar key, so
  /// same-time completions across banks dispatch in arrival order.
  void start_service(std::uint32_t bank_idx) {
    Bank& b = banks[bank_idx];
    const std::uint32_t idx = b.qhead;
    Request& r = slab[idx];
    b.qhead = r.next;
    if (b.qhead == kNone) b.qtail = kNone;
    --b.qlen;
    if (m_queued) m_queued->add(sim.now(), -1.0);
    trace_queue(bank_idx);
    b.busy = true;
    ++in_service;
    (void)b.rows.access_ns(r.row);  // open-row hit/miss statistics only
    sim.schedule_static_at_seq(
        sim.now() + owner.zero_load_latency(r.kind), r.seq, &on_complete,
        this, idx, 0);
  }

  /// Grants freed ports to parked banks in arrival order.
  void drain_ring() {
    while (ring_count > 0 && in_service < ports) {
      const std::uint32_t bank_idx = ring[ring_head];
      ring_head = (ring_head + 1) % ring.size();
      --ring_count;
      banks[bank_idx].parked = false;
      if (banks[bank_idx].qlen > 0) start_service(bank_idx);
    }
  }

  void issue(std::uint32_t idx) {
    Request& r = slab[idx];
    Bank& b = banks[r.bank];
    r.next = kNone;
    if (b.qtail == kNone) {
      b.qhead = idx;
    } else {
      slab[b.qtail].next = idx;
    }
    b.qtail = idx;
    ++b.qlen;
    ++b.enqueued;
    ++total_accesses;
    if (m_queued) m_queued->add(sim.now(), 1.0);
    trace_queue(r.bank);
    if (!b.busy && !b.parked) {
      if (in_service < ports) {
        start_service(r.bank);
      } else {
        park(r.bank);
      }
    }
    if (sim.audit_enabled()) audit_check(r.bank);
  }

  static void on_complete(void* ctx, std::uint64_t idx64, std::uint64_t) {
    auto& e = *static_cast<Engine*>(ctx);
    const auto idx = static_cast<std::uint32_t>(idx64);
    // Copy out before freeing: done() may re-enter issue() and grow the
    // slab out from under the reference.
    const Request r = e.slab[idx];
    Bank& b = e.banks[r.bank];
    b.busy = false;
    ++b.completed;
    --e.in_service;
    if (b.qlen > 0 && !b.parked) e.park(r.bank);
    e.drain_ring();
    if (e.sim.audit_enabled()) e.audit_check(r.bank);
    e.release(idx);
    r.done(r.ctx, r.a, r.b);
  }

  /// O(1) queue-occupancy conservation sweep over the touched bank, plus
  /// the global port ledger — the memory-side analogue of the packet
  /// network's audit-mode credit-conservation check.
  void audit_check(std::uint32_t bank_idx) const {
    const Bank& b = banks[bank_idx];
    ensure(b.enqueued ==
               b.completed + b.qlen + (b.busy ? std::uint64_t{1} : 0),
           "ContentionMemory audit: bank queue-occupancy conservation "
           "violated");
    ensure(in_service <= ports,
           "ContentionMemory audit: more accesses in service than ports");
    ensure(ring_count == 0 || in_service == ports,
           "ContentionMemory audit: bank parked while a port is free");
  }
};

ContentionMemory::ContentionMemory(MemoryConfig config)
    : cfg_(std::move(config)) {
  cfg_.validate();
}

ContentionMemory::~ContentionMemory() = default;

Cycles ContentionMemory::zero_load_latency(AccessKind kind) const {
  return kind == AccessKind::kLwpRow ? cfg_.lwp_row_cycles
                                     : cfg_.hwp_miss_cycles;
}

std::size_t ContentionMemory::bank_of(std::size_t node) const {
  const std::size_t n = node % cfg_.nodes;
  // Consecutive-node grouping: with B banks over N nodes this is
  // floor(n * B / N) — the t / lwps_per_bank layout the bank-conflict
  // ablation historically used.
  return n * cfg_.resolved_banks() / cfg_.nodes;
}

std::uint64_t ContentionMemory::row_of(std::uint64_t addr) const {
  const std::uint64_t word_bytes = cfg_.spec.word_bits / 8;
  return (addr / word_bytes) / cfg_.spec.words_per_row();
}

void ContentionMemory::bind(des::Simulation& sim) const {
  if (eng_ != nullptr) {
    ensure(sim_ == &sim,
           "ContentionMemory: already bound to a different Simulation; "
           "build one memory model per run");
    return;
  }
  sim_ = &sim;
  eng_ = std::make_unique<Engine>(sim, *this);
}

void ContentionMemory::access(des::Simulation& sim, std::size_t node,
                              std::uint64_t addr, AccessKind kind,
                              bool /*is_write*/,
                              des::EventAction::StaticFn done, void* ctx,
                              std::uint64_t a, std::uint64_t b) const {
  bind(sim);
  Engine& e = *eng_;
  const std::uint32_t idx = e.alloc();
  Engine::Request& r = e.slab[idx];
  r.done = done;
  r.ctx = ctx;
  r.a = a;
  r.b = b;
  r.seq = sim.allocate_seq();
  r.row = row_of(addr);
  r.bank = static_cast<std::uint32_t>(bank_of(node));
  r.kind = kind;
  e.issue(idx);
}

std::uint64_t ContentionMemory::accesses() const {
  return eng_ == nullptr ? 0 : eng_->total_accesses;
}

void ContentionMemory::collect_metrics(obs::MetricsRegistry& registry) const {
  if (eng_ == nullptr) return;
  registry.counter("mem.accesses").add(eng_->total_accesses);
  std::uint64_t hits = 0, misses = 0;
  obs::Summary& rate = registry.summary("mem.bank_row_hit_rate");
  for (const auto& b : eng_->banks) {
    hits += b.rows.hits();
    misses += b.rows.misses();
    const std::uint64_t total = b.rows.hits() + b.rows.misses();
    if (total > 0) {
      rate.add(static_cast<double>(b.rows.hits()) / static_cast<double>(total));
    }
  }
  registry.counter("mem.row_hits").add(hits);
  registry.counter("mem.row_misses").add(misses);
}

double ContentionMemory::row_hit_rate() const {
  if (eng_ == nullptr) return 0.0;
  std::uint64_t hits = 0, total = 0;
  for (const auto& b : eng_->banks) {
    hits += b.rows.hits();
    total += b.rows.hits() + b.rows.misses();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace pimsim::mem
