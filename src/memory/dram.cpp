#include "memory/dram.hpp"

#include "common/error.hpp"

namespace pimsim::mem {

void DramMacroSpec::validate() const {
  require(row_bits > 0 && word_bits > 0, "DramMacroSpec: sizes must be positive");
  require(row_bits % word_bits == 0,
          "DramMacroSpec: row_bits must be a multiple of word_bits");
  require(row_access_ns > 0.0 && page_access_ns > 0.0,
          "DramMacroSpec: timings must be positive");
}

std::size_t DramMacroSpec::words_per_row() const {
  validate();
  return row_bits / word_bits;
}

double DramMacroSpec::row_drain_ns() const {
  // One activation followed by paging out every word of the row buffer.
  return row_access_ns + static_cast<double>(words_per_row()) * page_access_ns;
}

double DramMacroSpec::sustained_bandwidth_gbps() const {
  return gbit_per_s(static_cast<double>(row_bits), row_drain_ns());
}

double DramMacroSpec::burst_bandwidth_gbps() const {
  return gbit_per_s(static_cast<double>(word_bits), page_access_ns);
}

double DramMacroSpec::chip_bandwidth_gbps(std::size_t nodes) const {
  require(nodes > 0, "DramMacroSpec: chip needs at least one node");
  return sustained_bandwidth_gbps() * static_cast<double>(nodes);
}

DramBank::DramBank(DramMacroSpec spec) : spec_(spec) { spec_.validate(); }

double DramBank::access_ns(std::uint64_t row) {
  if (any_open_ && open_row_ == row) {
    ++hits_;
    return spec_.page_access_ns;
  }
  ++misses_;
  any_open_ = true;
  open_row_ = row;
  return spec_.row_access_ns + spec_.page_access_ns;
}

double DramBank::closed_page_access_ns() const {
  return spec_.row_access_ns + spec_.page_access_ns;
}

bool DramBank::row_open(std::uint64_t row) const {
  return any_open_ && open_row_ == row;
}

double DramBank::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void DramBank::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

BankedMemory::BankedMemory(des::Simulation& sim, std::size_t banks,
                           std::size_t ports, DramMacroSpec spec,
                           std::string name)
    : sim_(sim), ports_(sim, ports, name + ".ports") {
  require(banks > 0, "BankedMemory: need at least one bank");
  require(ports > 0 && ports <= banks,
          "BankedMemory: ports must be in [1, banks]");
  spec.validate();
  banks_.reserve(banks);
  for (std::size_t i = 0; i < banks; ++i) banks_.emplace_back(spec);
}

std::size_t BankedMemory::bank_of(std::uint64_t address) const {
  const std::uint64_t word = address / (banks_[0].spec().word_bits / 8);
  return static_cast<std::size_t>(word % banks_.size());
}

std::uint64_t BankedMemory::row_of(std::uint64_t address) const {
  const std::uint64_t word = address / (banks_[0].spec().word_bits / 8);
  return word / banks_.size() / banks_[0].spec().words_per_row();
}

des::Process BankedMemory::access(std::uint64_t address, ClockSpec clock) {
  co_await ports_.acquire();
  ++accesses_;
  const double ns = banks_[bank_of(address)].access_ns(row_of(address));
  co_await des::delay(sim_, clock.from_ns(ns));
  ports_.release();
}

des::Process BankedMemory::access_for(Cycles cycles) {
  co_await ports_.acquire();
  ++accesses_;
  co_await des::delay(sim_, cycles);
  ports_.release();
}

DramBank& BankedMemory::bank(std::size_t i) {
  require(i < banks_.size(), "BankedMemory::bank: index out of range");
  return banks_[i];
}

}  // namespace pimsim::mem
