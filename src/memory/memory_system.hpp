// The memory seam: every architecture-model memory access goes through a
// mem::MemorySystem, the memory-side analogue of the parcel layer's
// Interconnect::deliver() seam.
//
// Two implementations ship behind it:
//
//  * AnalyticMemory — the paper's closed-form model.  An access completes
//    after exactly the Table 1 constant for its kind (TML for an LWP
//    row-buffer access, TMH for an HWP cache miss), with no state and no
//    queueing.  This is the default, and it reproduces the pre-seam
//    figures bitwise: the constants are carried as the same doubles that
//    arch::SystemParams holds, so every charged delay is the identical
//    value the models used to inline.
//
//  * ContentionMemory (contention_memory.hpp) — a DES banked open-row
//    DRAM model with per-bank FIFO queues and shared-port arbitration.
//    Its *uncontended* per-access latency equals the analytic constants
//    (the zero-load degeneracy guarantee), so contention appears only as
//    queueing delay — exactly how make_contention_interconnect calibrates
//    the packet network against the analytic latency models.
//
// The interface is completion-event based, not coroutine based, so the
// contended backend can run allocation-free on the kernel's static-call
// event path; coroutine code awaits an access via AccessAwaitable.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "des/event_action.hpp"
#include "des/simulation.hpp"
#include "memory/dram.hpp"

namespace pimsim::mem {

/// What kind of access is being charged — selects which Table 1 constant
/// the zero-load latency degenerates to.
enum class AccessKind : std::uint8_t {
  kLwpRow = 0,   ///< LWP load/store against its row buffer (TML)
  kHwpMiss = 1,  ///< HWP cache miss to main memory (TMH)
};

/// Configuration shared by every MemorySystem implementation.  The
/// latency constants are *copied from* arch::SystemParams (t_ml / t_mh)
/// by the host system, so the seam charges bit-identical doubles.
struct MemoryConfig {
  std::string kind = "analytic";  ///< analytic | banked
  Cycles lwp_row_cycles = 30.0;   ///< zero-load latency of kLwpRow (TML)
  Cycles hwp_miss_cycles = 90.0;  ///< zero-load latency of kHwpMiss (TMH)
  std::size_t nodes = 1;          ///< accessor nodes sharing the memory

  /// Banked backend: number of DRAM banks.  0 means one bank per node
  /// (the paper's layout — each LWP sits next to its own macro); fewer
  /// banks than nodes makes consecutive node groups share one bank,
  /// reproducing the bank-conflict ablation's lwps_per_bank grouping.
  std::size_t banks = 0;

  /// Banked backend: shared access ports across all banks.  0 means one
  /// port per bank (no cross-bank arbitration); smaller values model a
  /// shared memory port that serializes otherwise-independent banks.
  std::size_t queue = 0;

  DramMacroSpec spec{};  ///< geometry for row mapping / open-row stats

  void validate() const;

  /// Banks after resolving the 0 default (one per node).
  [[nodiscard]] std::size_t resolved_banks() const;
  /// Simultaneous accesses in service after resolving the 0 default.
  [[nodiscard]] std::size_t resolved_ports() const;
};

/// Abstract memory model.  access() is the seam: it schedules `done(ctx,
/// a, b)` into `sim` at the (model-dependent) time the access retires.
/// The default implementation is the analytic model: completion at
/// now + zero_load_latency(kind), one static-call event, no state.
class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True when accesses can queue (so callers must issue them
  /// individually); false means latencies are closed-form constants and
  /// callers may batch-charge zero_load_latency() directly.
  [[nodiscard]] virtual bool contended() const { return false; }

  /// Latency of an uncontended access of `kind` — the analytic constant
  /// every backend degenerates to at zero load.
  [[nodiscard]] virtual Cycles zero_load_latency(AccessKind kind) const = 0;

  /// Issues one access from `node` at byte address `addr`; `done` fires
  /// when it retires.  Deterministic: same issue order, same completions.
  virtual void access(des::Simulation& sim, std::size_t node,
                      std::uint64_t addr, AccessKind kind, bool is_write,
                      des::EventAction::StaticFn done, void* ctx,
                      std::uint64_t a, std::uint64_t b) const;

  // Stream statistics (banked backend; the analytic model keeps none).
  [[nodiscard]] virtual std::uint64_t accesses() const { return 0; }
  [[nodiscard]] virtual double row_hit_rate() const { return 0.0; }

  /// Publishes end-of-run statistics into a metrics registry (see
  /// src/obs/metrics.hpp).  Harnesses call this after the run, guarded by
  /// Simulation::metrics_enabled(); the default backend publishes nothing.
  virtual void collect_metrics(obs::MetricsRegistry& registry) const {
    (void)registry;
  }
};

/// The paper's model behind the seam: constant latency per access kind,
/// no queueing, no state.
class AnalyticMemory final : public MemorySystem {
 public:
  explicit AnalyticMemory(const MemoryConfig& config);

  [[nodiscard]] const char* name() const override { return "analytic"; }
  [[nodiscard]] Cycles zero_load_latency(AccessKind kind) const override;

 private:
  Cycles lwp_row_cycles_;
  Cycles hwp_miss_cycles_;
};

/// Awaitable bridging coroutine code onto the completion-event seam:
///
///   co_await mem::AccessAwaitable{memory, sim, node, addr,
///                                 mem::AccessKind::kLwpRow};
///
/// suspends the coroutine and resumes it when the access retires.
struct AccessAwaitable {
  const MemorySystem& memory;
  des::Simulation& sim;
  std::size_t node = 0;
  std::uint64_t addr = 0;
  AccessKind kind = AccessKind::kLwpRow;
  bool is_write = false;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    memory.access(sim, node, addr, kind, is_write, &resume_handle,
                  h.address(), 0, 0);
  }
  void await_resume() const noexcept {}

  static void resume_handle(void* ctx, std::uint64_t /*a*/,
                            std::uint64_t /*b*/) {
    std::coroutine_handle<>::from_address(ctx).resume();
  }
};

/// Factory over every registered backend.  Unknown kinds throw
/// InvalidArgument naming the alternatives (make_interconnect's error
/// contract).
[[nodiscard]] std::unique_ptr<MemorySystem> make_memory(
    const MemoryConfig& config);

/// Convenience: default MemoryConfig with just the kind set.
[[nodiscard]] std::unique_ptr<MemorySystem> make_memory(
    const std::string& kind);

}  // namespace pimsim::mem
