#include "memory/memory_system.hpp"

#include "common/error.hpp"
#include "memory/contention_memory.hpp"

namespace pimsim::mem {

void MemoryConfig::validate() const {
  require(lwp_row_cycles > 0.0,
          "MemoryConfig: lwp_row_cycles must be positive");
  require(hwp_miss_cycles > 0.0,
          "MemoryConfig: hwp_miss_cycles must be positive");
  require(nodes > 0, "MemoryConfig: need at least one node");
  spec.validate();
}

std::size_t MemoryConfig::resolved_banks() const {
  return banks == 0 ? nodes : banks;
}

std::size_t MemoryConfig::resolved_ports() const {
  const std::size_t b = resolved_banks();
  return queue == 0 ? b : (queue < b ? queue : b);
}

void MemorySystem::access(des::Simulation& sim, std::size_t /*node*/,
                          std::uint64_t /*addr*/, AccessKind kind,
                          bool /*is_write*/, des::EventAction::StaticFn done,
                          void* ctx, std::uint64_t a, std::uint64_t b) const {
  sim.schedule_static_at(sim.now() + zero_load_latency(kind), done, ctx, a, b);
}

AnalyticMemory::AnalyticMemory(const MemoryConfig& config)
    : lwp_row_cycles_(config.lwp_row_cycles),
      hwp_miss_cycles_(config.hwp_miss_cycles) {
  config.validate();
}

Cycles AnalyticMemory::zero_load_latency(AccessKind kind) const {
  return kind == AccessKind::kLwpRow ? lwp_row_cycles_ : hwp_miss_cycles_;
}

std::unique_ptr<MemorySystem> make_memory(const MemoryConfig& config) {
  config.validate();
  if (config.kind == "analytic") {
    return std::make_unique<AnalyticMemory>(config);
  }
  if (config.kind == "banked") {
    return std::make_unique<ContentionMemory>(config);
  }
  throw InvalidArgument("make_memory: unknown memory kind '" + config.kind +
                        "'; valid kinds are analytic, banked");
}

std::unique_ptr<MemorySystem> make_memory(const std::string& kind) {
  MemoryConfig config;
  config.kind = kind;
  return make_memory(config);
}

}  // namespace pimsim::mem
