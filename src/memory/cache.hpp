// Cache models for the heavyweight processor.
//
// The paper's queuing model treats the HWP cache statistically: each
// load/store misses with fixed probability Pmiss = 0.1 (Table 1).
// StatCache implements exactly that.  SetAssocCache is a structural
// set-associative LRU cache simulator used to *ground* the Pmiss
// parameter: running the synthetic access patterns in
// workload/access_pattern.hpp through it shows which kinds of streams
// produce hit rates near 0.9 (high temporal locality) versus near 0
// (the traffic the paper routes to PIM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace pimsim::mem {

/// Outcome of a cache access.
enum class CacheOutcome : std::uint8_t { kHit, kMiss };

/// Statistical cache: misses are i.i.d. Bernoulli(p_miss).
class StatCache {
 public:
  StatCache(double p_miss, Rng rng);

  /// Samples one access outcome.
  [[nodiscard]] CacheOutcome access();
  /// Samples `n` accesses at once; returns the number of misses.
  /// Statistically identical to calling access() n times.
  [[nodiscard]] std::uint64_t misses_among(std::uint64_t n);

  [[nodiscard]] double p_miss() const { return p_miss_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double observed_miss_rate() const;

 private:
  double p_miss_;
  Rng rng_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Geometry of a structural cache.
struct CacheGeometry {
  std::size_t size_bytes = 1 << 20;  ///< total capacity
  std::size_t line_bytes = 64;       ///< block size
  std::size_t ways = 4;              ///< associativity

  void validate() const;
  [[nodiscard]] std::size_t sets() const;
};

/// Set-associative LRU cache simulator (tags only, no data).
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheGeometry geometry);

  /// Simulates an access to byte address `addr`; updates LRU state.
  CacheOutcome access(std::uint64_t addr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const;
  [[nodiscard]] const CacheGeometry& geometry() const { return geometry_; }

  void reset_stats();
  /// Invalidates all lines (cold cache) and clears statistics.
  void flush();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< last-use stamp; smaller = older
    bool valid = false;
  };

  CacheGeometry geometry_;
  std::vector<Line> lines_;  ///< sets() * ways, row-major by set
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pimsim::mem
