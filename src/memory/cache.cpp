#include "memory/cache.hpp"

#include "common/error.hpp"

namespace pimsim::mem {

StatCache::StatCache(double p_miss, Rng rng) : p_miss_(p_miss), rng_(rng) {
  require(p_miss >= 0.0 && p_miss <= 1.0, "StatCache: p_miss must be in [0,1]");
}

CacheOutcome StatCache::access() {
  if (rng_.bernoulli(p_miss_)) {
    ++misses_;
    return CacheOutcome::kMiss;
  }
  ++hits_;
  return CacheOutcome::kHit;
}

std::uint64_t StatCache::misses_among(std::uint64_t n) {
  const std::uint64_t m = rng_.binomial(n, p_miss_);
  misses_ += m;
  hits_ += n - m;
  return m;
}

double StatCache::observed_miss_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(misses_) / static_cast<double>(total);
}

void CacheGeometry::validate() const {
  require(size_bytes > 0 && line_bytes > 0 && ways > 0,
          "CacheGeometry: all fields must be positive");
  require(size_bytes % (line_bytes * ways) == 0,
          "CacheGeometry: size must be a multiple of line_bytes*ways");
}

std::size_t CacheGeometry::sets() const {
  validate();
  return size_bytes / (line_bytes * ways);
}

SetAssocCache::SetAssocCache(CacheGeometry geometry)
    : geometry_(geometry), lines_(geometry.sets() * geometry.ways) {}

CacheOutcome SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t block = addr / geometry_.line_bytes;
  const std::size_t set = static_cast<std::size_t>(block % geometry_.sets());
  const std::uint64_t tag = block / geometry_.sets();
  Line* base = &lines_[set * geometry_.ways];
  ++stamp_;

  Line* victim = base;
  for (std::size_t w = 0; w < geometry_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = stamp_;
      ++hits_;
      return CacheOutcome::kHit;
    }
    if (!line.valid) {
      victim = &line;  // prefer an invalid way
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  ++misses_;
  return CacheOutcome::kMiss;
}

double SetAssocCache::miss_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(misses_) / static_cast<double>(total);
}

void SetAssocCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

void SetAssocCache::flush() {
  for (auto& line : lines_) line.valid = false;
  reset_stats();
}

}  // namespace pimsim::mem
