#include "parcel/parcel.hpp"

#include "common/error.hpp"

namespace pimsim::parcel {

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kRead: return "read";
    case ActionKind::kWrite: return "write";
    case ActionKind::kAmoAdd: return "amo-add";
    case ActionKind::kMethod: return "method";
    case ActionKind::kReply: return "reply";
  }
  return "unknown";
}

namespace {

constexpr std::uint32_t kMagic = 0x50434c45;  // "PCLE"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    check(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    check(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }
  std::uint8_t u8() {
    check(1);
    return bytes_[pos_++];
  }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void check(std::size_t n) const {
    require(pos_ + n <= bytes_.size(), "Parcel::deserialize: truncated parcel");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize(const Parcel& parcel) {
  std::vector<std::uint8_t> out;
  out.reserve(parcel.wire_size());
  put_u32(out, kMagic);
  put_u32(out, parcel.src);
  put_u32(out, parcel.dst);
  out.push_back(static_cast<std::uint8_t>(parcel.action));
  put_u64(out, parcel.target_vaddr);
  put_u32(out, parcel.method_id);
  put_u32(out, static_cast<std::uint32_t>(parcel.operands.size()));
  for (std::uint64_t op : parcel.operands) put_u64(out, op);
  put_u32(out, parcel.continuation.node);
  put_u64(out, parcel.continuation.context);
  return out;
}

Parcel deserialize(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  require(reader.u32() == kMagic, "Parcel::deserialize: bad magic");
  Parcel p;
  p.src = reader.u32();
  p.dst = reader.u32();
  const std::uint8_t action = reader.u8();
  require(action <= static_cast<std::uint8_t>(ActionKind::kReply),
          "Parcel::deserialize: unknown action kind");
  p.action = static_cast<ActionKind>(action);
  p.target_vaddr = reader.u64();
  p.method_id = reader.u32();
  const std::uint32_t n_operands = reader.u32();
  require(n_operands <= 1024, "Parcel::deserialize: implausible operand count");
  p.operands.reserve(n_operands);
  for (std::uint32_t i = 0; i < n_operands; ++i) p.operands.push_back(reader.u64());
  p.continuation.node = reader.u32();
  p.continuation.context = reader.u64();
  require(reader.exhausted(), "Parcel::deserialize: trailing bytes");
  return p;
}

}  // namespace pimsim::parcel
