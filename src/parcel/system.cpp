#include "parcel/system.hpp"

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "interconnect/contention.hpp"
#include "memory/memory_system.hpp"
#include "obs/metrics.hpp"

namespace pimsim::parcel {

void SplitTransactionParams::validate() const {
  require(nodes > 0, "SplitTransactionParams: need at least one node");
  require(ls_mix > 0.0 && ls_mix <= 1.0,
          "SplitTransactionParams: ls_mix must be in (0,1]");
  require(p_remote >= 0.0 && p_remote <= 1.0,
          "SplitTransactionParams: p_remote must be in [0,1]");
  require(t_local >= 0.0 && t_switch >= 0.0 && t_send >= 0.0,
          "SplitTransactionParams: service times must be non-negative");
  require(parallelism > 0, "SplitTransactionParams: parallelism must be >= 1");
  require(round_trip_latency >= 0.0,
          "SplitTransactionParams: latency must be non-negative");
  require(nic_gap >= 0.0, "SplitTransactionParams: nic_gap must be >= 0");
  require(message_bytes > 0, "SplitTransactionParams: message_bytes must be >= 1");
  require(horizon > 0.0, "SplitTransactionParams: horizon must be positive");
}

double SystemRunResult::total_work() const {
  double sum = 0.0;
  for (const auto& n : nodes) sum += n.work();
  return sum;
}

double SystemRunResult::mean_idle_fraction() const {
  if (nodes.empty() || horizon <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& n : nodes) sum += n.idle_cycles / horizon;
  return sum / static_cast<double>(nodes.size());
}

double SystemRunResult::mean_overhead_fraction() const {
  if (nodes.empty() || horizon <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& n : nodes) sum += n.overhead_cycles / horizon;
  return sum / static_cast<double>(nodes.size());
}

namespace {

// Banked-memory address stream: each node walks its own region one wide
// word at a time (same stride the arch-layer LWP model uses), so open-row
// locality and bank mapping are deterministic functions of the node id.
constexpr std::uint64_t kAccessStrideBytes = 32;
constexpr std::uint64_t kNodeRegionBytes = std::uint64_t{1} << 32;

std::uint64_t next_addr(NodeId id, std::uint64_t& offset) {
  const std::uint64_t addr = id * kNodeRegionBytes + offset;
  offset += kAccessStrideBytes;
  return addr;
}

/// In-memory message of the statistical models: who asked, and the trigger
/// that reactivates the waiting thread/context once the reply arrives.
struct SimMessage {
  NodeId src = 0;
  des::Trigger* reply = nullptr;
};

/// Picks a uniformly random remote target ("the degree of remote accesses"
/// is uniform over the other nodes; a 1-node system loops back to itself).
NodeId pick_target(Rng& rng, NodeId self, std::size_t nodes) {
  if (nodes <= 1) return self;
  auto t = static_cast<NodeId>(rng.uniform_int(0, nodes - 2));
  if (t >= self) ++t;
  return t;
}

// ---------------------------------------------------------------------
// Control system: conventional blocking message passing (Figure 10 top).
// ---------------------------------------------------------------------

struct ControlNode {
  ControlNode(des::Simulation& sim, NodeId node_id, Rng node_rng)
      : id(node_id),
        incoming(sim, "ctl" + std::to_string(node_id) + ".in"),
        memory(sim, 1, "ctl" + std::to_string(node_id) + ".mem"),
        nic(sim, 1, "ctl" + std::to_string(node_id) + ".nic"),
        rng(node_rng) {}

  NodeId id;
  des::Mailbox<SimMessage> incoming;
  des::Resource memory;  ///< DMA-reachable memory port
  des::Resource nic;     ///< injection port (bandwidth ablation)
  Rng rng;
  NodeStats stats;
  std::uint64_t next_offset = 0;  ///< banked memory: address stream cursor
};

/// Ships a message: serializes through the sender's NIC when nic_gap > 0,
/// then hands it to the interconnect's deliver() seam — the analytic
/// models schedule arrival after their closed-form latency (preserving
/// the paper's infinite-bandwidth model and the event ordering of
/// existing seeds); the packet-level model routes flits through its
/// simulated network instead.
des::Process inject(des::Simulation& sim, des::Resource& nic, Cycles gap,
                    const Interconnect& net, NodeId src, NodeId dst,
                    std::size_t bytes, std::function<void()> arrive) {
  co_await nic.acquire();
  co_await des::delay(sim, gap);
  nic.release();
  net.deliver(sim, src, dst, bytes, std::move(arrive));
}

void ship(des::Simulation& sim, des::Resource& nic, Cycles gap,
          const Interconnect& net, NodeId src, NodeId dst, std::size_t bytes,
          std::function<void()> arrive) {
  if (gap <= 0.0) {
    net.deliver(sim, src, dst, bytes, std::move(arrive));
  } else {
    sim.spawn(inject(sim, nic, gap, net, src, dst, bytes, std::move(arrive)));
  }
}

class MessagePassingSystem {
 public:
  MessagePassingSystem(const SplitTransactionParams& params,
                       const Interconnect& net,
                       const mem::MemorySystem* memory)
      : p_(params), net_(net), mem_(memory) {
    Rng root(p_.seed, /*stream_id=*/0xC0);
    nodes_.reserve(p_.nodes);
    for (std::size_t i = 0; i < p_.nodes; ++i) {
      nodes_.push_back(std::make_unique<ControlNode>(
          sim_, static_cast<NodeId>(i), root.split(i)));
    }
    if (sim_.metrics_enabled()) {
      m_rtt_ = &sim_.metrics().summary("msg.request_rtt_cycles");
    }
    if (sim_.tracing_enabled()) lbl_request_ = sim_.trace_label("msg.request");
  }

  SystemRunResult run() {
    for (auto& node : nodes_) {
      sim_.spawn(node_main(*node));
      sim_.spawn(request_server(*node));
    }
    sim_.run_until(p_.horizon);
    if (sim_.metrics_enabled()) {
      net_.collect_metrics(sim_.metrics());
      if (mem_ != nullptr) mem_->collect_metrics(sim_.metrics());
    }

    SystemRunResult out;
    out.horizon = p_.horizon;
    out.nodes.reserve(nodes_.size());
    for (auto& node : nodes_) out.nodes.push_back(node->stats);
    return out;
  }

 private:
  /// The node's single program thread: compute, access memory, and block
  /// on remote requests ("in this third state, the processor is considered
  /// to be idle").
  des::Process node_main(ControlNode& n) {
    while (true) {
      // Compute run until the next memory access: each op is a load/store
      // with probability ls_mix, so the gap is geometric.
      const std::uint64_t gap = n.rng.geometric(p_.ls_mix);
      if (gap > 0) {
        co_await des::delay(sim_, static_cast<double>(gap));
        n.stats.useful_cycles += static_cast<double>(gap);
        n.stats.compute_ops += gap;
      }
      if (n.rng.bernoulli(p_.p_remote)) {
        // Compose and send the request, then block until the reply.
        if (p_.t_send > 0.0) {
          co_await des::delay(sim_, p_.t_send);
          n.stats.overhead_cycles += p_.t_send;
        }
        ++n.stats.remote_requests;
        const NodeId target = pick_target(n.rng, n.id, p_.nodes);
        des::Trigger reply(sim_);
        const std::uint64_t span = next_span_++;
        if (sim_.tracing_enabled()) {
          sim_.trace(des::TraceKind::kAsyncBegin, lbl_request_, span, n.id);
        }
        deliver(n.id, target, SimMessage{n.id, &reply});
        const SimTime blocked_at = sim_.now();
        co_await reply.wait();
        if (m_rtt_ != nullptr) m_rtt_->add(sim_.now() - blocked_at);
        if (sim_.tracing_enabled()) {
          sim_.trace(des::TraceKind::kAsyncEnd, lbl_request_, span, n.id);
        }
        n.stats.idle_cycles += sim_.now() - blocked_at;
      } else {
        // Local access: the processor is in the memory-access state for
        // the whole span, including any wait for the (DMA-shared) port.
        // Behind the seam, the banked backend's per-bank FIFO takes over
        // the arbitration the node's memory Resource models otherwise.
        const SimTime start = sim_.now();
        if (mem_ != nullptr) {
          co_await mem::AccessAwaitable{*mem_, sim_, n.id,
                                        next_addr(n.id, n.next_offset),
                                        mem::AccessKind::kLwpRow};
        } else {
          co_await n.memory.acquire();
          co_await des::delay(sim_, p_.t_local);
          n.memory.release();
        }
        n.stats.mem_cycles += sim_.now() - start;
        ++n.stats.local_accesses;
      }
    }
  }

  /// Services incoming remote requests at the home node's memory port
  /// without consuming its processor (DMA-style remote access).
  des::Process request_server(ControlNode& n) {
    while (true) {
      const SimMessage msg = co_await n.incoming.receive();
      sim_.spawn(serve_one(n, msg));
    }
  }

  des::Process serve_one(ControlNode& n, SimMessage msg) {
    if (mem_ != nullptr) {
      co_await mem::AccessAwaitable{*mem_, sim_, n.id,
                                    next_addr(n.id, n.next_offset),
                                    mem::AccessKind::kLwpRow};
    } else {
      co_await n.memory.acquire();
      co_await des::delay(sim_, p_.t_local);
      n.memory.release();
    }
    ++n.stats.accesses_served;
    // Return the reply over the network; it unblocks the requester.
    des::Trigger* reply = msg.reply;
    ship(sim_, n.nic, p_.nic_gap, net_, n.id, msg.src, p_.message_bytes,
         [reply] { reply->fire(); });
  }

  void deliver(NodeId src, NodeId dst, SimMessage msg) {
    auto* box = &nodes_[dst]->incoming;
    ship(sim_, nodes_[src]->nic, p_.nic_gap, net_, src, dst, p_.message_bytes,
         [box, msg] { box->send(msg); });
  }

  SplitTransactionParams p_;
  const Interconnect& net_;
  const mem::MemorySystem* mem_;  ///< nullptr: analytic constant path
  des::Simulation sim_;
  std::vector<std::unique_ptr<ControlNode>> nodes_;
  // Observability hooks, bound at construction iff the layer is on.
  obs::Summary* m_rtt_ = nullptr;
  des::LabelId lbl_request_ = 0;
  std::uint64_t next_span_ = 1;  ///< async-span ids for request lifecycles
};

// ---------------------------------------------------------------------
// Test system: parcel-driven split transactions (Figure 10 bottom).
// ---------------------------------------------------------------------

struct TestNode {
  TestNode(des::Simulation& sim, NodeId node_id, Rng node_rng)
      : id(node_id),
        cpu(sim, 1, "pim" + std::to_string(node_id) + ".cpu"),
        nic(sim, 1, "pim" + std::to_string(node_id) + ".nic"),
        incoming(sim, "pim" + std::to_string(node_id) + ".in"),
        rng(node_rng) {}

  NodeId id;
  des::Resource cpu;
  des::Resource nic;  ///< injection port (bandwidth ablation)
  des::Mailbox<SimMessage> incoming;
  Rng rng;
  NodeStats stats;
  std::uint64_t next_offset = 0;  ///< banked memory: address stream cursor
};

class SplitTransactionSystem {
 public:
  SplitTransactionSystem(const SplitTransactionParams& params,
                         const Interconnect& net,
                         const mem::MemorySystem* memory)
      : p_(params), net_(net), mem_(memory) {
    Rng root(p_.seed, /*stream_id=*/0x7E);
    nodes_.reserve(p_.nodes);
    for (std::size_t i = 0; i < p_.nodes; ++i) {
      nodes_.push_back(std::make_unique<TestNode>(
          sim_, static_cast<NodeId>(i), root.split(i)));
    }
    if (sim_.metrics_enabled()) {
      m_rtt_ = &sim_.metrics().summary("parcel.request_rtt_cycles");
    }
    if (sim_.tracing_enabled()) {
      lbl_request_ = sim_.trace_label("parcel.request");
    }
  }

  SystemRunResult run() {
    for (auto& node : nodes_) {
      for (std::size_t c = 0; c < p_.parallelism; ++c) {
        sim_.spawn(context(*node, node->rng.split(1000 + c)));
      }
      sim_.spawn(dispatcher(*node));
    }
    sim_.run_until(p_.horizon);
    if (sim_.metrics_enabled()) {
      net_.collect_metrics(sim_.metrics());
      if (mem_ != nullptr) mem_->collect_metrics(sim_.metrics());
    }

    SystemRunResult out;
    out.horizon = p_.horizon;
    out.nodes.reserve(nodes_.size());
    for (auto& node : nodes_) {
      NodeStats s = node->stats;
      // Idle = no ready parcel context: everything the processor was not
      // doing. The cpu resource integrates busy time exactly.
      s.idle_cycles =
          p_.horizon * (1.0 - node->cpu.utilization());
      out.nodes.push_back(s);
    }
    return out;
  }

 private:
  /// One parcel context (application thread) of a node. It owns the
  /// processor while running; a remote access emits a parcel and yields
  /// the processor instead of blocking it.
  des::Process context(TestNode& n, Rng rng) {
    while (true) {
      co_await n.cpu.acquire();
      if (p_.t_switch > 0.0) {
        co_await des::delay(sim_, p_.t_switch);
        n.stats.overhead_cycles += p_.t_switch;
      }
      // Run segments until this context suspends on a remote access.
      bool running = true;
      while (running) {
        const std::uint64_t gap = rng.geometric(p_.ls_mix);
        if (gap > 0) {
          co_await des::delay(sim_, static_cast<double>(gap));
          n.stats.useful_cycles += static_cast<double>(gap);
          n.stats.compute_ops += gap;
        }
        if (rng.bernoulli(p_.p_remote)) {
          if (p_.t_send > 0.0) {
            co_await des::delay(sim_, p_.t_send);
            n.stats.overhead_cycles += p_.t_send;
          }
          ++n.stats.remote_requests;
          const NodeId target = pick_target(rng, n.id, p_.nodes);
          des::Trigger reply(sim_);
          const std::uint64_t span = next_span_++;
          if (sim_.tracing_enabled()) {
            sim_.trace(des::TraceKind::kAsyncBegin, lbl_request_, span, n.id);
          }
          const SimTime issued_at = sim_.now();
          deliver(n.id, target, SimMessage{n.id, &reply});
          n.cpu.release();  // split transaction: don't hold the processor
          co_await reply.wait();
          if (m_rtt_ != nullptr) m_rtt_->add(sim_.now() - issued_at);
          if (sim_.tracing_enabled()) {
            sim_.trace(des::TraceKind::kAsyncEnd, lbl_request_, span, n.id);
          }
          running = false;  // loop around to re-acquire (pays the switch)
        } else if (mem_ != nullptr) {
          // Banked memory: the context holds the processor while the
          // access (including any bank queueing) is in flight, the same
          // busy-span accounting the control system uses.
          const SimTime start = sim_.now();
          co_await mem::AccessAwaitable{*mem_, sim_, n.id,
                                        next_addr(n.id, n.next_offset),
                                        mem::AccessKind::kLwpRow};
          n.stats.mem_cycles += sim_.now() - start;
          ++n.stats.local_accesses;
        } else {
          co_await des::delay(sim_, p_.t_local);
          n.stats.mem_cycles += p_.t_local;
          ++n.stats.local_accesses;
        }
      }
    }
  }

  /// Turns incoming parcels into processor work at the home node.
  des::Process dispatcher(TestNode& n) {
    while (true) {
      const SimMessage msg = co_await n.incoming.receive();
      sim_.spawn(handle_parcel(n, msg));
    }
  }

  des::Process handle_parcel(TestNode& n, SimMessage msg) {
    co_await n.cpu.acquire();
    if (p_.t_switch > 0.0) {
      co_await des::delay(sim_, p_.t_switch);
      n.stats.overhead_cycles += p_.t_switch;
    }
    // The action: a memory access performed on behalf of the parcel.
    if (mem_ != nullptr) {
      const SimTime start = sim_.now();
      co_await mem::AccessAwaitable{*mem_, sim_, n.id,
                                    next_addr(n.id, n.next_offset),
                                    mem::AccessKind::kLwpRow};
      n.stats.mem_cycles += sim_.now() - start;
    } else {
      co_await des::delay(sim_, p_.t_local);
      n.stats.mem_cycles += p_.t_local;
    }
    n.cpu.release();
    ++n.stats.accesses_served;
    des::Trigger* reply = msg.reply;
    ship(sim_, n.nic, p_.nic_gap, net_, n.id, msg.src, p_.message_bytes,
         [reply] { reply->fire(); });
  }

  void deliver(NodeId src, NodeId dst, SimMessage msg) {
    auto* box = &nodes_[dst]->incoming;
    ship(sim_, nodes_[src]->nic, p_.nic_gap, net_, src, dst, p_.message_bytes,
         [box, msg] { box->send(msg); });
  }

  SplitTransactionParams p_;
  const Interconnect& net_;
  const mem::MemorySystem* mem_;  ///< nullptr: analytic constant path
  des::Simulation sim_;
  std::vector<std::unique_ptr<TestNode>> nodes_;
  // Observability hooks, bound at construction iff the layer is on.
  obs::Summary* m_rtt_ = nullptr;
  des::LabelId lbl_request_ = 0;
  std::uint64_t next_span_ = 1;  ///< async-span ids for request lifecycles
};

std::unique_ptr<Interconnect> default_net(const SplitTransactionParams& p) {
  if (p.contention) {
    // Same topology, calibrated to the same zero-load latencies — the
    // packet model binds itself to the run's Simulation on first use.
    return interconnect::make_contention_interconnect(p.network, p.nodes,
                                                      p.round_trip_latency);
  }
  return make_interconnect(p.network, p.nodes, p.round_trip_latency);
}

/// Builds the run's memory model from params.memory.  "analytic" returns
/// nullptr — the systems then run the pre-seam constant-delay code path,
/// keeping the default figures bitwise identical.  Anything else goes
/// through make_memory (which rejects unknown kinds), calibrated so the
/// zero-load access latency is exactly t_local.
std::unique_ptr<mem::MemorySystem> default_memory(
    const SplitTransactionParams& p) {
  if (p.memory == "analytic") return nullptr;
  mem::MemoryConfig mc;
  mc.kind = p.memory;
  mc.nodes = p.nodes;
  mc.banks = p.mem_banks;
  mc.queue = p.mem_queue;
  mc.lwp_row_cycles = p.t_local;
  return mem::make_memory(mc);
}

}  // namespace

SystemRunResult run_split_transaction_system(const SplitTransactionParams& params,
                                             const Interconnect* net,
                                             const mem::MemorySystem* memory) {
  params.validate();
  std::unique_ptr<Interconnect> owned;
  if (net == nullptr) {
    owned = default_net(params);
    net = owned.get();
  }
  std::unique_ptr<mem::MemorySystem> owned_mem;
  if (memory == nullptr) {
    owned_mem = default_memory(params);
    memory = owned_mem.get();  // stays nullptr for "analytic"
  }
  SplitTransactionSystem system(params, *net, memory);
  return system.run();
}

SystemRunResult run_message_passing_system(const SplitTransactionParams& params,
                                           const Interconnect* net,
                                           const mem::MemorySystem* memory) {
  params.validate();
  std::unique_ptr<Interconnect> owned;
  if (net == nullptr) {
    owned = default_net(params);
    net = owned.get();
  }
  std::unique_ptr<mem::MemorySystem> owned_mem;
  if (memory == nullptr) {
    owned_mem = default_memory(params);
    memory = owned_mem.get();  // stays nullptr for "analytic"
  }
  MessagePassingSystem system(params, *net, memory);
  return system.run();
}

ComparisonPoint compare_systems(const SplitTransactionParams& params) {
  const SystemRunResult test = run_split_transaction_system(params);
  const SystemRunResult control = run_message_passing_system(params);
  ComparisonPoint out;
  out.test_work = test.total_work();
  out.control_work = control.total_work();
  ensure(out.control_work > 0.0, "compare_systems: control did no work");
  out.work_ratio = out.test_work / out.control_work;
  out.test_idle = test.mean_idle_fraction();
  out.control_idle = control.mean_idle_fraction();
  return out;
}

}  // namespace pimsim::parcel
