// A functional parcel machine: the "microserver" execution layer of
// PIM Lite-style designs (paper Section 2.2), built from the statistical
// substrate's primitives but moving *real data*.
//
// Every node owns a MemoryStore shard and a parcel engine; parcels are
// serialized to their wire format on every hop (so the model's traffic
// volumes are honest), executed at the home node against the shard with a
// configurable memory access cost, and answered through their
// continuation.  Client code runs inside driver processes and awaits
// replies with RequestHandle:
//
//   des::Process client(ParcelMachine& m) {
//     auto h = m.request(0, read_parcel);   // issue from node 0
//     co_await h.wait();                    // split transaction
//     use(h.value());
//   }
//
// The machine also exposes fire-and-forget posts (writes, notifications)
// and per-node/ per-machine traffic statistics.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "memory/memory_system.hpp"
#include "parcel/action.hpp"
#include "parcel/network.hpp"
#include "parcel/parcel.hpp"

namespace pimsim::obs {
class Counter;
class Summary;
}  // namespace pimsim::obs

namespace pimsim::parcel {

/// Cost model of one node's parcel engine.
struct RuntimeCosts {
  Cycles dispatch = 2.0;       ///< decode/dispatch per incident parcel
  Cycles memory_access = 22.0; ///< row access per executed action
  Cycles reply_issue = 1.0;    ///< composing the reply parcel
};

/// Aggregate traffic/work statistics of one node.
struct RuntimeNodeStats {
  std::uint64_t parcels_executed = 0;  ///< actions run at this node
  std::uint64_t replies_returned = 0;  ///< continuations answered
  std::uint64_t bytes_received = 0;    ///< wire bytes into this node
  std::uint64_t bytes_sent = 0;        ///< wire bytes out of this node
};

class ParcelMachine;

/// Completion handle of one outstanding request (split transaction).
/// Valid while the issuing ParcelMachine is alive.
class RequestHandle {
 public:
  /// Awaitable that completes when the reply parcel arrives.
  [[nodiscard]] auto wait() { return state_->trigger.wait(); }
  /// True once the reply has arrived.
  [[nodiscard]] bool done() const { return state_->done; }
  /// The reply's value; throws if awaited before completion or the
  /// action returned nothing.
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend class ParcelMachine;
  struct State {
    explicit State(des::Simulation& sim) : trigger(sim) {}
    des::Trigger trigger;
    bool done = false;
    std::optional<std::uint64_t> value;
    SimTime issued_at = 0.0;  ///< issue timestamp for the RTT summary
  };
  explicit RequestHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// An array of PIM nodes executing functional parcels.
class ParcelMachine {
 public:
  /// Builds `nodes` nodes over `net` (not owned; must outlive the machine)
  /// and spawns their parcel engines into `sim`.  When `memory` is wired
  /// (not owned; must outlive the machine), each engine's per-action
  /// memory access goes through the MemorySystem seam — addressed by the
  /// parcel's first operand, issued from the home node — instead of
  /// charging the flat costs.memory_access constant.
  ParcelMachine(des::Simulation& sim, std::size_t nodes,
                const Interconnect& net, RuntimeCosts costs = {},
                const mem::MemorySystem* memory = nullptr);

  ParcelMachine(const ParcelMachine&) = delete;
  ParcelMachine& operator=(const ParcelMachine&) = delete;

  /// Methods must be registered before the simulation starts them.
  ActionRegistry& registry() { return registry_; }

  /// Issues `parcel` from node `src` expecting a reply; the continuation
  /// is filled in by the machine. Returns the handle to await.
  [[nodiscard]] RequestHandle request(NodeId src, Parcel parcel);

  /// Issues a parcel with no reply expected (write/notify semantics).
  void post(NodeId src, Parcel parcel);

  /// Runs the simulation until quiescent, then throws LogicError if any
  /// request() is still awaiting its reply or any driver process beyond
  /// the node engines is still suspended — a hang that sim.run() alone
  /// would let exit silently.  If the Simulation hosts processes that
  /// legitimately idle forever besides this machine's engines (another
  /// ParcelMachine, an app-level server), pass their count so they are
  /// not mistaken for stuck drivers.
  void run(std::size_t extra_idle_processes = 0);

  /// Requests issued via request() whose reply has not yet arrived.
  [[nodiscard]] std::size_t outstanding_requests() const {
    return pending_.size();
  }

  /// Direct access to a node's memory shard (for setup/verification).
  [[nodiscard]] MemoryStore& store(NodeId node);

  [[nodiscard]] std::size_t nodes() const { return nodes_.size(); }
  [[nodiscard]] const RuntimeNodeStats& node_stats(NodeId node) const;
  [[nodiscard]] std::uint64_t total_bytes_on_wire() const;

  /// Publishes machine-wide runtime statistics (parcels executed, replies,
  /// wire bytes) into a metrics registry.  Harnesses call this after the
  /// run, guarded by Simulation::metrics_enabled().
  void collect_metrics(obs::MetricsRegistry& registry) const;

  /// Home node of a (sharded) virtual address: low bits select the node.
  [[nodiscard]] NodeId home_of(std::uint64_t vaddr) const {
    return static_cast<NodeId>((vaddr / 8) % nodes_.size());
  }

 private:
  struct Node {
    Node(des::Simulation& sim, std::uint32_t id)
        : inbox(std::make_unique<des::Mailbox<std::vector<std::uint8_t>>>(
              sim, "pmach" + std::to_string(id) + ".in")) {}
    MemoryStore store;
    std::unique_ptr<des::Mailbox<std::vector<std::uint8_t>>> inbox;
    RuntimeNodeStats stats;
  };

  void ship(Parcel parcel);
  des::Process engine(Node& node, NodeId id);

  des::Simulation& sim_;
  const Interconnect& net_;
  RuntimeCosts costs_;
  const mem::MemorySystem* memory_;  ///< nullptr: flat memory_access cost
  ActionRegistry registry_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Observability hooks, bound at construction iff the respective layer
  // is on (null / zero-label otherwise; see src/obs/).
  obs::Summary* m_rtt_ = nullptr;      ///< request round-trip summary
  obs::Counter* m_requests_ = nullptr; ///< request() issue counter
  des::LabelId lbl_request_ = 0;       ///< async-span label, 0 = untraced
  // Outstanding requests keyed by continuation context id.
  std::uint64_t next_context_ = 1;
  // lint:allow(unordered-container): context-id lookup on reply, never iterated
  std::unordered_map<std::uint64_t, std::shared_ptr<RequestHandle::State>>
      pending_;
};

}  // namespace pimsim::parcel
