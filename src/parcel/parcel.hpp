// The parcel (PARallel Control ELement) message format, paper Figure 8.
//
// A parcel is a memory-borne message: the interconnect transport layer
// sees an outer wrapper (source/destination node, payload size); the
// inner message names a destination datum by virtual address, an action
// to perform on it (from a hardware-supported primitive up to a method
// invocation on an object), optional operand values, and a continuation
// that tells the acting node where to send results.
//
// serialize()/deserialize() define the wire format used by the functional
// examples; the statistical latency-hiding models exchange Parcel values
// in memory and never pay for encoding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pimsim::parcel {

/// Node identifier within a PIM array.
using NodeId = std::uint32_t;

/// What the destination node should do with the parcel.
enum class ActionKind : std::uint8_t {
  kRead = 0,    ///< return the 64-bit datum at the target address
  kWrite = 1,   ///< store operand[0] at the target address
  kAmoAdd = 2,  ///< atomic fetch-and-add of operand[0]; returns old value
  kMethod = 3,  ///< invoke registered method `method_id` on the target object
  kReply = 4,   ///< continuation carrying a result back to the requester
};

[[nodiscard]] const char* to_string(ActionKind kind);

/// Continuation: where the result (if any) should go.
struct Continuation {
  NodeId node = 0;            ///< node to notify
  std::uint64_t context = 0;  ///< opaque requester context (thread/parcel id)

  friend bool operator==(const Continuation&, const Continuation&) = default;
};

/// A complete parcel.
struct Parcel {
  // --- transport wrapper -------------------------------------------------
  NodeId src = 0;
  NodeId dst = 0;

  // --- message -----------------------------------------------------------
  std::uint64_t target_vaddr = 0;       ///< destination datum (virtual)
  ActionKind action = ActionKind::kRead;
  std::uint32_t method_id = 0;          ///< meaningful for kMethod
  std::vector<std::uint64_t> operands;  ///< action operands / reply value

  // --- continuation ------------------------------------------------------
  Continuation continuation;

  /// Size of the serialized parcel in bytes (wrapper + message):
  /// u32 x {magic, src, dst, method_id, operand count, continuation node},
  /// u8 action, u64 x {target vaddr, continuation context, each operand}.
  [[nodiscard]] std::size_t wire_size() const {
    return 6 * 4 + 1 + 2 * 8 + 8 * operands.size();
  }

  friend bool operator==(const Parcel&, const Parcel&) = default;
};

/// Encodes a parcel into its wire format (little-endian, length-prefixed).
[[nodiscard]] std::vector<std::uint8_t> serialize(const Parcel& parcel);

/// Decodes a wire image; throws ConfigError on truncation or bad fields.
[[nodiscard]] Parcel deserialize(std::span<const std::uint8_t> bytes);

}  // namespace pimsim::parcel
