#include "parcel/runtime.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pimsim::parcel {

std::uint64_t RequestHandle::value() const {
  require(state_->done, "RequestHandle::value: request not completed");
  require(state_->value.has_value(),
          "RequestHandle::value: action returned no value");
  return *state_->value;
}

ParcelMachine::ParcelMachine(des::Simulation& sim, std::size_t nodes,
                             const Interconnect& net, RuntimeCosts costs,
                             const mem::MemorySystem* memory)
    : sim_(sim), net_(net), costs_(costs), memory_(memory) {
  require(nodes > 0, "ParcelMachine: need at least one node");
  require(costs.dispatch >= 0.0 && costs.memory_access >= 0.0 &&
              costs.reply_issue >= 0.0,
          "ParcelMachine: costs must be non-negative");
  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, static_cast<std::uint32_t>(i)));
    sim_.spawn(engine(*nodes_.back(), static_cast<NodeId>(i)));
  }
  if (sim_.metrics_enabled()) {
    m_rtt_ = &sim_.metrics().summary("parcel.request_rtt_cycles");
    m_requests_ = &sim_.metrics().counter("parcel.requests");
  }
  if (sim_.tracing_enabled()) lbl_request_ = sim_.trace_label("parcel.request");
}

RequestHandle ParcelMachine::request(NodeId src, Parcel parcel) {
  require(src < nodes_.size(), "ParcelMachine::request: bad source node");
  require(parcel.dst < nodes_.size(), "ParcelMachine::request: bad target node");
  auto state = std::make_shared<RequestHandle::State>(sim_);
  const std::uint64_t context = next_context_++;
  parcel.src = src;
  parcel.continuation = Continuation{src, context};
  state->issued_at = sim_.now();
  if (m_requests_ != nullptr) m_requests_->add();
  if (sim_.tracing_enabled()) {
    sim_.trace(des::TraceKind::kAsyncBegin, lbl_request_, context, src);
  }
  pending_.emplace(context, state);
  ship(std::move(parcel));
  return RequestHandle(std::move(state));
}

void ParcelMachine::post(NodeId src, Parcel parcel) {
  require(src < nodes_.size(), "ParcelMachine::post: bad source node");
  require(parcel.dst < nodes_.size(), "ParcelMachine::post: bad target node");
  parcel.src = src;
  // Continuation node is set but context 0 marks fire-and-forget: the
  // engine drops any result instead of replying.
  parcel.continuation = Continuation{src, 0};
  ship(std::move(parcel));
}

MemoryStore& ParcelMachine::store(NodeId node) {
  require(node < nodes_.size(), "ParcelMachine::store: bad node");
  return nodes_[node]->store;
}

const RuntimeNodeStats& ParcelMachine::node_stats(NodeId node) const {
  require(node < nodes_.size(), "ParcelMachine::node_stats: bad node");
  return nodes_[node]->stats;
}

std::uint64_t ParcelMachine::total_bytes_on_wire() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->stats.bytes_sent;
  return total;
}

void ParcelMachine::collect_metrics(obs::MetricsRegistry& registry) const {
  std::uint64_t executed = 0;
  std::uint64_t replies = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const auto& n : nodes_) {
    executed += n->stats.parcels_executed;
    replies += n->stats.replies_returned;
    sent += n->stats.bytes_sent;
    received += n->stats.bytes_received;
  }
  registry.counter("parcel.executed").add(executed);
  registry.counter("parcel.replies").add(replies);
  registry.counter("parcel.bytes_sent").add(sent);
  registry.counter("parcel.bytes_received").add(received);
}

void ParcelMachine::ship(Parcel parcel) {
  auto bytes = serialize(parcel);
  const std::size_t wire_bytes = bytes.size();
  nodes_[parcel.src]->stats.bytes_sent += wire_bytes;
  auto* inbox = nodes_[parcel.dst]->inbox.get();
  // The interconnect seam: analytic models schedule the arrival after
  // their closed-form latency; the packet-level model segments the wire
  // image into flits and delivers when the last one lands.
  net_.deliver(sim_, parcel.src, parcel.dst, wire_bytes,
               [inbox, bytes = std::move(bytes)] { inbox->send(bytes); });
}

des::Process ParcelMachine::engine(Node& node, NodeId id) {
  while (true) {
    const auto bytes = co_await node.inbox->receive();
    node.stats.bytes_received += bytes.size();
    const Parcel parcel = deserialize(bytes);

    if (parcel.action == ActionKind::kReply) {
      auto it = pending_.find(parcel.continuation.context);
      if (it != pending_.end()) {
        it->second->done = true;
        if (!parcel.operands.empty()) it->second->value = parcel.operands[0];
        if (m_rtt_ != nullptr) m_rtt_->add(sim_.now() - it->second->issued_at);
        if (sim_.tracing_enabled()) {
          sim_.trace(des::TraceKind::kAsyncEnd, lbl_request_,
                     parcel.continuation.context, id);
        }
        it->second->trigger.fire();
        pending_.erase(it);
      }
      continue;
    }

    if (memory_ != nullptr) {
      // Decode/dispatch is engine time; the row access itself goes
      // through the memory seam, addressed by the parcel's target
      // operand so co-located data shares banks and rows honestly.
      co_await des::delay(sim_, costs_.dispatch);
      const std::uint64_t addr =
          parcel.operands.empty() ? 0 : parcel.operands[0];
      co_await mem::AccessAwaitable{*memory_, sim_, id, addr,
                                    mem::AccessKind::kLwpRow};
    } else {
      co_await des::delay(sim_, costs_.dispatch + costs_.memory_access);
    }
    ++node.stats.parcels_executed;
    auto reply = execute_action(parcel, node.store, registry_);
    // Context 0 marks a posted (fire-and-forget) parcel: drop the result.
    if (parcel.continuation.context != 0) {
      if (!reply.has_value()) {
        // Void action with a waiting requester: acknowledge with an
        // empty-operand reply so the split transaction always completes
        // (a request() for a value-less action used to hang forever).
        reply = make_reply(parcel, std::nullopt);
      }
      co_await des::delay(sim_, costs_.reply_issue);
      ++node.stats.replies_returned;
      ship(*reply);
    }
  }
}

void ParcelMachine::run(std::size_t extra_idle_processes) {
  sim_.run();
  if (sim_.metrics_enabled()) {
    obs::MetricsRegistry& registry = sim_.metrics();
    collect_metrics(registry);
    net_.collect_metrics(registry);
    if (memory_ != nullptr) memory_->collect_metrics(registry);
  }
  if (!pending_.empty()) {
    throw LogicError("ParcelMachine::run: simulation went idle with " +
                     std::to_string(pending_.size()) +
                     " request(s) still awaiting a reply (hung split "
                     "transaction)");
  }
  // Engines (and declared extra idlers) legitimately park on their
  // inboxes forever, as do any worker processes the interconnect model
  // itself spawned (a packet-level network parks one per link); anything
  // beyond them is a driver that suspended and was never resumed.
  const std::size_t expected_idle =
      nodes_.size() + extra_idle_processes + net_.idle_processes();
  if (sim_.live_processes() > expected_idle) {
    throw LogicError(
        "ParcelMachine::run: simulation went idle with " +
        std::to_string(sim_.live_processes() - expected_idle) +
        " driver process(es) still suspended (deadlocked model)");
  }
}

}  // namespace pimsim::parcel
