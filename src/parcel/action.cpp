#include "parcel/action.hpp"

#include "common/error.hpp"

namespace pimsim::parcel {

std::uint64_t MemoryStore::read(std::uint64_t vaddr) const {
  auto it = words_.find(vaddr);
  return it == words_.end() ? 0 : it->second;
}

void MemoryStore::write(std::uint64_t vaddr, std::uint64_t value) {
  words_[vaddr] = value;
}

std::uint64_t MemoryStore::amo_add(std::uint64_t vaddr, std::uint64_t delta) {
  auto& slot = words_[vaddr];
  const std::uint64_t old = slot;
  slot += delta;
  return old;
}

void ActionRegistry::register_method(std::uint32_t method_id, std::string name,
                                     MethodFn fn) {
  require(static_cast<bool>(fn), "ActionRegistry: empty method function");
  const auto [it, inserted] =
      methods_.emplace(method_id, Entry{std::move(name), std::move(fn)});
  (void)it;
  require(inserted, "ActionRegistry: method id already registered");
}

bool ActionRegistry::has_method(std::uint32_t method_id) const {
  return methods_.count(method_id) > 0;
}

const std::string& ActionRegistry::method_name(std::uint32_t method_id) const {
  auto it = methods_.find(method_id);
  require(it != methods_.end(), "ActionRegistry: unknown method id");
  return it->second.name;
}

std::optional<std::uint64_t> ActionRegistry::invoke(
    std::uint32_t method_id, MemoryStore& store, std::uint64_t target_vaddr,
    std::span<const std::uint64_t> operands) const {
  auto it = methods_.find(method_id);
  require(it != methods_.end(), "ActionRegistry: unknown method id");
  return it->second.fn(store, target_vaddr, operands);
}

std::optional<Parcel> execute_action(const Parcel& parcel, MemoryStore& store,
                                     const ActionRegistry& registry) {
  std::optional<std::uint64_t> result;
  switch (parcel.action) {
    case ActionKind::kRead:
      result = store.read(parcel.target_vaddr);
      break;
    case ActionKind::kWrite:
      require(!parcel.operands.empty(), "execute_action: write needs a value");
      store.write(parcel.target_vaddr, parcel.operands[0]);
      break;
    case ActionKind::kAmoAdd:
      require(!parcel.operands.empty(), "execute_action: amo-add needs a delta");
      result = store.amo_add(parcel.target_vaddr, parcel.operands[0]);
      break;
    case ActionKind::kMethod:
      result = registry.invoke(parcel.method_id, store, parcel.target_vaddr,
                               parcel.operands);
      break;
    case ActionKind::kReply:
      // Replies are consumed by the requester's continuation, not executed.
      return std::nullopt;
  }
  // "After performing this action, the remote node in this example returns
  //  a result value to the originating source node, although this is not
  //  always necessary."
  if (!result.has_value()) return std::nullopt;
  return make_reply(parcel, result);
}

Parcel make_reply(const Parcel& request, std::optional<std::uint64_t> result) {
  Parcel reply;
  reply.src = request.dst;
  reply.dst = request.continuation.node;
  reply.action = ActionKind::kReply;
  reply.target_vaddr = request.target_vaddr;
  if (result.has_value()) reply.operands = {*result};
  reply.continuation = request.continuation;
  return reply;
}

}  // namespace pimsim::parcel
