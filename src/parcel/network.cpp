#include "parcel/network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "des/simulation.hpp"

namespace pimsim::parcel {

void Interconnect::deliver(des::Simulation& sim, NodeId src, NodeId dst,
                           std::size_t /*bytes*/,
                           std::function<void()> arrive) const {
  sim.schedule_in(one_way_latency(src, dst), std::move(arrive));
}

FlatInterconnect::FlatInterconnect(Cycles round_trip)
    : one_way_(round_trip / 2.0) {
  require(round_trip >= 0.0, "FlatInterconnect: latency must be non-negative");
}

Cycles FlatInterconnect::one_way_latency(NodeId, NodeId) const { return one_way_; }

RingInterconnect::RingInterconnect(std::size_t nodes, Cycles base, Cycles per_hop)
    : nodes_(nodes), base_(base), per_hop_(per_hop) {
  require(nodes > 0, "RingInterconnect: need at least one node");
  require(base >= 0.0 && per_hop >= 0.0,
          "RingInterconnect: latencies must be non-negative");
}

Cycles RingInterconnect::one_way_latency(NodeId src, NodeId dst) const {
  require(src < nodes_ && dst < nodes_, "RingInterconnect: node out of range");
  // Unidirectional ring: hops from src forward to dst.
  const std::size_t hops = (dst + nodes_ - src) % nodes_;
  return base_ + per_hop_ * static_cast<double>(hops);
}

Mesh2DInterconnect::Mesh2DInterconnect(std::size_t width, std::size_t height,
                                       Cycles base, Cycles per_hop)
    : width_(width), height_(height), base_(base), per_hop_(per_hop) {
  require(width > 0 && height > 0, "Mesh2DInterconnect: empty grid");
  require(base >= 0.0 && per_hop >= 0.0,
          "Mesh2DInterconnect: latencies must be non-negative");
}

Cycles Mesh2DInterconnect::one_way_latency(NodeId src, NodeId dst) const {
  require(src < nodes() && dst < nodes(), "Mesh2DInterconnect: node out of range");
  const auto sx = static_cast<long>(src % width_);
  const auto sy = static_cast<long>(src / width_);
  const auto dx = static_cast<long>(dst % width_);
  const auto dy = static_cast<long>(dst / width_);
  const long manhattan = std::labs(sx - dx) + std::labs(sy - dy);
  return base_ + per_hop_ * static_cast<double>(manhattan);
}

Torus2DInterconnect::Torus2DInterconnect(std::size_t width, std::size_t height,
                                         Cycles base, Cycles per_hop)
    : width_(width), height_(height), base_(base), per_hop_(per_hop) {
  require(width > 0 && height > 0, "Torus2DInterconnect: empty grid");
  require(base >= 0.0 && per_hop >= 0.0,
          "Torus2DInterconnect: latencies must be non-negative");
}

Cycles Torus2DInterconnect::one_way_latency(NodeId src, NodeId dst) const {
  require(src < nodes() && dst < nodes(),
          "Torus2DInterconnect: node out of range");
  const std::size_t sx = src % width_;
  const std::size_t sy = src / width_;
  const std::size_t dx = dst % width_;
  const std::size_t dy = dst / width_;
  const std::size_t fx = (dx + width_ - sx) % width_;
  const std::size_t fy = (dy + height_ - sy) % height_;
  const std::size_t hx = std::min(fx, width_ - fx);
  const std::size_t hy = std::min(fy, height_ - fy);
  return base_ + per_hop_ * static_cast<double>(hx + hy);
}

std::size_t square_grid_side(const std::string& kind, std::size_t nodes) {
  const auto width = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(nodes))));
  if (width * width != nodes) {
    throw InvalidArgument(kind +
                          " needs a square node count (width * height == "
                          "nodes with width == height); got " +
                          std::to_string(nodes));
  }
  return width;
}

double mean_interconnect_hops(const std::string& kind, std::size_t nodes) {
  require(nodes > 0, "mean_interconnect_hops: need at least one node");
  if (kind == "flat") {
    return 2.0;  // every path crosses the crossbar: up and back down
  }
  if (kind == "ring") {
    // Mean one-way distance over uniform random pairs (src and dst drawn
    // independently, as the functional machine's address sharding does):
    // forward hops are uniform over {0, ..., nodes-1}, so the mean is
    // (nodes-1)/2 — not nodes/2, which understated per-hop latency,
    // noticeably so for small rings.
    return static_cast<double>(nodes - 1) / 2.0;
  }
  if (kind == "mesh2d") {
    // Mean manhattan distance on a w x w grid is ~ 2w/3.
    const std::size_t width = square_grid_side(kind, nodes);
    return 2.0 * static_cast<double>(width) / 3.0;
  }
  if (kind == "torus" || kind == "torus2d") {
    // Mean wrapped distance per dimension over independent uniform
    // endpoints is floor(w^2/4)/w, so the mean hop count is twice that.
    const std::size_t width = square_grid_side(kind, nodes);
    return 2.0 * static_cast<double>((width * width) / 4) /
           static_cast<double>(width);
  }
  throw InvalidArgument("mean_interconnect_hops: unknown kind '" + kind +
                        "'; valid kinds are flat, ring, mesh2d, torus");
}

std::unique_ptr<Interconnect> make_interconnect(const std::string& kind,
                                                std::size_t nodes,
                                                Cycles round_trip) {
  require(nodes > 0, "make_interconnect: need at least one node");
  if (kind == "flat") {
    return std::make_unique<FlatInterconnect>(round_trip);
  }
  if (kind == "ring") {
    const double mean_hops = mean_interconnect_hops(kind, nodes);
    const Cycles per_hop = (round_trip / 2.0) / std::max(mean_hops, 1.0);
    return std::make_unique<RingInterconnect>(nodes, 0.0, per_hop);
  }
  if (kind == "mesh2d") {
    const std::size_t width = square_grid_side(kind, nodes);
    const double mean_hops = mean_interconnect_hops(kind, nodes);
    const Cycles per_hop = (round_trip / 2.0) / std::max(mean_hops, 1.0);
    return std::make_unique<Mesh2DInterconnect>(width, width, 0.0, per_hop);
  }
  if (kind == "torus") {
    const std::size_t width = square_grid_side(kind, nodes);
    const double mean_hops = mean_interconnect_hops(kind, nodes);
    const Cycles per_hop = (round_trip / 2.0) / std::max(mean_hops, 1.0);
    return std::make_unique<Torus2DInterconnect>(width, width, 0.0, per_hop);
  }
  throw InvalidArgument("make_interconnect: unknown kind '" + kind +
                        "'; valid kinds are flat, ring, mesh2d, torus");
}

}  // namespace pimsim::parcel
