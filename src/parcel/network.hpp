// Interconnect latency models.
//
// The paper's parcel study assumes a "flat (fixed delay)" system-wide
// latency; FlatInterconnect implements that.  Ring and 2-D mesh models are
// provided for the topology ablation (how sensitive the latency-hiding
// conclusions are to the flat-latency assumption).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "parcel/parcel.hpp"

namespace pimsim::parcel {

/// Latency model between PIM nodes.
class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// One-way delivery latency from src to dst, in HWP cycles.
  [[nodiscard]] virtual Cycles one_way_latency(NodeId src, NodeId dst) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Round trip src -> dst -> src.
  [[nodiscard]] Cycles round_trip_latency(NodeId src, NodeId dst) const {
    return one_way_latency(src, dst) + one_way_latency(dst, src);
  }
};

/// The paper's model: every one-way transfer takes the same fixed delay.
class FlatInterconnect final : public Interconnect {
 public:
  /// `round_trip` is the paper's swept "system wide latency" L; each
  /// one-way hop costs L/2.
  explicit FlatInterconnect(Cycles round_trip);

  [[nodiscard]] Cycles one_way_latency(NodeId, NodeId) const override;
  const char* name() const override { return "flat"; }

 private:
  Cycles one_way_;
};

/// Unidirectional-distance ring: latency = base + per_hop * ring distance.
class RingInterconnect final : public Interconnect {
 public:
  RingInterconnect(std::size_t nodes, Cycles base, Cycles per_hop);

  [[nodiscard]] Cycles one_way_latency(NodeId src, NodeId dst) const override;
  const char* name() const override { return "ring"; }

 private:
  std::size_t nodes_;
  Cycles base_;
  Cycles per_hop_;
};

/// 2-D mesh with dimension-ordered routing: base + per_hop * manhattan.
class Mesh2DInterconnect final : public Interconnect {
 public:
  /// Nodes are laid out row-major on a width x height grid; node count
  /// must equal width*height.
  Mesh2DInterconnect(std::size_t width, std::size_t height, Cycles base,
                     Cycles per_hop);

  [[nodiscard]] Cycles one_way_latency(NodeId src, NodeId dst) const override;
  const char* name() const override { return "mesh2d"; }

  [[nodiscard]] std::size_t nodes() const { return width_ * height_; }

 private:
  std::size_t width_;
  std::size_t height_;
  Cycles base_;
  Cycles per_hop_;
};

/// Builds an interconnect whose *mean* round trip over uniform random node
/// pairs approximately equals `round_trip` (used so ablation topologies are
/// comparable to the flat model at the same average latency).
[[nodiscard]] std::unique_ptr<Interconnect> make_interconnect(
    const std::string& kind, std::size_t nodes, Cycles round_trip);

}  // namespace pimsim::parcel
