// Interconnect latency models.
//
// The paper's parcel study assumes a "flat (fixed delay)" system-wide
// latency; FlatInterconnect implements that.  Ring, 2-D mesh, and 2-D
// torus models are provided for the topology ablation (how sensitive the
// latency-hiding conclusions are to the flat-latency assumption).
//
// All of these are *analytic*: latency is a closed form of the node pair,
// independent of load.  The deliver() seam lets a model override how a
// message actually reaches its destination; the packet-level
// ContentionInterconnect (interconnect/contention.hpp) overrides it to
// route flits through a simulated network where contended links queue.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "parcel/parcel.hpp"

namespace pimsim::des {
class Simulation;
}  // namespace pimsim::des

namespace pimsim::obs {
class MetricsRegistry;
}  // namespace pimsim::obs

namespace pimsim::parcel {

/// Latency model between PIM nodes.
class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// One-way delivery latency from src to dst, in HWP cycles.  For
  /// contention-aware models this is the zero-load latency.
  [[nodiscard]] virtual Cycles one_way_latency(NodeId src, NodeId dst) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Round trip src -> dst -> src.
  [[nodiscard]] Cycles round_trip_latency(NodeId src, NodeId dst) const {
    return one_way_latency(src, dst) + one_way_latency(dst, src);
  }

  /// Delivers a `bytes`-byte message from src to dst, invoking `arrive`
  /// when it reaches the destination.  The analytic default schedules
  /// `arrive` after one_way_latency(src, dst) — contention-free, and
  /// byte-size independent.  Contention-aware models override this to
  /// inject the message into their simulated network instead.
  virtual void deliver(des::Simulation& sim, NodeId src, NodeId dst,
                       std::size_t bytes, std::function<void()> arrive) const;

  /// Worker processes this model currently has parked in a Simulation
  /// (forever-idle, by design).  Harnesses that audit suspended
  /// processes for hangs (ParcelMachine::run) discount these.  Analytic
  /// models spawn nothing.
  [[nodiscard]] virtual std::size_t idle_processes() const { return 0; }

  /// Publishes end-of-run statistics into a metrics registry (see
  /// src/obs/metrics.hpp).  Harnesses call this after the run, guarded by
  /// Simulation::metrics_enabled(); analytic models publish nothing.
  virtual void collect_metrics(obs::MetricsRegistry& registry) const {
    (void)registry;
  }
};

/// Mean hop count of topology `kind` over independent uniform (src, dst)
/// pairs — the calibration denominator shared by make_interconnect and
/// the packet-level make_contention_interconnect, so the two factories
/// stay latency-compatible by construction.  flat counts its two
/// crossbar links.
[[nodiscard]] double mean_interconnect_hops(const std::string& kind,
                                            std::size_t nodes);

/// Side length of the square grid the factories build for mesh2d/torus
/// kinds; throws InvalidArgument when `nodes` has no integer square root.
[[nodiscard]] std::size_t square_grid_side(const std::string& kind,
                                           std::size_t nodes);

/// The paper's model: every one-way transfer takes the same fixed delay.
class FlatInterconnect final : public Interconnect {
 public:
  /// `round_trip` is the paper's swept "system wide latency" L; each
  /// one-way hop costs L/2.
  explicit FlatInterconnect(Cycles round_trip);

  [[nodiscard]] Cycles one_way_latency(NodeId, NodeId) const override;
  const char* name() const override { return "flat"; }

 private:
  Cycles one_way_;
};

/// Unidirectional-distance ring: latency = base + per_hop * ring distance.
class RingInterconnect final : public Interconnect {
 public:
  RingInterconnect(std::size_t nodes, Cycles base, Cycles per_hop);

  [[nodiscard]] Cycles one_way_latency(NodeId src, NodeId dst) const override;
  const char* name() const override { return "ring"; }

 private:
  std::size_t nodes_;
  Cycles base_;
  Cycles per_hop_;
};

/// 2-D mesh with dimension-ordered routing: base + per_hop * manhattan.
class Mesh2DInterconnect final : public Interconnect {
 public:
  /// Nodes are laid out row-major on a width x height grid; node count
  /// must equal width*height.
  Mesh2DInterconnect(std::size_t width, std::size_t height, Cycles base,
                     Cycles per_hop);

  [[nodiscard]] Cycles one_way_latency(NodeId src, NodeId dst) const override;
  const char* name() const override { return "mesh2d"; }

  [[nodiscard]] std::size_t nodes() const { return width_ * height_; }

 private:
  std::size_t width_;
  std::size_t height_;
  Cycles base_;
  Cycles per_hop_;
};

/// 2-D torus: like the mesh but each dimension wraps, so the per-dimension
/// distance is the shorter way around: base + per_hop * wrapped manhattan.
class Torus2DInterconnect final : public Interconnect {
 public:
  Torus2DInterconnect(std::size_t width, std::size_t height, Cycles base,
                      Cycles per_hop);

  [[nodiscard]] Cycles one_way_latency(NodeId src, NodeId dst) const override;
  const char* name() const override { return "torus"; }

  [[nodiscard]] std::size_t nodes() const { return width_ * height_; }

 private:
  std::size_t width_;
  std::size_t height_;
  Cycles base_;
  Cycles per_hop_;
};

/// Builds an interconnect whose *mean* round trip over uniform random node
/// pairs approximately equals `round_trip` (used so ablation topologies are
/// comparable to the flat model at the same average latency).
///
/// Valid kinds: flat, ring, mesh2d, torus.  Grid kinds require a square
/// node count (width * height == nodes with width == height); violations
/// and unknown kinds throw InvalidArgument naming the alternatives.
[[nodiscard]] std::unique_ptr<Interconnect> make_interconnect(
    const std::string& kind, std::size_t nodes, Cycles round_trip);

}  // namespace pimsim::parcel
