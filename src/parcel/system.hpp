// The paper's Section 4 experiment: a *test* system of parcel-driven
// split-transaction nodes versus a *control* system of conventional
// blocking message-passing nodes (Figure 10), over the same interconnect
// and the same workload statistics.
//
// Both node models run three states the paper defines:
//   - performing useful operations (1 op per cycle),
//   - performing local memory access,
//   - idle: waiting for a reply (control) or out of ready parcels (test).
//
// Work is counted as useful operations plus memory accesses completed,
// attributed to the node that services them; both systems run for the
// same simulated horizon and the Figure 11 metric is the ratio of the
// totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "memory/memory_system.hpp"
#include "parcel/network.hpp"

namespace pimsim::parcel {

/// Independent parameters of the split-transaction study.
///
/// Table 1 pins ls_mix; the remaining service costs are reconstructed
/// (the paper does not publish them) and exposed here — see DESIGN.md §6.
struct SplitTransactionParams {
  std::size_t nodes = 16;        ///< system size (paper sweeps 1..256)
  double ls_mix = 0.30;          ///< fraction of ops that access memory
  double p_remote = 0.10;        ///< fraction of accesses that are remote
  Cycles t_local = 10.0;         ///< local memory access service time
  Cycles t_switch = 2.0;         ///< parcel context-switch overhead (test)
  Cycles t_send = 1.0;           ///< processor cost to compose a request
  std::size_t parallelism = 4;   ///< parcel contexts per node (test system)
  Cycles round_trip_latency = 100.0;  ///< the swept system-wide latency L
  double horizon = 50'000.0;     ///< simulated cycles per run
  std::uint64_t seed = 1;
  std::string network = "flat";  ///< flat | ring | mesh2d | torus (ablation)

  /// Injection serialization (bandwidth ablation): every message a node
  /// sends occupies its network interface for this many cycles before
  /// entering the (otherwise contention-free) network.  0 reproduces the
  /// paper's infinite-bandwidth assumption.
  Cycles nic_gap = 0.0;

  /// The contention knob: false runs the analytic (closed-form latency)
  /// interconnect the paper assumes; true replaces it with the
  /// packet-level model (interconnect/contention.hpp) of the same
  /// topology, calibrated to the same zero-load latencies, so link and
  /// router contention shows up in every figure that sweeps `network`.
  bool contention = false;

  /// Wire size of one request/reply message; only the packet-level model
  /// reads it (flit segmentation).  The analytic models are
  /// byte-size-independent, matching the paper.
  std::size_t message_bytes = 16;

  /// The memory seam, mirroring `contention`/`network` above: "analytic"
  /// charges t_local as a constant delay (the paper's assumption, and the
  /// bitwise-identical default); "banked" routes every local access —
  /// a node's own and those it serves for others — through the banked
  /// DRAM backend calibrated so its zero-load latency equals t_local.
  std::string memory = "analytic";
  std::size_t mem_banks = 0;  ///< banked: DRAM banks (0 = one per node)
  std::size_t mem_queue = 0;  ///< banked: shared ports (0 = one per bank)

  void validate() const;
};

/// Per-node accounting over one run.
struct NodeStats {
  double useful_cycles = 0.0;    ///< state 1: executing operations
  double mem_cycles = 0.0;       ///< state 2: local memory access
  double overhead_cycles = 0.0;  ///< context switches + request composition
  double idle_cycles = 0.0;      ///< state 3: blocked / no ready parcel
  std::uint64_t compute_ops = 0;
  std::uint64_t local_accesses = 0;   ///< own accesses serviced locally
  std::uint64_t remote_requests = 0;  ///< requests/parcels sent elsewhere
  std::uint64_t accesses_served = 0;  ///< accesses serviced for other nodes

  /// The paper's work metric: useful ops + memory accesses completed here.
  [[nodiscard]] double work() const {
    return static_cast<double>(compute_ops + local_accesses + accesses_served);
  }
};

/// Outcome of one system run.
struct SystemRunResult {
  double horizon = 0.0;
  std::vector<NodeStats> nodes;

  [[nodiscard]] double total_work() const;
  /// Mean over nodes of idle_cycles / horizon.
  [[nodiscard]] double mean_idle_fraction() const;
  /// Mean over nodes of overhead_cycles / horizon.
  [[nodiscard]] double mean_overhead_fraction() const;
};

/// Runs the parcel-driven split-transaction (test) system.
/// `net` overrides the interconnect; by default one is built from
/// params.network and params.round_trip_latency.  `memory` overrides the
/// memory model; by default one is built from params.memory (nullptr —
/// meaning the unchanged constant-t_local path — when it is "analytic").
[[nodiscard]] SystemRunResult run_split_transaction_system(
    const SplitTransactionParams& params, const Interconnect* net = nullptr,
    const mem::MemorySystem* memory = nullptr);

/// Runs the blocking message-passing (control) system. The control system
/// ignores `parallelism` and `t_switch` (one thread per node, no switching).
[[nodiscard]] SystemRunResult run_message_passing_system(
    const SplitTransactionParams& params, const Interconnect* net = nullptr,
    const mem::MemorySystem* memory = nullptr);

/// One Figure 11/12 point: both systems under identical parameters.
struct ComparisonPoint {
  double work_ratio = 0.0;      ///< test work / control work (Figure 11 y-axis)
  double test_idle = 0.0;       ///< mean idle fraction, test system
  double control_idle = 0.0;    ///< mean idle fraction, control system
  double test_work = 0.0;
  double control_work = 0.0;
};

[[nodiscard]] ComparisonPoint compare_systems(const SplitTransactionParams& params);

}  // namespace pimsim::parcel
