// Parcel action execution: the destination side of Figure 9.
//
// "The actions may be simple hardware supported functions or complex
//  functions specified by code blocks."
//
// MemoryStore is a node's sparse 64-bit word memory; ActionRegistry maps
// kMethod parcels onto registered code blocks.  execute_action() performs
// a parcel's action against a store and produces the reply parcel when
// the continuation requests one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "parcel/parcel.hpp"

namespace pimsim::parcel {

/// Sparse word-addressed memory of one PIM node (unbacked words read as 0).
class MemoryStore {
 public:
  [[nodiscard]] std::uint64_t read(std::uint64_t vaddr) const;
  void write(std::uint64_t vaddr, std::uint64_t value);
  /// Atomic fetch-and-add; returns the previous value.
  std::uint64_t amo_add(std::uint64_t vaddr, std::uint64_t delta);
  [[nodiscard]] std::size_t footprint_words() const { return words_.size(); }

 private:
  // lint:allow(unordered-container): sparse vaddr->word store, lookup-only
  std::unordered_map<std::uint64_t, std::uint64_t> words_;
};

/// A method code block: runs against the local store with the parcel's
/// target address and operands; may return a value for the continuation.
using MethodFn = std::function<std::optional<std::uint64_t>(
    MemoryStore& store, std::uint64_t target_vaddr,
    std::span<const std::uint64_t> operands)>;

/// Registry of method code blocks addressable from kMethod parcels.
class ActionRegistry {
 public:
  /// Registers `fn` under `method_id`; re-registration is rejected.
  void register_method(std::uint32_t method_id, std::string name, MethodFn fn);

  [[nodiscard]] bool has_method(std::uint32_t method_id) const;
  [[nodiscard]] const std::string& method_name(std::uint32_t method_id) const;

  /// Runs the method; throws ConfigError for unknown ids.
  std::optional<std::uint64_t> invoke(std::uint32_t method_id,
                                      MemoryStore& store,
                                      std::uint64_t target_vaddr,
                                      std::span<const std::uint64_t> operands) const;

 private:
  struct Entry {
    std::string name;
    MethodFn fn;
  };
  // lint:allow(unordered-container): method-id dispatch table, lookup-only
  std::unordered_map<std::uint32_t, Entry> methods_;
};

/// Builds the kReply parcel answering `request`'s continuation; `result`
/// becomes the single operand when present (void actions acknowledge
/// with an empty operand list).  The single home of the reply wire
/// convention, shared by execute_action() and the runtime engine.
[[nodiscard]] Parcel make_reply(const Parcel& request,
                                std::optional<std::uint64_t> result);

/// Executes `parcel`'s action against `store`.  Returns the reply parcel
/// to send (kReply back to the continuation) if the action yields a value
/// and the continuation names a node, otherwise std::nullopt.
[[nodiscard]] std::optional<Parcel> execute_action(const Parcel& parcel,
                                                   MemoryStore& store,
                                                   const ActionRegistry& registry);

}  // namespace pimsim::parcel
