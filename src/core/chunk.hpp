// Self-describing result chunks for the sharded sweep fabric.
//
// `pimsim sweep ... shard=i/N out=DIR` runs one deterministic shard of a
// declarative grid and writes a chunk — the shard's rendered per-point
// blocks (CSV/text/JSON, byte-identical to the unsharded output) plus a
// JSON sidecar (schema "pimsim-chunk-v1": grid fingerprint, per-point
// FNV-1a fingerprints, the shard's per-simulation obs::MetricsHub
// snapshots, wall time) and an idempotent `manifest.json` describing the
// whole grid ("pimsim-manifest-v1").  `pimsim merge DIR` validates every
// chunk against the manifest — missing, duplicate, corrupted, and
// divergent-fingerprint chunks are detected, not merged — and emits the
// merged table byte-identical to an unsharded run.  Because every point
// is bitwise deterministic (PRs 1/6), a complete, fingerprint-valid
// chunk is a cache: rerunning its shard is a no-op skip, so a killed
// multi-hour sweep restarts in seconds.  See docs/SWEEPS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pimsim::core {

/// One sweep unit's output inside a chunk.  In a plain grid a unit is a
/// point and `block` holds its rendered bytes; in a replicated grid
/// (docs/REPLICATION.md) a unit is one (point, rep) replication and
/// `block` holds the exact "pimsim-rep-v1" serialization of its table,
/// which `pimsim merge` refolds bit-for-bit.
struct ChunkPoint {
  std::size_t point = 0;          ///< global grid index
  std::size_t rep = 0;            ///< replication index (replicated grids)
  std::string assignment;         ///< swept-axis "k=v ..." summary (may be empty)
  std::string block;              ///< rendered block, or serialized rep table
  std::uint64_t fingerprint = 0;  ///< FNV-1a 64 of `block`
};

/// Grid identity shared by the manifest and every chunk of one sweep.
/// When any point requests reps > 1 the grid is *replicated*: the shard
/// plan assigns (point, rep) units instead of points, so the replication
/// axis shards like any other.  Non-replicated grids leave the unit
/// vectors empty and their manifest/chunk bytes are unchanged from
/// pimsim-manifest-v1 as written before the replication engine existed.
struct GridSpec {
  std::string scenario;
  std::string format;                    ///< "text" | "csv" | "json"
  std::size_t shards = 1;
  std::uint64_t grid_fingerprint = 0;    ///< FNV-1a of the canonical grid text
  std::vector<std::string> assignments;  ///< per point, in grid order
  std::vector<std::size_t> shard_of;     ///< planned shard per point (or of
                                         ///< the point's rep-0 unit)
  bool replicated = false;               ///< any point's reps > 1
  std::vector<std::size_t> point_reps;   ///< per point; empty when !replicated
  std::vector<std::size_t> unit_point;   ///< per unit, in grid order
  std::vector<std::size_t> unit_rep;     ///< per unit, in grid order
  std::vector<std::size_t> unit_shard;   ///< planned shard per unit
};

/// A chunk read back from disk (sidecar + rendered blocks, validated).
struct ChunkData {
  std::size_t shard = 0;
  double wall_seconds = 0.0;
  std::vector<ChunkPoint> points;        ///< in grid order
  std::vector<std::string> metrics;      ///< per-simulation snapshot bytes
};

/// "chunk-<i>-of-<N>" — basename of a chunk's .csv/.json pair.
[[nodiscard]] std::string chunk_basename(std::size_t shard, std::size_t shards);

/// Creates `dir` if needed and writes (or re-validates) `manifest.json`.
/// The manifest bytes are a pure function of the grid, so concurrent
/// shard processes write identical files; a directory already holding a
/// *different* sweep's manifest throws InvalidArgument instead of mixing
/// two grids' chunks.
void write_or_check_manifest(const std::string& dir, const GridSpec& grid);

/// Writes `chunk_basename(shard).{csv,json}` atomically (tmp + rename).
/// `points` must be this shard's points in grid order with blocks and
/// fingerprints filled in; `metrics` is the shard's snapshot_bytes().
void write_chunk(const std::string& dir, const GridSpec& grid,
                 std::size_t shard, const std::vector<ChunkPoint>& points,
                 const std::vector<std::string>& metrics, double wall_seconds);

/// True when the shard's chunk exists and validates against `grid`
/// (sidecar parses, grid fingerprint and planned point set match, every
/// block's bytes match its recorded fingerprint) — the resume check.
[[nodiscard]] bool chunk_complete(const std::string& dir, const GridSpec& grid,
                                  std::size_t shard);

/// Reads manifest.json back into a GridSpec (shard_of per point, no
/// weights needed).  Throws InvalidArgument when missing or malformed.
[[nodiscard]] GridSpec read_manifest(const std::string& dir);

/// Reads and fully validates one chunk against `grid`.  Throws
/// InvalidArgument naming the file and the defect (missing, truncated,
/// grid mismatch, wrong point set, fingerprint divergence).
[[nodiscard]] ChunkData read_chunk(const std::string& dir,
                                   const GridSpec& grid, std::size_t shard);

/// Shard ids of the well-formed chunk sidecars present in `dir`.  A file
/// named chunk-* that does not parse as chunk-<i>-of-<N>.{csv,json} with
/// N == grid.shards and i < N throws InvalidArgument (unknown chunk-dir
/// contents are rejected, not skipped); other filenames are ignored.
[[nodiscard]] std::vector<std::size_t> chunks_present(const std::string& dir,
                                                      const GridSpec& grid);

}  // namespace pimsim::core
