#include "core/design_space.hpp"

#include <cmath>

#include "analytic/hwp_lwp.hpp"
#include "analytic/parcel_model.hpp"
#include "common/table.hpp"

namespace pimsim::core {

const char* to_string(Regime regime) {
  switch (regime) {
    case Regime::kPimHurts: return "pim-hurts";
    case Regime::kBreakEven: return "break-even";
    case Regime::kPimModerate: return "pim-moderate";
    case Regime::kPimStrong: return "pim-strong";
    case Regime::kPimDramatic: return "pim-dramatic";
  }
  return "unknown";
}

Regime classify_host_point(const arch::SystemParams& params, double n_nodes,
                           double lwp_fraction) {
  const double g = analytic::gain(params, n_nodes, lwp_fraction);
  if (g > 10.0) return Regime::kPimDramatic;
  if (g > 2.0) return Regime::kPimStrong;
  if (g > 1.001) return Regime::kPimModerate;
  if (g >= 0.999) return Regime::kBreakEven;
  return Regime::kPimHurts;
}

ParcelAdvice advise_parcels(const parcel::SplitTransactionParams& params) {
  ParcelAdvice advice;
  advice.predicted_ratio = analytic::predicted_ratio(params);
  advice.saturation_parallelism = analytic::saturation_parallelism(params);
  advice.worthwhile = advice.predicted_ratio > 1.0;
  if (advice.worthwhile) {
    advice.reason = "split transactions hide " +
                    format_number(params.round_trip_latency) +
                    "-cycle latency; provision >= " +
                    format_number(std::ceil(advice.saturation_parallelism)) +
                    " parcel contexts per node to saturate";
  } else if (params.parallelism <= 1) {
    advice.reason = "insufficient parallelism: a single context cannot "
                    "overlap communication with computation";
  } else {
    advice.reason = "system-wide latency is too short to amortize the "
                    "context-switch overhead (paper's reversed regime)";
  }
  return advice;
}

}  // namespace pimsim::core
