#include "core/figures.hpp"

#include <string>

#include "analytic/accuracy.hpp"
#include "analytic/hwp_lwp.hpp"
#include "analytic/parcel_model.hpp"
#include "common/error.hpp"
#include "core/experiment.hpp"
#include "memory/dram.hpp"

namespace pimsim::core {

namespace {

std::string pct_label(double fraction) {
  return format_number(fraction * 100.0) + "% LWT";
}

}  // namespace

Table make_table1(const arch::SystemParams& params) {
  params.validate();
  Table t("Table 1: Parametric Assumptions and Metrics",
          {"Parameter", "Description", "Value"});
  const wl::WorkloadSpec workload_defaults;
  t.add_row({std::string("W"), std::string("total work = WH + WL (operations)"),
             static_cast<std::int64_t>(workload_defaults.total_ops)});
  t.add_row({std::string("%WH"), std::string("percent heavyweight work"),
             std::string("varied 0% to 100%")});
  t.add_row({std::string("%WL"), std::string("percent lightweight work"),
             std::string("varied 0% to 100%")});
  t.add_row({std::string("THcycle"), std::string("heavyweight cycle time (ns)"),
             params.th_cycle_ns});
  t.add_row({std::string("TLcycle"),
             std::string("lightweight cycle time (HWP cycles)"),
             params.tl_cycle});
  t.add_row({std::string("TMH"),
             std::string("heavyweight memory access time (cycles)"),
             params.t_mh});
  t.add_row({std::string("TCH"),
             std::string("heavyweight cache access time (cycles)"), params.t_ch});
  t.add_row({std::string("TML"),
             std::string("lightweight memory access time (cycles)"), params.t_ml});
  t.add_row({std::string("Pmiss"), std::string("heavyweight cache miss rate"),
             params.p_miss});
  t.add_row({std::string("mix l/s"),
             std::string("instruction mix for load and store ops"),
             params.ls_mix});
  t.add_row({std::string("-> HWP cost/op"),
             std::string("derived: 1 + mix*(TCH-1+Pmiss*TMH) (cycles)"),
             params.hwp_cost_per_op()});
  t.add_row({std::string("-> LWP cost/op"),
             std::string("derived: TLcycle + mix*(TML-TLcycle) (cycles)"),
             params.lwp_cost_per_op()});
  t.add_row({std::string("-> NB"),
             std::string("derived: LWP/HWP cost ratio (break-even nodes)"),
             params.nb()});
  return t;
}

HostFigureConfig HostFigureConfig::defaults_fig5() {
  HostFigureConfig c;
  c.node_counts = pow2_range(256);
  c.lwp_fractions = fraction_range(10);
  return c;
}

HostFigureConfig HostFigureConfig::defaults_fig6() {
  HostFigureConfig c;
  c.node_counts = pow2_range(64);
  c.lwp_fractions = fraction_range(10);
  return c;
}

Table make_fig5(const HostFigureConfig& config) {
  require(!config.node_counts.empty() && !config.lwp_fractions.empty(),
          "make_fig5: empty axes");
  std::vector<std::string> cols{"%WL"};
  for (std::size_t n : config.node_counts) {
    cols.push_back("gain N=" + std::to_string(n));
  }
  Table t("Figure 5: Simulation of Performance Gain (test vs control)", cols);

  for (double pct : config.lwp_fractions) {
    std::vector<Cell> row{pct * 100.0};
    for (std::size_t n : config.node_counts) {
      arch::HostConfig cfg = config.base;
      cfg.lwp_nodes = n;
      cfg.workload.lwp_fraction = pct;
      const Estimate est = replicate(
          config.replications, cfg.seed, [&cfg](std::uint64_t seed) {
            arch::HostConfig point = cfg;
            point.seed = seed;
            return arch::simulated_gain(point);
          });
      row.push_back(est.mean);
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table make_fig6(const HostFigureConfig& config) {
  require(!config.node_counts.empty() && !config.lwp_fractions.empty(),
          "make_fig6: empty axes");
  std::vector<std::string> cols{"Nodes"};
  for (double pct : config.lwp_fractions) {
    cols.push_back(pct == 0.0 ? "No LWT Work (ns)" : pct_label(pct) + " (ns)");
  }
  Table t("Figure 6: Single Thread/Node Response Time (unnormalized, ns)",
          cols);

  for (std::size_t n : config.node_counts) {
    std::vector<Cell> row{static_cast<std::int64_t>(n)};
    for (double pct : config.lwp_fractions) {
      arch::HostConfig cfg = config.base;
      cfg.lwp_nodes = n;
      cfg.workload.lwp_fraction = pct;
      const Estimate est = replicate(
          config.replications, cfg.seed, [&cfg](std::uint64_t seed) {
            arch::HostConfig point = cfg;
            point.seed = seed;
            return arch::run_host_system(point).total_ns(point.params);
          });
      row.push_back(est.mean);
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table make_fig7(const arch::SystemParams& params,
                const std::vector<double>& node_counts,
                const std::vector<double>& lwp_fractions) {
  require(!node_counts.empty() && !lwp_fractions.empty(),
          "make_fig7: empty axes");
  std::vector<std::string> cols{"Nodes"};
  for (double pct : lwp_fractions) cols.push_back(pct_label(pct));
  Table t("Figure 7: Normalized Time_relative = 1 - %WL*(1 - NB/N)  [NB = " +
              format_number(params.nb()) + "]",
          cols);
  for (double n : node_counts) {
    std::vector<Cell> row{n};
    for (double pct : lwp_fractions) {
      row.push_back(analytic::time_relative(params, n, pct));
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table make_accuracy_table(const HostFigureConfig& config) {
  const auto entries = analytic::compare_grid(config.base, config.node_counts,
                                              config.lwp_fractions);
  Table t("Section 3.1.2: simulation vs analytic model (paper: 5%-18%)",
          {"Nodes", "%WL", "sim (cycles)", "model (cycles)", "rel err %"});
  for (const auto& e : entries) {
    t.add_row({static_cast<std::int64_t>(e.nodes), e.lwp_fraction * 100.0,
               e.simulated_cycles, e.model_cycles, e.rel_error * 100.0});
  }
  return t;
}

ParcelFigureConfig ParcelFigureConfig::defaults_fig11() {
  ParcelFigureConfig c;
  c.base.nodes = 16;
  c.base.horizon = 50'000.0;
  c.latencies = {10, 20, 50, 100, 200, 500, 1000, 2000};
  c.remote_fractions = {0.02, 0.05, 0.10, 0.20, 0.50};
  c.parallelism = {1, 2, 4, 8, 16, 32};  // the paper's "six major experiments"
  return c;
}

ParcelFigureConfig ParcelFigureConfig::defaults_fig12() {
  ParcelFigureConfig c;
  c.base.horizon = 20'000.0;
  c.base.round_trip_latency = 200.0;
  c.base.p_remote = 0.10;
  c.parallelism = {1, 2, 4, 8, 16, 32};
  // The paper's "8 major experimental sets ... from single node systems
  // ... to 256 nodes"; its 16-node case failed, ours is included.
  c.node_counts = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  return c;
}

Table make_fig11(const ParcelFigureConfig& config) {
  require(!config.latencies.empty() && !config.remote_fractions.empty() &&
              !config.parallelism.empty(),
          "make_fig11: empty axes");
  Table t("Figure 11: Latency Hiding with Parcels (ops ratio test/control)",
          {"Parallelism", "%remote", "Latency (cycles)", "ratio",
           "ratio (model)", "ratio (MVA)"});
  // The control system has no parallelism knob, so run it once per
  // (remote fraction, latency) pair and reuse it across the panels.
  for (double remote : config.remote_fractions) {
    for (double latency : config.latencies) {
      parcel::SplitTransactionParams base = config.base;
      base.p_remote = remote;
      base.round_trip_latency = latency;
      const double control_work =
          parcel::run_message_passing_system(base).total_work();
      for (std::size_t par : config.parallelism) {
        parcel::SplitTransactionParams p = base;
        p.parallelism = par;
        const double test_work =
            parcel::run_split_transaction_system(p).total_work();
        t.add_row({static_cast<std::int64_t>(par), remote * 100.0, latency,
                   test_work / control_work, analytic::predicted_ratio(p),
                   analytic::predicted_ratio_mva(p)});
      }
    }
  }
  return t;
}

Table make_fig12(const ParcelFigureConfig& config) {
  require(!config.parallelism.empty() && !config.node_counts.empty(),
          "make_fig12: empty axes");
  Table t("Figure 12: Idle Time with respect to Degree of Parallelism",
          {"Nodes", "Parallelism", "test idle %", "control idle %"});
  for (std::size_t nodes : config.node_counts) {
    // The control system has no parallelism knob: run it once per size.
    parcel::SplitTransactionParams base = config.base;
    base.nodes = nodes;
    const auto control = parcel::run_message_passing_system(base);
    const double control_idle = control.mean_idle_fraction();
    for (std::size_t par : config.parallelism) {
      parcel::SplitTransactionParams p = base;
      p.parallelism = par;
      const auto test = parcel::run_split_transaction_system(p);
      t.add_row({static_cast<std::int64_t>(nodes),
                 static_cast<std::int64_t>(par),
                 test.mean_idle_fraction() * 100.0, control_idle * 100.0});
    }
  }
  return t;
}

Table make_bandwidth_table() {
  const mem::DramMacroSpec spec;
  Table t("Section 2.1: on-chip DRAM macro bandwidth",
          {"Quantity", "Value", "Paper claim"});
  t.add_row({std::string("row size (bits)"),
             static_cast<std::int64_t>(spec.row_bits), std::string("2048")});
  t.add_row({std::string("wide word (bits)"),
             static_cast<std::int64_t>(spec.word_bits), std::string("256")});
  t.add_row({std::string("row access (ns)"), spec.row_access_ns,
             std::string("20 (conservative)")});
  t.add_row({std::string("page access (ns)"), spec.page_access_ns,
             std::string("2")});
  t.add_row({std::string("macro sustained (Gbit/s)"),
             spec.sustained_bandwidth_gbps(), std::string("over 50")});
  t.add_row({std::string("macro burst (Gbit/s)"), spec.burst_bandwidth_gbps(),
             std::string("-")});
  t.add_row({std::string("chip, 32 nodes (Tbit/s)"),
             spec.chip_bandwidth_gbps(32) / 1000.0,
             std::string("greater than 1")});
  return t;
}

}  // namespace pimsim::core
