#include "core/figures.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "analytic/accuracy.hpp"
#include "analytic/hwp_lwp.hpp"
#include "analytic/parcel_model.hpp"
#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "memory/dram.hpp"

namespace pimsim::core {

namespace {

std::string pct_label(double fraction) {
  return format_number(fraction * 100.0) + "% LWT";
}

}  // namespace

Table make_table1(const arch::SystemParams& params) {
  params.validate();
  Table t("Table 1: Parametric Assumptions and Metrics",
          {"Parameter", "Description", "Value"});
  const wl::WorkloadSpec workload_defaults;
  t.add_row({std::string("W"), std::string("total work = WH + WL (operations)"),
             static_cast<std::int64_t>(workload_defaults.total_ops)});
  t.add_row({std::string("%WH"), std::string("percent heavyweight work"),
             std::string("varied 0% to 100%")});
  t.add_row({std::string("%WL"), std::string("percent lightweight work"),
             std::string("varied 0% to 100%")});
  t.add_row({std::string("THcycle"), std::string("heavyweight cycle time (ns)"),
             params.th_cycle_ns});
  t.add_row({std::string("TLcycle"),
             std::string("lightweight cycle time (HWP cycles)"),
             params.tl_cycle});
  t.add_row({std::string("TMH"),
             std::string("heavyweight memory access time (cycles)"),
             params.t_mh});
  t.add_row({std::string("TCH"),
             std::string("heavyweight cache access time (cycles)"), params.t_ch});
  t.add_row({std::string("TML"),
             std::string("lightweight memory access time (cycles)"), params.t_ml});
  t.add_row({std::string("Pmiss"), std::string("heavyweight cache miss rate"),
             params.p_miss});
  t.add_row({std::string("mix l/s"),
             std::string("instruction mix for load and store ops"),
             params.ls_mix});
  t.add_row({std::string("-> HWP cost/op"),
             std::string("derived: 1 + mix*(TCH-1+Pmiss*TMH) (cycles)"),
             params.hwp_cost_per_op()});
  t.add_row({std::string("-> LWP cost/op"),
             std::string("derived: TLcycle + mix*(TML-TLcycle) (cycles)"),
             params.lwp_cost_per_op()});
  t.add_row({std::string("-> NB"),
             std::string("derived: LWP/HWP cost ratio (break-even nodes)"),
             params.nb()});
  return t;
}

HostFigureConfig HostFigureConfig::defaults_fig5() {
  HostFigureConfig c;
  c.node_counts = pow2_range(256);
  c.lwp_fractions = fraction_range(10);
  return c;
}

HostFigureConfig HostFigureConfig::defaults_fig6() {
  HostFigureConfig c;
  c.node_counts = pow2_range(64);
  c.lwp_fractions = fraction_range(10);
  return c;
}

Table make_fig5(const HostFigureConfig& config) {
  require(!config.node_counts.empty() && !config.lwp_fractions.empty(),
          "make_fig5: empty axes");
  std::vector<std::string> cols{"%WL"};
  for (std::size_t n : config.node_counts) {
    cols.push_back("gain N=" + std::to_string(n));
  }
  Table t("Figure 5: Simulation of Performance Gain (test vs control)", cols);

  // Fan the (%WL, N) grid across cores; point order fixes the table layout.
  const std::size_t n_cols = config.node_counts.size();
  SweepRunner runner(config.sweep_threads);
  const std::vector<Estimate> estimates = runner.sweep(
      config.lwp_fractions.size() * n_cols, /*replications=*/1,
      config.base.seed, [&config, n_cols](std::size_t idx, std::uint64_t seed) {
        arch::HostConfig point = config.base;
        point.workload.lwp_fraction = config.lwp_fractions[idx / n_cols];
        point.lwp_nodes = config.node_counts[idx % n_cols];
        point.seed = seed;
        return arch::simulated_gain(point);
      });

  for (std::size_t pi = 0; pi < config.lwp_fractions.size(); ++pi) {
    std::vector<Cell> row{config.lwp_fractions[pi] * 100.0};
    for (std::size_t ni = 0; ni < n_cols; ++ni) {
      row.push_back(estimates[pi * n_cols + ni].mean);
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table make_fig6(const HostFigureConfig& config) {
  require(!config.node_counts.empty() && !config.lwp_fractions.empty(),
          "make_fig6: empty axes");
  std::vector<std::string> cols{"Nodes"};
  for (double pct : config.lwp_fractions) {
    cols.push_back(pct == 0.0 ? "No LWT Work (ns)" : pct_label(pct) + " (ns)");
  }
  Table t("Figure 6: Single Thread/Node Response Time (unnormalized, ns)",
          cols);

  const std::size_t n_cols = config.lwp_fractions.size();
  SweepRunner runner(config.sweep_threads);
  const std::vector<Estimate> estimates = runner.sweep(
      config.node_counts.size() * n_cols, /*replications=*/1,
      config.base.seed, [&config, n_cols](std::size_t idx, std::uint64_t seed) {
        arch::HostConfig point = config.base;
        point.lwp_nodes = config.node_counts[idx / n_cols];
        point.workload.lwp_fraction = config.lwp_fractions[idx % n_cols];
        point.seed = seed;
        return arch::run_host_system(point).total_ns(point.params);
      });

  for (std::size_t ni = 0; ni < config.node_counts.size(); ++ni) {
    std::vector<Cell> row{static_cast<std::int64_t>(config.node_counts[ni])};
    for (std::size_t pi = 0; pi < n_cols; ++pi) {
      row.push_back(estimates[ni * n_cols + pi].mean);
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table make_fig7(const arch::SystemParams& params,
                const std::vector<double>& node_counts,
                const std::vector<double>& lwp_fractions,
                std::size_t sweep_threads) {
  require(!node_counts.empty() && !lwp_fractions.empty(),
          "make_fig7: empty axes");
  std::vector<std::string> cols{"Nodes"};
  for (double pct : lwp_fractions) cols.push_back(pct_label(pct));
  Table t("Figure 7: Normalized Time_relative = 1 - %WL*(1 - NB/N)  [NB = " +
              format_number(params.nb()) + "]",
          cols);
  const std::size_t n_cols = lwp_fractions.size();
  std::vector<double> values(node_counts.size() * n_cols);
  SweepRunner runner(sweep_threads);
  runner.for_each(values.size(), [&](std::size_t idx) {
    values[idx] = analytic::time_relative(params, node_counts[idx / n_cols],
                                          lwp_fractions[idx % n_cols]);
  });
  for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
    std::vector<Cell> row{node_counts[ni]};
    for (std::size_t pi = 0; pi < n_cols; ++pi) {
      row.push_back(values[ni * n_cols + pi]);
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table make_accuracy_table(const HostFigureConfig& config) {
  const auto entries = analytic::compare_grid(config.base, config.node_counts,
                                              config.lwp_fractions);
  Table t("Section 3.1.2: simulation vs analytic model (paper: 5%-18%)",
          {"Nodes", "%WL", "sim (cycles)", "model (cycles)", "rel err %"});
  for (const auto& e : entries) {
    t.add_row({static_cast<std::int64_t>(e.nodes), e.lwp_fraction * 100.0,
               e.simulated_cycles, e.model_cycles, e.rel_error * 100.0});
  }
  return t;
}

ParcelFigureConfig ParcelFigureConfig::defaults_fig11() {
  ParcelFigureConfig c;
  c.base.nodes = 16;
  c.base.horizon = 50'000.0;
  c.latencies = {10, 20, 50, 100, 200, 500, 1000, 2000};
  c.remote_fractions = {0.02, 0.05, 0.10, 0.20, 0.50};
  c.parallelism = {1, 2, 4, 8, 16, 32};  // the paper's "six major experiments"
  return c;
}

ParcelFigureConfig ParcelFigureConfig::defaults_fig12() {
  ParcelFigureConfig c;
  c.base.horizon = 20'000.0;
  c.base.round_trip_latency = 200.0;
  c.base.p_remote = 0.10;
  c.parallelism = {1, 2, 4, 8, 16, 32};
  // The paper's "8 major experimental sets ... from single node systems
  // ... to 256 nodes"; its 16-node case failed, ours is included.
  c.node_counts = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  return c;
}

Table make_fig11(const ParcelFigureConfig& config) {
  require(!config.latencies.empty() && !config.remote_fractions.empty() &&
              !config.parallelism.empty(),
          "make_fig11: empty axes");
  Table t("Figure 11: Latency Hiding with Parcels (ops ratio test/control)",
          {"Parallelism", "%remote", "Latency (cycles)", "ratio",
           "ratio (model)", "ratio (MVA)"});
  // The control system has no parallelism knob, so run it once per
  // (remote fraction, latency) pair and reuse it across the panels.  The
  // pairs are independent design points: fan them across cores and append
  // the finished row groups in pair order.
  const std::size_t n_lat = config.latencies.size();
  const std::size_t n_par = config.parallelism.size();
  std::vector<std::vector<Cell>> rows(config.remote_fractions.size() * n_lat *
                                      n_par);
  SweepRunner runner(config.sweep_threads);
  runner.for_each(
      config.remote_fractions.size() * n_lat, [&](std::size_t pair) {
        const double remote = config.remote_fractions[pair / n_lat];
        const double latency = config.latencies[pair % n_lat];
        parcel::SplitTransactionParams base = config.base;
        base.p_remote = remote;
        base.round_trip_latency = latency;
        const double control_work =
            parcel::run_message_passing_system(base).total_work();
        for (std::size_t pi = 0; pi < n_par; ++pi) {
          parcel::SplitTransactionParams p = base;
          p.parallelism = config.parallelism[pi];
          const double test_work =
              parcel::run_split_transaction_system(p).total_work();
          rows[pair * n_par + pi] = {
              static_cast<std::int64_t>(config.parallelism[pi]),
              remote * 100.0,
              latency,
              test_work / control_work,
              analytic::predicted_ratio(p),
              analytic::predicted_ratio_mva(p)};
        }
      });
  for (std::vector<Cell>& row : rows) t.add_row(std::move(row));
  return t;
}

Table make_fig12(const ParcelFigureConfig& config) {
  require(!config.parallelism.empty() && !config.node_counts.empty(),
          "make_fig12: empty axes");
  Table t("Figure 12: Idle Time with respect to Degree of Parallelism",
          {"Nodes", "Parallelism", "test idle %", "control idle %"});
  // The control system has no parallelism knob, so one control run is
  // shared by every parallelism cell of a size; the (size, parallelism)
  // test runs then fan across cores individually for even load balance.
  const std::size_t n_par = config.parallelism.size();
  SweepRunner runner(config.sweep_threads);
  std::vector<double> control_idle(config.node_counts.size());
  runner.for_each(config.node_counts.size(), [&](std::size_t ni) {
    parcel::SplitTransactionParams base = config.base;
    base.nodes = config.node_counts[ni];
    control_idle[ni] =
        parcel::run_message_passing_system(base).mean_idle_fraction();
  });
  std::vector<std::vector<Cell>> rows(config.node_counts.size() * n_par);
  // Dispatch the expensive cells first: a 256-node, 32-context simulation
  // costs ~nodes*parallelism, and starting it last would leave one thread
  // finishing it alone while the rest sit idle.
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto cost = [&](std::size_t idx) {
      return config.node_counts[idx / n_par] * config.parallelism[idx % n_par];
    };
    return cost(a) > cost(b);
  });
  runner.for_each(rows.size(), [&](std::size_t k) {
    const std::size_t idx = order[k];
    const std::size_t ni = idx / n_par;
    parcel::SplitTransactionParams p = config.base;
    p.nodes = config.node_counts[ni];
    p.parallelism = config.parallelism[idx % n_par];
    const auto test = parcel::run_split_transaction_system(p);
    rows[idx] = {static_cast<std::int64_t>(p.nodes),
                 static_cast<std::int64_t>(p.parallelism),
                 test.mean_idle_fraction() * 100.0, control_idle[ni] * 100.0};
  });
  for (std::vector<Cell>& row : rows) t.add_row(std::move(row));
  return t;
}

Table make_bandwidth_table() {
  const mem::DramMacroSpec spec;
  Table t("Section 2.1: on-chip DRAM macro bandwidth",
          {"Quantity", "Value", "Paper claim"});
  t.add_row({std::string("row size (bits)"),
             static_cast<std::int64_t>(spec.row_bits), std::string("2048")});
  t.add_row({std::string("wide word (bits)"),
             static_cast<std::int64_t>(spec.word_bits), std::string("256")});
  t.add_row({std::string("row access (ns)"), spec.row_access_ns,
             std::string("20 (conservative)")});
  t.add_row({std::string("page access (ns)"), spec.page_access_ns,
             std::string("2")});
  t.add_row({std::string("macro sustained (Gbit/s)"),
             spec.sustained_bandwidth_gbps(), std::string("over 50")});
  t.add_row({std::string("macro burst (Gbit/s)"), spec.burst_bandwidth_gbps(),
             std::string("-")});
  t.add_row({std::string("chip, 32 nodes (Tbit/s)"),
             spec.chip_bandwidth_gbps(32) / 1000.0,
             std::string("greater than 1")});
  return t;
}

}  // namespace pimsim::core
