#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <exception>
#include <memory>

#include "common/error.hpp"
#include "core/experiment.hpp"

namespace pimsim::core {

ShardSpec parse_shard(const std::string& text) {
  const auto fail = [&text]() -> ShardSpec {
    throw InvalidArgument(
        "pimsim sweep: malformed shard '" + text +
        "'; valid form: shard=i/N with integers 0 <= i < N (e.g. shard=0/4)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return fail();
  }
  const std::string index_text = text.substr(0, slash);
  const std::string count_text = text.substr(slash + 1);
  const auto all_digits = [](const std::string& s) {
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
      return std::isdigit(c) != 0;
    });
  };
  if (!all_digits(index_text) || !all_digits(count_text)) return fail();
  ShardSpec spec;
  try {
    spec.index = std::stoul(index_text);
    spec.count = std::stoul(count_text);
  } catch (const std::exception&) {
    return fail();
  }
  if (spec.count == 0 || spec.index >= spec.count) return fail();
  return spec;
}

std::vector<std::size_t> plan_shards(const std::vector<double>& weights,
                                     std::size_t shards) {
  require(shards >= 1, "plan_shards: shard count must be >= 1");
  // Heaviest first: LPT greedy onto the lightest bin.  Both orderings
  // break ties by index, so the plan is a pure function of its inputs.
  std::vector<std::size_t> order(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  std::vector<double> load(shards, 0.0);
  std::vector<std::size_t> shard_of(weights.size(), 0);
  for (const std::size_t point : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    shard_of[point] = lightest;
    // Zero/negative/non-finite weights still advance the bin so equal
    // weights round-robin instead of piling onto shard 0.
    const double w = weights[point];
    load[lightest] += (std::isfinite(w) && w > 0.0) ? w : 1.0;
  }
  return shard_of;
}

// One parallel index loop.  Heap-allocated and shared with every queued
// runner task, so a task that drains from the queue after the batch has
// already completed finds an exhausted counter and exits without touching
// the (by then destroyed) loop body.
struct SweepRunner::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;  // valid while remaining > 0
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  std::exception_ptr error;
};

SweepRunner::SweepRunner(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SweepRunner::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop requested and nothing left to run
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void SweepRunner::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    if (!batch.failed.load(std::memory_order_relaxed)) {
      try {
        (*batch.body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(batch.mutex);
        if (!batch.error) batch.error = std::current_exception();
        batch.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(batch.mutex);
      batch.done = true;
      batch.done_cv.notify_all();
    }
  }
}

void SweepRunner::for_each(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  require(static_cast<bool>(body), "SweepRunner::for_each: empty body");
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;
  batch->remaining.store(count, std::memory_order_relaxed);

  const std::size_t helpers = std::min(workers_.size(), count - 1);
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([batch] { run_batch(*batch); });
    }
  }
  queue_cv_.notify_all();

  run_batch(*batch);  // the calling thread pulls indices too

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&batch] { return batch->done; });
  if (batch->error) std::rethrow_exception(batch->error);
}

std::vector<Estimate> SweepRunner::sweep(
    std::size_t points, std::size_t replications, std::uint64_t base_seed,
    const std::function<double(std::size_t, std::uint64_t)>& measure) {
  require(static_cast<bool>(measure), "SweepRunner::sweep: empty measurement");
  std::vector<Estimate> out(points);
  for_each(points, [&](std::size_t i) {
    out[i] = replicate(replications, base_seed,
                       [&](std::uint64_t seed) { return measure(i, seed); });
  });
  return out;
}

}  // namespace pimsim::core
