#include "core/sweep.hpp"

#include <atomic>
#include <exception>
#include <memory>

#include "common/error.hpp"
#include "core/experiment.hpp"

namespace pimsim::core {

// One parallel index loop.  Heap-allocated and shared with every queued
// runner task, so a task that drains from the queue after the batch has
// already completed finds an exhausted counter and exits without touching
// the (by then destroyed) loop body.
struct SweepRunner::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;  // valid while remaining > 0
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  std::exception_ptr error;
};

SweepRunner::SweepRunner(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SweepRunner::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop requested and nothing left to run
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void SweepRunner::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    if (!batch.failed.load(std::memory_order_relaxed)) {
      try {
        (*batch.body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(batch.mutex);
        if (!batch.error) batch.error = std::current_exception();
        batch.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(batch.mutex);
      batch.done = true;
      batch.done_cv.notify_all();
    }
  }
}

void SweepRunner::for_each(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  require(static_cast<bool>(body), "SweepRunner::for_each: empty body");
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;
  batch->remaining.store(count, std::memory_order_relaxed);

  const std::size_t helpers = std::min(workers_.size(), count - 1);
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([batch] { run_batch(*batch); });
    }
  }
  queue_cv_.notify_all();

  run_batch(*batch);  // the calling thread pulls indices too

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&batch] { return batch->done; });
  if (batch->error) std::rethrow_exception(batch->error);
}

std::vector<Estimate> SweepRunner::sweep(
    std::size_t points, std::size_t replications, std::uint64_t base_seed,
    const std::function<double(std::size_t, std::uint64_t)>& measure) {
  require(static_cast<bool>(measure), "SweepRunner::sweep: empty measurement");
  std::vector<Estimate> out(points);
  for_each(points, [&](std::size_t i) {
    out[i] = replicate(replications, base_seed,
                       [&](std::uint64_t seed) { return measure(i, seed); });
  });
  return out;
}

}  // namespace pimsim::core
