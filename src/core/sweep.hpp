// Parallel design-space sweep engine.
//
// SweepRunner fans the (config point, seed) grid of an experiment across a
// persistent pool of worker threads.  Every sweep point is an independent
// computation whose result lands in a caller-indexed slot, so the aggregate
// is bitwise-identical for any thread count given the same base seed: the
// schedule decides only *when* a point runs, never *what* it computes.
//
// Seeding follows core::replicate's common-random-numbers convention: each
// point replicates over the same seed stream derived from base_seed, which
// both reduces variance when comparing configurations and keeps the parallel
// figures numerically identical to the original serial sweeps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace pimsim::core {

class SweepRunner {
 public:
  /// Spawns a pool of `threads` - 1 workers (the calling thread participates
  /// in every batch).  `threads` == 0 means std::thread::hardware_concurrency.
  explicit SweepRunner(std::size_t threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Number of threads a batch runs on, including the calling thread.
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, count), in unspecified order, possibly
  /// concurrently.  Returns once all indices have completed.  The first
  /// exception a body throws is rethrown here (remaining bodies are skipped).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Replicated sweep over `points` design points: for point i, runs
  /// measure(i, seed) for `replications` seeds derived from base_seed exactly
  /// as core::replicate does, and returns one Estimate per point, in point
  /// order.  Deterministic for any thread count.
  [[nodiscard]] std::vector<Estimate> sweep(
      std::size_t points, std::size_t replications, std::uint64_t base_seed,
      const std::function<double(std::size_t point, std::uint64_t seed)>&
          measure);

 private:
  struct Batch;
  static void run_batch(Batch& batch);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace pimsim::core
