// Parallel design-space sweep engine.
//
// SweepRunner fans the (config point, seed) grid of an experiment across a
// persistent pool of worker threads.  Every sweep point is an independent
// computation whose result lands in a caller-indexed slot, so the aggregate
// is bitwise-identical for any thread count given the same base seed: the
// schedule decides only *when* a point runs, never *what* it computes.
//
// Seeding follows core::replicate's common-random-numbers convention: each
// point replicates over the same seed stream derived from base_seed, which
// both reduces variance when comparing configurations and keeps the parallel
// figures numerically identical to the original serial sweeps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace pimsim::core {

/// One shard of a sweep grid: this process owns shard `index` of `count`
/// (`pimsim sweep ... shard=i/N`).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Parses "i/N" with integers 0 <= i < N.  Anything else — missing
/// slash, non-digits, i >= N, N == 0 — throws InvalidArgument naming the
/// valid form, so a typo'd shard= never silently runs the full grid.
[[nodiscard]] ShardSpec parse_shard(const std::string& text);

/// Deterministic heaviest-first (LPT) partition: points sorted by
/// (weight descending, index ascending) are greedily placed on the
/// currently lightest shard (ties -> lowest shard id).  Returns the
/// shard id of every point.  A pure function of (weights, shards): the
/// same grid always shards the same way, on any host, at any jobs=N —
/// which is what makes a chunk recomputable anywhere and comparable by
/// fingerprint.  Equal weights degrade to round-robin in grid order.
[[nodiscard]] std::vector<std::size_t> plan_shards(
    const std::vector<double>& weights, std::size_t shards);

class SweepRunner {
 public:
  /// Spawns a pool of `threads` - 1 workers (the calling thread participates
  /// in every batch).  `threads` == 0 means std::thread::hardware_concurrency.
  explicit SweepRunner(std::size_t threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Number of threads a batch runs on, including the calling thread.
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, count), in unspecified order, possibly
  /// concurrently.  Returns once all indices have completed.  The first
  /// exception a body throws is rethrown here (remaining bodies are skipped).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Replicated sweep over `points` design points: for point i, runs
  /// measure(i, seed) for `replications` seeds derived from base_seed exactly
  /// as core::replicate does, and returns one Estimate per point, in point
  /// order.  Deterministic for any thread count.
  [[nodiscard]] std::vector<Estimate> sweep(
      std::size_t points, std::size_t replications, std::uint64_t base_seed,
      const std::function<double(std::size_t point, std::uint64_t seed)>&
          measure);

 private:
  struct Batch;
  static void run_batch(Batch& batch);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace pimsim::core
