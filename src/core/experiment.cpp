#include "core/experiment.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pimsim::core {

std::vector<std::size_t> pow2_range(std::size_t max) {
  require(max >= 1, "pow2_range: max must be >= 1");
  std::vector<std::size_t> out;
  for (std::size_t v = 1; v <= max; v *= 2) {
    out.push_back(v);
    if (v > max / 2) break;  // avoid overflow on the doubling
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  require(count >= 2, "linspace: need at least two points");
  require(hi >= lo, "linspace: hi must be >= lo");
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // exact endpoint
  return out;
}

std::vector<double> fraction_range(std::size_t steps) {
  return linspace(0.0, 1.0, steps + 1);
}

Estimate replicate(std::size_t replications, std::uint64_t base_seed,
                   const std::function<double(std::uint64_t)>& measure) {
  require(replications >= 1, "replicate: need at least one replication");
  require(static_cast<bool>(measure), "replicate: empty measurement");
  RunningStats stats;
  SplitMix64 seeder(base_seed);
  for (std::size_t i = 0; i < replications; ++i) {
    stats.add(measure(seeder.next()));
  }
  return estimate_from(stats);
}

}  // namespace pimsim::core
