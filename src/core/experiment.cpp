#include "core/experiment.hpp"

#include <bit>
#include <cstdint>
#include <sstream>
#include <variant>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pimsim::core {

std::vector<std::size_t> pow2_range(std::size_t max) {
  require(max >= 1, "pow2_range: max must be >= 1");
  std::vector<std::size_t> out;
  for (std::size_t v = 1; v <= max; v *= 2) {
    out.push_back(v);
    if (v > max / 2) break;  // avoid overflow on the doubling
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  require(count >= 2, "linspace: need at least two points");
  require(hi >= lo, "linspace: hi must be >= lo");
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // exact endpoint
  return out;
}

std::vector<double> fraction_range(std::size_t steps) {
  return linspace(0.0, 1.0, steps + 1);
}

Estimate replicate(std::size_t replications, std::uint64_t base_seed,
                   const std::function<double(std::uint64_t)>& measure) {
  require(replications >= 1, "replicate: need at least one replication");
  require(static_cast<bool>(measure), "replicate: empty measurement");
  RunningStats stats;
  SplitMix64 seeder(base_seed);
  for (std::size_t i = 0; i < replications; ++i) {
    stats.add(measure(seeder.next()));
  }
  return estimate_from(stats);
}

std::vector<std::uint64_t> replication_seeds(std::size_t reps,
                                             std::uint64_t base_seed) {
  if (reps < 1) {
    throw InvalidArgument("replication_seeds: need at least one replication");
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(reps);
  SplitMix64 seeder(base_seed);
  for (std::size_t i = 0; i < reps; ++i) seeds.push_back(seeder.next());
  return seeds;
}

namespace {

/// Title suffix naming the replication count and confidence level, e.g.
/// " (8 reps, 95% CI)".
std::string fold_suffix(std::size_t reps, double level) {
  std::ostringstream os;
  os << " (" << reps << " reps, " << level * 100.0 << "% CI)";
  return os.str();
}

}  // namespace

Table fold_replications(const std::vector<Table>& tables, double level) {
  if (tables.empty()) {
    throw InvalidArgument("fold_replications: no replications to fold");
  }
  if (tables.size() == 1) return tables[0];

  const Table& first = tables[0];
  for (std::size_t r = 1; r < tables.size(); ++r) {
    const Table& t = tables[r];
    if (t.title() != first.title()) {
      throw InvalidArgument(
          "fold_replications: replication titles diverge ('" + t.title() +
          "' vs '" + first.title() + "'); titles must be seed-independent");
    }
    if (t.columns() != first.columns()) {
      throw InvalidArgument("fold_replications: replication columns diverge");
    }
    if (t.rows() != first.rows()) {
      throw InvalidArgument("fold_replications: replication row counts diverge");
    }
  }

  std::vector<std::string> columns;
  columns.reserve(first.columns().size() * 2);
  for (const std::string& c : first.columns()) {
    columns.push_back(c);
    columns.push_back(c + " ±");
  }
  Table out(first.title() + fold_suffix(tables.size(), level),
            std::move(columns));

  for (std::size_t row = 0; row < first.rows(); ++row) {
    std::vector<Cell> cells;
    cells.reserve(first.columns().size() * 2);
    for (std::size_t col = 0; col < first.columns().size(); ++col) {
      const Cell& head = first.row(row)[col];
      if (const auto* s = std::get_if<std::string>(&head)) {
        for (std::size_t r = 1; r < tables.size(); ++r) {
          const auto* other = std::get_if<std::string>(&tables[r].row(row)[col]);
          if (other == nullptr || *other != *s) {
            throw InvalidArgument(
                "fold_replications: text cells diverge across replications "
                "(row " + std::to_string(row) + ", column '" +
                first.columns()[col] + "')");
          }
        }
        cells.emplace_back(*s);
        cells.emplace_back(std::string());
        continue;
      }
      // Integer cells identical across replications stay integers (axis
      // labels like node counts); anything else folds as a double.
      bool all_same_int = std::holds_alternative<std::int64_t>(head);
      if (all_same_int) {
        const std::int64_t v = std::get<std::int64_t>(head);
        for (std::size_t r = 1; all_same_int && r < tables.size(); ++r) {
          const auto* other =
              std::get_if<std::int64_t>(&tables[r].row(row)[col]);
          all_same_int = other != nullptr && *other == v;
        }
        if (all_same_int) {
          cells.emplace_back(v);
          cells.emplace_back(std::int64_t{0});
          continue;
        }
      }
      RunningStats stats;
      for (const Table& t : tables) {
        const Cell& cell = t.row(row)[col];
        if (const auto* d = std::get_if<double>(&cell)) {
          stats.add(*d);
        } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
          stats.add(static_cast<double>(*i));
        } else {
          throw InvalidArgument(
              "fold_replications: cell types diverge across replications "
              "(row " + std::to_string(row) + ", column '" +
              first.columns()[col] + "')");
        }
      }
      cells.emplace_back(stats.mean());
      cells.emplace_back(confidence_half_width(stats, level));
    }
    out.add_row(std::move(cells));
  }
  return out;
}

// --- exact table serialization ("pimsim-rep-v1") --------------------------

namespace {

std::string escape_line(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string unescape_line(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\' || i + 1 == in.size()) {
      out.push_back(in[i]);
      continue;
    }
    out.push_back(in[++i] == 'n' ? '\n' : in[i]);
  }
  return out;
}

std::string double_bits(double v) {
  static const char* kDigits = "0123456789abcdef";
  auto bits = std::bit_cast<std::uint64_t>(v);
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = kDigits[bits & 0xfU];
    bits >>= 4U;
  }
  return out;
}

[[noreturn]] void bad_rep(const std::string& why) {
  throw InvalidArgument("deserialize_table: malformed pimsim-rep-v1 payload (" +
                        why + ")");
}

std::string next_line(std::istringstream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) bad_rep(std::string("missing ") + what);
  return line;
}

std::size_t parse_count(const std::string& line, const char* what) {
  try {
    std::size_t used = 0;
    const auto v = std::stoull(line, &used);
    if (used != line.size() || line.empty()) bad_rep(what);
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    bad_rep(what);
  }
}

}  // namespace

std::string serialize_table(const Table& table) {
  std::ostringstream os;
  os << "pimsim-rep-v1\n" << escape_line(table.title()) << "\n"
     << table.columns().size() << "\n";
  for (const std::string& c : table.columns()) os << escape_line(c) << "\n";
  os << table.rows() << "\n";
  for (std::size_t r = 0; r < table.rows(); ++r) {
    for (const Cell& cell : table.row(r)) {
      if (const auto* s = std::get_if<std::string>(&cell)) {
        os << "s " << escape_line(*s) << "\n";
      } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
        os << "i " << *i << "\n";
      } else {
        os << "d " << double_bits(std::get<double>(cell)) << "\n";
      }
    }
  }
  return os.str();
}

Table deserialize_table(const std::string& bytes) {
  std::istringstream in(bytes);
  if (next_line(in, "schema") != "pimsim-rep-v1") bad_rep("unknown schema");
  const std::string title = unescape_line(next_line(in, "title"));
  const std::size_t n_cols =
      parse_count(next_line(in, "column count"), "bad column count");
  if (n_cols == 0) bad_rep("zero columns");
  std::vector<std::string> columns;
  columns.reserve(n_cols);
  for (std::size_t c = 0; c < n_cols; ++c) {
    columns.push_back(unescape_line(next_line(in, "column name")));
  }
  Table out(title, std::move(columns));
  const std::size_t n_rows =
      parse_count(next_line(in, "row count"), "bad row count");
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<Cell> cells;
    cells.reserve(n_cols);
    for (std::size_t c = 0; c < n_cols; ++c) {
      const std::string line = next_line(in, "cell");
      if (line.size() < 2 || line[1] != ' ') bad_rep("bad cell line");
      const std::string body = line.substr(2);
      switch (line[0]) {
        case 's': cells.emplace_back(unescape_line(body)); break;
        case 'i': {
          try {
            std::size_t used = 0;
            cells.emplace_back(
                static_cast<std::int64_t>(std::stoll(body, &used)));
            if (used != body.size() || body.empty()) bad_rep("bad int cell");
          } catch (const ConfigError&) {
            throw;
          } catch (const std::exception&) {
            bad_rep("bad int cell");
          }
          break;
        }
        case 'd': {
          if (body.size() != 16) bad_rep("bad double cell");
          std::uint64_t bits = 0;
          for (const char ch : body) {
            std::uint64_t nibble = 0;
            if (ch >= '0' && ch <= '9') {
              nibble = static_cast<std::uint64_t>(ch - '0');
            } else if (ch >= 'a' && ch <= 'f') {
              nibble = static_cast<std::uint64_t>(ch - 'a') + 10;
            } else {
              bad_rep("bad double cell");
            }
            bits = (bits << 4U) | nibble;
          }
          cells.emplace_back(std::bit_cast<double>(bits));
          break;
        }
        default: bad_rep("unknown cell tag");
      }
    }
    out.add_row(std::move(cells));
  }
  std::string rest;
  if (std::getline(in, rest) && !rest.empty()) bad_rep("trailing bytes");
  return out;
}

}  // namespace pimsim::core
