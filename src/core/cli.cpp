#include "core/cli.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/chunk.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "des/audit.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace pimsim::core {
namespace {

constexpr const char* kUsage = R"(pimsim — unified scenario driver for the conf_sc_UpchurchSB04 reproduction

usage:
  pimsim list [names|json]
      Inventory of every registered scenario.  Default: human-readable
      table with per-parameter docs.  `names`: one name per line (stable,
      for scripts/CI).  `json`: full machine-readable inventory.

  pimsim run <scenario> [key=value ...] [format=text|csv|json] [out=PATH]
              [audit=1] [trace=PATH] [metrics=PATH] [profile=1]
      Runs one scenario.  Unknown keys and mistyped values fail loudly,
      listing the scenario's valid keys.  format defaults to text
      (csv=1 is accepted as an alias for format=csv); out defaults to
      stdout.  audit=1 turns on the event kernel's determinism audit
      (event-chain hashing + invariant sweeps; see docs/DETERMINISM.md)
      and reports the chain summary on stderr.
      Scenarios with a `reps` knob run reps= seed-streamed replications
      (one SplitMix64-derived seed per rep; see docs/REPLICATION.md)
      and emit a `<col> ±` 95% half-width companion per column; reps=1
      (the default) is bitwise-identical to a single run.
      Observability (docs/OBSERVABILITY.md): trace=PATH exports a
      Chrome-trace-event JSON (Perfetto / chrome://tracing loadable;
      PIMSIM_TRACE=full in the environment widens the kind mask to the
      per-event kernel records).  metrics=PATH dumps the metrics
      registry (.csv extension selects CSV, anything else JSON).
      profile=1 prints the per-EventAction-kind dispatch profile on
      stderr.

  pimsim sweep <scenario> config=FILE [key=value ...] [jobs=N]
                [format=text|csv|json] [out=PATH] [metrics=PATH]
                [profile=1] [shard=i/N]
      Runs a declarative parameter grid.  FILE holds key=value lines
      ('#' comments); a comma-separated value for a *scalar* parameter
      declares a grid axis (list-typed parameters pass through
      verbatim).  Command-line key=value pairs override the file.
      Points fan out across a SweepRunner pool of `jobs` threads
      (0 = all cores); each point's own `threads` knob is pinned to 1
      unless set explicitly.  Output is one table per point, preceded
      by `# <scenario> <assignment>`.  metrics=PATH aggregates the
      metrics registries of every point into one dump (deterministic
      regardless of jobs=N); profile=1 prints the pooled dispatch
      profile on stderr.
      shard=i/N runs only shard i of a deterministic N-way partition
      of the grid (heaviest points spread first) and requires out=DIR:
      the shard writes a self-describing chunk (rendered blocks +
      "pimsim-chunk-v1" JSON sidecar with per-point fingerprints and
      metrics snapshots) plus an idempotent manifest.json into DIR.
      Rerunning a shard whose valid chunk already exists is a no-op
      skip, so a killed sweep resumes from its surviving chunks.  When
      any point requests reps > 1 the shard plan splits (point, rep)
      units instead of points — `reps=32 shard=i/N` spreads the 32
      replications across the N shards — and chunks carry exact
      serialized per-rep tables that merge refolds bit-for-bit.  See
      docs/SWEEPS.md, docs/REPLICATION.md, tools/pimsim_sweep_all.sh.

  pimsim merge <DIR> [out=PATH] [metrics=PATH]
      Validates and merges the chunks of a sharded sweep: every chunk
      sidecar must match DIR's manifest (grid fingerprint, planned
      point set, per-point block fingerprints); missing, duplicate,
      corrupted, and divergent chunks are reported, not merged.  Emits
      the merged table byte-identical to the unsharded `pimsim sweep`
      output — for replicated sweeps by refolding the per-rep
      RunningStats from exact serialized cell bits, never re-parsed
      floats — and with metrics=PATH refolds every shard's metrics
      snapshots into the same dump the unsharded run would write.

  pimsim verify <scenario>|all [strict=1] [audit=1]
      Re-checks golden figure outputs on the scenario's reduced verify
      grid: reruns at two sweep thread counts and requires bitwise-
      identical CSV, and prints the output fingerprint.  With strict=1
      a pinned fingerprint mismatch also fails (fingerprints are
      compiler/libm sensitive, so this is opt-in).  Scenarios with a
      `reps` knob get an extra replication-determinism pass: the verify
      grid at reps=2 must fold to identical bytes across thread counts.
      With audit=1 both
      passes also run under the kernel's determinism audit, and the
      aggregated event-chain hashes must match across thread counts —
      a divergence check on the event streams themselves, not just the
      rendered CSV.

  pimsim help [scenario]
      This text, or one scenario's parameter documentation.
)";

void print_param_lines(std::ostream& os, const Scenario& s) {
  for (const ParamSpec& p : s.params) {
    os << "    " << p.key << " (" << to_string(p.kind) << ", default "
       << (p.default_value.empty() ? "-" : p.default_value);
    if (!p.range.empty()) os << ", range " << p.range;
    os << ") — " << p.doc << "\n";
  }
  if (s.params.empty()) os << "    (no parameters)\n";
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void print_list_json(std::ostream& os) {
  const auto scenarios = ScenarioRegistry::global().all();
  os << "{\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = *scenarios[i];
    os << "    {\"name\": \"" << json_escape(s.name) << "\", \"summary\": \""
       << json_escape(s.summary) << "\", \"paper\": \""
       << json_escape(s.paper) << "\",\n     \"params\": [";
    for (std::size_t j = 0; j < s.params.size(); ++j) {
      const ParamSpec& p = s.params[j];
      os << (j ? ",\n                " : "") << "{\"key\": \""
         << json_escape(p.key) << "\", \"type\": \"" << to_string(p.kind)
         << "\", \"default\": \"" << json_escape(p.default_value)
         << "\", \"range\": \"" << json_escape(p.range) << "\", \"doc\": \""
         << json_escape(p.doc) << "\"}";
    }
    os << "]}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void print_table_json(std::ostream& os, const Table& t) {
  // Full round-trip precision: this is the machine-readable format, and
  // the default 6 significant digits would silently round cycle counts.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"title\": \"" << json_escape(t.title()) << "\",\n"
     << "  \"columns\": [";
  for (std::size_t c = 0; c < t.columns().size(); ++c) {
    os << (c ? ", " : "") << "\"" << json_escape(t.columns()[c]) << "\"";
  }
  os << "],\n  \"rows\": [\n";
  for (std::size_t r = 0; r < t.rows(); ++r) {
    os << "    [";
    const auto& row = t.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ", ";
      if (const auto* s = std::get_if<std::string>(&row[c])) {
        os << "\"" << json_escape(*s) << "\"";
      } else if (const auto* i = std::get_if<std::int64_t>(&row[c])) {
        os << *i;
      } else {
        const double v = std::get<double>(row[c]);
        if (std::isfinite(v)) {
          os << v;
        } else {
          os << "null";  // JSON has no inf/nan
        }
      }
    }
    os << "]" << (r + 1 < t.rows() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.precision(old_precision);
}

/// Renders `table` as format ("text" | "csv" | "json") to `os`, matching
/// bench::emit byte-for-byte for text/CSV (table + one blank line).
void render(std::ostream& os, const Table& table, const std::string& format) {
  if (format == "csv") {
    table.print_csv(os);
    os << "\n";
  } else if (format == "json") {
    print_table_json(os, table);
  } else {
    ensure(format == "text", "render: format not validated by format_of");
    table.print(os);
    os << "\n";
  }
}

/// Opens `out=` if given; otherwise returns nullptr (use stdout).
std::unique_ptr<std::ofstream> open_out(const Config& cfg) {
  const std::string path = cfg.get_string("out", "");
  if (path.empty()) return nullptr;
  auto file = std::make_unique<std::ofstream>(path);
  require(file->good(), "pimsim: cannot open output file '" + path + "'");
  return file;
}

/// Fails fast on an unwritable `out=` path (append mode: an existing
/// file's content is untouched) so a typo'd path is caught before a
/// potentially long generation run, while a failed run still never
/// truncates previous results.
void preflight_out(const Config& cfg) {
  const std::string path = cfg.get_string("out", "");
  if (path.empty()) return;
  std::ofstream probe(path, std::ios::app);
  require(probe.good(), "pimsim: cannot open output file '" + path + "'");
}

std::string format_of(const Config& cfg) {
  // csv=1 is a bench_* compatibility alias, honored only when format=
  // is absent — an explicit format= always wins (and gets validated).
  std::string format;
  if (cfg.has("format")) {
    format = cfg.get_string("format", "text");
    (void)cfg.get_bool("csv", false);  // consume the alias key if present
  } else {
    format = cfg.get_bool("csv", false) ? "csv" : "text";
  }
  // Validate up front, before a potentially long generation run.
  if (format != "text" && format != "csv" && format != "json") {
    throw InvalidArgument("pimsim: unknown format '" + format +
                          "'; valid formats: text, csv, json");
  }
  return format;
}

Config config_from_tokens(const std::vector<std::string>& tokens) {
  std::vector<const char*> argv{"pimsim"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

int cmd_list(const std::vector<std::string>& args) {
  const std::string mode = args.empty() ? "" : args[0];
  if (mode == "names") {
    for (const auto& name : ScenarioRegistry::global().names()) {
      std::cout << name << "\n";
    }
  } else if (mode == "json") {
    print_list_json(std::cout);
  } else if (mode.empty()) {
    for (const Scenario* s : ScenarioRegistry::global().all()) {
      std::cout << s->name << " — " << s->summary << "  [" << s->paper
                << "]\n";
      print_param_lines(std::cout, *s);
    }
  } else {
    throw InvalidArgument("pimsim list: unknown mode '" + mode +
                          "'; valid modes: names, json");
  }
  return 0;
}

/// Turns on kernel audit mode for every Simulation constructed after
/// this call (the PIMSIM_AUDIT env var is read in the Simulation
/// constructor, which is how the flag reaches simulations buried inside
/// figure generators) and clears the process-wide chain aggregate.
void enable_audit() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): called before any sweep
  // thread is spawned; only Simulation constructors read it back.
  ::setenv("PIMSIM_AUDIT", "1", 1);
  des::AuditRegistry::global().reset();
}

void report_audit(std::ostream& os) {
  const auto sum = des::AuditRegistry::global().snapshot();
  os << "# audit: " << sum.simulations << " simulation(s), " << sum.events
     << " event(s), chain " << std::hex << sum.combined << std::dec << "\n";
}

/// The observability switches use the same env-var seam as enable_audit:
/// every Simulation constructed after the call reads the flag back, which
/// is how the switch reaches simulations buried inside figure generators.
void enable_trace() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): called before any sweep
  // thread is spawned; only Simulation constructors read it back.
  // overwrite=0: a PIMSIM_TRACE=full (or custom cap) already in the
  // environment keeps its value.
  ::setenv("PIMSIM_TRACE", "1", 0);
  obs::TraceHub::global().reset();
}

void enable_metrics() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): same discipline as enable_audit.
  ::setenv("PIMSIM_METRICS", "1", 1);
  obs::MetricsHub::global().reset();
}

void enable_profile() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): same discipline as enable_audit.
  ::setenv("PIMSIM_PROFILE", "1", 1);
  obs::ProfileHub::global().reset();
}

void write_trace_file(const std::string& path) {
  std::ofstream os(path);
  require(os.good(), "pimsim: cannot open trace file '" + path + "'");
  const auto& hub = obs::TraceHub::global();
  hub.write_json(os);
  std::cerr << "# trace: " << hub.simulations() << " simulation(s), "
            << hub.records() << " record(s), " << hub.dropped()
            << " dropped -> " << path << "\n";
}

void write_metrics_file(const std::string& path) {
  std::ofstream os(path);
  require(os.good(), "pimsim: cannot open metrics file '" + path + "'");
  const auto& hub = obs::MetricsHub::global();
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  if (csv) {
    hub.write_csv(os);
  } else {
    hub.write_json(os);
  }
  std::cerr << "# metrics: " << hub.simulations() << " simulation(s) -> "
            << path << "\n";
}

void report_profile(std::ostream& os) {
  obs::ProfileHub::global().write_table(os);
}

int cmd_run(const std::vector<std::string>& args) {
  require(!args.empty(), "pimsim run: missing scenario name (try 'pimsim list')");
  const Scenario& scenario = ScenarioRegistry::global().get(args[0]);
  const Config cfg = config_from_tokens({args.begin() + 1, args.end()});
  const std::string format = format_of(cfg);
  const bool audit = cfg.get_bool("audit", false);
  const std::string trace_path = cfg.get_string("trace", "");
  const std::string metrics_path = cfg.get_string("metrics", "");
  const bool profile = cfg.get_bool("profile", false);
  preflight_out(cfg);

  if (audit) enable_audit();
  if (!trace_path.empty()) enable_trace();
  if (!metrics_path.empty()) enable_metrics();
  if (profile) enable_profile();
  const auto start = std::chrono::steady_clock::now();
  const Table table = run_scenario(
      scenario, cfg,
      {"csv", "format", "out", "audit", "trace", "metrics", "profile"});
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  // Opened only after a successful run: a failed run (typo'd key, bad
  // grid) must not truncate an existing results file.
  const auto out = open_out(cfg);
  render(out ? *out : std::cout, table, format);
  if (audit) report_audit(std::cerr);
  if (!trace_path.empty()) write_trace_file(trace_path);
  if (!metrics_path.empty()) write_metrics_file(metrics_path);
  if (profile) report_profile(std::cerr);
  std::cerr << "# generated in " << elapsed << " s\n";
  return 0;
}

/// One expanded sweep point: the full Config plus its axis assignment.
struct SweepPoint {
  Config cfg;
  std::string assignment;  // "k=v k2=v2" of the swept axes only
};

/// Expands comma-separated values of *scalar* scenario parameters into a
/// cartesian grid (list-typed parameters keep their commas).  Axes nest
/// in `key_order` — declaration order: config file first, then CLI
/// overrides — with the last-declared axis varying fastest.
std::vector<SweepPoint> expand_grid(const Scenario& scenario,
                                    const Config& merged,
                                    const std::vector<std::string>& key_order,
                                    bool pin_inner_threads) {
  struct Axis {
    std::string key;
    std::vector<std::string> values;
  };
  std::vector<Axis> axes;
  Config base;
  for (const std::string& key : key_order) {
    const std::string value = merged.get_string(key, "");
    const auto spec =
        std::find_if(scenario.params.begin(), scenario.params.end(),
                     [&](const ParamSpec& p) { return p.key == key; });
    const bool is_list =
        spec != scenario.params.end() && spec->kind == ParamSpec::Kind::kList;
    if (!is_list && value.find(',') != std::string::npos) {
      Axis axis{key, split_csv(value)};
      require(!axis.values.empty(),
              "pimsim sweep: empty grid for '" + key + "'");
      axes.push_back(std::move(axis));
    } else {
      base.set(key, value);
    }
  }
  const bool has_threads = std::any_of(
      scenario.params.begin(), scenario.params.end(),
      [](const ParamSpec& p) { return p.key == "threads"; });
  if (pin_inner_threads && has_threads && !base.has("threads") &&
      std::none_of(axes.begin(), axes.end(),
                   [](const Axis& a) { return a.key == "threads"; })) {
    base.set("threads", "1");  // outer pool owns the parallelism
  }

  std::vector<SweepPoint> points;
  std::size_t total = 1;
  for (const Axis& a : axes) total *= a.values.size();
  for (std::size_t i = 0; i < total; ++i) {
    SweepPoint point{base, ""};
    std::size_t rest = i;
    // Last-declared axis varies fastest, like nested loops.
    for (std::size_t a = axes.size(); a-- > 0;) {
      const std::string& v = axes[a].values[rest % axes[a].values.size()];
      rest /= axes[a].values.size();
      point.cfg.set(axes[a].key, v);
      point.assignment = axes[a].key + "=" + v +
                         (point.assignment.empty() ? "" : " ") +
                         point.assignment;
    }
    points.push_back(std::move(point));
  }
  return points;
}

/// One sweep point's output block, exactly as the unsharded sweep prints
/// it: "# <scenario> <assignment>\n" + the rendered table.  Sharded
/// chunks store these blocks verbatim, which is what makes the merged
/// file byte-identical to an unsharded run.
std::string render_block(const Scenario& scenario, const SweepPoint& point,
                         const Table& table, const std::string& format) {
  std::ostringstream os;
  os << "# " << scenario.name
     << (point.assignment.empty() ? "" : " " + point.assignment) << "\n";
  render(os, table, format);
  return os.str();
}

/// Grid identity + deterministic shard plan for a sharded sweep.  The
/// fingerprint canonicalizes everything that decides the merged bytes
/// (scenario, format, merged parameters, per-point assignments) but NOT
/// the shard count, so chunks from different N-way partitions of the
/// same grid are recognized as the same sweep by fingerprint even
/// though the manifest pins one N.
GridSpec build_grid(const Scenario& scenario, const Config& merged,
                    const std::vector<std::string>& key_order,
                    const std::vector<SweepPoint>& points,
                    const ShardSpec& shard, const std::string& format) {
  GridSpec grid;
  grid.scenario = scenario.name;
  grid.format = format;
  grid.shards = shard.count;

  std::string canonical = "pimsim-grid-v1\n" + scenario.name + "\n" + format + "\n";
  for (const std::string& key : key_order) {
    canonical += key + "=" + merged.get_string(key, "") + "\n";
  }
  grid.assignments.reserve(points.size());
  std::vector<double> weights;
  weights.reserve(points.size());
  std::vector<std::size_t> reps(points.size(), 1);
  bool replicated = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& point = points[i];
    grid.assignments.push_back(point.assignment);
    canonical += point.assignment + "\n";
    // In a replicated grid the shard plan assigns (point, rep) units, so
    // weigh one replication (reps=1) — the rep axis multiplies units,
    // not per-unit cost.
    const ReplicationSpec rspec = replication_spec(scenario, point.cfg);
    reps[i] = rspec.reps;
    replicated = replicated || rspec.reps > 1;
    Config probe = point.cfg;
    if (rspec.declared) probe.set("reps", "1");
    double w = 1.0;
    if (scenario.cost_hint) {
      try {
        w = scenario.cost_hint(probe);
      } catch (const std::exception&) {
        w = 1.0;  // a hint must never be able to fail a sweep
      }
    }
    weights.push_back(w);
  }
  grid.grid_fingerprint = data_fingerprint(canonical);
  if (replicated) {
    grid.replicated = true;
    grid.point_reps = reps;
    std::vector<double> unit_weights;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t r = 0; r < reps[i]; ++r) {
        grid.unit_point.push_back(i);
        grid.unit_rep.push_back(r);
        unit_weights.push_back(weights[i]);
      }
    }
    grid.unit_shard = plan_shards(unit_weights, shard.count);
    // Per-point shard_of (the manifest's informational field) is where
    // the point's first replication landed.
    grid.shard_of.assign(points.size(), 0);
    for (std::size_t u = 0; u < grid.unit_point.size(); ++u) {
      if (grid.unit_rep[u] == 0) {
        grid.shard_of[grid.unit_point[u]] = grid.unit_shard[u];
      }
    }
  } else {
    grid.shard_of = plan_shards(weights, shard.count);
  }
  return grid;
}

/// `pimsim sweep ... shard=i/N out=DIR`: computes shard i's points and
/// writes the chunk, or skips when a valid chunk already exists (resume).
int run_shard(const Scenario& scenario, const Config& cli,
              const Config& merged, const std::vector<std::string>& key_order,
              const std::vector<SweepPoint>& points, const ShardSpec& shard,
              std::size_t jobs, const std::string& format,
              const std::string& metrics_path, bool profile) {
  const std::string dir = cli.get_string("out", "");
  require(!dir.empty(),
          "pimsim sweep: shard=i/N requires out=DIR (the chunk directory "
          "shared by every shard of the sweep)");
  const GridSpec grid = build_grid(scenario, merged, key_order, points, shard, format);
  write_or_check_manifest(dir, grid);

  if (chunk_complete(dir, grid, shard.index)) {
    std::cerr << "# shard " << shard.index << "/" << shard.count
              << ": valid chunk already in '" << dir
              << "', skipping (delete its files to recompute)\n";
    return 0;
  }

  // In a replicated grid the work list is (point, rep) units and each
  // unit's chunk payload is the exact serialization of its single-rep
  // table ("pimsim-rep-v1"); merge refolds them bit-for-bit.  A plain
  // grid keeps the rendered-block payloads.
  std::vector<std::size_t> mine;
  if (grid.replicated) {
    for (std::size_t u = 0; u < grid.unit_point.size(); ++u) {
      if (grid.unit_shard[u] == shard.index) mine.push_back(u);
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (grid.shard_of[i] == shard.index) mine.push_back(i);
    }
  }

  // Metrics are always collected in shard mode: the sidecar carries the
  // per-simulation snapshots so `pimsim merge` can refold them exactly
  // as the unsharded run would have.
  enable_metrics();
  if (profile) enable_profile();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<Table>> tables(mine.size());
  SweepRunner runner(jobs);
  runner.for_each(mine.size(), [&](std::size_t i) {
    if (grid.replicated) {
      const std::size_t point = grid.unit_point[mine[i]];
      const std::size_t rep = grid.unit_rep[mine[i]];
      // Single-rep points run the reps=1 bypass (raw seed), exactly as
      // the unsharded sweep does; multi-rep points run one derived-seed
      // replication per unit.
      tables[i] = std::make_unique<Table>(
          grid.point_reps[point] == 1
              ? run_scenario(scenario, points[point].cfg,
                             {"csv", "format", "out"})
              : run_replication(scenario, points[point].cfg, rep,
                                {"csv", "format", "out"}));
    } else {
      tables[i] = std::make_unique<Table>(run_scenario(
          scenario, points[mine[i]].cfg, {"csv", "format", "out"}));
    }
  });
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  std::vector<ChunkPoint> chunk_points;
  chunk_points.reserve(mine.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    ChunkPoint p;
    if (grid.replicated) {
      p.point = grid.unit_point[mine[i]];
      p.rep = grid.unit_rep[mine[i]];
      p.block = serialize_table(*tables[i]);
    } else {
      p.point = mine[i];
      p.block = render_block(scenario, points[p.point], *tables[i], format);
    }
    p.assignment = points[p.point].assignment;
    p.fingerprint = data_fingerprint(p.block);
    chunk_points.push_back(std::move(p));
  }
  write_chunk(dir, grid, shard.index, chunk_points,
              obs::MetricsHub::global().snapshot_bytes(), elapsed);
  if (!metrics_path.empty()) write_metrics_file(metrics_path);
  if (profile) report_profile(std::cerr);
  std::cerr << "# shard " << shard.index << "/" << shard.count << ": swept "
            << mine.size() << " of "
            << (grid.replicated ? grid.unit_point.size() : points.size())
            << " " << (grid.replicated ? "unit(s)" : "point(s)") << " on "
            << runner.threads() << " thread(s) in " << elapsed << " s -> "
            << dir << "/" << chunk_basename(shard.index, shard.count)
            << ".{csv,json}\n";
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  require(!args.empty(), "pimsim sweep: missing scenario name");
  const Scenario& scenario = ScenarioRegistry::global().get(args[0]);
  const Config cli = config_from_tokens({args.begin() + 1, args.end()});

  const std::string config_path = cli.get_string("config", "");
  require(!config_path.empty(),
          "pimsim sweep: missing config=FILE (declarative parameter grid)");
  std::ifstream in(config_path);
  require(in.good(),
          "pimsim sweep: cannot read config file '" + config_path + "'");
  std::string text, line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    text += line + " ";
  }
  Config merged = Config::from_string(text);
  // Driver keys in the file would be silently shadowed by the CLI's
  // (format) or mistaken for scenario parameters (jobs) — reject loudly.
  for (const char* driver : {"config", "jobs", "format", "out", "csv",
                             "metrics", "profile", "shard"}) {
    require(!merged.has(driver),
            std::string("pimsim sweep: driver key '") + driver +
                "' belongs on the command line, not in config file '" +
                config_path + "'");
  }
  // Axis nesting follows declaration order: file keys first, in file
  // order, then command-line keys (which also override file values).
  std::vector<std::string> key_order;
  const auto note_key = [&key_order](const std::string& token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return;
    const std::string key = token.substr(0, eq);
    if (std::find(key_order.begin(), key_order.end(), key) ==
        key_order.end()) {
      key_order.push_back(key);
    }
  };
  {
    std::istringstream tokens(text);
    std::string token;
    while (tokens >> token) note_key(token);
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) == 0) continue;  // as Config::from_args does
    const auto eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    if (key == "config" || key == "jobs" || key == "format" || key == "out" ||
        key == "csv" || key == "metrics" || key == "profile" ||
        key == "shard") {
      continue;
    }
    merged.set(key, cli.get_string(key, ""));
    note_key(token);
  }

  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  const std::string format = format_of(cli);
  const std::string metrics_path = cli.get_string("metrics", "");
  const bool profile = cli.get_bool("profile", false);
  const std::string shard_text = cli.get_string("shard", "");
  if (shard_text.empty()) preflight_out(cli);  // sharded: out= is a directory

  const std::vector<SweepPoint> points =
      expand_grid(scenario, merged, key_order, /*pin_inner_threads=*/true);
  require(!points.empty(), "pimsim sweep: empty parameter grid");

  if (!shard_text.empty()) {
    return run_shard(scenario, cli, merged, key_order, points,
                     parse_shard(shard_text), jobs, format, metrics_path,
                     profile);
  }

  // Aggregation across sweep points is deterministic regardless of
  // jobs=N: the hub folds snapshots in content order, not arrival order.
  if (!metrics_path.empty()) enable_metrics();
  if (profile) enable_profile();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<Table>> tables(points.size());
  SweepRunner runner(jobs);
  runner.for_each(points.size(), [&](std::size_t i) {
    tables[i] = std::make_unique<Table>(
        run_scenario(scenario, points[i].cfg, {"csv", "format", "out"}));
  });
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  // Opened only after the whole grid ran: a failing point must not
  // truncate an existing results file.
  const auto out = open_out(cli);
  std::ostream& os = out ? *out : std::cout;
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << render_block(scenario, points[i], *tables[i], format);
  }
  if (!metrics_path.empty()) write_metrics_file(metrics_path);
  if (profile) report_profile(std::cerr);
  std::cerr << "# swept " << points.size() << " point(s) on "
            << runner.threads() << " thread(s) in " << elapsed << " s\n";
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  require(!args.empty(),
          "pimsim merge: missing chunk directory (pimsim merge DIR "
          "[out=PATH] [metrics=PATH])");
  const std::string dir = args[0];
  const Config cfg = config_from_tokens({args.begin() + 1, args.end()});
  const std::string metrics_path = cfg.get_string("metrics", "");
  (void)cfg.get_string("out", "");
  cfg.reject_unused();

  const GridSpec grid = read_manifest(dir);
  const std::vector<std::size_t> present = chunks_present(dir, grid);
  std::vector<bool> have(grid.shards, false);
  for (const std::size_t id : present) {
    require(!have[id], "pimsim merge: duplicate chunk sidecar for shard " +
                           std::to_string(id) + " in '" + dir + "'");
    have[id] = true;
  }
  std::string missing;
  for (std::size_t s = 0; s < grid.shards; ++s) {
    if (!have[s]) missing += (missing.empty() ? "" : ", ") + std::to_string(s);
  }
  if (!missing.empty()) {
    throw InvalidArgument(
        "pimsim merge: '" + dir + "' is missing chunk(s) for shard(s) " +
        missing + " of " + std::to_string(grid.shards) +
        "; rerun `pimsim sweep " + grid.scenario +
        " ... shard=<i>/" + std::to_string(grid.shards) + " out=" + dir + "`");
  }

  // Every chunk validates against the manifest (read_chunk checks the
  // grid fingerprint, the planned point/unit set, and every block's
  // recorded fingerprint), so after this loop `blocks` holds the full
  // grid — rendered blocks per point, or serialized tables per
  // (point, rep) unit of a replicated grid.
  if (!metrics_path.empty()) obs::MetricsHub::global().reset();
  std::vector<std::size_t> unit_offset(grid.assignments.size(), 0);
  if (grid.replicated) {
    std::size_t offset = 0;
    for (std::size_t i = 0; i < grid.assignments.size(); ++i) {
      unit_offset[i] = offset;
      offset += grid.point_reps[i];
    }
  }
  std::vector<std::string> blocks(
      grid.replicated ? grid.unit_point.size() : grid.assignments.size());
  double shard_wall = 0.0;
  for (std::size_t s = 0; s < grid.shards; ++s) {
    const ChunkData data = read_chunk(dir, grid, s);
    shard_wall += data.wall_seconds;
    for (const ChunkPoint& p : data.points) {
      blocks[grid.replicated ? unit_offset[p.point] + p.rep : p.point] =
          p.block;
    }
    if (!metrics_path.empty()) {
      for (const std::string& snapshot : data.metrics) {
        obs::MetricsHub::global().absorb_bytes(snapshot);
      }
    }
  }

  const auto out = open_out(cfg);
  std::ostream& os = out ? *out : std::cout;
  if (grid.replicated) {
    // Refold each point's replications from the exact serialized cell
    // bits — raw RunningStats moments, never re-parsed rendered floats —
    // then render once, reproducing the unsharded fold byte for byte.
    for (std::size_t i = 0; i < grid.assignments.size(); ++i) {
      std::vector<Table> reps;
      reps.reserve(grid.point_reps[i]);
      for (std::size_t r = 0; r < grid.point_reps[i]; ++r) {
        reps.push_back(deserialize_table(blocks[unit_offset[i] + r]));
      }
      const Table folded = fold_replications(reps);
      os << "# " << grid.scenario
         << (grid.assignments[i].empty() ? "" : " " + grid.assignments[i])
         << "\n";
      render(os, folded, grid.format);
    }
  } else {
    for (const std::string& block : blocks) os << block;
  }
  if (!metrics_path.empty()) write_metrics_file(metrics_path);
  std::cerr << "# merged " << grid.shards << " chunk(s), "
            << grid.assignments.size() << " point(s), shard wall time "
            << shard_wall << " s\n";
  return 0;
}

std::string render_csv(const Scenario& scenario, const Config& cfg) {
  std::ostringstream os;
  run_scenario(scenario, cfg, {}).print_csv(os);
  return os.str();
}

int verify_one(const Scenario& s, bool strict, bool audit) {
  Config cfg = Config::from_string(s.verify_params);
  const bool has_threads = std::any_of(
      s.params.begin(), s.params.end(),
      [](const ParamSpec& p) { return p.key == "threads"; });

  // With audit on, each pass gets its own chain aggregate: the two
  // passes must produce the same combined event-chain hash, proving the
  // dispatched event streams — not just the rendered CSV — are
  // identical across thread counts.
  des::AuditRegistry::Summary chain_a, chain_b;
  const auto pass = [&](const Config& c, des::AuditRegistry::Summary& chain) {
    if (audit) des::AuditRegistry::global().reset();
    std::string csv = render_csv(s, c);
    if (audit) chain = des::AuditRegistry::global().snapshot();
    return csv;
  };

  std::string first, second;
  if (has_threads) {
    Config serial = cfg, parallel = cfg;
    serial.set("threads", "1");
    parallel.set("threads", "3");
    first = pass(serial, chain_a);
    second = pass(parallel, chain_b);
  } else {
    first = pass(cfg, chain_a);
    second = pass(cfg, chain_b);
  }

  const std::uint64_t fp = data_fingerprint(first);

  // Replication determinism: scenarios with a reps knob must fold to
  // identical bytes (and identical event chains under audit) at any
  // sweep thread count — the reps=1 passes above never exercise the
  // fold, so run the verify grid once more at reps=2.
  const bool has_reps = std::any_of(
      s.params.begin(), s.params.end(),
      [](const ParamSpec& p) { return p.key == "reps"; });
  bool reps_ok = true;
  bool reps_chain_ok = true;
  if (has_reps) {
    Config rep_a = cfg, rep_b = cfg;
    rep_a.set("reps", "2");
    rep_b.set("reps", "2");
    if (has_threads) {
      rep_a.set("threads", "1");
      rep_b.set("threads", "3");
    }
    des::AuditRegistry::Summary rep_chain_a, rep_chain_b;
    reps_ok = pass(rep_a, rep_chain_a) == pass(rep_b, rep_chain_b);
    reps_chain_ok = !audit || rep_chain_a == rep_chain_b;
  }

  int failures = 0;
  std::cerr << "verify " << s.name << ": ";
  if (first != second) {
    std::cerr << "FAIL (reruns differ"
              << (has_threads ? " across sweep_threads 1 vs 3)" : ")");
    ++failures;
  } else {
    std::cerr << "determinism ok";
  }
  if (has_reps) {
    if (reps_ok && reps_chain_ok) {
      std::cerr << ", reps=2 ok";
    } else {
      std::cerr << ", reps=2 FAIL ("
                << (reps_ok ? "event chains diverge" : "folds differ")
                << (has_threads ? " across sweep_threads 1 vs 3)" : ")");
      ++failures;
    }
  }
  if (audit) {
    if (chain_a == chain_b) {
      std::cerr << ", audit chain " << std::hex << chain_a.combined
                << std::dec << " ok (" << chain_a.simulations << " sims, "
                << chain_a.events << " events)";
    } else {
      std::cerr << ", audit FAIL (event chains diverge: " << std::hex
                << chain_a.combined << " vs " << chain_b.combined << std::dec
                << ")";
      ++failures;
    }
  }
  std::cerr << ", fingerprint " << std::hex << fp << std::dec;
  if (s.verify_fingerprint != 0) {
    if (fp == s.verify_fingerprint) {
      std::cerr << " (matches pinned)";
    } else if (strict) {
      std::cerr << " MISMATCH vs pinned " << std::hex << s.verify_fingerprint
                << std::dec;
      ++failures;
    } else {
      std::cerr << " (differs from pinned " << std::hex
                << s.verify_fingerprint << std::dec
                << "; compiler/libm dependent — strict=1 to enforce)";
    }
  } else {
    std::cerr << " (unpinned)";
  }
  std::cerr << "\n";
  return failures;
}

int cmd_verify(const std::vector<std::string>& args) {
  require(!args.empty(),
          "pimsim verify: missing scenario name (or 'all')");
  const Config cfg = config_from_tokens({args.begin() + 1, args.end()});
  const bool strict = cfg.get_bool("strict", false);
  const bool audit = cfg.get_bool("audit", false);
  cfg.reject_unused();

  if (audit) enable_audit();
  int failures = 0;
  if (args[0] == "all") {
    for (const Scenario* s : ScenarioRegistry::global().all()) {
      failures += verify_one(*s, strict, audit);
    }
  } else {
    failures +=
        verify_one(ScenarioRegistry::global().get(args[0]), strict, audit);
  }
  std::cerr << (failures == 0 ? "verify: all ok\n" : "verify: FAILURES\n");
  return failures;
}

int cmd_help(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cout << kUsage;
    return 0;
  }
  const Scenario& s = ScenarioRegistry::global().get(args[0]);
  std::cout << s.name << " — " << s.summary << "\n  paper: " << s.paper
            << "\n  parameters:\n";
  print_param_lines(std::cout, s);
  if (!s.verify_params.empty()) {
    std::cout << "  verify grid: " << s.verify_params << "\n";
  }
  return 0;
}

}  // namespace

int cli_main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "help" || args[0] == "--help" ||
        args[0] == "-h") {
      return cmd_help(args.empty() ? args
                                   : std::vector<std::string>(
                                         args.begin() + 1, args.end()));
    }
    const std::string command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (command == "list") return cmd_list(rest);
    if (command == "run") return cmd_run(rest);
    if (command == "sweep") return cmd_sweep(rest);
    if (command == "merge") return cmd_merge(rest);
    if (command == "verify") return cmd_verify(rest);
    throw InvalidArgument(
        "pimsim: unknown command '" + command +
        "'; valid commands: list, run, sweep, merge, verify, help");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace pimsim::core
