#include "core/chunk.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <unistd.h>

#include "common/error.hpp"
#include "core/scenario.hpp"

namespace pimsim::core {
namespace fs = std::filesystem;

namespace {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string json_unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\' || i + 1 == in.size()) {
      out.push_back(in[i]);
      continue;
    }
    switch (in[++i]) {
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      default: out.push_back(in[i]);  // \" and \\ (and anything else verbatim)
    }
  }
  return out;
}

std::string hex_encode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kDigits[b >> 4U]);
    out.push_back(kDigits[b & 0xfU]);
  }
  return out;
}

int hex_nibble(char c, const std::string& file) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  throw InvalidArgument("pimsim merge: '" + file +
                        "': metrics snapshot is not valid hex");
}

std::string hex_decode(const std::string& hex, const std::string& file) {
  require(hex.size() % 2 == 0, "pimsim merge: '" + file +
                                   "': odd-length metrics snapshot hex");
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((hex_nibble(hex[i], file) << 4) |
                                    hex_nibble(hex[i + 1], file)));
  }
  return out;
}

std::string slurp(const fs::path& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), std::string("pimsim: cannot read ") + what + " '" +
                         path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Writes `text` to `path` atomically: a temp file (unique per process,
/// so concurrent shard writers never interleave) renamed into place.
void atomic_write(const fs::path& path, const std::string& text) {
  const fs::path tmp =
      path.string() + ".tmp-" + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary);
    require(out.good(),
            "pimsim: cannot write chunk file '" + tmp.string() + "'");
    out << text;
    require(out.good(),
            "pimsim: short write to chunk file '" + tmp.string() + "'");
  }
  fs::rename(tmp, path);  // POSIX rename: atomic replace
}

// --- minimal parsers for the sidecar/manifest JSON we write ourselves ----

/// Value of `"key": "..."` (first occurrence), unescaped.
std::string find_string(const std::string& text, const std::string& key,
                        const std::string& file) {
  const std::string token = "\"" + key + "\"";
  const std::size_t at = text.find(token);
  require(at != std::string::npos,
          "pimsim: '" + file + "': missing field \"" + key + "\"");
  std::size_t open = text.find('"', at + token.size() + 1);
  require(open != std::string::npos,
          "pimsim: '" + file + "': malformed field \"" + key + "\"");
  std::size_t close = open + 1;
  while (close < text.size() &&
         (text[close] != '"' || text[close - 1] == '\\')) {
    ++close;
  }
  require(close < text.size(),
          "pimsim: '" + file + "': unterminated string for \"" + key + "\"");
  return json_unescape(text.substr(open + 1, close - open - 1));
}

/// Value of `"key": <number>` (first occurrence).
double find_number(const std::string& text, const std::string& key,
                   const std::string& file) {
  const std::string token = "\"" + key + "\"";
  std::size_t at = text.find(token);
  require(at != std::string::npos,
          "pimsim: '" + file + "': missing field \"" + key + "\"");
  at = text.find(':', at + token.size());
  require(at != std::string::npos,
          "pimsim: '" + file + "': malformed field \"" + key + "\"");
  try {
    return std::stod(text.substr(at + 1));
  } catch (const std::exception&) {
    throw InvalidArgument("pimsim: '" + file + "': non-numeric field \"" +
                          key + "\"");
  }
}

std::size_t find_size(const std::string& text, const std::string& key,
                      const std::string& file) {
  const double v = find_number(text, key, file);
  require(v >= 0.0, "pimsim: '" + file + "': negative field \"" + key + "\"");
  return static_cast<std::size_t>(v);
}

/// Fingerprints are stored as "0x<hex>" strings (JSON numbers lose
/// precision past 2^53).
std::uint64_t find_fingerprint(const std::string& text, const std::string& key,
                               const std::string& file) {
  const std::string raw = find_string(text, key, file);
  require(raw.rfind("0x", 0) == 0 && raw.size() > 2,
          "pimsim: '" + file + "': field \"" + key + "\" is not 0x<hex>");
  try {
    return std::stoull(raw.substr(2), nullptr, 16);
  } catch (const std::exception&) {
    throw InvalidArgument("pimsim: '" + file + "': field \"" + key +
                          "\" is not 0x<hex>");
  }
}

std::string fingerprint_text(std::uint64_t fp) {
  std::ostringstream os;
  os << "0x" << std::hex << fp;
  return os.str();
}

/// The manifest bytes: a pure function of the grid, so every shard
/// process produces the identical file.  Replicated grids append the
/// per-point rep counts and the (point, rep) unit plan; plain grids
/// produce the exact pre-replication pimsim-manifest-v1 bytes.
std::string manifest_text(const GridSpec& grid) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"pimsim-manifest-v1\",\n  \"scenario\": \""
     << json_escape(grid.scenario) << "\",\n  \"format\": \"" << grid.format
     << "\",\n  \"shards\": " << grid.shards
     << ",\n  \"total_points\": " << grid.assignments.size();
  if (grid.replicated) {
    os << ",\n  \"replicated\": true,\n  \"total_units\": "
       << grid.unit_point.size();
  }
  os << ",\n  \"grid_fingerprint\": \"" << fingerprint_text(grid.grid_fingerprint)
     << "\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < grid.assignments.size(); ++i) {
    os << "    {\"point\": " << i << ", \"shard\": " << grid.shard_of[i];
    if (grid.replicated) os << ", \"reps\": " << grid.point_reps[i];
    os << ", \"assignment\": \"" << json_escape(grid.assignments[i]) << "\"}"
       << (i + 1 < grid.assignments.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (grid.replicated) {
    os << ",\n  \"units\": [\n";
    for (std::size_t u = 0; u < grid.unit_point.size(); ++u) {
      os << "    {\"unit\": " << u << ", \"point\": " << grid.unit_point[u]
         << ", \"rep\": " << grid.unit_rep[u] << ", \"shard\": "
         << grid.unit_shard[u] << "}"
         << (u + 1 < grid.unit_point.size() ? "," : "") << "\n";
    }
    os << "  ]";
  }
  os << "\n}\n";
  return os.str();
}

/// Splits the lines of a JSON array of one-object-per-line entries, each
/// starting with `{"<tag>":` — the shape both writers emit.  Manifest
/// unit lines start `{"unit":` and chunk/manifest point entries start
/// `{"point":`, so the two arrays never cross-match.
std::vector<std::string> tagged_lines(const std::string& text,
                                      const char* tag) {
  const std::string token = std::string("{\"") + tag + "\":";
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(token) != std::string::npos) out.push_back(line);
  }
  return out;
}

std::vector<std::string> point_lines(const std::string& text) {
  return tagged_lines(text, "point");
}

/// Grid-ordered indices of the points shard `shard` owns.
std::vector<std::size_t> points_of_shard(const GridSpec& grid,
                                         std::size_t shard) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < grid.shard_of.size(); ++i) {
    if (grid.shard_of[i] == shard) out.push_back(i);
  }
  return out;
}

/// Grid-ordered unit indices owned by `shard` (replicated grids).
std::vector<std::size_t> units_of_shard(const GridSpec& grid,
                                        std::size_t shard) {
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < grid.unit_shard.size(); ++u) {
    if (grid.unit_shard[u] == shard) out.push_back(u);
  }
  return out;
}

}  // namespace

std::string chunk_basename(std::size_t shard, std::size_t shards) {
  return "chunk-" + std::to_string(shard) + "-of-" + std::to_string(shards);
}

void write_or_check_manifest(const std::string& dir, const GridSpec& grid) {
  const fs::path root(dir);
  if (fs::exists(root) && !fs::is_directory(root)) {
    throw InvalidArgument("pimsim sweep: out='" + dir +
                          "' exists and is not a directory; shard=i/N needs "
                          "a chunk directory");
  }
  fs::create_directories(root);
  const std::string text = manifest_text(grid);
  const fs::path path = root / "manifest.json";
  if (fs::exists(path)) {
    if (slurp(path, "manifest") != text) {
      throw InvalidArgument(
          "pimsim sweep: '" + path.string() +
          "' describes a different sweep (scenario, grid, format, or shard "
          "count changed); merge or delete the old chunks first");
    }
    return;
  }
  atomic_write(path, text);
}

void write_chunk(const std::string& dir, const GridSpec& grid,
                 std::size_t shard, const std::vector<ChunkPoint>& points,
                 const std::vector<std::string>& metrics, double wall_seconds) {
  const fs::path root(dir);
  const std::string base = chunk_basename(shard, grid.shards);

  std::string blocks;
  for (const ChunkPoint& p : points) blocks += p.block;
  atomic_write(root / (base + ".csv"), blocks);

  std::ostringstream os;
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"schema\": \"pimsim-chunk-v1\",\n  \"scenario\": \""
     << json_escape(grid.scenario) << "\",\n  \"format\": \"" << grid.format
     << "\",\n  \"shard\": " << shard << ",\n  \"shards\": " << grid.shards;
  if (grid.replicated) os << ",\n  \"replicated\": true";
  os << ",\n  \"grid_fingerprint\": \"" << fingerprint_text(grid.grid_fingerprint)
     << "\",\n  \"wall_seconds\": " << wall_seconds << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ChunkPoint& p = points[i];
    os << "    {\"point\": " << p.point;
    if (grid.replicated) os << ", \"rep\": " << p.rep;
    os << ", \"assignment\": \""
       << json_escape(p.assignment) << "\", \"bytes\": " << p.block.size()
       << ", \"fingerprint\": \"" << fingerprint_text(p.fingerprint) << "\"}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    os << (i ? ",\n    \"" : "\n    \"") << hex_encode(metrics[i]) << "\"";
  }
  os << (metrics.empty() ? "]" : "\n  ]") << "\n}\n";
  os.precision(old_precision);
  atomic_write(root / (base + ".json"), os.str());
}

GridSpec read_manifest(const std::string& dir) {
  const fs::path path = fs::path(dir) / "manifest.json";
  if (!fs::exists(path)) {
    throw InvalidArgument(
        "pimsim merge: no manifest.json in '" + dir +
        "'; expected a chunk directory written by pimsim sweep shard=i/N "
        "out=DIR");
  }
  const std::string text = slurp(path, "manifest");
  const std::string file = path.string();
  require(find_string(text, "schema", file) == "pimsim-manifest-v1",
          "pimsim merge: '" + file + "': unknown schema (expected "
          "pimsim-manifest-v1)");
  GridSpec grid;
  grid.scenario = find_string(text, "scenario", file);
  grid.format = find_string(text, "format", file);
  grid.shards = find_size(text, "shards", file);
  grid.grid_fingerprint = find_fingerprint(text, "grid_fingerprint", file);
  const std::size_t total = find_size(text, "total_points", file);
  require(grid.shards >= 1, "pimsim merge: '" + file + "': shards must be >= 1");

  grid.replicated = text.find("\"replicated\": true") != std::string::npos;

  for (const std::string& line : point_lines(text)) {
    const std::size_t point = find_size(line, "point", file);
    const std::size_t shard = find_size(line, "shard", file);
    require(point == grid.assignments.size(),
            "pimsim merge: '" + file + "': points out of order");
    require(shard < grid.shards,
            "pimsim merge: '" + file + "': point assigned to shard " +
                std::to_string(shard) + " of " + std::to_string(grid.shards));
    grid.assignments.push_back(find_string(line, "assignment", file));
    grid.shard_of.push_back(shard);
    if (grid.replicated) {
      const std::size_t reps = find_size(line, "reps", file);
      require(reps >= 1, "pimsim merge: '" + file + "': point " +
                             std::to_string(point) + " declares zero reps");
      grid.point_reps.push_back(reps);
    }
  }
  require(grid.assignments.size() == total,
          "pimsim merge: '" + file + "': total_points disagrees with the "
          "point list");

  if (grid.replicated) {
    const std::size_t total_units = find_size(text, "total_units", file);
    for (const std::string& line : tagged_lines(text, "unit")) {
      const std::size_t unit = find_size(line, "unit", file);
      const std::size_t point = find_size(line, "point", file);
      const std::size_t rep = find_size(line, "rep", file);
      const std::size_t shard = find_size(line, "shard", file);
      require(unit == grid.unit_point.size(),
              "pimsim merge: '" + file + "': units out of order");
      require(point < grid.assignments.size() && rep < grid.point_reps[point],
              "pimsim merge: '" + file + "': unit " + std::to_string(unit) +
                  " names an out-of-range (point, rep)");
      require(shard < grid.shards,
              "pimsim merge: '" + file + "': unit assigned to shard " +
                  std::to_string(shard) + " of " +
                  std::to_string(grid.shards));
      grid.unit_point.push_back(point);
      grid.unit_rep.push_back(rep);
      grid.unit_shard.push_back(shard);
    }
    require(grid.unit_point.size() == total_units,
            "pimsim merge: '" + file + "': total_units disagrees with the "
            "unit list");
    std::size_t expected_units = 0;
    for (const std::size_t r : grid.point_reps) expected_units += r;
    require(expected_units == total_units,
            "pimsim merge: '" + file + "': unit list does not cover every "
            "(point, rep) once");
  }
  return grid;
}

ChunkData read_chunk(const std::string& dir, const GridSpec& grid,
                     std::size_t shard) {
  const std::string base = chunk_basename(shard, grid.shards);
  const fs::path side_path = fs::path(dir) / (base + ".json");
  const fs::path csv_path = fs::path(dir) / (base + ".csv");
  const std::string file = side_path.string();
  const std::string text = slurp(side_path, "chunk sidecar");

  require(find_string(text, "schema", file) == "pimsim-chunk-v1",
          "pimsim merge: '" + file + "': unknown schema (expected "
          "pimsim-chunk-v1)");
  require(find_string(text, "scenario", file) == grid.scenario,
          "pimsim merge: '" + file + "': scenario differs from the manifest");
  require(find_string(text, "format", file) == grid.format,
          "pimsim merge: '" + file + "': format differs from the manifest");
  require(find_size(text, "shard", file) == shard,
          "pimsim merge: '" + file + "': shard id disagrees with filename");
  require(find_size(text, "shards", file) == grid.shards,
          "pimsim merge: '" + file + "': shard count differs from the manifest");
  require(find_fingerprint(text, "grid_fingerprint", file) ==
              grid.grid_fingerprint,
          "pimsim merge: '" + file + "': chunk belongs to a different grid "
          "(grid fingerprint mismatch)");

  ChunkData data;
  data.shard = shard;
  data.wall_seconds = find_number(text, "wall_seconds", file);

  require((text.find("\"replicated\": true") != std::string::npos) ==
              grid.replicated,
          "pimsim merge: '" + file + "': replication mode differs from the "
          "manifest");

  const std::string blocks = slurp(csv_path, "chunk data");
  const std::vector<std::size_t> expected =
      grid.replicated ? units_of_shard(grid, shard)
                      : points_of_shard(grid, shard);
  std::size_t offset = 0;
  std::size_t next = 0;
  for (const std::string& line : point_lines(text)) {
    ChunkPoint p;
    p.point = find_size(line, "point", file);
    p.assignment = find_string(line, "assignment", file);
    const std::size_t bytes = find_size(line, "bytes", file);
    p.fingerprint = find_fingerprint(line, "fingerprint", file);
    if (grid.replicated) {
      p.rep = find_size(line, "rep", file);
      require(next < expected.size() &&
                  p.point == grid.unit_point[expected[next]] &&
                  p.rep == grid.unit_rep[expected[next]],
              "pimsim merge: '" + file + "': unit set diverges from the "
              "manifest's shard plan");
    } else {
      require(next < expected.size() && p.point == expected[next],
              "pimsim merge: '" + file + "': point set diverges from the "
              "manifest's shard plan");
    }
    require(p.point < grid.assignments.size() &&
                p.assignment == grid.assignments[p.point],
            "pimsim merge: '" + file + "': point assignment differs from "
            "the manifest");
    require(offset + bytes <= blocks.size(),
            "pimsim merge: '" + csv_path.string() + "': truncated (sidecar "
            "records more bytes than the file holds)");
    p.block = blocks.substr(offset, bytes);
    require(data_fingerprint(p.block) == p.fingerprint,
            "pimsim merge: '" + csv_path.string() + "': point " +
                std::to_string(p.point) +
                " bytes do not match the recorded fingerprint (corrupted or "
                "divergent chunk)");
    offset += bytes;
    ++next;
    data.points.push_back(std::move(p));
  }
  require(next == expected.size(),
          "pimsim merge: '" + file + "': chunk is missing points of its "
          "shard plan");
  require(offset == blocks.size(),
          "pimsim merge: '" + csv_path.string() + "': trailing bytes beyond "
          "the recorded points");

  // Metrics snapshots: quoted hex strings inside the "metrics" array.
  const std::string token = "\"metrics\"";
  std::size_t at = text.find(token);
  require(at != std::string::npos,
          "pimsim merge: '" + file + "': missing field \"metrics\"");
  at = text.find('[', at);
  const std::size_t end = text.find(']', at);
  require(at != std::string::npos && end != std::string::npos,
          "pimsim merge: '" + file + "': malformed \"metrics\" array");
  std::size_t open = text.find('"', at);
  while (open != std::string::npos && open < end) {
    const std::size_t close = text.find('"', open + 1);
    require(close != std::string::npos && close < end,
            "pimsim merge: '" + file + "': unterminated metrics snapshot");
    data.metrics.push_back(
        hex_decode(text.substr(open + 1, close - open - 1), file));
    open = text.find('"', close + 1);
  }
  return data;
}

bool chunk_complete(const std::string& dir, const GridSpec& grid,
                    std::size_t shard) {
  const fs::path side = fs::path(dir) / (chunk_basename(shard, grid.shards) + ".json");
  if (!fs::exists(side)) return false;
  try {
    (void)read_chunk(dir, grid, shard);
    return true;
  } catch (const ConfigError&) {
    return false;  // present but invalid -> recompute
  }
}

std::vector<std::size_t> chunks_present(const std::string& dir,
                                        const GridSpec& grid) {
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());  // directory order is unspecified

  const auto bad = [&dir](const std::string& name) -> std::size_t {
    throw InvalidArgument(
        "pimsim merge: unknown chunk-dir contents: '" + dir + "/" + name +
        "'; valid chunk files are chunk-<i>-of-<N>.csv/.json with N the "
        "manifest's shard count and 0 <= i < N");
  };
  std::vector<std::size_t> shards;
  for (const std::string& name : names) {
    if (name.rfind("chunk-", 0) != 0) continue;  // not chunk-like: ignored
    std::string stem = name;
    bool sidecar = false;
    if (stem.size() > 5 && stem.rfind(".json") == stem.size() - 5) {
      stem.erase(stem.size() - 5);
      sidecar = true;
    } else if (stem.size() > 4 && stem.rfind(".csv") == stem.size() - 4) {
      stem.erase(stem.size() - 4);
    } else {
      bad(name);
    }
    // stem must be exactly chunk-<i>-of-<N> with N == grid.shards, i < N.
    const std::size_t of = stem.find("-of-");
    if (of == std::string::npos) bad(name);
    const std::string index_text = stem.substr(6, of - 6);
    const std::string count_text = stem.substr(of + 4);
    std::size_t index = 0;
    std::size_t count = 0;
    try {
      std::size_t used = 0;
      index = std::stoul(index_text, &used);
      if (used != index_text.size() || index_text.empty()) bad(name);
      count = std::stoul(count_text, &used);
      if (used != count_text.size() || count_text.empty()) bad(name);
    } catch (const std::exception&) {
      bad(name);
    }
    if (count != grid.shards || index >= count) bad(name);
    if (sidecar) shards.push_back(index);
  }
  return shards;
}

}  // namespace pimsim::core
