// Scenario registry: the single seam every experiment plugs into.
//
// Each reproduced figure, table, ablation, and traffic study registers
// itself as a named Scenario with typed, self-describing parameters
// (name, default, range, doc string) and a generator returning the
// common::Table it plots.  The `pimsim` CLI (src/core/cli.hpp) drives the
// registry — list / run / sweep / verify — and the bench_* binaries are
// thin wrappers over the same registrations (bench::run_scenario_main),
// so a new workload or topology study is ~30 lines of registration
// instead of a new build target.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"

namespace pimsim::core {

/// One typed, documented scenario parameter (a key=value knob).
struct ParamSpec {
  enum class Kind { kInt, kDouble, kBool, kString, kList };

  std::string key;
  Kind kind = Kind::kDouble;
  std::string default_value;  ///< rendered default, for documentation
  std::string range;          ///< valid range or choices, human-readable
  std::string doc;            ///< one-line description
};

[[nodiscard]] const char* to_string(ParamSpec::Kind kind);

/// A registered experiment: a named generator from key=value parameters
/// to the Table the paper figure/claim plots.
struct Scenario {
  std::string name;     ///< CLI name, e.g. "fig5"
  std::string summary;  ///< one-line description of what it reproduces
  std::string paper;    ///< paper anchor, e.g. "Section 3.1, Figure 5"
  std::vector<ParamSpec> params;
  std::function<Table(const Config&)> make;

  /// Reduced-grid parameters for `pimsim verify` (fast + deterministic).
  std::string verify_params;
  /// FNV-1a fingerprint of the verify run's CSV output; 0 = not pinned.
  /// Fingerprints are compiler/libm sensitive, so `pimsim verify` only
  /// enforces them with strict=1 (the determinism recheck always runs).
  std::uint64_t verify_fingerprint = 0;

  /// Relative cost estimate of one point at `cfg` — any monotone proxy
  /// for wall time (events, horizon x array size).  Feeds the shard
  /// planner's heaviest-first balance; unset (or throwing) scenarios
  /// weight every point equally.  Never affects results, only which
  /// shard computes a point.
  std::function<double(const Config&)> cost_hint;
};

/// Name -> Scenario map with loud duplicate/lookup failures.
class ScenarioRegistry {
 public:
  /// Registers a scenario; throws InvalidArgument on an empty or
  /// duplicate name, or a scenario without a generator.
  void add(Scenario scenario);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Throws InvalidArgument enumerating the registered names on a miss.
  [[nodiscard]] const Scenario& get(const std::string& name) const;
  /// All scenarios, name-sorted.
  [[nodiscard]] std::vector<const Scenario*> all() const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry, preloaded with every built-in scenario.
  [[nodiscard]] static ScenarioRegistry& global();

 private:
  std::map<std::string, Scenario> scenarios_;
};

/// Registers the built-in figure/table/ablation/traffic scenarios into
/// `registry` (global() calls this once on first use).
void register_builtin_scenarios(ScenarioRegistry& registry);

/// Validates `cfg` against the scenario's declared parameters and runs
/// it.  Unknown keys and values that fail to parse as the declared type
/// both throw InvalidArgument whose message lists the valid keys.
/// `extra_allowed` names driver keys (csv=, format=, out=) the caller
/// consumes itself and the scenario must tolerate.
[[nodiscard]] Table run_scenario(const Scenario& scenario, const Config& cfg,
                                 const std::vector<std::string>& extra_allowed = {});
/// Same, looking `name` up in the global registry.
[[nodiscard]] Table run_scenario(const std::string& name, const Config& cfg,
                                 const std::vector<std::string>& extra_allowed = {});

// --- replication axis (docs/REPLICATION.md) -------------------------------
//
// Scenarios that declare a `reps` parameter are driven through the
// table-level replication engine by run_scenario: R seed-streamed
// replications (one SplitMix64-derived seed per rep, shared by every
// process that computes any rep) folded into mean ± half-width columns.
// reps=1 bypasses the engine entirely, so single-run output is bitwise
// identical to a scenario without the knob.

/// The replication axis of one scenario run: whether the scenario
/// declares a `reps` knob, how many replications `cfg` requests, and the
/// base seed the per-rep seed stream derives from.
struct ReplicationSpec {
  bool declared = false;    ///< scenario has a `reps` parameter
  std::size_t reps = 1;     ///< requested replications (validated >= 1)
  std::uint64_t base_seed = 0;  ///< seed the per-rep stream splits from
};

/// Reads the replication request out of `cfg` using the scenario's
/// declared defaults; throws InvalidArgument naming the valid range when
/// reps < 1 (the typed pre-parse in run_scenario already rejects
/// non-integer text).
[[nodiscard]] ReplicationSpec replication_spec(const Scenario& scenario,
                                               const Config& cfg);

/// Runs replication `rep` (0-based) of the scenario alone: the same
/// single-rep table the unsharded fold consumes, reproducible from
/// (cfg, rep) regardless of which process computes it.  The sharded
/// sweep fabric calls this per (point, rep) unit and `pimsim merge`
/// refolds the serialized tables, byte-identical to the in-process fold.
[[nodiscard]] Table run_replication(
    const Scenario& scenario, const Config& cfg, std::size_t rep,
    const std::vector<std::string>& extra_allowed = {});

/// FNV-1a 64 over arbitrary bytes — the one hash behind every pinned
/// verify fingerprint.
[[nodiscard]] std::uint64_t data_fingerprint(const std::string& data);
/// data_fingerprint of the table's CSV rendering (verify goldens).
[[nodiscard]] std::uint64_t table_fingerprint(const Table& table);

}  // namespace pimsim::core
