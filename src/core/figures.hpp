// Regeneration of every data-bearing table and figure of the paper.
//
// Each function returns a common::Table holding the same rows/series the
// paper plots; the bench binaries print them, and the integration tests
// assert their qualitative shape (who wins, crossovers, saturation).
// Figures 1-4 and 8-10 are block diagrams with no data and are therefore
// not reproduced (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/host_system.hpp"
#include "common/table.hpp"
#include "parcel/system.hpp"

namespace pimsim::core {

/// Table 1: parametric assumptions plus the derived per-op costs and NB.
[[nodiscard]] Table make_table1(const arch::SystemParams& params);

/// Common knobs of the Section 3 (HWP/LWP) figure reproductions.
struct HostFigureConfig {
  arch::HostConfig base;                     ///< Table 1 defaults
  std::vector<std::size_t> node_counts;      ///< N axis
  std::vector<double> lwp_fractions;         ///< %WL axis / curve family
  std::size_t sweep_threads = 0;  ///< SweepRunner fan-out; 0 = all cores

  /// Paper axes: N in {1..256} (Fig 5) / {1..64} (Fig 6), %WL 0..100%.
  [[nodiscard]] static HostFigureConfig defaults_fig5();
  [[nodiscard]] static HostFigureConfig defaults_fig6();
};

/// Figure 5: simulated performance gain vs %WL, one column per node count.
/// One run per point; error bars come from the scenario-level replication
/// engine (`reps=`, see docs/REPLICATION.md), not a per-point loop.
[[nodiscard]] Table make_fig5(const HostFigureConfig& config);

/// Figure 6: unnormalized response time (ns) vs node count, one column
/// per %WL curve ("No LWT Work", "10% LWT", ..., "100% LWT").
[[nodiscard]] Table make_fig6(const HostFigureConfig& config);

/// Figure 7: analytic normalized Time_relative vs node count, one column
/// per %WL; exposes the coincidence point at N = NB.  Unlike the simulated
/// figures the cells are closed-form and too cheap to amortize a thread
/// pool, so sweep_threads defaults to serial rather than all cores.
[[nodiscard]] Table make_fig7(const arch::SystemParams& params,
                              const std::vector<double>& node_counts,
                              const std::vector<double>& lwp_fractions,
                              std::size_t sweep_threads = 1);

/// Section 3.1.2 accuracy claim: sim-vs-analytic relative error grid.
[[nodiscard]] Table make_accuracy_table(const HostFigureConfig& config);

/// Common knobs of the Section 4 (parcel) figure reproductions.
struct ParcelFigureConfig {
  parcel::SplitTransactionParams base;
  std::vector<double> latencies;        ///< L axis (Figure 11)
  std::vector<double> remote_fractions; ///< curve family (Figure 11)
  std::vector<std::size_t> parallelism; ///< panels (Fig 11) / x-axis (Fig 12)
  std::vector<std::size_t> node_counts; ///< panels (Figure 12)
  std::size_t sweep_threads = 0;        ///< SweepRunner fan-out; 0 = all cores

  [[nodiscard]] static ParcelFigureConfig defaults_fig11();
  [[nodiscard]] static ParcelFigureConfig defaults_fig12();
};

/// Figure 11: work ratio (test/control) vs system-wide latency, grouped by
/// parallelism degree, one curve per remote-access percentage.
[[nodiscard]] Table make_fig11(const ParcelFigureConfig& config);

/// Figure 12: idle fraction of both systems vs degree of parallelism,
/// grouped by system size (paper: 1..256 nodes, 16 missing; ours runs 16).
[[nodiscard]] Table make_fig12(const ParcelFigureConfig& config);

/// Section 2.1 DRAM bandwidth claims (50 Gbit/s macro, > 1 Tbit/s chip).
[[nodiscard]] Table make_bandwidth_table();

}  // namespace pimsim::core
