// Design-space queries built on the validated models: the "quantitative
// framework for assessing the tradeoff space" the paper argues for
// (Section 2.3), packaged as a small decision API.
#pragma once

#include <cstdint>
#include <string>

#include "arch/params.hpp"
#include "parcel/system.hpp"

namespace pimsim::core {

/// Operating regime of a host+PIM configuration.
enum class Regime : std::uint8_t {
  kPimHurts,     ///< N < NB: PIM-assigned work slows the system down
  kBreakEven,    ///< N ~= NB: indifferent
  kPimModerate,  ///< gain in (1, 2]
  kPimStrong,    ///< gain in (2, 10]
  kPimDramatic,  ///< gain > 10 ("an order of magnitude or more")
};

[[nodiscard]] const char* to_string(Regime regime);

/// Classifies a design point via the analytic model.
[[nodiscard]] Regime classify_host_point(const arch::SystemParams& params,
                                         double n_nodes, double lwp_fraction);

/// Answers "does split-transaction parcel processing pay off here?"
struct ParcelAdvice {
  double predicted_ratio = 0.0;      ///< analytic test/control work ratio
  double saturation_parallelism = 0; ///< contexts per node to saturate
  bool worthwhile = false;           ///< predicted_ratio > 1
  std::string reason;
};

[[nodiscard]] ParcelAdvice advise_parcels(
    const parcel::SplitTransactionParams& params);

}  // namespace pimsim::core
