// The `pimsim` command-line driver over the scenario registry.
//
// Subcommands (see cli.cpp for the full usage text):
//   pimsim list [names|json]          scenario inventory with parameter docs
//   pimsim run <scenario> [k=v ...]   one scenario, text/CSV/JSON to a path
//   pimsim sweep <scenario> config=f  declarative grid through SweepRunner
//                                     (shard=i/N out=DIR writes one chunk)
//   pimsim merge <dir>                validate + merge a sharded sweep's
//                                     chunks, byte-identical to unsharded
//   pimsim verify <scenario>|all      determinism + golden-output recheck
//   pimsim help [scenario]            usage / one scenario's parameter docs
#pragma once

namespace pimsim::core {

/// Runs the pimsim CLI; returns the process exit code (0 success,
/// 1 usage/configuration error, N > 0 = N verify failures).
int cli_main(int argc, char** argv);

}  // namespace pimsim::core
