// Parameter sweeps and replicated measurements.
//
// The paper's methodology is "statistical steady-state parametric models
// ... varied across suitable ranges"; these helpers generate the ranges
// and run each point over several seeds to attach confidence intervals.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace pimsim::core {

/// {1, 2, 4, ..., <= max} — the node-count axes of Figures 5, 6 and 12.
[[nodiscard]] std::vector<std::size_t> pow2_range(std::size_t max);

/// `count` evenly spaced values over [lo, hi] inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t count);

/// {0.0, 0.1, ..., 1.0} — the %WL axis of Figures 5-7.
[[nodiscard]] std::vector<double> fraction_range(std::size_t steps = 10);

/// Runs `measure(seed)` for `replications` derived seeds and returns the
/// mean with a 95% confidence half-width.
[[nodiscard]] Estimate replicate(
    std::size_t replications, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& measure);

// --- table-level replication engine (docs/REPLICATION.md) -----------------
//
// `run_scenario` drives any scenario declaring a `reps` knob through R
// seed-streamed replications of its generator and folds the R tables into
// one with a `<col> ±` half-width companion per column.  The helpers are
// public because the sharded sweep fabric computes single replications in
// separate OS processes and refolds them at merge time, byte-identical to
// the unsharded fold.

/// The per-replication seeds for `reps` replications of `base_seed`: the
/// first `reps` outputs of SplitMix64(base_seed), the same stream
/// convention as `replicate()`.  Replication r is reproducible from
/// (base_seed, r) alone — independent of event interleaving, thread
/// count, and which process computes it.
[[nodiscard]] std::vector<std::uint64_t> replication_seeds(
    std::size_t reps, std::uint64_t base_seed);

/// Folds the per-replication tables of one run into the rendered result:
/// every column `C` gains a companion `C ±` holding the Student-t
/// half-width at `level`.  String cells (and int cells identical across
/// replications) must agree and keep their type with an empty / zero
/// companion; numeric cells fold through a RunningStats in replication
/// order, so refolding deserialized tables reproduces the fold bitwise.
/// A single table is returned unchanged (reps=1 adds no columns).
[[nodiscard]] Table fold_replications(const std::vector<Table>& tables,
                                      double level = 0.95);

/// Exact, self-describing serialization of one replication's table
/// ("pimsim-rep-v1"): doubles are stored as hex bit patterns, so
/// deserialize_table(serialize_table(t)) reproduces every cell bit for
/// bit — the property that makes sharded replication merges byte-
/// identical to unsharded runs.
[[nodiscard]] std::string serialize_table(const Table& table);
/// Inverse of serialize_table; throws InvalidArgument on malformed bytes
/// (a corrupted chunk must be detected, not merged).
[[nodiscard]] Table deserialize_table(const std::string& bytes);

}  // namespace pimsim::core
