// Parameter sweeps and replicated measurements.
//
// The paper's methodology is "statistical steady-state parametric models
// ... varied across suitable ranges"; these helpers generate the ranges
// and run each point over several seeds to attach confidence intervals.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"

namespace pimsim::core {

/// {1, 2, 4, ..., <= max} — the node-count axes of Figures 5, 6 and 12.
[[nodiscard]] std::vector<std::size_t> pow2_range(std::size_t max);

/// `count` evenly spaced values over [lo, hi] inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t count);

/// {0.0, 0.1, ..., 1.0} — the %WL axis of Figures 5-7.
[[nodiscard]] std::vector<double> fraction_range(std::size_t steps = 10);

/// Runs `measure(seed)` for `replications` derived seeds and returns the
/// mean with a 95% confidence half-width.
[[nodiscard]] Estimate replicate(
    std::size_t replications, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& measure);

}  // namespace pimsim::core
