#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>

#include "analytic/accuracy.hpp"
#include "analytic/hwp_lwp.hpp"
#include "analytic/multithreading.hpp"
#include "analytic/parcel_model.hpp"
#include "arch/host_system.hpp"
#include "arch/mtlwp.hpp"
#include "arch/params.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "interconnect/contention.hpp"
#include "interconnect/network.hpp"
#include "parcel/network.hpp"
#include "parcel/system.hpp"

namespace pimsim::core {

const char* to_string(ParamSpec::Kind kind) {
  switch (kind) {
    case ParamSpec::Kind::kInt: return "int";
    case ParamSpec::Kind::kDouble: return "double";
    case ParamSpec::Kind::kBool: return "bool";
    case ParamSpec::Kind::kString: return "string";
    case ParamSpec::Kind::kList: return "list";
  }
  return "?";
}

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

// Terse ParamSpec builders so a registration reads like a manifest.
ParamSpec p_int(std::string key, std::string def, std::string range,
                std::string doc) {
  return {std::move(key), ParamSpec::Kind::kInt, std::move(def),
          std::move(range), std::move(doc)};
}
ParamSpec p_dbl(std::string key, std::string def, std::string range,
                std::string doc) {
  return {std::move(key), ParamSpec::Kind::kDouble, std::move(def),
          std::move(range), std::move(doc)};
}
ParamSpec p_bool(std::string key, std::string def, std::string doc) {
  return {std::move(key), ParamSpec::Kind::kBool, std::move(def), "0|1",
          std::move(doc)};
}
ParamSpec p_str(std::string key, std::string def, std::string range,
                std::string doc) {
  return {std::move(key), ParamSpec::Kind::kString, std::move(def),
          std::move(range), std::move(doc)};
}
ParamSpec p_list(std::string key, std::string def, std::string range,
                 std::string doc) {
  return {std::move(key), ParamSpec::Kind::kList, std::move(def),
          std::move(range), std::move(doc)};
}

ParamSpec p_seed() { return p_int("seed", "1", ">= 0", "base RNG seed"); }
ParamSpec p_reps() {
  return p_int("reps", "1", ">= 1",
               "seed-streamed replications; > 1 adds mean ± CI columns");
}
ParamSpec p_threads() {
  return p_int("threads", "0", ">= 0",
               "SweepRunner fan-out; 0 = one thread per core");
}

// The memory-seam knobs, shared by every scenario that runs the seam
// (the memory-side mirror of the network/contention parameters).
ParamSpec p_memory() {
  return p_str("memory", "analytic", "analytic|banked",
               "memory model behind the MemorySystem seam");
}
ParamSpec p_mem_banks() {
  return p_int("mem_banks", "0", ">= 0",
               "banked memory: DRAM banks (0 = one per node)");
}
ParamSpec p_mem_queue() {
  return p_int("mem_queue", "0", ">= 0",
               "banked memory: shared access ports (0 = one per bank)");
}

}  // namespace

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw InvalidArgument("ScenarioRegistry: scenario name must be non-empty");
  }
  if (!scenario.make) {
    throw InvalidArgument("ScenarioRegistry: scenario '" + scenario.name +
                          "' has no generator");
  }
  if (scenarios_.count(scenario.name) != 0) {
    throw InvalidArgument("ScenarioRegistry: duplicate scenario name '" +
                          scenario.name + "'");
  }
  scenarios_.emplace(scenario.name, std::move(scenario));
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return scenarios_.count(name) != 0;
}

const Scenario& ScenarioRegistry::get(const std::string& name) const {
  const auto it = scenarios_.find(name);
  if (it == scenarios_.end()) {
    throw InvalidArgument("unknown scenario '" + name +
                          "'; registered scenarios: " + join_names(names()));
  }
  return it->second;
}

std::vector<const Scenario*> ScenarioRegistry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, s] : scenarios_) out.push_back(&s);
  return out;  // std::map iteration order == name-sorted
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, s] : scenarios_) out.push_back(name);
  return out;
}

ScenarioRegistry& ScenarioRegistry::global() {
  // The registry is filled once before main()'s first lookup and only
  // read afterwards; list() sorts by name, so registration order never
  // reaches any output.
  // lint:allow(mutable-static): write-once registry, read-only after startup
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry;
    register_builtin_scenarios(*r);
    return r;
  }();
  return *registry;
}

Table run_scenario(const Scenario& scenario, const Config& cfg,
                   const std::vector<std::string>& extra_allowed) {
  std::vector<std::string> valid;
  valid.reserve(scenario.params.size());
  for (const ParamSpec& p : scenario.params) valid.push_back(p.key);

  // No key has been read yet, so unused_keys() is every provided key.
  for (const std::string& key : cfg.unused_keys()) {
    if (std::find(valid.begin(), valid.end(), key) != valid.end()) continue;
    if (std::find(extra_allowed.begin(), extra_allowed.end(), key) !=
        extra_allowed.end()) {
      continue;
    }
    throw InvalidArgument("scenario '" + scenario.name +
                          "': unknown parameter '" + key +
                          "'; valid keys: " + join_names(valid));
  }

  // Pre-parse every provided value as its declared type so a typo fails
  // before a potentially long generation run, with the key list attached.
  for (const ParamSpec& p : scenario.params) {
    if (!cfg.has(p.key)) continue;
    try {
      switch (p.kind) {
        case ParamSpec::Kind::kInt: (void)cfg.get_int(p.key, 0); break;
        case ParamSpec::Kind::kDouble: (void)cfg.get_double(p.key, 0.0); break;
        case ParamSpec::Kind::kBool: (void)cfg.get_bool(p.key, false); break;
        case ParamSpec::Kind::kString: (void)cfg.get_string(p.key, ""); break;
        case ParamSpec::Kind::kList: (void)cfg.get_list(p.key, {}); break;
      }
    } catch (const ConfigError& e) {
      throw InvalidArgument("scenario '" + scenario.name +
                            "': bad value for '" + p.key + "' (expected " +
                            std::string(to_string(p.kind)) +
                            (p.range.empty() ? "" : ", range " + p.range) +
                            "): " + e.what() +
                            "; valid keys: " + join_names(valid));
    }
  }

  // Replication engine: scenarios declaring a `reps` knob run R
  // seed-streamed replications folded into mean ± half-width columns.
  // reps=1 bypasses the fold, keeping single-run output bitwise
  // identical to the pre-engine path.
  const ReplicationSpec spec = replication_spec(scenario, cfg);
  if (!spec.declared || spec.reps == 1) return scenario.make(cfg);
  std::vector<Table> tables;
  tables.reserve(spec.reps);
  for (std::size_t r = 0; r < spec.reps; ++r) {
    tables.push_back(run_replication(scenario, cfg, r, extra_allowed));
  }
  return fold_replications(tables);
}

ReplicationSpec replication_spec(const Scenario& scenario, const Config& cfg) {
  ReplicationSpec spec;
  const ParamSpec* reps_param = nullptr;
  const ParamSpec* seed_param = nullptr;
  for (const ParamSpec& p : scenario.params) {
    if (p.key == "reps") reps_param = &p;
    if (p.key == "seed") seed_param = &p;
  }
  if (reps_param == nullptr) return spec;
  spec.declared = true;
  const std::int64_t reps =
      cfg.get_int("reps", std::stoll(reps_param->default_value));
  if (reps < 1) {
    throw InvalidArgument(
        "scenario '" + scenario.name + "': bad value for 'reps' (" +
        std::to_string(reps) + "): expected int >= 1 replications");
  }
  spec.reps = static_cast<std::size_t>(reps);
  const std::int64_t seed_default =
      seed_param == nullptr ? 0 : std::stoll(seed_param->default_value);
  spec.base_seed =
      static_cast<std::uint64_t>(cfg.get_int("seed", seed_default));
  return spec;
}

Table run_replication(const Scenario& scenario, const Config& cfg,
                      std::size_t rep,
                      const std::vector<std::string>& extra_allowed) {
  const ReplicationSpec spec = replication_spec(scenario, cfg);
  if (!spec.declared) {
    throw InvalidArgument("run_replication: scenario '" + scenario.name +
                          "' declares no reps parameter");
  }
  if (rep >= spec.reps) {
    throw InvalidArgument("run_replication: rep " + std::to_string(rep) +
                          " out of range for " + std::to_string(spec.reps) +
                          " replications");
  }
  const std::vector<std::uint64_t> seeds =
      replication_seeds(spec.reps, spec.base_seed);
  Config one = cfg;
  // Round-trip the full 64-bit seed through its signed rendering:
  // get_int's strtoll would clamp the unsigned form past INT64_MAX,
  // collapsing distinct SplitMix64 streams.
  one.set("seed", std::to_string(static_cast<std::int64_t>(seeds[rep])));
  one.set("reps", "1");
  return run_scenario(scenario, one, extra_allowed);
}

Table run_scenario(const std::string& name, const Config& cfg,
                   const std::vector<std::string>& extra_allowed) {
  return run_scenario(ScenarioRegistry::global().get(name), cfg, extra_allowed);
}

std::uint64_t data_fingerprint(const std::string& data) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
  for (const unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t table_fingerprint(const Table& table) {
  std::ostringstream csv;
  table.print_csv(csv);
  return data_fingerprint(csv.str());
}

// --- built-in scenarios ---------------------------------------------------
//
// Each registration is the former bench_* main body, verbatim: the bench
// binaries now route through these (bench::run_scenario_main), so their
// output is bitwise-identical to the pre-registry binaries by
// construction, and `pimsim run <name>` matches both.

namespace {

des::Process hotspot_source(des::Simulation& sim,
                            const parcel::Interconnect& net,
                            parcel::NodeId src, std::size_t nodes, double gap,
                            std::int64_t packets, std::size_t bytes) {
  // Phase the sources across one injection period (see
  // examples/hotspot_traffic.cpp for the rationale).
  co_await des::delay(sim, static_cast<double>(src) * gap /
                               static_cast<double>(nodes));
  for (std::int64_t i = 0; i < packets; ++i) {
    net.deliver(sim, src, 0, bytes, [] {});
    co_await des::delay(sim, gap);
  }
}

Table make_hotspot_table(const Config& cfg) {
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
  require(nodes >= 2, "hotspot: nodes must be >= 2 (node 0 is the sink)");
  const double round_trip = cfg.get_double("roundtrip", 200.0);
  const auto bytes = static_cast<std::size_t>(cfg.get_int("bytes", 16));
  const std::int64_t packets = cfg.get_int("packets", 200);
  const std::vector<double> gaps =
      cfg.get_list("gaps", {4096.0, 256.0, 32.0, 8.0, 4.0});
  const std::vector<std::string> kinds =
      split_csv(cfg.get_string("networks", "flat,mesh2d,torus"));
  require(!kinds.empty(), "hotspot: networks list is empty");

  Table table("Hotspot collapse: analytic vs packet-level latency to node 0",
              {"Network", "inj gap", "analytic mean", "measured mean", "p95",
               "max", "eject util"});
  for (const std::string& kind : kinds) {
    const auto analytic = parcel::make_interconnect(kind, nodes, round_trip);
    double predicted = 0.0;
    for (parcel::NodeId src = 1; src < nodes; ++src) {
      predicted += analytic->one_way_latency(src, 0);
    }
    predicted /= static_cast<double>(nodes - 1);
    for (const double gap : gaps) {
      const auto net = interconnect::make_contention_interconnect(
          kind, nodes, round_trip);
      des::Simulation sim;
      for (parcel::NodeId src = 1; src < nodes; ++src) {
        sim.spawn(hotspot_source(sim, *net, src, nodes, gap, packets, bytes));
      }
      sim.run();
      if (sim.metrics_enabled()) net->collect_metrics(sim.metrics());
      // Non-const: link_stats() folds the link's deferred credit ledger.
      interconnect::PacketNetwork& pn = *net->network();
      const double max = pn.latency_stats().max();
      // Coarse histogram bins can interpolate past the true maximum.
      const double p95 =
          std::min(pn.latency_histogram().quantile(0.95), max);
      double eject_util = 0.0;
      for (std::uint32_t l = 0; l < pn.topology().links().size(); ++l) {
        if (pn.topology().links()[l].dst_router == pn.topology().attach(0)) {
          eject_util = std::max(eject_util, pn.link_stats(l).utilization);
        }
      }
      table.add_row({kind, gap, predicted, pn.latency_stats().mean(), p95,
                     max, eject_util});
    }
  }
  return table;
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& registry) {
  // --- Table 1 / Section 2 ------------------------------------------------
  registry.add(Scenario{
      "table1",
      "Table 1 parametric assumptions, derived per-op costs, and NB",
      "Section 3, Table 1",
      {p_dbl("thcycle", "1", "> 0", "HWP cycle time (ns)"),
       p_dbl("tlcycle", "5", "> 0", "LWP cycle time (HWP cycles)"),
       p_dbl("tmh", "90", "> 0", "host memory access time (cycles)"),
       p_dbl("tch", "2", "> 0", "host cache access time (cycles)"),
       p_dbl("tml", "22", "> 0", "LWP row access time (cycles)"),
       p_dbl("pmiss", "0.1", "[0, 1]", "host cache miss probability"),
       p_dbl("mix", "0.3", "[0, 1]", "load/store fraction of the op mix")},
      [](const Config& cfg) {
        arch::SystemParams params = arch::SystemParams::table1();
        params.th_cycle_ns = cfg.get_double("thcycle", params.th_cycle_ns);
        params.tl_cycle = cfg.get_double("tlcycle", params.tl_cycle);
        params.t_mh = cfg.get_double("tmh", params.t_mh);
        params.t_ch = cfg.get_double("tch", params.t_ch);
        params.t_ml = cfg.get_double("tml", params.t_ml);
        params.p_miss = cfg.get_double("pmiss", params.p_miss);
        params.ls_mix = cfg.get_double("mix", params.ls_mix);
        return make_table1(params);
      },
      /*verify_params=*/"",
      /*verify_fingerprint=*/0x618fa6123635a29eull,
  });

  registry.add(Scenario{
      "bandwidth",
      "Section 2.1 DRAM macro/chip bandwidth arithmetic (50 Gbit/s, 1 Tbit/s)",
      "Section 2.1",
      {},
      [](const Config&) { return make_bandwidth_table(); },
      /*verify_params=*/"",
      /*verify_fingerprint=*/0xd9a7be0ca6ad39f6ull,
  });

  // --- Section 3: host + PIM array ---------------------------------------
  registry.add(Scenario{
      "fig5",
      "simulated performance gain vs %WL, one column per node count",
      "Section 3.1, Figure 5",
      {p_int("maxnodes", "256", "1..2^20", "largest node count (pow2 axis)"),
       p_int("ops", "100000000", "> 0", "workload operations per run"),
       p_int("batch", "1000000", "> 0", "binomial batching granularity"),
       p_reps(), p_memory(), p_mem_banks(), p_mem_queue(), p_seed(),
       p_threads()},
      [](const Config& cfg) {
        HostFigureConfig fig = HostFigureConfig::defaults_fig5();
        fig.node_counts = pow2_range(
            static_cast<std::size_t>(cfg.get_int("maxnodes", 256)));
        fig.base.workload.total_ops =
            static_cast<std::uint64_t>(cfg.get_int("ops", 100'000'000));
        fig.base.batch_ops =
            static_cast<std::uint64_t>(cfg.get_int("batch", 1'000'000));
        fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        fig.base.memory.kind = cfg.get_string("memory", "analytic");
        fig.base.memory.banks =
            static_cast<std::size_t>(cfg.get_int("mem_banks", 0));
        fig.base.memory.queue =
            static_cast<std::size_t>(cfg.get_int("mem_queue", 0));
        fig.sweep_threads =
            static_cast<std::size_t>(cfg.get_int("threads", 0));
        return make_fig5(fig);
      },
      /*verify_params=*/"maxnodes=8 ops=200000 batch=10000 reps=2",
      /*verify_fingerprint=*/0x26b4ab384a94edeaull,
      // Events scale with batches per run x node-axis length x reps.
      /*cost_hint=*/
      [](const Config& cfg) {
        const double ops = static_cast<double>(cfg.get_int("ops", 100'000'000));
        const double batch =
            std::max(1.0, static_cast<double>(cfg.get_int("batch", 1'000'000)));
        const double reps = static_cast<double>(cfg.get_int("reps", 1));
        const double axis =
            std::log2(static_cast<double>(cfg.get_int("maxnodes", 256))) + 1.0;
        return reps * axis * ops / batch;
      },
  });

  registry.add(Scenario{
      "fig6",
      "unnormalized response time (ns) vs node count, one column per %LWT",
      "Section 3.1, Figure 6",
      {p_int("maxnodes", "64", "1..2^20", "largest node count (pow2 axis)"),
       p_int("ops", "100000000", "> 0", "workload operations per run"),
       p_int("batch", "1000000", "> 0", "binomial batching granularity"),
       p_reps(), p_seed(), p_threads()},
      [](const Config& cfg) {
        HostFigureConfig fig = HostFigureConfig::defaults_fig6();
        fig.node_counts = pow2_range(
            static_cast<std::size_t>(cfg.get_int("maxnodes", 64)));
        fig.base.workload.total_ops =
            static_cast<std::uint64_t>(cfg.get_int("ops", 100'000'000));
        fig.base.batch_ops =
            static_cast<std::uint64_t>(cfg.get_int("batch", 1'000'000));
        fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        fig.sweep_threads =
            static_cast<std::size_t>(cfg.get_int("threads", 0));
        return make_fig6(fig);
      },
      /*verify_params=*/"maxnodes=8 ops=200000 batch=10000 reps=1",
      /*verify_fingerprint=*/0xcfcc608e61d7733eull,
      /*cost_hint=*/
      [](const Config& cfg) {
        const double ops = static_cast<double>(cfg.get_int("ops", 100'000'000));
        const double batch =
            std::max(1.0, static_cast<double>(cfg.get_int("batch", 1'000'000)));
        const double reps = static_cast<double>(cfg.get_int("reps", 1));
        const double axis =
            std::log2(static_cast<double>(cfg.get_int("maxnodes", 64))) + 1.0;
        return reps * axis * ops / batch;
      },
  });

  registry.add(Scenario{
      "fig7",
      "analytic Time_relative vs node count; curves coincide at N = NB",
      "Section 3.2, Figure 7",
      {p_dbl("maxnodes", "64", ">= 1", "largest node count (x1.25 axis)"),
       p_dbl("tlcycle", "5", "> 0", "LWP cycle time (HWP cycles)"),
       p_dbl("tmh", "90", "> 0", "host memory access time (cycles)"),
       p_dbl("tch", "2", "> 0", "host cache access time (cycles)"),
       p_dbl("tml", "22", "> 0", "LWP row access time (cycles)"),
       p_dbl("pmiss", "0.1", "[0, 1]", "host cache miss probability"),
       p_dbl("mix", "0.3", "[0, 1]", "load/store fraction of the op mix")},
      [](const Config& cfg) {
        arch::SystemParams params = arch::SystemParams::table1();
        params.tl_cycle = cfg.get_double("tlcycle", params.tl_cycle);
        params.t_mh = cfg.get_double("tmh", params.t_mh);
        params.t_ch = cfg.get_double("tch", params.t_ch);
        params.t_ml = cfg.get_double("tml", params.t_ml);
        params.p_miss = cfg.get_double("pmiss", params.p_miss);
        params.ls_mix = cfg.get_double("mix", params.ls_mix);
        // Dense N axis (including the fractional neighborhood of NB) so
        // the coincidence point is visible in the plotted series.
        std::vector<double> nodes;
        const double max_nodes = cfg.get_double("maxnodes", 64.0);
        for (double n = 1.0; n <= max_nodes; n *= 1.25) nodes.push_back(n);
        nodes.push_back(params.nb());  // the crossover itself
        std::sort(nodes.begin(), nodes.end());
        return make_fig7(params, nodes, fraction_range(10));
      },
      /*verify_params=*/"maxnodes=16",
      /*verify_fingerprint=*/0xd314d3561be83107ull,
  });

  registry.add(Scenario{
      "accuracy",
      "Section 3.1.2 claim: sim-vs-analytic relative error grid and band",
      "Section 3.1.2",
      {p_int("ops", "10000000", "> 0", "workload operations per run"),
       p_int("batch", "100000", "> 0", "binomial batching granularity"),
       p_int("maxnodes", "64", "1..2^20", "largest node count (pow2 axis)"),
       p_reps(), p_seed()},
      [](const Config& cfg) {
        HostFigureConfig fig;
        fig.base.workload.total_ops =
            static_cast<std::uint64_t>(cfg.get_int("ops", 10'000'000));
        fig.base.batch_ops =
            static_cast<std::uint64_t>(cfg.get_int("batch", 100'000));
        fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        fig.node_counts = pow2_range(
            static_cast<std::size_t>(cfg.get_int("maxnodes", 64)));
        fig.lwp_fractions = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
        const auto entries = analytic::compare_grid(fig.base, fig.node_counts,
                                                    fig.lwp_fractions);
        const auto band = analytic::summarize(entries);
        std::cerr << "# accuracy band: min " << band.min_rel_error * 100.0
                  << "%  mean " << band.mean_rel_error * 100.0 << "%  max "
                  << band.max_rel_error * 100.0 << "%  (paper: 5%-18%)\n";
        return make_accuracy_table(fig);
      },
      /*verify_params=*/"ops=500000 batch=10000 maxnodes=8",
      /*verify_fingerprint=*/0x4c6661ef681b5039ull,
  });

  // --- Section 4: parcels -------------------------------------------------
  registry.add(Scenario{
      "fig11",
      "parcel latency hiding: work ratio vs latency, per parallelism/remote%",
      "Section 4.2, Figure 11",
      {p_int("nodes", "8", ">= 1", "system size (grid kinds need squares)"),
       p_dbl("horizon", "30000", "> 0", "simulated cycles per run"),
       p_dbl("tswitch", "2", ">= 0", "parcel context-switch cost (cycles)"),
       p_dbl("tlocal", "10", "> 0", "local memory access time (cycles)"),
       p_str("network", "flat", "flat|ring|mesh2d|torus", "topology"),
       p_bool("contention", "0", "packet-level network instead of analytic"),
       p_int("bytes", "16", ">= 1", "request/reply wire size (flit count)"),
       p_list("latencies", "10,50,100,200,500,1000,2000", "> 0",
              "system-wide round-trip latency axis L"),
       p_list("remotes", "0.02,0.05,0.1,0.2,0.5", "[0, 1]",
              "remote-access fraction curve family"),
       p_list("pars", "1,2,4,8,16,32", ">= 1",
              "degree-of-parallelism groups"),
       p_reps(), p_memory(), p_mem_banks(), p_mem_queue(), p_seed(),
       p_threads()},
      [](const Config& cfg) {
        ParcelFigureConfig fig = ParcelFigureConfig::defaults_fig11();
        fig.base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
        fig.base.horizon = cfg.get_double("horizon", 30'000.0);
        fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        fig.base.t_switch = cfg.get_double("tswitch", fig.base.t_switch);
        fig.base.t_local = cfg.get_double("tlocal", fig.base.t_local);
        fig.base.network = cfg.get_string("network", fig.base.network);
        fig.base.contention = cfg.get_bool("contention", false);
        fig.base.memory = cfg.get_string("memory", "analytic");
        fig.base.mem_banks =
            static_cast<std::size_t>(cfg.get_int("mem_banks", 0));
        fig.base.mem_queue =
            static_cast<std::size_t>(cfg.get_int("mem_queue", 0));
        fig.base.message_bytes = static_cast<std::size_t>(cfg.get_int(
            "bytes", static_cast<std::int64_t>(fig.base.message_bytes)));
        fig.latencies =
            cfg.get_list("latencies", {10, 50, 100, 200, 500, 1000, 2000});
        fig.remote_fractions =
            cfg.get_list("remotes", {0.02, 0.05, 0.10, 0.20, 0.50});
        std::vector<std::size_t> pars;
        for (double p : cfg.get_list("pars", {1, 2, 4, 8, 16, 32})) {
          pars.push_back(static_cast<std::size_t>(p));
        }
        fig.parallelism = pars;
        fig.sweep_threads =
            static_cast<std::size_t>(cfg.get_int("threads", 0));
        return make_fig11(fig);
      },
      /*verify_params=*/
      "nodes=4 horizon=8000 latencies=20,200 remotes=0.1 pars=1,8",
      /*verify_fingerprint=*/0x72c2d836c92500d3ull,
      // Event count ~ horizon x grid cells x total parcel contexts; the
      // packet-level network multiplies per-parcel event volume.
      /*cost_hint=*/
      [](const Config& cfg) {
        const double horizon = cfg.get_double("horizon", 30'000.0);
        const double nodes = static_cast<double>(cfg.get_int("nodes", 8));
        const auto lat =
            cfg.get_list("latencies", {10, 50, 100, 200, 500, 1000, 2000});
        const auto rem = cfg.get_list("remotes", {0.02, 0.05, 0.1, 0.2, 0.5});
        double pars = 0.0;
        for (double p : cfg.get_list("pars", {1, 2, 4, 8, 16, 32})) pars += p;
        const double net = cfg.get_bool("contention", false) ? 3.0 : 1.0;
        return horizon * nodes * net * static_cast<double>(lat.size()) *
               static_cast<double>(rem.size()) * pars;
      },
  });

  registry.add(Scenario{
      "fig12",
      "idle fraction of both systems vs parallelism, grouped by system size",
      "Section 4.2, Figure 12",
      {p_dbl("horizon", "20000", "> 0", "simulated cycles per run"),
       p_dbl("latency", "200", "> 0", "system-wide round-trip latency L"),
       p_dbl("premote", "0.1", "[0, 1]", "remote-access fraction"),
       p_str("network", "flat", "flat|ring|mesh2d|torus", "topology"),
       p_bool("contention", "0", "packet-level network instead of analytic"),
       p_int("bytes", "16", ">= 1", "request/reply wire size (flit count)"),
       p_list("sizes", "1,2,4,8,16,32,64,128,256", ">= 1",
              "system-size panels"),
       p_list("pars", "1,2,4,8,16,32", ">= 1", "degree-of-parallelism axis"),
       p_reps(), p_memory(), p_mem_banks(), p_mem_queue(), p_seed(),
       p_threads()},
      [](const Config& cfg) {
        ParcelFigureConfig fig = ParcelFigureConfig::defaults_fig12();
        fig.base.horizon = cfg.get_double("horizon", 20'000.0);
        fig.base.round_trip_latency = cfg.get_double("latency", 200.0);
        fig.base.p_remote = cfg.get_double("premote", 0.1);
        fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        fig.base.network = cfg.get_string("network", fig.base.network);
        fig.base.contention = cfg.get_bool("contention", false);
        fig.base.memory = cfg.get_string("memory", "analytic");
        fig.base.mem_banks =
            static_cast<std::size_t>(cfg.get_int("mem_banks", 0));
        fig.base.mem_queue =
            static_cast<std::size_t>(cfg.get_int("mem_queue", 0));
        fig.base.message_bytes = static_cast<std::size_t>(cfg.get_int(
            "bytes", static_cast<std::int64_t>(fig.base.message_bytes)));
        std::vector<std::size_t> sizes;
        for (double s :
             cfg.get_list("sizes", {1, 2, 4, 8, 16, 32, 64, 128, 256})) {
          sizes.push_back(static_cast<std::size_t>(s));
        }
        fig.node_counts = sizes;
        std::vector<std::size_t> pars;
        for (double p : cfg.get_list("pars", {1, 2, 4, 8, 16, 32})) {
          pars.push_back(static_cast<std::size_t>(p));
        }
        fig.parallelism = pars;
        fig.sweep_threads =
            static_cast<std::size_t>(cfg.get_int("threads", 0));
        return make_fig12(fig);
      },
      /*verify_params=*/"horizon=8000 latency=200 sizes=1,4 pars=1,8",
      /*verify_fingerprint=*/0x9efb7d3d36ec7984ull,
      // Event count ~ horizon x total nodes across size panels x contexts.
      /*cost_hint=*/
      [](const Config& cfg) {
        const double horizon = cfg.get_double("horizon", 20'000.0);
        double sizes = 0.0;
        for (double s :
             cfg.get_list("sizes", {1, 2, 4, 8, 16, 32, 64, 128, 256})) {
          sizes += s;
        }
        double pars = 0.0;
        for (double p : cfg.get_list("pars", {1, 2, 4, 8, 16, 32})) pars += p;
        const double net = cfg.get_bool("contention", false) ? 3.0 : 1.0;
        return horizon * sizes * pars * net;
      },
  });

  // --- extensions (paper Section 5) ---------------------------------------
  registry.add(Scenario{
      "multithreading",
      "multithreaded LWP cost/op, NB(K), and speedup vs hardware threads",
      "Section 5.2",
      {p_dbl("switch", "1", ">= 0", "thread context-switch cost (cycles)"),
       p_int("ops", "60000", "> 0", "simulated operations per thread count"),
       p_reps(), p_int("seed", "11", ">= 0", "base RNG seed")},
      [](const Config& cfg) {
        const arch::SystemParams params = arch::SystemParams::table1();
        const double switch_cost = cfg.get_double("switch", 1.0);
        const auto ops =
            static_cast<std::uint64_t>(cfg.get_int("ops", 60'000));
        const auto seed =
            static_cast<std::uint64_t>(cfg.get_int("seed", 11));
        const analytic::MultithreadSpec spec =
            analytic::lwp_thread_spec(params, switch_cost);
        Table t("Multithreading at the PIM node (K_sat = " +
                    format_number(analytic::saturation_threads(spec)) +
                    ", switch = " + format_number(switch_cost) + " cycles)",
                {"Threads K", "cost/op (model)", "cost/op (sim)", "NB(K)",
                 "speedup vs K=1", "utilization (sim)"});
        for (std::size_t k : {1, 2, 3, 4, 6, 8, 16}) {
          des::Simulation sim;
          arch::MultithreadedLwp node(sim, params, Rng(seed), k, switch_cost);
          sim.spawn(node.run(ops));
          sim.run();
          const double sim_cost = sim.now() / static_cast<double>(ops);
          t.add_row({static_cast<std::int64_t>(k),
                     analytic::lwp_cost_per_op_mt(params, k, switch_cost),
                     sim_cost, analytic::nb_mt(params, k, switch_cost),
                     analytic::speedup(spec, k), node.utilization()});
        }
        return t;
      },
      /*verify_params=*/"ops=20000",
      /*verify_fingerprint=*/0xcfda9e606482a39eull,
  });

  registry.add(Scenario{
      "sensitivity",
      "how NB moves with each Table 1 parameter, one-at-a-time",
      "Section 3.2 (design optimization)",
      {},
      [](const Config&) {
        const arch::SystemParams base = arch::SystemParams::table1();
        struct Knob {
          const char* name;
          std::function<void(arch::SystemParams&, double)> set;
          std::vector<double> values;
        };
        const std::vector<Knob> knobs = {
            {"Pmiss", [](arch::SystemParams& p, double v) { p.p_miss = v; },
             {0.02, 0.05, 0.1, 0.2, 0.4}},
            {"TMH", [](arch::SystemParams& p, double v) { p.t_mh = v; },
             {45, 90, 180, 360}},
            {"TML", [](arch::SystemParams& p, double v) { p.t_ml = v; },
             {10, 22, 30, 60}},
            {"TLcycle",
             [](arch::SystemParams& p, double v) { p.tl_cycle = v; },
             {2, 5, 10}},
            {"TCH", [](arch::SystemParams& p, double v) { p.t_ch = v; },
             {1, 2, 4}},
            {"mix l/s", [](arch::SystemParams& p, double v) { p.ls_mix = v; },
             {0.1, 0.3, 0.5}},
        };
        Table t("Sensitivity of NB to the Table 1 parameters (baseline NB = " +
                    format_number(base.nb()) + ")",
                {"Parameter", "Value", "HWP cost/op", "LWP cost/op", "NB",
                 "NB / baseline"});
        for (const auto& knob : knobs) {
          for (double v : knob.values) {
            arch::SystemParams p = base;
            knob.set(p, v);
            t.add_row({std::string(knob.name), v, p.hwp_cost_per_op(),
                       p.lwp_cost_per_op(), p.nb(), p.nb() / base.nb()});
          }
        }
        return t;
      },
      /*verify_params=*/"",
      /*verify_fingerprint=*/0xfce7c0ef4093f9bfull,
  });

  // --- ablations of the paper's modeling assumptions ----------------------
  registry.add(Scenario{
      "ablation_bank_conflicts",
      "ablation A: cost of the paper's unmodeled-bank-conflicts assumption",
      "Section 3.1 (assumptions)",
      {p_int("ops", "400000", "> 0", "workload operations per run"),
       p_int("nodes", "8", ">= 1", "LWP count (one per bank at baseline)"),
       p_reps(), p_seed()},
      [](const Config& cfg) {
        arch::HostConfig base;
        base.workload.total_ops =
            static_cast<std::uint64_t>(cfg.get_int("ops", 400'000));
        base.workload.lwp_fraction = 1.0;  // all work on the LWP array
        base.lwp_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
        base.batch_ops = 10'000;
        base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        const double batched = arch::run_host_system(base).total_cycles;
        Table t("Ablation A: bank-conflict modeling (100% LWP work, " +
                    std::to_string(base.lwp_nodes) + " LWPs)",
                {"LWPs per bank", "makespan (cycles)", "vs contention-free"});
        t.add_row({std::string("(not modeled, paper)"), batched, 1.0});
        for (std::int64_t per_bank : {1, 2, 4, 8}) {
          // lwps_per_bank LWPs share one bank of the banked backend:
          // per_bank == 1 gives every LWP a private bank (pure per-access
          // serialization, no conflicts), larger values model a chip with
          // fewer banks than processors.
          arch::HostConfig cfg2 = base;
          cfg2.memory.kind = "banked";
          cfg2.memory.banks =
              (base.lwp_nodes + static_cast<std::size_t>(per_bank) - 1) /
              static_cast<std::size_t>(per_bank);
          const double cycles = arch::run_host_system(cfg2).total_cycles;
          t.add_row({per_bank, cycles, cycles / batched});
        }
        return t;
      },
      /*verify_params=*/"ops=100000 nodes=4",
      // Re-pinned when the ablation moved onto the MemorySystem seam: the
      // banked backend's FIFO arrival order breaks same-cycle ties
      // slightly differently from the old shared-Resource wait queue
      // (shared-bank makespans moved by < 0.01%; private banks exact).
      /*verify_fingerprint=*/0x5c3713859111d0c9ull,
  });

  registry.add(Scenario{
      "memory_contention",
      "banked-DRAM study: makespan and row-hit rate vs bank count",
      "extension (memory seam)",
      {p_int("ops", "400000", "> 0", "workload operations per run"),
       p_int("nodes", "8", ">= 1", "LWP count (100% LWP work)"),
       p_list("banks", "1,2,4,8", ">= 1", "DRAM bank counts to sweep"),
       p_int("queue", "0", ">= 0", "shared access ports (0 = one per bank)"),
       p_reps(), p_seed()},
      [](const Config& cfg) {
        arch::HostConfig base;
        base.workload.total_ops =
            static_cast<std::uint64_t>(cfg.get_int("ops", 400'000));
        base.workload.lwp_fraction = 1.0;  // all work on the LWP array
        base.lwp_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
        base.batch_ops = 10'000;
        base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        const double analytic = arch::run_host_system(base).total_cycles;
        const auto queue = static_cast<std::size_t>(cfg.get_int("queue", 0));
        Table t("Banked-memory contention (100% LWP work, " +
                    std::to_string(base.lwp_nodes) + " LWPs, queue = " +
                    (queue == 0 ? std::string("per-bank")
                                : std::to_string(queue)) +
                    ")",
                {"Banks", "makespan (cycles)", "vs analytic", "row-hit %",
                 "accesses"});
        for (double b : cfg.get_list("banks", {1, 2, 4, 8})) {
          arch::HostConfig cfg2 = base;
          cfg2.memory.kind = "banked";
          cfg2.memory.banks = static_cast<std::size_t>(b);
          cfg2.memory.queue = queue;
          const arch::HostResult r = arch::run_host_system(cfg2);
          t.add_row({static_cast<std::int64_t>(b), r.total_cycles,
                     r.total_cycles / analytic, r.mem_row_hit_rate * 100.0,
                     static_cast<std::int64_t>(r.mem_accesses)});
        }
        return t;
      },
      /*verify_params=*/"ops=60000 nodes=4 banks=1,4",
      /*verify_fingerprint=*/0xacbd2bd677c9b95full,
      // One banked-DES run per bank count, each ~ ops memory events.
      /*cost_hint=*/
      [](const Config& cfg) {
        const double ops = static_cast<double>(cfg.get_int("ops", 400'000));
        const double banks =
            static_cast<double>(cfg.get_list("banks", {1, 2, 4, 8}).size());
        return ops * banks;
      },
  });

  registry.add(Scenario{
      "ablation_topology",
      "ablation B: Figure 11 slice under ring/mesh/torus vs flat latency",
      "Section 4.1 (assumptions)",
      {p_int("nodes", "16", ">= 1 (square for grids)", "system size"),
       p_dbl("horizon", "30000", "> 0", "simulated cycles per run"),
       p_dbl("latency", "500", "> 0", "calibrated mean round trip (cycles)"),
       p_dbl("premote", "0.2", "[0, 1]", "remote-access fraction"),
       p_bool("contention", "0", "packet-level network instead of analytic"),
       p_int("msgbytes", "16", ">= 1", "request/reply wire size"),
       p_reps(), p_seed()},
      [](const Config& cfg) {
        parcel::SplitTransactionParams base;
        base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
        base.horizon = cfg.get_double("horizon", 30'000.0);
        base.round_trip_latency = cfg.get_double("latency", 500.0);
        base.p_remote = cfg.get_double("premote", 0.2);
        base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        base.contention = cfg.get_bool("contention", false);
        base.message_bytes =
            static_cast<std::size_t>(cfg.get_int("msgbytes", 16));
        Table t("Ablation B: topology sensitivity (mean round trip " +
                    format_number(base.round_trip_latency) + " cycles, " +
                    std::to_string(base.nodes) + " nodes, " +
                    (base.contention ? "packet-level" : "analytic") +
                    " network)",
                {"Network", "Parallelism", "work ratio", "test idle %",
                 "control idle %"});
        for (const char* network : {"flat", "ring", "mesh2d", "torus"}) {
          for (std::int64_t par : {1, 4, 16, 32}) {
            parcel::SplitTransactionParams p = base;
            p.network = network;
            p.parallelism = static_cast<std::size_t>(par);
            const parcel::ComparisonPoint point = parcel::compare_systems(p);
            t.add_row({std::string(network), par, point.work_ratio,
                       point.test_idle * 100.0, point.control_idle * 100.0});
          }
        }
        return t;
      },
      /*verify_params=*/"nodes=16 horizon=8000",
      /*verify_fingerprint=*/0xf1dba985cc2c3846ull,
  });

  registry.add(Scenario{
      "ablation_switch_cost",
      "ablation C: t_switch sweep; ratio reversal when L < 2*t_switch",
      "Section 4.3 (conclusions)",
      {p_int("nodes", "8", ">= 1", "system size"),
       p_dbl("horizon", "30000", "> 0", "simulated cycles per run"),
       p_dbl("premote", "0.2", "[0, 1]", "remote-access fraction"),
       p_int("parallelism", "16", ">= 1", "parcel contexts per node"),
       p_reps(), p_seed()},
      [](const Config& cfg) {
        parcel::SplitTransactionParams base;
        base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
        base.horizon = cfg.get_double("horizon", 30'000.0);
        base.p_remote = cfg.get_double("premote", 0.2);
        base.parallelism =
            static_cast<std::size_t>(cfg.get_int("parallelism", 16));
        base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        Table t("Ablation C: parcel handling overhead (reversal when L < "
                "2*t_switch)",
                {"t_switch", "Latency (cycles)", "work ratio",
                 "ratio (model)"});
        for (double t_switch : {0.0, 2.0, 8.0, 32.0}) {
          for (double latency : {10.0, 50.0, 200.0, 1000.0}) {
            parcel::SplitTransactionParams p = base;
            p.t_switch = t_switch;
            p.round_trip_latency = latency;
            const parcel::ComparisonPoint point = parcel::compare_systems(p);
            t.add_row({t_switch, latency, point.work_ratio,
                       analytic::predicted_ratio(p)});
          }
        }
        return t;
      },
      /*verify_params=*/"horizon=8000",
      /*verify_fingerprint=*/0x5fdcd0b7fb16b795ull,
  });

  registry.add(Scenario{
      "ablation_overlap",
      "ablation D: serialized vs overlapped host/PIM execution",
      "Section 3 (Figure 4 flow)",
      {p_int("ops", "4000000", "> 0", "workload operations per run"),
       p_dbl("pct", "0.7", "[0, 1]", "lightweight workload fraction %WL"),
       p_reps(), p_seed()},
      [](const Config& cfg) {
        arch::HostConfig base;
        base.workload.total_ops =
            static_cast<std::uint64_t>(cfg.get_int("ops", 4'000'000));
        base.workload.lwp_fraction = cfg.get_double("pct", 0.7);
        base.batch_ops = 50'000;
        base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        const double pct = base.workload.lwp_fraction;
        const arch::SystemParams& params = base.params;
        Table t("Ablation D: serialized vs overlapped host/PIM execution "
                "(%WL = " +
                    format_number(pct * 100.0) + ", balanced N* = " +
                    format_number(analytic::balanced_nodes(params, pct)) +
                    ")",
                {"Nodes", "serial gain (sim)", "serial gain (model)",
                 "overlap gain (sim)", "overlap gain (model)"});
        const double control = arch::run_control_system(base).total_cycles;
        for (std::size_t nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
          arch::HostConfig serial = base;
          serial.lwp_nodes = nodes;
          arch::HostConfig overlap = serial;
          overlap.overlap_phases = true;
          const double n = static_cast<double>(nodes);
          t.add_row({static_cast<std::int64_t>(nodes),
                     control / arch::run_host_system(serial).total_cycles,
                     analytic::gain(params, n, pct),
                     control / arch::run_host_system(overlap).total_cycles,
                     1.0 / analytic::time_relative_overlapped(params, n, pct)});
        }
        return t;
      },
      /*verify_params=*/"ops=400000",
      /*verify_fingerprint=*/0xdd5c988e5f162882ull,
  });

  registry.add(Scenario{
      "ablation_bandwidth",
      "ablation E: NIC injection bandwidth bound on latency hiding",
      "Section 4.1 (assumptions)",
      {p_int("nodes", "8", ">= 1", "system size"),
       p_dbl("horizon", "30000", "> 0", "simulated cycles per run"),
       p_dbl("latency", "500", "> 0", "system-wide round trip (cycles)"),
       p_dbl("premote", "0.2", "[0, 1]", "remote-access fraction"),
       p_reps(), p_seed()},
      [](const Config& cfg) {
        parcel::SplitTransactionParams base;
        base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
        base.horizon = cfg.get_double("horizon", 30'000.0);
        base.round_trip_latency = cfg.get_double("latency", 500.0);
        base.p_remote = cfg.get_double("premote", 0.2);
        base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
        Table t("Ablation E: injection bandwidth (L = " +
                    format_number(base.round_trip_latency) + ", " +
                    format_number(base.p_remote * 100.0) + "% remote)",
                {"nic_gap", "Parallelism", "work ratio",
                 "test work/cycle/node", "bandwidth bound"});
        for (double gap : {0.0, 5.0, 20.0, 80.0}) {
          for (std::int64_t par : {1, 4, 16, 64}) {
            parcel::SplitTransactionParams p = base;
            p.nic_gap = gap;
            p.parallelism = static_cast<std::size_t>(par);
            const parcel::ComparisonPoint point = parcel::compare_systems(p);
            const double per_node =
                point.test_work /
                (p.horizon * static_cast<double>(p.nodes));
            const double bound =
                analytic::test_throughput_bandwidth_bound(p);
            t.add_row({gap, par, point.work_ratio, per_node,
                       std::isinf(bound) ? Cell{std::string("inf")}
                                         : Cell{bound}});
          }
        }
        return t;
      },
      /*verify_params=*/"horizon=8000",
      /*verify_fingerprint=*/0x97301bd4aa8cade9ull,
  });

  // --- traffic studies ----------------------------------------------------
  registry.add(Scenario{
      "hotspot",
      "all-to-one traffic: analytic vs packet-level latency collapse",
      "Section 4.1 (assumptions; interconnect study)",
      {p_int("nodes", "16", ">= 2 (square for grids)", "system size"),
       p_dbl("roundtrip", "200", "> 0", "calibrated mean round trip"),
       p_int("bytes", "16", ">= 1", "parcel wire size (one flit = 16)"),
       p_int("packets", "200", ">= 1", "packets per source node"),
       p_list("gaps", "4096,256,32,8,4", "> 0",
              "injection gaps, trickle to flood (cycles)"),
       p_str("networks", "flat,mesh2d,torus",
             "comma list of flat|ring|mesh2d|torus", "topologies to run")},
      make_hotspot_table,
      /*verify_params=*/"packets=50 gaps=4096,32",
      /*verify_fingerprint=*/0x111ea3ac7cdfe0f6ull,
      // Packet-level runs: sources x packets per (gap, network) cell.
      /*cost_hint=*/
      [](const Config& cfg) {
        const double nodes = static_cast<double>(cfg.get_int("nodes", 16));
        const double packets = static_cast<double>(cfg.get_int("packets", 200));
        const double gaps = static_cast<double>(
            cfg.get_list("gaps", {4096, 256, 32, 8, 4}).size());
        const double nets = static_cast<double>(
            split_csv(cfg.get_string("networks", "flat,mesh2d,torus")).size());
        return nodes * packets * gaps * nets;
      },
  });
}

}  // namespace pimsim::core
