// process.hpp is header-only; this translation unit exists to give the
// coroutine layer a home in the library and to type-check the header
// standalone.
#include "des/process.hpp"

namespace pimsim::des {}
