// process.hpp is header-only; this translation unit type-checks the
// header standalone and pins the kernel fast-path size contracts.
#include "des/process.hpp"

#include <cstdint>
#include <vector>

namespace pimsim::des {

// The common scheduling payloads must stay on the no-allocation paths:
// a bare coroutine resume is its own EventAction kind, and the parcel
// transport thunk (mailbox pointer + wire-format byte vector) must fit
// the inline buffer rather than spill to a heap box.  (Oversized
// callables — e.g. std::function on ABIs where it exceeds kInlineSize —
// still work via the boxed fallback; only these two are guaranteed.)
static_assert(sizeof(void*) + sizeof(std::vector<std::uint8_t>) <=
                  EventAction::kInlineSize,
              "the parcel ship() thunk must use the inline small buffer");
static_assert(std::is_nothrow_move_constructible_v<EventAction>,
              "slot-pool growth relies on noexcept EventAction relocation");

}  // namespace pimsim::des
