// Awaitable message channel between processes (unbounded FIFO).
//
// This is the kernel primitive the parcel models are built on: a node's
// input queue is a Mailbox<Parcel>.  send() never blocks; receive() is an
// awaitable that completes when a message is available.
//
// Invariant: the item queue and the waiter queue are never simultaneously
// non-empty (sends hand messages straight to the oldest waiter).
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim, std::string name = "mailbox")
      : sim_(sim), name_(std::move(name)) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  class [[nodiscard]] ReceiveAwaitable {
   public:
    explicit ReceiveAwaitable(Mailbox& box) : box_(box) {}

    bool await_ready() {
      if (box_.items_.empty()) return false;
      slot_ = std::move(box_.items_.front());
      box_.items_.pop_front();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      box_.waiters_.push_back(Waiter{h, &slot_});
    }
    T await_resume() {
      // Message built only on failure: receive is a hot path.
      ensure(slot_.has_value(), [this] {
        return "Mailbox '" + box_.name_ +
               "': resumed receiver without a message";
      });
      if (box_.sim_.tracing_enabled()) {
        box_.sim_.trace(TraceKind::kMailboxReceive, box_.trace_label());
      }
      return std::move(*slot_);
    }

   private:
    friend class Mailbox;
    Mailbox& box_;
    std::optional<T> slot_;
  };

  /// Deposits a message; wakes the oldest waiting receiver, if any.
  /// Allocation-free when a receiver is waiting: the message moves
  /// straight into the receiver's frame and the wake-up is a raw
  /// coroutine-resume calendar entry (EventAction kResume).
  void send(T value) {
    // tracing_enabled() first: trace() itself is an inline branch, but
    // the lazy label interning is not free on a path this hot.
    if (sim_.tracing_enabled()) sim_.trace(TraceKind::kMailboxSend, trace_label());
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(value);
      sim_.resume_soon(w.handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  /// Awaitable yielding the next message (FIFO among messages and waiters).
  [[nodiscard]] ReceiveAwaitable receive() { return ReceiveAwaitable(*this); }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_receive() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t pending() const { return items_.size(); }
  [[nodiscard]] std::size_t waiting_receivers() const { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  /// Interns the mailbox name on first traced use (only reached behind a
  /// tracing_enabled() check, so the id is valid for the active tracer).
  [[nodiscard]] LabelId trace_label() const {
    if (trace_label_ == kLabelUninterned) trace_label_ = sim_.trace_label(name_);
    return trace_label_;
  }

  Simulation& sim_;
  std::string name_;
  mutable LabelId trace_label_ = kLabelUninterned;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace pimsim::des
