#include "des/resource.hpp"

#include "common/error.hpp"

namespace pimsim::des {

Resource::Resource(Simulation& sim, std::size_t capacity, std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)) {
  require(capacity > 0, "Resource '" + name_ + "': capacity must be positive");
}

bool Resource::AcquireAwaitable::await_ready() {
  Resource& r = resource_;
  if (r.queue_.empty() && r.capacity_ - r.in_use_ >= n_) {
    r.grant(n_, r.sim_.now());
    return true;
  }
  return false;
}

void Resource::AcquireAwaitable::await_suspend(std::coroutine_handle<> h) {
  Resource& r = resource_;
  r.queue_.push_back(Waiter{h, n_, r.sim_.now()});
  r.queued_.set(r.sim_.now(), static_cast<double>(r.queue_.size()));
  // tracing_enabled() first: the mistake mailbox.hpp warns about — the
  // label lookup is not free on a hot path.
  if (r.sim_.tracing_enabled()) {
    r.sim_.trace(TraceKind::kResourceEnqueued, r.trace_label());
  }
}

Resource::AcquireAwaitable Resource::acquire(std::size_t n) {
  // Failure messages are built lazily: acquire/release are hot paths.
  require(n > 0,
          [&] { return "Resource '" + name_ + "': acquire of zero units"; });
  require(n <= capacity_, [&] {
    return "Resource '" + name_ + "': request exceeds capacity (deadlock)";
  });
  return AcquireAwaitable(*this, n);
}

bool Resource::try_acquire(std::size_t n) {
  require(n > 0 && n <= capacity_,
          [&] { return "Resource '" + name_ + "': bad try_acquire"; });
  if (!queue_.empty() || capacity_ - in_use_ < n) return false;
  grant(n, sim_.now());
  return true;
}

void Resource::grant(std::size_t n, SimTime enqueued_at) {
  in_use_ += n;
  ++grants_;
  wait_.add(sim_.now() - enqueued_at);
  busy_.set(sim_.now(), static_cast<double>(in_use_));
  if (sim_.tracing_enabled()) sim_.trace(TraceKind::kResourceAcquire, trace_label());
}

void Resource::release(std::size_t n) {
  ensure(n <= in_use_, [&] {
    return "Resource '" + name_ + "': release of more units than in use";
  });
  in_use_ -= n;
  busy_.set(sim_.now(), static_cast<double>(in_use_));
  if (sim_.tracing_enabled()) sim_.trace(TraceKind::kResourceRelease, trace_label());
  drain_queue();
}

void Resource::drain_queue() {
  // Strict FIFO: stop at the first waiter that does not fit.  Each grant
  // wake-up is a raw coroutine-resume calendar entry — no allocation.
  while (!queue_.empty() && capacity_ - in_use_ >= queue_.front().n) {
    Waiter w = queue_.front();
    queue_.pop_front();
    queued_.set(sim_.now(), static_cast<double>(queue_.size()));
    grant(w.n, w.enqueued_at);
    sim_.resume_soon(w.handle);
  }
}

double Resource::utilization() const {
  const double cap = static_cast<double>(capacity_);
  return busy_.mean(sim_.now()) / cap;
}

double Resource::mean_queue_length() const { return queued_.mean(sim_.now()); }

}  // namespace pimsim::des
