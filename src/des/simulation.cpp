#include "des/simulation.hpp"

#include "common/error.hpp"
#include "des/process.hpp"

namespace pimsim::des {

Simulation::Simulation() = default;

Simulation::~Simulation() {
  // Destroy any still-suspended process frames. Guard against coroutine
  // destructors scheduling new work or unregistering re-entrantly.
  destroying_ = true;
  auto frames = live_;
  live_.clear();
  for (void* addr : frames) {
    std::coroutine_handle<>::from_address(addr).destroy();
  }
}

EventId Simulation::schedule_at(SimTime at, std::function<void()> fn) {
  ensure(at >= now_, "Simulation::schedule_at: cannot schedule in the past");
  ensure(static_cast<bool>(fn), "Simulation::schedule_at: empty callback");
  const EventId id = next_seq_++;
  calendar_.push(Event{at, id, id});
  actions_.emplace(id, std::move(fn));
  if (tracer_) trace(TraceKind::kEventScheduled, "event", std::to_string(id));
  return id;
}

EventId Simulation::schedule_in(Cycles delay, std::function<void()> fn) {
  ensure(delay >= 0.0, "Simulation::schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_now(std::function<void()> fn) {
  return schedule_at(now_, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  const bool erased = actions_.erase(id) > 0;
  if (erased && tracer_) {
    trace(TraceKind::kEventCancelled, "event", std::to_string(id));
  }
  return erased;
}

std::size_t Simulation::events_pending() const { return actions_.size(); }

void Simulation::dispatch(const Event& ev) {
  auto it = actions_.find(ev.id);
  if (it == actions_.end()) return;  // cancelled
  // Move the action out before invoking so the callback may schedule/cancel.
  std::function<void()> fn = std::move(it->second);
  actions_.erase(it);
  now_ = ev.time;
  ++dispatched_;
  if (tracer_) trace(TraceKind::kEventDispatched, "event", std::to_string(ev.id));
  fn();
}

void Simulation::rethrow_pending() {
  if (pending_exception_) {
    std::exception_ptr ep = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ep);
  }
}

void Simulation::run() {
  while (!calendar_.empty()) {
    const Event ev = calendar_.top();
    calendar_.pop();
    dispatch(ev);
    rethrow_pending();
  }
}

void Simulation::run_until(SimTime horizon) {
  ensure(horizon >= now_, "Simulation::run_until: horizon is in the past");
  while (!calendar_.empty() && calendar_.top().time <= horizon) {
    const Event ev = calendar_.top();
    calendar_.pop();
    dispatch(ev);
    rethrow_pending();
  }
  now_ = horizon;
}

bool Simulation::step() {
  while (!calendar_.empty()) {
    const Event ev = calendar_.top();
    calendar_.pop();
    const bool live = actions_.count(ev.id) > 0;
    dispatch(ev);
    rethrow_pending();
    if (live) return true;
  }
  return false;
}

void Simulation::spawn(Process process) {
  auto h = process.release_for_spawn(*this);
  if (tracer_) trace(TraceKind::kProcessSpawned, "process");
  // Start the body via the calendar so spawn() never runs model code inline;
  // this keeps spawn order == start order at a given timestamp.
  resume_soon(h);
}

void Simulation::resume_soon(std::coroutine_handle<> h) {
  schedule_now([h] { h.resume(); });
}

void Simulation::register_process(std::coroutine_handle<> h) {
  live_.insert(h.address());
}

void Simulation::unregister_process(std::coroutine_handle<> h) {
  if (destroying_) return;
  live_.erase(h.address());
  if (tracer_) trace(TraceKind::kProcessFinished, "process");
}

void Simulation::set_pending_exception(std::exception_ptr ep) {
  // Keep the first exception; nested failures would mask the root cause.
  if (!pending_exception_) pending_exception_ = ep;
}

void Simulation::trace(TraceKind kind, const std::string& label,
                       const std::string& detail) const {
  if (tracer_) tracer_->record(TraceRecord{now_, kind, label, detail});
}

}  // namespace pimsim::des
