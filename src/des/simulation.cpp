#include "des/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "des/process.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace pimsim::des {

namespace {

/// True for any non-empty value except the literal "0".
bool env_enabled(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

Simulation::Simulation() {
  // PIMSIM_AUDIT / PIMSIM_TRACE / PIMSIM_METRICS / PIMSIM_PROFILE turn the
  // corresponding layer on for every simulation in the process — the seam
  // `pimsim run ... audit=1 trace=... metrics=... profile=1` uses to reach
  // simulations constructed deep inside figure generators.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; nothing
  // in-process calls setenv concurrently with simulation construction.
  if (env_enabled(std::getenv("PIMSIM_AUDIT"))) set_audit(true);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* trace_env = std::getenv("PIMSIM_TRACE");
  if (env_enabled(trace_env)) {
    set_trace(true);
    // The per-event kernel kinds flood the bounded buffer on any
    // non-trivial run, so the env-driven tracer masks them out unless
    // explicitly asked for everything with PIMSIM_TRACE=full.
    if (std::string_view(trace_env) != "full") {
      owned_tracer_->set_kind_mask(Tracer::kDefaultKinds);
    }
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* cap_env = std::getenv("PIMSIM_TRACE_CAP");
    if (cap_env != nullptr && cap_env[0] != '\0') {
      owned_tracer_->set_capacity(
          static_cast<std::size_t>(std::strtoull(cap_env, nullptr, 10)));
    }
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (env_enabled(std::getenv("PIMSIM_METRICS"))) set_metrics(true);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (env_enabled(std::getenv("PIMSIM_PROFILE"))) set_profile(true);
}

Simulation::~Simulation() {
  // Destroy any still-suspended process frames, in deterministic
  // registration order. Guard against coroutine destructors scheduling
  // new work or unregistering re-entrantly.
  destroying_ = true;
  auto frames = std::move(live_order_);
  live_order_.clear();
  live_index_.clear();
  for (void* addr : frames) {
    std::coroutine_handle<>::from_address(addr).destroy();
  }
  // Pending EventActions (and anything they own) die with slots_.
  if (audit_) AuditRegistry::global().absorb(*audit_);
  // Publish enabled observability layers to their process-wide hubs.
  if (metrics_) {
    // The kernel's own counters join the registry it has been hosting.
    metrics_->counter("des.events_dispatched").add(dispatched_);
    obs::MetricsHub::global().absorb(*metrics_);
  }
  if (owned_tracer_) obs::TraceHub::global().absorb(*owned_tracer_);
  if (profiler_) obs::ProfileHub::global().absorb(*profiler_);
}

// --- observability switches ----------------------------------------------

void Simulation::set_trace(bool enabled) {
  if (enabled) {
    if (!owned_tracer_) {
      owned_tracer_ = std::make_unique<Tracer>();
      set_tracer(owned_tracer_.get());
    }
  } else {
    if (tracer_ == owned_tracer_.get()) tracer_ = nullptr;
    owned_tracer_.reset();
  }
}

void Simulation::set_metrics(bool enabled) {
  if (enabled) {
    if (!metrics_) metrics_ = std::make_unique<obs::MetricsRegistry>();
  } else {
    metrics_.reset();
  }
}

obs::MetricsRegistry& Simulation::metrics() {
  ensure(metrics_ != nullptr, "Simulation::metrics: metrics mode is off");
  return *metrics_;
}

void Simulation::set_profile(bool enabled) {
  if (enabled) {
    if (!profiler_) profiler_ = std::make_unique<obs::KernelProfiler>();
  } else {
    profiler_.reset();
  }
}

// --- slot pool -----------------------------------------------------------

void Simulation::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  if (++slot.generation == 0) slot.generation = 1;  // 0 is the id sentinel
  slot.next_free = free_head_;
  free_head_ = index;
  --live_events_;
}

bool Simulation::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  // The action check rejects ids forged for a currently-free slot.
  if (slot.generation != gen || !slot.action) return false;
  slot.action.reset();
  release_slot(index);
  ++stale_;
  if (tracer_) trace(TraceKind::kEventCancelled, lbl_event_, id);
  // Lazy deletion keeps cancel O(1); compact once stale entries dominate
  // so cancel-heavy workloads cannot grow the calendar without bound.
  if (stale_ * 2 > calendar_entries() && calendar_entries() >= kCompactFloor) {
    compact_calendar();
  }
  return true;
}

// --- d-ary heap ----------------------------------------------------------
//
// A wide implicit heap cuts the tree depth of the binary
// std::priority_queue it replaces, and the 24-byte children of a node are
// scanned contiguously with a single branchless 128-bit key compare each
// — fewer, more predictable memory touches per sift than a binary heap's
// pointer-chasing depth.

void Simulation::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulation::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry entry = heap_[i];
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (before(heap_[child], heap_[best])) best = child;
    }
    if (!before(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

void Simulation::compact_calendar() {
  std::size_t removed = 0;
  std::size_t keep = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].generation == entry.gen) {
      heap_[keep++] = entry;
    } else {
      ++removed;
    }
  }
  heap_.resize(keep);
  if (heap_.size() > 1) {
    // Floyd heapify: sift down every internal node, deepest first.
    for (std::size_t i = (heap_.size() - 2) / kHeapArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
  // Filter the immediate lane in place, preserving FIFO order.
  std::size_t write = 0;
  for (std::size_t read = now_head_; read < now_queue_.size(); ++read) {
    const NowEntry& entry = now_queue_[read];
    if (slots_[entry.slot].generation == entry.gen) {
      now_queue_[write++] = entry;
    } else {
      ++removed;
    }
  }
  now_queue_.resize(write);
  now_head_ = 0;
  stale_ -= removed;
}

// --- dispatch ------------------------------------------------------------

// Pops the next live event in global (time, seq) order into `out`,
// merging the heap with the immediate lane and lazily retiring stale
// (cancelled) entries from both.  With `bounded`, live events beyond
// `horizon` are left in place and false is returned.
bool Simulation::pop_next(HeapEntry& out, bool bounded, SimTime horizon) {
  for (;;) {
    const bool have_now = now_head_ < now_queue_.size();
    const bool have_heap = !heap_.empty();
    if (!have_now && !have_heap) return false;
    bool use_now = have_now;
    if (have_now && have_heap) {
      // Lane entries are all at time now_; a heap entry only precedes the
      // lane front if it is at now_ with an older sequence number — one
      // wide-key compare covers both fields.
      if (heap_.front().key < heap_key(now_, now_queue_[now_head_].seq)) {
        use_now = false;
      }
    }
    if (use_now) {
      const NowEntry entry = now_queue_[now_head_++];
      if (now_head_ == now_queue_.size()) {
        now_queue_.clear();
        now_head_ = 0;
      } else if (now_head_ >= kCompactFloor &&
                 now_head_ * 2 >= now_queue_.size()) {
        // Sustained same-time cascades can keep the lane non-empty for a
        // whole timestamp; reclaim the consumed prefix once it dominates
        // so lane memory stays O(pending), not O(events at this time).
        now_queue_.erase(now_queue_.begin(),
                         now_queue_.begin() +
                             static_cast<std::ptrdiff_t>(now_head_));
        now_head_ = 0;
      }
      if (slots_[entry.slot].generation != entry.gen) {
        --stale_;
        continue;
      }
      out = HeapEntry{heap_key(now_, entry.seq), entry.slot, entry.gen};
      return true;
    }
    const HeapEntry entry = heap_.front();
    if (slots_[entry.slot].generation != entry.gen) {
      heap_pop_top();
      --stale_;
      continue;
    }
    if (bounded && entry.time() > horizon) return false;
    heap_pop_top();
    out = entry;
    return true;
  }
}

void Simulation::dispatch(const HeapEntry& entry) {
  // Relocate the action out of the pool and retire the slot before
  // invoking: the callback may schedule (growing/reusing the pool) or
  // cancel, and must observe this event as already dispatched.
  EventAction action = std::move(slots_[entry.slot].action);
  release_slot(entry.slot);
  // Heap corruption that survives pop_next's sift repair still surfaces
  // as an out-of-order dispatch; in audit mode that is fatal, not silent.
  if (audit_) {
    ensure(entry.time() >= now_,
           "Simulation audit: dispatch time moved backwards (calendar "
           "order violated)");
  }
  now_ = entry.time();
  current_seq_ = entry.seq();
  ++dispatched_;
  if (tracer_) {
    const EventId id =
        (static_cast<EventId>(entry.gen) << 32) | static_cast<EventId>(entry.slot);
    trace(TraceKind::kEventDispatched, lbl_event_, id);
  }
  if (audit_) {
    audit_->record(now_, current_seq_, action.kind_id());
    if (audit_countdown_ == 0) {
      audit_check_now();
      // Next sweep after ~pool-size events: the sweep is O(slots +
      // calendar), so the audit tax stays O(1) amortized per dispatch.
      audit_countdown_ = std::max<std::uint64_t>(kAuditCheckFloor,
                                                 slots_.size());
    } else {
      --audit_countdown_;
    }
  }
  if (profiler_) {
    dispatch_profiled(action);
  } else {
    action.invoke();
  }
  current_seq_ = 0;  // outside dispatch the documented value is 0
}

void Simulation::dispatch_profiled(EventAction& action) {
  // Counts are exact; wall time is sampled (one steady_clock pair every
  // kSampleEvery dispatches, attributed to that dispatch's kind) so the
  // timer cost is amortized to noise.  steady_clock measures wall time
  // only — it never feeds model state, so determinism is unaffected.
  const std::uint8_t kind = action.kind_id();
  profiler_->count(kind);
  if (profiler_->sample_due()) {
    const auto t0 = std::chrono::steady_clock::now();
    action.invoke();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    profiler_->record_sample(kind, dt.count());
  } else {
    action.invoke();
  }
}

void Simulation::rethrow_pending() {
  if (pending_exception_) {
    std::exception_ptr ep = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ep);
  }
}

void Simulation::run() {
  HeapEntry entry;
  while (pop_next(entry, /*bounded=*/false, 0.0)) {
    dispatch(entry);
    rethrow_pending();
  }
}

void Simulation::run_until(SimTime horizon) {
  ensure(horizon >= now_, "Simulation::run_until: horizon is in the past");
  HeapEntry entry;
  while (pop_next(entry, /*bounded=*/true, horizon)) {
    dispatch(entry);
    rethrow_pending();
  }
  now_ = horizon;
}

bool Simulation::step() {
  HeapEntry entry;
  if (!pop_next(entry, /*bounded=*/false, 0.0)) return false;
  dispatch(entry);
  rethrow_pending();
  return true;
}

// --- determinism audit ---------------------------------------------------

void Simulation::set_audit(bool enabled) {
  if (enabled) {
    if (!audit_) {
      audit_ = std::make_unique<AuditLog>();
      audit_countdown_ = 0;  // sweep on the next dispatch
    }
  } else {
    audit_.reset();
  }
}

void Simulation::audit_check_now() const {
  // 4-ary heap order: every entry's key must not precede its parent's.
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    const std::size_t parent = (i - 1) / kHeapArity;
    ensure(!before(heap_[i], heap_[parent]),
           "Simulation audit: heap order violated (child precedes parent)");
  }
  // Slot pool: the free list must be acyclic, in range, and account for
  // exactly the slots that live_events_ does not.
  std::size_t free_count = 0;
  for (std::uint32_t index = free_head_; index != kNoSlot;
       index = slots_[index].next_free) {
    ensure(index < slots_.size(),
           "Simulation audit: free-list index out of range");
    ensure(++free_count <= slots_.size(),
           "Simulation audit: free-list cycle");
  }
  ensure(free_count + live_events_ == slots_.size(),
         "Simulation audit: slot accounting mismatch (free + live != pool)");
  for (const Slot& slot : slots_) {
    ensure(slot.generation != 0,
           "Simulation audit: slot generation hit the 0 sentinel");
  }
  // Calendar: stale entries are a subset of calendar entries.
  ensure(stale_ <= calendar_entries(),
         "Simulation audit: stale count exceeds calendar size");
}

void Simulation::corrupt_heap_for_test() {
  ensure(heap_.size() >= 2,
         "corrupt_heap_for_test: needs >= 2 future events");
  std::swap(heap_.front().key, heap_.back().key);
}

// --- process layer hooks -------------------------------------------------

void Simulation::spawn(Process process) {
  auto h = process.release_for_spawn(*this);
  if (tracer_) trace(TraceKind::kProcessSpawned, lbl_process_);
  // Start the body via the calendar so spawn() never runs model code inline;
  // this keeps spawn order == start order at a given timestamp.
  resume_soon(h);
}

void Simulation::register_process(std::coroutine_handle<> h) {
  live_index_.emplace(h.address(), live_order_.size());
  live_order_.push_back(h.address());
}

void Simulation::unregister_process(std::coroutine_handle<> h) {
  if (destroying_) return;
  const auto it = live_index_.find(h.address());
  if (it == live_index_.end()) return;
  // Swap-and-pop: O(1), and deterministic because the sequence of
  // register/unregister calls is itself deterministic — addresses are
  // only keys, never ordered over.
  const std::size_t pos = it->second;
  live_index_.erase(it);
  if (pos + 1 != live_order_.size()) {
    live_order_[pos] = live_order_.back();
    live_index_[live_order_[pos]] = pos;
  }
  live_order_.pop_back();
  if (tracer_) trace(TraceKind::kProcessFinished, lbl_process_);
}

void Simulation::set_pending_exception(std::exception_ptr ep) {
  // Keep the first exception; nested failures would mask the root cause.
  if (!pending_exception_) pending_exception_ = ep;
}

}  // namespace pimsim::des
