// Type-erased one-shot event callback for the simulation kernel.
//
// EventAction is a small tagged union replacing the std::function the
// calendar used to store per event.  The three payload kinds cover the
// kernel's traffic without touching the heap on the hot paths:
//
//  * kResume — a raw coroutine handle.  resume_soon()/delay()/mailbox
//    wake-ups all reduce to this: 8 bytes, no construction cost.
//  * kSmall  — an arbitrary callable move-constructed into a
//    kInlineSize-byte (32) inline buffer (covers every lambda the
//    library schedules, including the parcel transport thunk that owns
//    a wire-format byte vector).
//  * kBoxed  — the escape hatch for oversized or throwing-move callables,
//    heap-allocated as before.
//  * kStatic — a raw (function pointer, context, two u64 payloads) record
//    for components that dispatch millions of homogeneous events, e.g.
//    the packet network's link-advance/arrive events: no ops table, no
//    relocation, the payload is invoked directly from the inline buffer.
//
// Invoking consumes the action: the callable is relocated to the caller's
// stack before it runs, so a callback may freely schedule new events even
// when that reallocates the slot pool that used to hold it.  Oversized
// callables (> kInlineSize) transparently fall back to a heap box.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pimsim::des {

class EventAction {
 public:
  /// Callables up to this size (and max_align_t alignment) are stored
  /// inline; anything larger falls back to a heap box.  32 bytes covers
  /// a std::function and the parcel transport thunk (pointer + byte
  /// vector) while keeping the whole EventAction at 48 bytes.
  static constexpr std::size_t kInlineSize = 32;

  EventAction() noexcept {}
  EventAction(EventAction&& other) noexcept { move_from(other); }
  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;
  ~EventAction() { reset(); }

  /// The coroutine-resume fast path: no payload beyond the handle.
  static EventAction resume(std::coroutine_handle<> h) noexcept {
    EventAction a;
    a.kind_ = Kind::kResume;
    a.storage_.pointer = h.address();
    return a;
  }

  /// Plain-function event with two word-sized payloads — the dedicated
  /// form for hot homogeneous event streams (link advances, arrivals).
  /// Cheaper than wrap(): no ops-table indirection, no relocation.
  using StaticFn = void (*)(void* ctx, std::uint64_t a, std::uint64_t b);
  static EventAction call(StaticFn fn, void* ctx, std::uint64_t a,
                          std::uint64_t b) noexcept {
    EventAction action;
    action.kind_ = Kind::kStatic;
    auto& rec = action.storage_.static_call;
    rec.fn = fn;
    rec.ctx = ctx;
    rec.a = a;
    rec.b = b;
    return action;
  }

  /// Wraps an arbitrary callable, inline when it fits.
  template <typename F>
  static EventAction wrap(F&& fn) {
    using Fn = std::decay_t<F>;
    EventAction a;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(a.storage_.inline_buf))
          Fn(std::forward<F>(fn));
      a.ops_ = &kSmallOps<Fn>;
      a.kind_ = Kind::kSmall;
    } else {
      a.storage_.pointer = new Fn(std::forward<F>(fn));
      a.ops_ = &kBoxedOps<Fn>;
      a.kind_ = Kind::kBoxed;
    }
    return a;
  }

  /// True while a callback is stored (empty after invoke()/reset()).
  explicit operator bool() const noexcept { return kind_ != Kind::kEmpty; }

  /// Stable small integer identifying the payload kind (0 = empty,
  /// 1 = resume, 2 = small, 3 = boxed, 4 = static).  Fed into the audit
  /// hash chain so two runs dispatching different action kinds at the
  /// same (time, seq) still diverge.
  [[nodiscard]] std::uint8_t kind_id() const noexcept {
    return static_cast<std::uint8_t>(kind_);
  }

  /// Runs the callback and leaves the action empty.
  void invoke() {
    const Kind kind = std::exchange(kind_, Kind::kEmpty);
    switch (kind) {
      case Kind::kEmpty:
        return;
      case Kind::kResume:
        std::coroutine_handle<>::from_address(storage_.pointer).resume();
        return;
      case Kind::kSmall:
        ops_->invoke(storage_.inline_buf);
        return;
      case Kind::kBoxed:
        ops_->invoke(storage_.pointer);
        return;
      case Kind::kStatic: {
        // Copy to the stack first: the handler may schedule events, which
        // can reallocate the slot pool that held this action.
        const StaticCall rec = storage_.static_call;
        rec.fn(rec.ctx, rec.a, rec.b);
        return;
      }
    }
  }

  /// Destroys the payload without running it.
  void reset() noexcept {
    const Kind kind = std::exchange(kind_, Kind::kEmpty);
    if (kind == Kind::kSmall) {
      ops_->destroy(storage_.inline_buf);
    } else if (kind == Kind::kBoxed) {
      ops_->destroy(storage_.pointer);
    }
  }

 private:
  enum class Kind : std::uint8_t { kEmpty, kResume, kSmall, kBoxed, kStatic };

  struct Ops {
    void (*invoke)(void* self);   // run, then destroy the stored callable
    void (*destroy)(void* self);  // destroy without running
    void (*relocate)(void* from, void* to);  // move-construct + destroy source
  };

  template <typename Fn>
  static constexpr Ops kSmallOps = {
      [](void* self) {
        // Relocate to the stack first: the callable may schedule events,
        // which can grow the slot pool out from under `self`.
        Fn fn = std::move(*static_cast<Fn*>(self));
        static_cast<Fn*>(self)->~Fn();
        fn();
      },
      [](void* self) { static_cast<Fn*>(self)->~Fn(); },
      [](void* from, void* to) {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops kBoxedOps = {
      [](void* self) {
        std::unique_ptr<Fn> fn(static_cast<Fn*>(self));
        (*fn)();
      },
      [](void* self) { delete static_cast<Fn*>(self); },
      nullptr};

  void move_from(EventAction& other) noexcept {
    kind_ = std::exchange(other.kind_, Kind::kEmpty);
    ops_ = other.ops_;
    switch (kind_) {
      case Kind::kSmall:
        ops_->relocate(other.storage_.inline_buf, storage_.inline_buf);
        break;
      case Kind::kResume:
      case Kind::kBoxed:
        storage_.pointer = other.storage_.pointer;
        break;
      case Kind::kStatic:
        storage_.static_call = other.storage_.static_call;
        break;
      case Kind::kEmpty:
        break;
    }
  }

  struct StaticCall {
    StaticFn fn;
    void* ctx;
    std::uint64_t a;
    std::uint64_t b;
  };
  static_assert(sizeof(StaticCall) <= kInlineSize);

  union Storage {
    void* pointer;  // kResume: coroutine frame; kBoxed: heap callable
    StaticCall static_call;  // kStatic: fn + ctx + payload, trivially copyable
    alignas(std::max_align_t) std::byte inline_buf[kInlineSize];
  };

  Storage storage_;
  const Ops* ops_ = nullptr;
  Kind kind_ = Kind::kEmpty;
};

}  // namespace pimsim::des
