// Counted FIFO resource (the SES/Workbench "service/resource node"
// equivalent) with built-in utilization and queueing statistics.
//
// Strict FIFO: a request at the head that cannot yet be satisfied blocks
// later (even smaller) requests — no bypass, matching the queuing
// discipline of the paper's Workbench models.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {

class Resource {
 public:
  /// A resource with `capacity` indistinguishable units (servers, ports...).
  Resource(Simulation& sim, std::size_t capacity, std::string name = "resource");

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable that completes once `n` units have been granted to the caller.
  class [[nodiscard]] AcquireAwaitable {
   public:
    AcquireAwaitable(Resource& resource, std::size_t n)
        : resource_(resource), n_(n) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

   private:
    Resource& resource_;
    std::size_t n_;
  };

  /// Requests n units (default 1); throws ConfigError if n > capacity.
  [[nodiscard]] AcquireAwaitable acquire(std::size_t n = 1);

  /// Returns n units and grants the queue head(s) if they now fit.
  void release(std::size_t n = 1);

  /// Tries to take n units without waiting; returns success.
  [[nodiscard]] bool try_acquire(std::size_t n = 1);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t available() const { return capacity_ - in_use_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  // --- statistics -------------------------------------------------------
  /// Time-average fraction of capacity in use over [0, now].
  [[nodiscard]] double utilization() const;
  /// Highest number of units simultaneously in use so far.
  [[nodiscard]] double peak_in_use() const { return busy_.max(); }
  /// Time-average number of queued (not yet granted) requests.
  [[nodiscard]] double mean_queue_length() const;
  /// Waiting time statistics over granted requests.
  [[nodiscard]] const RunningStats& wait_stats() const { return wait_; }
  /// Total grants so far.
  [[nodiscard]] std::uint64_t grants() const { return grants_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::size_t n;
    SimTime enqueued_at;
  };

  void grant(std::size_t n, SimTime enqueued_at);
  void drain_queue();

  /// Interns the resource name on first traced use (only reached behind a
  /// tracing_enabled() check, so the id is valid for the active tracer).
  [[nodiscard]] LabelId trace_label() const {
    if (trace_label_ == kLabelUninterned) trace_label_ = sim_.trace_label(name_);
    return trace_label_;
  }

  Simulation& sim_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::string name_;
  mutable LabelId trace_label_ = kLabelUninterned;
  std::deque<Waiter> queue_;
  TimeWeighted busy_;
  TimeWeighted queued_;
  RunningStats wait_;
  std::uint64_t grants_ = 0;
};

}  // namespace pimsim::des
