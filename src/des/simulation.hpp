// The discrete-event scheduler at the heart of pimsim.
//
// This is the replacement for the HyPerformix SES/Workbench kernel the
// paper used: a single-threaded event calendar with deterministic
// (time, insertion-order) dispatch, plus a C++20-coroutine process layer
// declared in process.hpp.
//
// Typical use:
//
//   des::Simulation sim;
//   sim.spawn(my_model(sim, ...));      // my_model returns des::Process
//   sim.run();                          // or sim.run_until(horizon)
//
// Determinism: two events scheduled for the same timestamp dispatch in
// scheduling order, so a model that uses only Simulation-provided
// primitives and pimsim::Rng streams is bit-reproducible.
//
// Internals (see README "Event kernel architecture"): events live in a
// generation-tagged slot pool indexed by a 4-ary min-heap of
// (time, seq, slot, generation).  Scheduling takes a pooled slot and one
// heap push; cancel() bumps the slot's generation in O(1) and leaves a
// stale heap entry behind, which dispatch skips lazily and a compaction
// pass reclaims whenever stale entries outnumber live ones.  Callbacks
// are EventAction tagged unions, so the coroutine-resume paths
// (resume_soon / delay / mailbox wake-ups) never touch the heap
// allocator.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "des/audit.hpp"
#include "des/event_action.hpp"
#include "des/trace.hpp"

// Observability layer (src/obs/): forward-declared so the kernel header
// stays include-light; simulation.cpp pulls in the real definitions.
namespace pimsim::obs {
class KernelProfiler;
class MetricsRegistry;
}  // namespace pimsim::obs

namespace pimsim::des {

class Process;

/// Identifies a scheduled event so it can be cancelled before dispatch.
/// Encodes (slot generation << 32 | slot index); stale ids never match.
using EventId = std::uint64_t;
/// Sentinel returned when no cancellable handle is needed.
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time in HWP cycles.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  template <typename F>
  EventId schedule_at(SimTime at, F&& fn) {
    if constexpr (requires { static_cast<bool>(fn); }) {
      ensure(static_cast<bool>(fn), "Simulation::schedule_at: empty callback");
    }
    return schedule_action(at, EventAction::wrap(std::forward<F>(fn)));
  }
  /// Schedules `fn` to run after `delay` cycles.
  template <typename F>
  EventId schedule_in(Cycles delay, F&& fn) {
    ensure(delay >= 0.0, "Simulation::schedule_in: negative delay");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }
  /// Schedules `fn` to run at the current time, after pending same-time events.
  template <typename F>
  EventId schedule_now(F&& fn) {
    return schedule_at(now_, std::forward<F>(fn));
  }

  /// Cancels a pending event; returns false if already dispatched/unknown.
  /// O(1): the slot is reclaimed immediately, the calendar entry decays.
  bool cancel(EventId id);

  /// Runs until the event calendar is empty.
  void run();
  /// Runs all events with time <= horizon, then advances now() to horizon.
  void run_until(SimTime horizon);
  /// Dispatches a single event; returns false if the calendar is empty.
  bool step();

  /// Number of events dispatched so far (diagnostic).
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }
  /// Number of live (schedulable, not cancelled) events currently pending.
  [[nodiscard]] std::size_t events_pending() const { return live_events_; }
  /// Calendar entries (heap + immediate lane), including stale ones
  /// awaiting lazy removal.  Bounded at < 2x events_pending() +
  /// compaction floor (leak diagnostic).
  [[nodiscard]] std::size_t calendar_entries() const {
    return heap_.size() + (now_queue_.size() - now_head_);
  }
  /// Stale (cancelled) calendar entries not yet compacted away.
  [[nodiscard]] std::size_t stale_calendar_entries() const { return stale_; }

  /// Starts a coroutine process; the simulation owns its frame.
  /// The process body begins executing at the current simulation time
  /// (via an immediate event), not synchronously inside spawn().
  void spawn(Process process);

  /// Number of live (spawned, unfinished) processes.
  [[nodiscard]] std::size_t live_processes() const {
    return live_order_.size();
  }

  /// Installs (or removes, with nullptr) a tracer.  Not owned; externally
  /// installed tracers are not absorbed into obs::TraceHub at destruction
  /// (use set_trace() for that).
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    if (tracer_ != nullptr) {
      lbl_event_ = tracer_->intern("event");
      lbl_process_ = tracer_->intern("process");
    }
  }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }
  /// Fast guard for hot paths that would otherwise pay argument setup
  /// (label interning, payload computation) before trace() can bail out.
  [[nodiscard]] bool tracing_enabled() const { return tracer_ != nullptr; }
  /// Emits a POD trace record if tracing is enabled.  Inline so the
  /// tracer-disabled case costs one predicted branch on the hot paths.
  /// `label` is an interned id (see trace_label); `a`/`b` are
  /// kind-specific payload words — no strings, no allocation.
  void trace(TraceKind kind, LabelId label, std::uint64_t a = 0,
             std::uint64_t b = 0) const {
    if (tracer_) tracer_->record(TraceRecord{now_, a, b, label, kind});
  }
  /// Interns `name` into the active tracer's label table (0 when tracing
  /// is off).  Call sites cache the returned id (kLabelUninterned as the
  /// not-yet sentinel) so the hot path never touches strings.
  [[nodiscard]] LabelId trace_label(std::string_view name) const {
    return tracer_ != nullptr ? tracer_->intern(name) : LabelId{0};
  }

  // --- determinism audit mode (see des/audit.hpp) ------------------------
  //
  // When enabled, every dispatch folds its (time, seq, action-kind) tuple
  // into an FNV-1a hash chain, and O(1)-amortized invariant sweeps cover
  // the 4-ary heap order, the slot-pool generations/free list, and any
  // component self-checks keyed off audit_enabled() (the packet network
  // audits its credit ledgers).  When off, the cost is one predicted
  // branch per dispatch — the tracing_enabled() pattern, held to the
  // bench_engine floors.  The PIMSIM_AUDIT=1 environment variable turns
  // it on at construction, which is how `pimsim run/verify ... audit=1`
  // reaches simulations buried inside figure generators.

  /// Enables/disables audit mode.  Disabling discards the chain without
  /// reporting it to the AuditRegistry.
  void set_audit(bool enabled);
  /// Fast guard, mirroring tracing_enabled(): components gate their own
  /// audit-mode invariant checks behind this.
  [[nodiscard]] bool audit_enabled() const { return audit_ != nullptr; }
  /// The event-chain log, or nullptr when audit mode is off.
  [[nodiscard]] const AuditLog* audit_log() const { return audit_.get(); }
  /// Runs the kernel invariant sweep immediately (throws LogicError on a
  /// violated invariant).  Audit mode runs this automatically on an
  /// O(1)-amortized cadence; tests call it directly.
  void audit_check_now() const;
  /// Test-only: deliberately breaks the heap-order invariant (swaps the
  /// root's key with the last entry's) so tests can prove the audit
  /// sweep catches corruption.  Requires >= 2 distinct heap entries.
  void corrupt_heap_for_test();

  // --- observability (src/obs/, docs/OBSERVABILITY.md) -------------------
  //
  // Three independently switchable layers behind the same null-check
  // contract as audit mode (one predicted branch per hot-path action when
  // off): a simulation-owned Tracer feeding the Chrome-trace exporter
  // (PIMSIM_TRACE / `trace=out.json`), a metrics registry components bind
  // typed handles into (PIMSIM_METRICS / `metrics=out.json`), and a kernel
  // self-profiler attributing dispatches to EventAction kinds
  // (PIMSIM_PROFILE / `profile=1`).  At destruction each enabled layer is
  // absorbed into its process-wide hub (obs::TraceHub, obs::MetricsHub,
  // obs::ProfileHub) — how the CLI reaches simulations buried inside
  // figure generators, mirroring the audit seam above.

  /// Enables/disables the owned tracer (absorbed into obs::TraceHub at
  /// destruction, unlike an external set_tracer() sink).
  void set_trace(bool enabled);
  /// Enables/disables the metrics registry.  Components grab their
  /// handles at construction time, so enable before building the model.
  void set_metrics(bool enabled);
  /// Fast guard, mirroring tracing_enabled(): components gate metric
  /// recording and registration behind this.
  [[nodiscard]] bool metrics_enabled() const { return metrics_ != nullptr; }
  /// The metrics registry; requires metrics_enabled().
  [[nodiscard]] obs::MetricsRegistry& metrics();
  /// Enables/disables the kernel self-profiler.
  void set_profile(bool enabled);
  [[nodiscard]] bool profile_enabled() const { return profiler_ != nullptr; }
  /// The profiler, or nullptr when off.
  [[nodiscard]] const obs::KernelProfiler* profiler() const {
    return profiler_.get();
  }

  // --- hooks for deterministic deferred-event components -----------------
  //
  // The packet network (interconnect/network.cpp) avoids scheduling one
  // calendar event per flit arrival by keeping arrivals in its own
  // per-link rings.  To preserve the dispatch order an eager event would
  // have had, it allocates the event's sequence number at the moment the
  // old design would have scheduled it (allocate_seq) and, if a real
  // wake-up later turns out to be needed, schedules it *at that key*
  // (schedule_at_seq) — same-time events then dispatch in exactly the
  // order of their allocation points.

  /// Consumes one scheduling sequence number without scheduling anything.
  std::uint64_t allocate_seq() { return next_seq_++; }

  /// Sequence of the event currently being dispatched (0 outside
  /// dispatch).  A side effect performed synchronously inside an event
  /// holds this position in the global FIFO order.
  [[nodiscard]] std::uint64_t current_dispatch_seq() const {
    return current_seq_;
  }

  /// Schedules a static-call event under a key from allocate_seq().
  /// `at` must be strictly in the future (a key older than already
  /// dispatched same-time events cannot be honoured).
  EventId schedule_static_at_seq(SimTime at, std::uint64_t seq,
                                 EventAction::StaticFn fn, void* ctx,
                                 std::uint64_t a, std::uint64_t b) {
    ensure(at > now_, "Simulation::schedule_static_at_seq: must be future");
    return schedule_action_seq(at, seq, EventAction::call(fn, ctx, a, b));
  }

  /// Schedules a static-call event (the allocation-free fast path for
  /// homogeneous high-volume events; see EventAction::call).
  EventId schedule_static_at(SimTime at, EventAction::StaticFn fn, void* ctx,
                             std::uint64_t a, std::uint64_t b) {
    return schedule_action(at, EventAction::call(fn, ctx, a, b));
  }

  // --- internal hooks used by the process layer (see process.hpp) ---

  /// Schedules resumption of a suspended coroutine at absolute time `at`.
  /// Allocation-free: the calendar stores the raw handle.
  EventId resume_at(SimTime at, std::coroutine_handle<> h) {
    return schedule_action(at, EventAction::resume(h));
  }
  /// Schedules resumption after `delay` cycles (the delay() fast path).
  EventId resume_in(Cycles delay, std::coroutine_handle<> h) {
    ensure(delay >= 0.0, "Simulation::resume_in: negative delay");
    return schedule_action(now_ + delay, EventAction::resume(h));
  }
  /// Schedules resumption at now(), after pending same-time events.
  void resume_soon(std::coroutine_handle<> h) {
    (void)schedule_action(now_, EventAction::resume(h));
  }
  /// Registers/unregisters live process frames for cleanup.
  void register_process(std::coroutine_handle<> h);
  void unregister_process(std::coroutine_handle<> h);
  /// Records an exception escaping a process body; rethrown by run()/step().
  void set_pending_exception(std::exception_ptr ep);

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Compaction is skipped below this calendar size: a bounded number of
  /// stale entries is cheaper to skip at dispatch than to rebuild away.
  static constexpr std::size_t kCompactFloor = 64;

  struct Slot {
    EventAction action;
    std::uint32_t generation = 1;  // bumped on dispatch/cancel; never 0
    std::uint32_t next_free = kNoSlot;
  };

  /// Calendar entry ordered by a single 128-bit (time, seq) key: event
  /// times are non-negative, so the IEEE bit pattern of `time` compares
  /// like the double itself, and one wide integer compare replaces the
  /// two-branch (time, seq) comparison on the heap's hottest path.
  struct HeapEntry {
    unsigned __int128 key;  // (bit_cast<u64>(time) << 64) | seq
    std::uint32_t slot;
    std::uint32_t gen;  // stale once != slots_[slot].generation

    [[nodiscard]] SimTime time() const {
      const auto bits = static_cast<std::uint64_t>(key >> 64);
      SimTime t;
      __builtin_memcpy(&t, &bits, sizeof(t));
      return t;
    }
    [[nodiscard]] std::uint64_t seq() const {
      return static_cast<std::uint64_t>(key);
    }
  };

  static unsigned __int128 heap_key(SimTime time, std::uint64_t seq) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &time, sizeof(bits));
    return (static_cast<unsigned __int128>(bits) << 64) | seq;
  }

  /// An event scheduled exactly at now(): lives in the immediate lane, a
  /// FIFO ring that never pays a heap sift.  Always at time now_, ordered
  /// by seq by construction.
  struct NowEntry {
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    return a.key < b.key;
  }

  // The scheduling fast path is defined inline (below the class) so the
  // resume_* hooks and template schedule_* compile down to a freelist pop,
  // a tag store, and one queue push at every call site.
  EventId schedule_action(SimTime at, EventAction action);
  EventId schedule_action_seq(SimTime at, std::uint64_t seq,
                              EventAction action);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  bool pop_next(HeapEntry& out, bool bounded, SimTime horizon);
  void dispatch(const HeapEntry& entry);
  void dispatch_profiled(EventAction& action);
  void rethrow_pending();

  // D-ary implicit min-heap over heap_ (children of i: D*i+1 .. D*i+D).
  static constexpr std::size_t kHeapArity = 4;
  void heap_push(const HeapEntry& entry);
  void heap_pop_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void compact_calendar();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t current_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_events_ = 0;
  std::size_t stale_ = 0;
  std::vector<HeapEntry> heap_;
  // Immediate lane: [now_head_, now_queue_.size()) are pending; the
  // consumed prefix is recycled whenever the lane drains.
  std::vector<NowEntry> now_queue_;
  std::size_t now_head_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  // Live process frames in deterministic (insertion/swap) order: the
  // destructor tears frames down in this order, so shutdown side effects
  // cannot depend on pointer values.  The index map is lookup-only.
  std::vector<void*> live_order_;
  // lint:allow(unordered-container): lookup-only address->position index
  std::unordered_map<void*, std::size_t> live_index_;
  std::exception_ptr pending_exception_;
  Tracer* tracer_ = nullptr;
  // Cached interned ids for the kernel's own trace labels (set by
  // set_tracer so the scheduling fast path stays string-free).
  LabelId lbl_event_ = 0;
  LabelId lbl_process_ = 0;
  // Observability layers: null when off, so every hot path pays exactly
  // one predicted branch (the audit-mode contract).
  std::unique_ptr<Tracer> owned_tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::KernelProfiler> profiler_;
  bool destroying_ = false;
  // Audit mode: null when off, so the dispatch hot path pays one branch.
  std::unique_ptr<AuditLog> audit_;
  /// Dispatches until the next invariant sweep (amortizes the O(slots +
  /// calendar) sweep to O(1) per event).
  std::uint64_t audit_countdown_ = 0;
  static constexpr std::uint64_t kAuditCheckFloor = 64;
};

// --- inline scheduling fast path ----------------------------------------

inline std::uint32_t Simulation::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  ensure(slots_.size() < kNoSlot, "Simulation: event slot pool exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

inline void Simulation::sift_up(std::size_t i) {
  const HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

inline void Simulation::heap_push(const HeapEntry& entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

inline EventId Simulation::schedule_action(SimTime at, EventAction action) {
  ensure(at >= now_, "Simulation::schedule_at: cannot schedule in the past");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.action = std::move(action);
  const std::uint64_t seq = next_seq_++;
  if (at == now_) {
    // Immediate lane: same-time events (resume_soon, mailbox wake-ups,
    // spawns) skip the heap entirely; FIFO order == seq order.
    now_queue_.push_back(NowEntry{seq, index, slot.generation});
  } else {
    heap_push(HeapEntry{heap_key(at, seq), index, slot.generation});
  }
  ++live_events_;
  const EventId id = (static_cast<EventId>(slot.generation) << 32) |
                     static_cast<EventId>(index);
  if (tracer_) trace(TraceKind::kEventScheduled, lbl_event_, id);
  return id;
}

inline des::EventId Simulation::schedule_action_seq(SimTime at,
                                                    std::uint64_t seq,
                                                    EventAction action) {
  // A keyed event is always strictly in the future (callers ensure it),
  // so it goes to the heap: the immediate lane's FIFO assumes seq order
  // matches push order, which a replayed key would violate.
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.action = std::move(action);
  heap_push(HeapEntry{heap_key(at, seq), index, slot.generation});
  ++live_events_;
  const EventId id = (static_cast<EventId>(slot.generation) << 32) |
                     static_cast<EventId>(index);
  if (tracer_) trace(TraceKind::kEventScheduled, lbl_event_, id);
  return id;
}

}  // namespace pimsim::des
