// The discrete-event scheduler at the heart of pimsim.
//
// This is the replacement for the HyPerformix SES/Workbench kernel the
// paper used: a single-threaded event calendar with deterministic
// (time, insertion-order) dispatch, plus a C++20-coroutine process layer
// declared in process.hpp.
//
// Typical use:
//
//   des::Simulation sim;
//   sim.spawn(my_model(sim, ...));      // my_model returns des::Process
//   sim.run();                          // or sim.run_until(horizon)
//
// Determinism: two events scheduled for the same timestamp dispatch in
// scheduling order, so a model that uses only Simulation-provided
// primitives and pimsim::Rng streams is bit-reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "des/trace.hpp"

namespace pimsim::des {

class Process;

/// Identifies a scheduled event so it can be cancelled before dispatch.
using EventId = std::uint64_t;
/// Sentinel returned when no cancellable handle is needed.
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time in HWP cycles.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(SimTime at, std::function<void()> fn);
  /// Schedules `fn` to run after `delay` cycles.
  EventId schedule_in(Cycles delay, std::function<void()> fn);
  /// Schedules `fn` to run at the current time, after pending same-time events.
  EventId schedule_now(std::function<void()> fn);

  /// Cancels a pending event; returns false if already dispatched/unknown.
  bool cancel(EventId id);

  /// Runs until the event calendar is empty.
  void run();
  /// Runs all events with time <= horizon, then advances now() to horizon.
  void run_until(SimTime horizon);
  /// Dispatches a single event; returns false if the calendar is empty.
  bool step();

  /// Number of events dispatched so far (diagnostic).
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }
  /// Number of events currently pending.
  [[nodiscard]] std::size_t events_pending() const;

  /// Starts a coroutine process; the simulation owns its frame.
  /// The process body begins executing at the current simulation time
  /// (via an immediate event), not synchronously inside spawn().
  void spawn(Process process);

  /// Number of live (spawned, unfinished) processes.
  [[nodiscard]] std::size_t live_processes() const { return live_.size(); }

  /// Installs (or removes, with nullptr) a tracer. Not owned.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }
  /// Emits a trace record if tracing is enabled.
  void trace(TraceKind kind, const std::string& label,
             const std::string& detail = {}) const;

  // --- internal hooks used by the process layer (see process.hpp) ---

  /// Schedules resumption of a suspended coroutine at now().
  void resume_soon(std::coroutine_handle<> h);
  /// Registers/unregisters live process frames for cleanup.
  void register_process(std::coroutine_handle<> h);
  void unregister_process(std::coroutine_handle<> h);
  /// Records an exception escaping a process body; rethrown by run()/step().
  void set_pending_exception(std::exception_ptr ep);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among same-time events
    }
  };

  void dispatch(const Event& ev);
  void rethrow_pending();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> calendar_;
  // id -> callback; erased on dispatch or cancel. The indirection keeps
  // cancellation O(1) without invalidating the heap.
  std::unordered_map<EventId, std::function<void()>> actions_;
  std::unordered_set<void*> live_;
  std::exception_ptr pending_exception_;
  Tracer* tracer_ = nullptr;
  bool destroying_ = false;
};

}  // namespace pimsim::des
