// Execution tracing for the simulation kernel.
//
// SES/Workbench offered model animation and trace output; this is the
// equivalent hook.  A Tracer receives structured records for scheduler and
// synchronization activity.  Tracing is disabled by default and costs one
// branch per traced action when off.
//
// Records are POD: the hot path never allocates.  Human-readable names are
// interned once per object into a label table (`intern()` returns a dense
// `LabelId`), and the two payload words `a`/`b` carry kind-specific integers
// (event ids, async span ids, counter values).  The buffer is bounded:
// records past the capacity are counted in `dropped()` instead of growing
// without limit, so a saturated run cannot OOM.  Keep-first semantics (as
// opposed to ring overwrite) preserve span-begin records for the Chrome
// trace exporter in src/obs/chrome_trace.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace pimsim::des {

/// Kind of traced kernel action.
enum class TraceKind : std::uint8_t {
  kEventScheduled,
  kEventDispatched,
  kEventCancelled,
  kProcessSpawned,
  kProcessFinished,
  kResourceAcquire,
  kResourceRelease,
  kResourceEnqueued,
  kMailboxSend,
  kMailboxReceive,
  kCounter,      ///< sampled counter track (value in `a`)
  kAsyncBegin,   ///< async span begin (span id in `a`, track in `b`)
  kAsyncEnd,     ///< async span end (span id in `a`, track in `b`)
  kInstant,      ///< free-form instant marker
};

/// Number of TraceKind values (for masks and name tables).
inline constexpr std::size_t kTraceKindCount = 14;

/// Index into a Tracer's label table.  Label 0 is always the empty string.
using LabelId = std::uint32_t;

/// Sentinel for "not interned yet" lazy label caches at call sites.
inline constexpr LabelId kLabelUninterned = 0xffffffffU;

/// One trace record.  POD, 32 bytes; meaning of `a`/`b` depends on `kind`.
struct TraceRecord {
  SimTime time = 0.0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  LabelId label = 0;
  TraceKind kind = TraceKind::kEventDispatched;
};

[[nodiscard]] const char* to_string(TraceKind kind);

/// Trace sink; collects records or forwards them to a user callback.
class Tracer {
 public:
  using Callback = std::function<void(const TraceRecord&)>;

  /// Default record capacity (64 Ki records, ~2 MiB).
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// Bitmask enabling every TraceKind.
  static constexpr std::uint32_t kAllKinds =
      (std::uint32_t{1} << kTraceKindCount) - 1;

  /// Bitmask excluding the per-event kernel kinds (scheduled / dispatched /
  /// cancelled), which dominate record volume on any non-trivial run and
  /// would flood the bounded buffer before the interesting tracks appear.
  static constexpr std::uint32_t kDefaultKinds =
      kAllKinds & ~((std::uint32_t{1} << static_cast<unsigned>(TraceKind::kEventScheduled)) |
                    (std::uint32_t{1} << static_cast<unsigned>(TraceKind::kEventDispatched)) |
                    (std::uint32_t{1} << static_cast<unsigned>(TraceKind::kEventCancelled)));

  /// Records into the internal bounded buffer (default) or forwards every
  /// record to `cb` (unbounded; the callback owns retention).
  explicit Tracer(Callback cb = nullptr, std::size_t capacity = kDefaultCapacity);

  /// Interns `name`, returning its stable id.  Idempotent per name.
  [[nodiscard]] LabelId intern(std::string_view name);

  /// Resolves an interned id back to its name.
  [[nodiscard]] const std::string& label(LabelId id) const { return labels_[id]; }

  /// The full label table, indexed by LabelId.
  [[nodiscard]] const std::vector<std::string>& labels() const { return labels_; }

  /// Restricts recording to kinds whose bit is set (see kAllKinds).
  void set_kind_mask(std::uint32_t mask) { mask_ = mask; }
  [[nodiscard]] std::uint32_t kind_mask() const { return mask_; }

  /// Adjusts the record capacity (existing records are kept).
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void record(const TraceRecord& rec) {
    if (((mask_ >> static_cast<unsigned>(rec.kind)) & 1U) == 0) return;
    if (callback_) {
      callback_(rec);
      return;
    }
    if (records_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    records_.push_back(rec);
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }

  /// Records rejected because the buffer was at capacity.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Drops buffered records and the drop counter; the label table survives
  /// (ids held by call sites stay valid).
  void clear() {
    records_.clear();
    dropped_ = 0;
  }

 private:
  Callback callback_;
  std::size_t capacity_;
  std::uint32_t mask_ = kAllKinds;
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> records_;
  std::vector<std::string> labels_;
  std::map<std::string, LabelId, std::less<>> index_;
};

}  // namespace pimsim::des
