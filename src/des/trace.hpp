// Execution tracing for the simulation kernel.
//
// SES/Workbench offered model animation and trace output; this is the
// equivalent hook.  A Tracer receives structured records for scheduler and
// synchronization activity.  Tracing is disabled by default and costs one
// branch per traced action when off.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace pimsim::des {

/// Kind of traced kernel action.
enum class TraceKind : std::uint8_t {
  kEventScheduled,
  kEventDispatched,
  kEventCancelled,
  kProcessSpawned,
  kProcessFinished,
  kResourceAcquire,
  kResourceRelease,
  kResourceEnqueued,
  kMailboxSend,
  kMailboxReceive,
};

/// One trace record; `label` identifies the object, `detail` is free-form.
struct TraceRecord {
  SimTime time = 0.0;
  TraceKind kind = TraceKind::kEventDispatched;
  std::string label;
  std::string detail;
};

[[nodiscard]] const char* to_string(TraceKind kind);

/// Trace sink; collects records or forwards them to a user callback.
class Tracer {
 public:
  using Callback = std::function<void(const TraceRecord&)>;

  /// Records into the internal buffer (default) or forwards to `cb`.
  explicit Tracer(Callback cb = nullptr) : callback_(std::move(cb)) {}

  void record(TraceRecord rec);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  Callback callback_;
  std::vector<TraceRecord> records_;
};

}  // namespace pimsim::des
