// Coroutine process model for the simulation kernel.
//
// A model process is a C++20 coroutine returning des::Process.  Inside the
// body, the process advances simulated time and synchronizes with other
// processes by co_await-ing kernel awaitables:
//
//   des::Process worker(des::Simulation& sim, Resource& cpu) {
//     co_await des::delay(sim, 10.0);        // advance 10 cycles
//     co_await cpu.acquire();                // queue for a server
//     co_await des::delay(sim, 5.0);         // hold it for 5 cycles
//     cpu.release();
//   }
//
// Lifetime rules:
//  * a Process not passed to Simulation::spawn destroys its frame on
//    destruction (nothing ran: processes start suspended);
//  * once spawned, the Simulation owns the frame; it is destroyed when the
//    body finishes or when the Simulation is destroyed;
//  * exceptions escaping a process body are captured and rethrown from
//    Simulation::run()/run_until()/step().
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {

/// Handle to a coroutine-based model process (move-only).
class Process {
 public:
  /// Completion state shared between the frame, joiners, and this handle.
  struct State {
    Simulation* sim = nullptr;
    bool spawned = false;
    bool done = false;
    std::vector<std::coroutine_handle<>> joiners;
  };

  struct promise_type;
  using handle_type = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(handle_type h) noexcept {
      // The frame is suspended at its final point: mark completion, wake
      // joiners through the calendar, then free the frame.
      auto state = h.promise().state;
      state->done = true;
      if (state->sim != nullptr) {
        for (auto j : state->joiners) state->sim->resume_soon(j);
        state->joiners.clear();
        state->sim->unregister_process(h);
      }
      h.destroy();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::shared_ptr<State> state = std::make_shared<State>();

    Process get_return_object() {
      return Process(handle_type::from_promise(*this), state);
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() {
      if (state->sim != nullptr) {
        state->sim->set_pending_exception(std::current_exception());
      } else {
        std::rethrow_exception(std::current_exception());
      }
    }
  };

  /// Awaitable returned by join(): resumes the awaiter when this process ends.
  class [[nodiscard]] JoinAwaitable {
   public:
    explicit JoinAwaitable(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    bool await_ready() const noexcept { return state_->done; }
    void await_suspend(std::coroutine_handle<> h) {
      state_->joiners.push_back(h);
    }
    void await_resume() const noexcept {}

   private:
    std::shared_ptr<State> state_;
  };

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)),
        state_(std::move(other.state_)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy_if_unspawned();
      handle_ = std::exchange(other.handle_, nullptr);
      state_ = std::move(other.state_);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy_if_unspawned(); }

  /// True once the body has run to completion.
  [[nodiscard]] bool done() const { return state_ && state_->done; }

  /// Awaitable that completes when the process body finishes.
  /// Valid both before and after the process is spawned.
  [[nodiscard]] JoinAwaitable join() const { return JoinAwaitable(state_); }

  /// Used by Simulation::spawn: transfers frame ownership to the kernel.
  handle_type release_for_spawn(Simulation& sim) {
    state_->sim = &sim;
    state_->spawned = true;
    sim.register_process(handle_);
    return std::exchange(handle_, nullptr);
  }

 private:
  Process(handle_type h, std::shared_ptr<State> state)
      : handle_(h), state_(std::move(state)) {}

  void destroy_if_unspawned() {
    if (handle_ && state_ && !state_->spawned) handle_.destroy();
    handle_ = nullptr;
  }

  handle_type handle_ = nullptr;
  std::shared_ptr<State> state_;
};

/// Awaitable that advances the awaiting process by `delay` cycles.
class [[nodiscard]] DelayAwaitable {
 public:
  DelayAwaitable(Simulation& sim, Cycles delay) : sim_(sim), delay_(delay) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    // Allocation-free: the calendar stores the raw handle (EventAction
    // kResume), not a functor wrapping it.
    (void)sim_.resume_in(delay_, h);
  }
  void await_resume() const noexcept {}

 private:
  Simulation& sim_;
  Cycles delay_;
};

/// co_await delay(sim, t): suspend for t >= 0 cycles of simulated time.
[[nodiscard]] inline DelayAwaitable delay(Simulation& sim, Cycles t) {
  return DelayAwaitable(sim, t);
}

/// co_await yield(sim): reschedule behind already-pending same-time events.
[[nodiscard]] inline DelayAwaitable yield(Simulation& sim) {
  return DelayAwaitable(sim, 0.0);
}

/// Broadcast trigger: processes co_await wait(); fire() wakes all of them.
class Trigger {
 public:
  explicit Trigger(Simulation& sim) : sim_(sim) {}

  class [[nodiscard]] WaitAwaitable {
   public:
    explicit WaitAwaitable(Trigger& trigger) : trigger_(trigger) {}
    bool await_ready() const noexcept { return trigger_.fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      trigger_.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}

   private:
    Trigger& trigger_;
  };

  /// Awaitable that completes when fire() is called (immediately if already
  /// fired and the trigger is latched).
  [[nodiscard]] WaitAwaitable wait() { return WaitAwaitable(*this); }

  /// Wakes all current waiters. With latch=true (default) later waiters
  /// pass straight through; reset() re-arms the trigger.
  void fire(bool latch = true) {
    fired_ = latch;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) sim_.resume_soon(h);
  }

  void reset() { fired_ = false; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulation& sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Spawns `p` and returns an awaitable for its completion:
///   co_await spawn_join(sim, child(sim, ...));
[[nodiscard]] inline Process::JoinAwaitable spawn_join(Simulation& sim,
                                                       Process p) {
  auto join = p.join();
  sim.spawn(std::move(p));
  return join;
}

/// Countdown latch: completes waiters once count_down() was called n times.
class CountdownLatch {
 public:
  CountdownLatch(Simulation& sim, std::size_t count)
      : trigger_(sim), remaining_(count) {
    if (remaining_ == 0) trigger_.fire();
  }

  void count_down() {
    if (remaining_ == 0) return;
    if (--remaining_ == 0) trigger_.fire();
  }

  [[nodiscard]] auto wait() { return trigger_.wait(); }
  [[nodiscard]] std::size_t remaining() const { return remaining_; }

 private:
  Trigger trigger_;
  std::size_t remaining_;
};

}  // namespace pimsim::des
