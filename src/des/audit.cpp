#include "des/audit.hpp"

#include <algorithm>
#include <mutex>

namespace pimsim::des {

std::optional<std::uint64_t> first_divergence(const AuditLog& a,
                                              const AuditLog& b) {
  const auto& ca = a.checkpoints();
  const auto& cb = b.checkpoints();
  const std::size_t shared = std::min(ca.size(), cb.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if (ca[i] != cb[i]) {
      // Window i covers events [i * interval, (i + 1) * interval); every
      // earlier checkpoint matched, so the first difference is inside it.
      return i * AuditLog::kCheckpointInterval;
    }
  }
  if (a.events() != b.events()) {
    // Identical while both ran; the shorter run's end is the divergence.
    return std::min(a.events(), b.events());
  }
  if (a.hash() != b.hash()) {
    // Equal counts, all full checkpoints equal: the tail window differs.
    return shared * AuditLog::kCheckpointInterval;
  }
  return std::nullopt;
}

// The one deliberately process-global piece of audit state: simulations
// are constructed deep inside figure generators on sweep worker threads,
// so their chains must surface somewhere thread-safe and commutative.
struct AuditRegistry::Impl {
  mutable std::mutex mutex;
  Summary summary;
};

AuditRegistry::Impl& AuditRegistry::impl() const {
  // The audit aggregate is inherently process-scoped (simulations report
  // from arbitrary sweep threads); all access is mutex-serialized and
  // combined commutatively, so thread schedule cannot affect any value.
  // lint:allow(mutable-static): process-scoped by design, mutex-serialized
  static Impl instance;
  return instance;
}

AuditRegistry& AuditRegistry::global() {
  // lint:allow(mutable-static): stateless handle to the Impl singleton above
  static AuditRegistry registry;
  return registry;
}

void AuditRegistry::absorb(const AuditLog& log) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.summary.simulations += 1;
  state.summary.events += log.events();
  state.summary.combined ^= log.hash();
}

AuditRegistry::Summary AuditRegistry::snapshot() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.summary;
}

void AuditRegistry::reset() {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.summary = Summary{};
}

}  // namespace pimsim::des
