// Determinism audit mode for the event kernel.
//
// `pimsim verify` tells you *that* two runs diverged (different CSV);
// audit mode tells you *where*: an FNV-1a hash chain folds every
// dispatched (time, seq, action-kind) tuple, with a checkpoint of the
// running hash every kCheckpointInterval events.  Two AuditLogs of the
// same workload can then be diffed to the first differing checkpoint
// window — event-index granularity instead of an opaque fleet-wide
// fingerprint mismatch.
//
// Enabling: Simulation::set_audit(true), or the PIMSIM_AUDIT=1
// environment variable (read at Simulation construction, which is how
// `pimsim run/verify ... audit=1` reaches the simulations buried inside
// figure generators).  When off, the cost is one predicted branch per
// dispatch — the same pattern as tracing_enabled(), held to the
// bench_engine floors in bench/baselines.json.
//
// Besides the chain, audit mode runs O(1)-amortized invariant sweeps
// (Simulation::audit_check_now()) over the 4-ary heap, the slot-pool
// generations, and any component-registered checks (the packet network
// registers its credit-ledger invariants), so corruption is caught at
// the event where it happens, not at the end of a 10^8-event run.
//
// Cross-thread aggregation: a sweep at jobs=N constructs its simulations
// inside pool workers in schedule-dependent order, so AuditRegistry
// combines per-simulation chains commutatively (order-independent XOR)
// — identical work at sweep_threads 1 vs 3 yields an identical combined
// hash, and any single diverging simulation flips it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"

namespace pimsim::des {

/// FNV-1a 64 hash chain over the dispatched-event stream of one
/// Simulation, with periodic checkpoints for divergence localization.
class AuditLog {
 public:
  /// Checkpoint cadence: divergence is localized to a window of this
  /// many events while the log stays O(events / interval) in memory.
  static constexpr std::uint64_t kCheckpointInterval = 1024;

  /// Folds one dispatched event into the chain.
  void record(SimTime time, std::uint64_t seq, std::uint8_t kind) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &time, sizeof(bits));
    hash_ = mix(hash_, bits);
    hash_ = mix(hash_, seq);
    hash_ = mix(hash_, kind);
    if (++events_ % kCheckpointInterval == 0) checkpoints_.push_back(hash_);
  }

  /// The running chain hash over all recorded events.
  [[nodiscard]] std::uint64_t hash() const { return hash_; }
  /// Events recorded so far.
  [[nodiscard]] std::uint64_t events() const { return events_; }
  /// Chain hash after every kCheckpointInterval-th event.
  [[nodiscard]] const std::vector<std::uint64_t>& checkpoints() const {
    return checkpoints_;
  }

 private:
  static constexpr std::uint64_t kOffset = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  /// FNV-1a over the 8 bytes of `word`, chained onto `h`.
  static std::uint64_t mix(std::uint64_t h, std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((word >> (8 * i)) & 0xffu)) * kPrime;
    }
    return h;
  }

  std::uint64_t hash_ = kOffset;
  std::uint64_t events_ = 0;
  std::vector<std::uint64_t> checkpoints_;
};

/// Index of the first event at which two audited runs of the same
/// workload can be shown to diverge, at checkpoint granularity: the
/// returned index is the start of the first differing checkpoint window
/// (the true first differing event lies within the following
/// kCheckpointInterval events).  std::nullopt means the logs agree —
/// same event count, same chain hash.
[[nodiscard]] std::optional<std::uint64_t> first_divergence(const AuditLog& a,
                                                            const AuditLog& b);

/// Process-wide, thread-safe accumulator of completed simulations'
/// chains, combined commutatively so sweep-thread scheduling cannot
/// affect the aggregate.  `pimsim verify audit=1` resets it, runs a
/// figure at two thread counts, and compares snapshots.
class AuditRegistry {
 public:
  struct Summary {
    std::uint64_t simulations = 0;  ///< audited Simulations absorbed
    std::uint64_t events = 0;       ///< total events across them
    std::uint64_t combined = 0;     ///< XOR of per-simulation chain hashes
    [[nodiscard]] bool operator==(const Summary&) const = default;
  };

  /// Folds one finished simulation's chain into the aggregate.
  void absorb(const AuditLog& log);
  [[nodiscard]] Summary snapshot() const;
  void reset();

  /// The process-wide instance every audited Simulation reports to.
  [[nodiscard]] static AuditRegistry& global();

 private:
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

}  // namespace pimsim::des
