#include "des/trace.hpp"

namespace pimsim::des {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kEventScheduled: return "event-scheduled";
    case TraceKind::kEventDispatched: return "event-dispatched";
    case TraceKind::kEventCancelled: return "event-cancelled";
    case TraceKind::kProcessSpawned: return "process-spawned";
    case TraceKind::kProcessFinished: return "process-finished";
    case TraceKind::kResourceAcquire: return "resource-acquire";
    case TraceKind::kResourceRelease: return "resource-release";
    case TraceKind::kResourceEnqueued: return "resource-enqueued";
    case TraceKind::kMailboxSend: return "mailbox-send";
    case TraceKind::kMailboxReceive: return "mailbox-receive";
  }
  return "unknown";
}

void Tracer::record(TraceRecord rec) {
  if (callback_) {
    callback_(rec);
  } else {
    records_.push_back(std::move(rec));
  }
}

}  // namespace pimsim::des
