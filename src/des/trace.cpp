#include "des/trace.hpp"

namespace pimsim::des {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kEventScheduled: return "event-scheduled";
    case TraceKind::kEventDispatched: return "event-dispatched";
    case TraceKind::kEventCancelled: return "event-cancelled";
    case TraceKind::kProcessSpawned: return "process-spawned";
    case TraceKind::kProcessFinished: return "process-finished";
    case TraceKind::kResourceAcquire: return "resource-acquire";
    case TraceKind::kResourceRelease: return "resource-release";
    case TraceKind::kResourceEnqueued: return "resource-enqueued";
    case TraceKind::kMailboxSend: return "mailbox-send";
    case TraceKind::kMailboxReceive: return "mailbox-receive";
    case TraceKind::kCounter: return "counter";
    case TraceKind::kAsyncBegin: return "async-begin";
    case TraceKind::kAsyncEnd: return "async-end";
    case TraceKind::kInstant: return "instant";
  }
  return "unknown";
}

Tracer::Tracer(Callback cb, std::size_t capacity)
    : callback_(std::move(cb)), capacity_(capacity) {
  labels_.emplace_back();  // LabelId 0 is the empty string
  index_.emplace(std::string{}, LabelId{0});
}

LabelId Tracer::intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<LabelId>(labels_.size());
  labels_.emplace_back(name);
  index_.emplace(std::string(name), id);
  return id;
}

}  // namespace pimsim::des
