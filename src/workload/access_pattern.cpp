#include "workload/access_pattern.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace pimsim::wl {

StreamingPattern::StreamingPattern(std::uint64_t footprint_bytes,
                                   std::uint64_t stride_bytes)
    : footprint_(footprint_bytes), stride_(stride_bytes) {
  require(footprint_bytes > 0 && stride_bytes > 0,
          "StreamingPattern: footprint and stride must be positive");
  require(stride_bytes <= footprint_bytes,
          "StreamingPattern: stride exceeds footprint");
}

std::uint64_t StreamingPattern::next() {
  const std::uint64_t addr = pos_;
  pos_ += stride_;
  if (pos_ >= footprint_) pos_ = 0;
  return addr;
}

RandomPattern::RandomPattern(std::uint64_t footprint_bytes,
                             std::uint64_t element_bytes, Rng rng)
    : elements_(footprint_bytes / element_bytes), element_bytes_(element_bytes),
      rng_(rng) {
  require(element_bytes > 0, "RandomPattern: element size must be positive");
  require(elements_ > 0, "RandomPattern: footprint smaller than one element");
}

std::uint64_t RandomPattern::next() {
  return rng_.uniform_int(0, elements_ - 1) * element_bytes_;
}

PointerChasePattern::PointerChasePattern(std::uint64_t elements,
                                         std::uint64_t element_bytes, Rng rng)
    : next_index_(elements), element_bytes_(element_bytes) {
  require(elements > 1, "PointerChasePattern: need at least two elements");
  require(elements <= 0xffffffffULL, "PointerChasePattern: too many elements");
  require(element_bytes > 0, "PointerChasePattern: element size must be positive");
  // Sattolo's algorithm: a single random cycle through all elements, so the
  // chase revisits an element only after touching every other one (no reuse
  // within any cache-sized window for large footprints).
  std::iota(next_index_.begin(), next_index_.end(), 0u);
  for (std::uint64_t i = elements - 1; i > 0; --i) {
    const std::uint64_t j = rng.uniform_int(0, i - 1);
    std::swap(next_index_[i], next_index_[j]);
  }
}

std::uint64_t PointerChasePattern::next() {
  const std::uint64_t addr = current_ * element_bytes_;
  current_ = next_index_[current_];
  return addr;
}

HotColdPattern::HotColdPattern(std::uint64_t hot_bytes, std::uint64_t cold_bytes,
                               std::uint64_t element_bytes, double p_hot, Rng rng)
    : hot_elements_(hot_bytes / element_bytes),
      cold_elements_(cold_bytes / element_bytes),
      element_bytes_(element_bytes), p_hot_(p_hot), rng_(rng) {
  require(element_bytes > 0, "HotColdPattern: element size must be positive");
  require(hot_elements_ > 0 && cold_elements_ > 0,
          "HotColdPattern: hot and cold sets must hold at least one element");
  require(p_hot >= 0.0 && p_hot <= 1.0, "HotColdPattern: p_hot must be in [0,1]");
}

std::uint64_t HotColdPattern::next() {
  if (rng_.bernoulli(p_hot_)) {
    return rng_.uniform_int(0, hot_elements_ - 1) * element_bytes_;
  }
  // Cold set lives above the hot set in the address space.
  return (hot_elements_ + rng_.uniform_int(0, cold_elements_ - 1)) *
         element_bytes_;
}

ZipfianPattern::ZipfianPattern(std::uint64_t elements,
                               std::uint64_t element_bytes, double s, Rng rng)
    : cdf_(elements), element_bytes_(element_bytes), rng_(rng) {
  require(elements > 0, "ZipfianPattern: need at least one element");
  require(elements <= (1u << 24),
          "ZipfianPattern: CDF table capped at 2^24 elements");
  require(element_bytes > 0, "ZipfianPattern: element size must be positive");
  require(s >= 0.0, "ZipfianPattern: exponent must be non-negative");
  double total = 0.0;
  for (std::uint64_t k = 0; k < elements; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::uint64_t ZipfianPattern::next() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::uint64_t>(it - cdf_.begin());
  return rank * element_bytes_;
}

}  // namespace pimsim::wl
