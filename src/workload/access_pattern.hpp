// Synthetic memory access patterns.
//
// The paper characterizes workloads only by temporal locality ("when data
// accesses exhibit no reuse, the operation is assumed to be performed by
// the PIM devices").  These generators make that abstraction concrete:
// they produce address streams whose temporal locality spans the paper's
// two regimes, and the test suite runs them through mem::SetAssocCache to
// demonstrate that the Table 1 cache-miss parameter (Pmiss = 0.1) matches
// locality-rich streams while PIM-destined streams miss almost always.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace pimsim::wl {

/// An unbounded generator of byte addresses.
class AccessPattern {
 public:
  virtual ~AccessPattern() = default;
  /// Next address in the stream.
  [[nodiscard]] virtual std::uint64_t next() = 0;
  /// Human-readable name for tables/reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Sequential sweep over a footprint with a fixed element stride.
/// High spatial locality; temporal locality appears when the footprint
/// fits in cache and the sweep wraps around.
class StreamingPattern final : public AccessPattern {
 public:
  StreamingPattern(std::uint64_t footprint_bytes, std::uint64_t stride_bytes);
  std::uint64_t next() override;
  const char* name() const override { return "streaming"; }

 private:
  std::uint64_t footprint_;
  std::uint64_t stride_;
  std::uint64_t pos_ = 0;
};

/// Uniform random accesses over a footprint: no reuse when the footprint
/// is much larger than the cache — the paper's zero-temporal-locality case.
class RandomPattern final : public AccessPattern {
 public:
  RandomPattern(std::uint64_t footprint_bytes, std::uint64_t element_bytes,
                Rng rng);
  std::uint64_t next() override;
  const char* name() const override { return "uniform-random"; }

 private:
  std::uint64_t elements_;
  std::uint64_t element_bytes_;
  Rng rng_;
};

/// Pointer chase through a random permutation: serial dependence and no
/// spatial locality — the classic irregular/data-intensive access pattern
/// motivating PIM (cf. the DIVA irregular-application suite).
class PointerChasePattern final : public AccessPattern {
 public:
  PointerChasePattern(std::uint64_t elements, std::uint64_t element_bytes,
                      Rng rng);
  std::uint64_t next() override;
  const char* name() const override { return "pointer-chase"; }

 private:
  std::vector<std::uint32_t> next_index_;
  std::uint64_t element_bytes_;
  std::uint64_t current_ = 0;
};

/// Hot/cold mixture: fraction `p_hot` of accesses go to a small hot set.
/// Dialing p_hot sweeps temporal locality continuously between the two
/// regimes, which is how tests map locality onto achieved hit rate.
class HotColdPattern final : public AccessPattern {
 public:
  HotColdPattern(std::uint64_t hot_bytes, std::uint64_t cold_bytes,
                 std::uint64_t element_bytes, double p_hot, Rng rng);
  std::uint64_t next() override;
  const char* name() const override { return "hot-cold"; }

 private:
  std::uint64_t hot_elements_;
  std::uint64_t cold_elements_;
  std::uint64_t element_bytes_;
  double p_hot_;
  Rng rng_;
};

/// Zipf-distributed accesses over `elements` ranked items: item k is
/// touched with probability proportional to 1/k^s.  s = 0 degenerates to
/// uniform (no reuse for large footprints); growing s concentrates the
/// mass on a shrinking hot set, sweeping temporal locality continuously —
/// a standard stand-in for real skewed workloads.
class ZipfianPattern final : public AccessPattern {
 public:
  ZipfianPattern(std::uint64_t elements, std::uint64_t element_bytes, double s,
                 Rng rng);
  std::uint64_t next() override;
  const char* name() const override { return "zipfian"; }

 private:
  std::vector<double> cdf_;  ///< cumulative probabilities over ranks
  std::uint64_t element_bytes_;
  Rng rng_;
};

}  // namespace pimsim::wl
