// The paper's statistical workload (Section 3.1).
//
// Total work W is split by temporal locality: a fraction %WH runs as
// heavyweight threads on the HWP (good cache behaviour), a fraction %WL
// runs as lightweight threads on the LWP array (no reuse).  The LWP part
// is "partitionable into a number of concurrent threads that are
// concurrent and uniform in length, one per LWP", and the two parts
// alternate (Figure 4): at any one time either the HWP or the LWP array
// executes, never both.
#pragma once

#include <cstdint>
#include <vector>

namespace pimsim::wl {

/// Statistical description of one experiment's work.
struct WorkloadSpec {
  std::uint64_t total_ops = 100'000'000;  ///< W (Table 1)
  double lwp_fraction = 0.0;              ///< %WL in [0,1]
  double ls_mix = 0.30;                   ///< load/store fraction of ops

  void validate() const;

  /// Operations assigned to the HWP (high temporal locality part).
  [[nodiscard]] std::uint64_t hwp_ops() const;
  /// Operations assigned to the LWP array (low temporal locality part).
  [[nodiscard]] std::uint64_t lwp_ops() const;
};

/// One alternating execution segment (Figure 4): an HWP burst followed by
/// a fork/join burst across all LWPs.
struct Phase {
  std::uint64_t hwp_ops = 0;
  std::uint64_t lwp_ops_total = 0;  ///< split uniformly across LWP threads
};

/// Splits `ops` as evenly as possible into `parts` (differences <= 1).
[[nodiscard]] std::vector<std::uint64_t> split_evenly(std::uint64_t ops,
                                                      std::size_t parts);

/// Builds the Figure 4 phase plan: `phases` alternating segments whose
/// totals equal the spec exactly (remainders spread over early phases).
[[nodiscard]] std::vector<Phase> make_phases(const WorkloadSpec& spec,
                                             std::size_t phases);

}  // namespace pimsim::wl
