#include "workload/workload.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pimsim::wl {

void WorkloadSpec::validate() const {
  require(total_ops > 0, "WorkloadSpec: total_ops must be positive");
  require(lwp_fraction >= 0.0 && lwp_fraction <= 1.0,
          "WorkloadSpec: lwp_fraction must be in [0,1]");
  require(ls_mix >= 0.0 && ls_mix <= 1.0,
          "WorkloadSpec: ls_mix must be in [0,1]");
}

std::uint64_t WorkloadSpec::lwp_ops() const {
  validate();
  return static_cast<std::uint64_t>(
      std::llround(lwp_fraction * static_cast<double>(total_ops)));
}

std::uint64_t WorkloadSpec::hwp_ops() const { return total_ops - lwp_ops(); }

std::vector<std::uint64_t> split_evenly(std::uint64_t ops, std::size_t parts) {
  require(parts > 0, "split_evenly: parts must be positive");
  std::vector<std::uint64_t> out(parts, ops / parts);
  const std::uint64_t remainder = ops % parts;
  for (std::uint64_t i = 0; i < remainder; ++i) ++out[i];
  return out;
}

std::vector<Phase> make_phases(const WorkloadSpec& spec, std::size_t phases) {
  spec.validate();
  require(phases > 0, "make_phases: need at least one phase");
  const auto hwp_parts = split_evenly(spec.hwp_ops(), phases);
  const auto lwp_parts = split_evenly(spec.lwp_ops(), phases);
  std::vector<Phase> out(phases);
  for (std::size_t i = 0; i < phases; ++i) {
    out[i] = Phase{hwp_parts[i], lwp_parts[i]};
  }
  return out;
}

}  // namespace pimsim::wl
