// Statistics accumulators used by the simulation kernel and experiment
// harness: Welford running moments, time-weighted averages for utilization
// and queue-length observables, fixed-bin histograms, and Student-t
// confidence intervals over replications.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace pimsim {

/// Running mean/variance via Welford's algorithm; numerically stable.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

  /// Raw Welford M2 accumulator (sum of squared deviations).  Exposed so
  /// metric snapshots can round-trip the accumulator bitwise across
  /// processes (obs/metrics chunk sidecars); variance() is derived state.
  [[nodiscard]] double m2() const { return m2_; }
  /// Reconstitutes an accumulator from its exact internal state.  The
  /// result merges and reports identically — bit for bit — to the
  /// original, which is what makes cross-process metric refolds safe.
  [[nodiscard]] static RunningStats restore(std::size_t n, double mean,
                                            double m2, double min, double max);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// busy servers of a resource or an instantaneous queue length.
///
/// Call `set(t, v)` whenever the signal changes; `mean(t)` integrates up to t.
class TimeWeighted {
 public:
  explicit TimeWeighted(double initial_value = 0.0, double start_time = 0.0);

  /// Records that the signal takes value v from time t onward.  Inline:
  /// the DES hot paths update these accumulators per event.
  void set(double t, double v) {
    ensure(t >= last_t_, "TimeWeighted::set: time must be non-decreasing");
    area_ += value_ * (t - last_t_);
    last_t_ = t;
    value_ = v;
    if (v > max_) max_ = v;
  }
  /// Adds delta to the current value at time t.
  void add(double t, double delta) { set(t, value_ + delta); }

  [[nodiscard]] double current() const { return value_; }
  /// Time-average of the signal over [start, t].
  [[nodiscard]] double mean(double t) const;
  /// Total integral of the signal over [start, t].
  [[nodiscard]] double integral(double t) const;
  [[nodiscard]] double max() const { return max_; }

 private:
  double start_ = 0.0;
  double last_t_ = 0.0;
  double value_ = 0.0;
  double area_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are counted
/// in underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;
  /// Approximate quantile (linear within the containing bin).
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Symmetric confidence half-width for the mean of `stats` at the given
/// confidence level (two-sided Student t, supported levels 0.90/0.95/0.99).
[[nodiscard]] double confidence_half_width(const RunningStats& stats, double level);

/// Summary of replicated measurements: mean +/- half-width.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% CI half-width; 0 for single replication.

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }
};

/// Builds a 95% estimate from per-replication samples.
[[nodiscard]] Estimate estimate_from(const RunningStats& stats);

}  // namespace pimsim
