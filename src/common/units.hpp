// Time units used throughout the simulator.
//
// The paper (Table 1) normalizes every latency to heavyweight-processor (HWP)
// cycles with THcycle = 1 ns.  Simulation time is kept in double-precision
// HWP cycles; these helpers make conversions explicit at API boundaries so
// a reader can always tell which unit a quantity is in.
#pragma once

#include <cmath>
#include <cstdint>

namespace pimsim {

/// Simulation time, measured in heavyweight-processor cycles.
using SimTime = double;

/// A duration in HWP cycles (same representation as SimTime, used for deltas).
using Cycles = double;

/// Physical seconds per HWP cycle for a given HWP clock.
struct ClockSpec {
  double cycle_time_ns = 1.0;  ///< HWP cycle time in nanoseconds (Table 1: 1 ns).

  /// Converts a cycle count to nanoseconds under this clock.
  [[nodiscard]] constexpr double to_ns(Cycles c) const { return c * cycle_time_ns; }
  /// Converts a cycle count to seconds under this clock.
  [[nodiscard]] constexpr double to_seconds(Cycles c) const {
    return c * cycle_time_ns * 1e-9;
  }
  /// Converts nanoseconds to cycles under this clock.
  [[nodiscard]] constexpr Cycles from_ns(double ns) const { return ns / cycle_time_ns; }
};

/// Bits/bytes helpers for the DRAM bandwidth arithmetic in Section 2.1.
constexpr double kBitsPerGbit = 1e9;
constexpr double kBitsPerTbit = 1e12;

/// Converts (bits, nanoseconds) to Gbit/s.
[[nodiscard]] constexpr double gbit_per_s(double bits, double ns) {
  return (bits / kBitsPerGbit) / (ns * 1e-9);
}

/// Compares doubles with a relative tolerance (used heavily by tests).
[[nodiscard]] inline bool almost_equal(double a, double b, double rel_tol = 1e-9) {
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel_tol * std::fmax(scale, 1.0);
}

}  // namespace pimsim
