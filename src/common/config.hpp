// Lightweight key=value configuration used by the bench/example binaries to
// override model parameters from the command line, e.g.
//
//     bench_fig11 nodes=64 latency=500 premote=0.2 csv=1
//
// Unknown keys are rejected so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace pimsim {

/// Splits comma-separated text into its non-empty pieces (the one
/// splitter behind Config::get_list, scenario string lists, and the
/// sweep driver's grid axes).
[[nodiscard]] std::vector<std::string> split_csv(const std::string& text);

/// Parsed key=value options with typed, validated accessors.
class Config {
 public:
  Config() = default;

  /// Parses argv-style "key=value" tokens; throws ConfigError on bad syntax.
  static Config from_args(int argc, const char* const* argv);
  /// Parses a whitespace/comma separated "k=v k2=v2" string.
  static Config from_string(const std::string& text);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters; throw ConfigError when the value does not parse.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Comma-separated list of doubles, e.g. "1,2,4,8".
  [[nodiscard]] std::vector<double> get_list(
      const std::string& key, const std::vector<double>& fallback) const;

  /// Keys that were set but never read; used to reject typos after setup.
  [[nodiscard]] std::vector<std::string> unused_keys() const;
  /// Throws ConfigError listing any unused keys.
  void reject_unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace pimsim
