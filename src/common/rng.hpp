// Deterministic, stream-splittable random number generation.
//
// Every stochastic model element owns its own Rng stream derived from a
// single experiment seed, so experiments are reproducible regardless of
// event interleaving and each replication is an independent stream.
//
// Engine: xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 as its
// authors recommend.  The engine satisfies UniformRandomBitGenerator, so
// the standard <random> distributions can run on top of it.
#pragma once

#include <cstdint>
#include <random>

namespace pimsim {

/// SplitMix64 — used for seeding and cheap stream derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine; UniformRandomBitGenerator-compatible.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9d2c5680u) { reseed(seed); }

  /// Re-initializes the four state words from a single seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// A named random stream with the distributions the models need.
///
/// Streams are derived from (seed, stream_id) pairs; two Rng objects with
/// the same pair produce identical sequences, and distinct stream ids give
/// statistically independent sequences.
class Rng {
 public:
  /// Creates the stream identified by (seed, stream_id).
  explicit Rng(std::uint64_t seed, std::uint64_t stream_id = 0);

  /// Derives a child stream; children with distinct ids are independent.
  [[nodiscard]] Rng split(std::uint64_t child_id) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);
  /// Number of successes in n Bernoulli(p) trials (exact distribution).
  std::uint64_t binomial(std::uint64_t n, double p);
  /// Geometric number of failures before first success, support {0,1,...}.
  std::uint64_t geometric(double p);
  /// Exponential variate with the given mean.
  double exponential(double mean);
  /// Normal variate.
  double normal(double mean, double stddev);

  /// Raw engine access (for std:: distributions in client code).
  Xoshiro256pp& engine() { return engine_; }

 private:
  struct Derived {
    std::uint64_t value;
  };
  explicit Rng(Derived derived) : engine_(derived.value), base_(derived.value) {}
  Xoshiro256pp engine_;
  std::uint64_t base_;
};

}  // namespace pimsim
