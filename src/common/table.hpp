// Tabular output for the figure/table regeneration harness.
//
// Every bench binary produces one or more Tables holding the same rows or
// series the paper plots; Table renders them either as an aligned text
// table (for terminals) or CSV (for re-plotting).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace pimsim {

/// A table cell: text or numeric (numerics get consistent formatting).
using Cell = std::variant<std::string, double, std::int64_t>;

/// Column-oriented table with a title and header row.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends one row; must match the column count.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const;

  /// Numeric value of cell (r, c); throws if the cell is text.
  [[nodiscard]] double number_at(std::size_t r, std::size_t c) const;

  /// Renders an aligned, human-readable table.
  void print(std::ostream& os) const;
  /// Renders RFC-4180-ish CSV (header + rows; title as a comment line).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a double compactly (fixed for mid-range, scientific otherwise).
[[nodiscard]] std::string format_number(double v);

}  // namespace pimsim
