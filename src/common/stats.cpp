#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pimsim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

RunningStats RunningStats::restore(std::size_t n, double mean, double m2,
                                   double min, double max) {
  RunningStats out;
  out.n_ = n;
  out.mean_ = mean;
  out.m2_ = m2;
  out.min_ = min;
  out.max_ = max;
  return out;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

TimeWeighted::TimeWeighted(double initial_value, double start_time)
    : start_(start_time), last_t_(start_time), value_(initial_value),
      max_(initial_value) {}

double TimeWeighted::mean(double t) const {
  if (t <= start_) return value_;
  return integral(t) / (t - start_);
}

double TimeWeighted::integral(double t) const {
  ensure(t >= last_t_, "TimeWeighted::integral: time must be >= last update");
  return area_ + value_ * (t - last_t_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  require(hi > lo, "Histogram: hi must be > lo");
  require(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
    ++counts_[idx];
  }
}

std::size_t Histogram::bin_count(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bin_count: bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  require(i <= counts_.size(), "Histogram::bin_lo: bin out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

namespace {

/// Two-sided Student-t critical values; rows indexed by dof (1..30, then
/// asymptotic), columns by confidence level {0.90, 0.95, 0.99}.
double t_critical(std::size_t dof, double level) {
  static constexpr double t90[] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943,
                                   1.895, 1.860, 1.833, 1.812, 1.796, 1.782,
                                   1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
                                   1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                                   1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  static constexpr double t95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447,
                                   2.365,  2.306, 2.262, 2.228, 2.201, 2.179,
                                   2.160,  2.145, 2.131, 2.120, 2.110, 2.101,
                                   2.093,  2.086, 2.080, 2.074, 2.069, 2.064,
                                   2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  static constexpr double t99[] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707,
                                   3.499,  3.355, 3.250, 3.169, 3.106, 3.055,
                                   3.012,  2.977, 2.947, 2.921, 2.898, 2.878,
                                   2.861,  2.845, 2.831, 2.819, 2.807, 2.797,
                                   2.787,  2.779, 2.771, 2.763, 2.756, 2.750};
  const double* table = nullptr;
  double asym = 0.0;
  if (level >= 0.985) {
    table = t99;
    asym = 2.576;
  } else if (level >= 0.93) {
    table = t95;
    asym = 1.960;
  } else {
    table = t90;
    asym = 1.645;
  }
  if (dof == 0) return std::numeric_limits<double>::infinity();
  if (dof <= 30) return table[dof - 1];
  return asym;
}

}  // namespace

double confidence_half_width(const RunningStats& stats, double level) {
  require(level > 0.0 && level < 1.0,
          "confidence_half_width: level must be in (0,1)");
  if (stats.count() < 2) return 0.0;
  const double se = stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  return t_critical(stats.count() - 1, level) * se;
}

Estimate estimate_from(const RunningStats& stats) {
  return Estimate{stats.mean(), confidence_half_width(stats, 0.95)};
}

}  // namespace pimsim
