#include "common/config.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace pimsim {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string piece;
  while (std::getline(in, piece, ',')) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    // Ignore google-benchmark style flags so mixed invocations work.
    if (tok.rfind("--", 0) == 0) continue;
    const auto eq = tok.find('=');
    require(eq != std::string::npos && eq > 0,
            "Config: expected key=value, got '" + tok + "'");
    cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return cfg;
}

Config Config::from_string(const std::string& text) {
  // Whitespace-separated key=value tokens. Commas are NOT separators here:
  // they belong to list values such as "nodes=1,2,4".
  Config cfg;
  std::string token;
  std::istringstream in(text);
  while (in >> token) {
    const auto eq = token.find('=');
    require(eq != std::string::npos && eq > 0,
            "Config: expected key=value, got '" + token + "'");
    cfg.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  used_.insert(key);
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  used_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  used_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  require(end != nullptr && *end == '\0' && end != it->second.c_str(),
          "Config: value for '" + key + "' is not a number: " + it->second);
  return v;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  used_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && end != it->second.c_str(),
          "Config: value for '" + key + "' is not an integer: " + it->second);
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  used_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw ConfigError("Config: value for '" + key + "' is not a bool: " + s);
}

std::vector<double> Config::get_list(const std::string& key,
                                     const std::vector<double>& fallback) const {
  used_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  for (const std::string& piece : split_csv(it->second)) {
    char* end = nullptr;
    const double v = std::strtod(piece.c_str(), &end);
    require(end != nullptr && *end == '\0' && end != piece.c_str(),
            "Config: list element for '" + key + "' is not a number: " + piece);
    out.push_back(v);
  }
  require(!out.empty(), "Config: list for '" + key + "' is empty");
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (used_.count(k) == 0) out.push_back(k);
  }
  return out;
}

void Config::reject_unused() const {
  const auto unused = unused_keys();
  if (unused.empty()) return;
  std::string msg = "Config: unknown key(s):";
  for (const auto& k : unused) msg += " " + k;
  throw ConfigError(msg);
}

}  // namespace pimsim
