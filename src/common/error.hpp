// Error-handling helpers shared across pimsim.
//
// The simulator distinguishes two failure classes:
//  * configuration/usage errors (bad parameter values, malformed config
//    strings) -> ConfigError, recoverable by the caller;
//  * internal invariant violations (scheduler ordering, resource misuse)
//    -> LogicError, indicating a bug in the library or a client model.
#pragma once

#include <concepts>
#include <stdexcept>
#include <string>
#include <utility>

namespace pimsim {

/// Thrown for invalid user-supplied parameters or malformed configuration.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated (library or model bug).
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

/// ConfigError for a value outside the accepted set; the message names the
/// offending argument and enumerates the valid alternatives (e.g. the
/// topology names a factory accepts).
class InvalidArgument : public ConfigError {
 public:
  explicit InvalidArgument(const std::string& what) : ConfigError(what) {}
};

/// Validates a user-facing precondition; throws ConfigError on failure.
/// The const char* overload keeps literal-message checks allocation-free
/// on the success path (the message only becomes a std::string on throw);
/// hot paths that concatenate a message should pass a callable building
/// it, deferring the string work to the failure branch.
inline void require(bool cond, const char* message) {
  if (!cond) [[unlikely]] throw ConfigError(message);
}
inline void require(bool cond, const std::string& message) {
  if (!cond) [[unlikely]] throw ConfigError(message);
}
template <std::invocable F>
inline void require(bool cond, F&& make_message) {
  if (!cond) [[unlikely]] throw ConfigError(std::forward<F>(make_message)());
}

/// Validates an internal invariant; throws LogicError on failure.
inline void ensure(bool cond, const char* message) {
  if (!cond) [[unlikely]] throw LogicError(message);
}
inline void ensure(bool cond, const std::string& message) {
  if (!cond) [[unlikely]] throw LogicError(message);
}
template <std::invocable F>
inline void ensure(bool cond, F&& make_message) {
  if (!cond) [[unlikely]] throw LogicError(std::forward<F>(make_message)());
}

}  // namespace pimsim
