// Error-handling helpers shared across pimsim.
//
// The simulator distinguishes two failure classes:
//  * configuration/usage errors (bad parameter values, malformed config
//    strings) -> ConfigError, recoverable by the caller;
//  * internal invariant violations (scheduler ordering, resource misuse)
//    -> LogicError, indicating a bug in the library or a client model.
#pragma once

#include <stdexcept>
#include <string>

namespace pimsim {

/// Thrown for invalid user-supplied parameters or malformed configuration.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated (library or model bug).
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

/// Validates a user-facing precondition; throws ConfigError on failure.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw ConfigError(message);
}

/// Validates an internal invariant; throws LogicError on failure.
inline void ensure(bool cond, const std::string& message) {
  if (!cond) throw LogicError(message);
}

}  // namespace pimsim
