#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace pimsim {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  require(!columns_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  require(cells.size() == columns_.size(),
          "Table::add_row: cell count does not match column count");
  rows_.push_back(std::move(cells));
}

const std::vector<Cell>& Table::row(std::size_t i) const {
  require(i < rows_.size(), "Table::row: index out of range");
  return rows_[i];
}

double Table::number_at(std::size_t r, std::size_t c) const {
  const auto& cell = row(r).at(c);
  if (const auto* d = std::get_if<double>(&cell)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return static_cast<double>(*i);
  }
  throw ConfigError("Table::number_at: cell is not numeric");
}

std::string format_number(double v) {
  char buf[64];
  const double a = std::fabs(v);
  // Snap floating-point noise (e.g. 30.000000000000004) to the integer.
  const bool near_int =
      std::fabs(v - std::nearbyint(v)) <= 1e-9 * std::fmax(a, 1.0);
  if (v == 0.0) {
    return "0";
  } else if (a >= 1e7 || a < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  } else if (near_int) {
    std::snprintf(buf, sizeof buf, "%.0f", std::nearbyint(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", v);
  }
  return buf;
}

namespace {

std::string cell_text(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* d = std::get_if<double>(&c)) return format_number(*d);
  return std::to_string(std::get<std::int64_t>(c));
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& r : rows_) {
    std::vector<std::string> line;
    line.reserve(r.size());
    for (std::size_t c = 0; c < r.size(); ++c) {
      line.push_back(cell_text(r[c]));
      width[c] = std::max(width[c], line.back().size());
    }
    rendered.push_back(std::move(line));
  }

  os << "# " << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& line) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << line[c];
      for (std::size_t pad = line[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << "\n";
  };
  emit(columns_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& line : rendered) emit(line);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  os << "# " << title_ << "\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << quote(columns_[c]);
  }
  os << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "" : ",") << quote(cell_text(r[c]));
    }
    os << "\n";
  }
}

}  // namespace pimsim
