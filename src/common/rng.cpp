#include "common/rng.hpp"

#include "common/error.hpp"

namespace pimsim {
namespace {

/// Mixes (seed, stream) into a single well-distributed 64-bit value.
std::uint64_t mix(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 sm(seed ^ (0x632be59bd9b4e019ULL + stream * 0x9e3779b97f4a7c15ULL));
  sm.next();
  return sm.next();
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream_id)
    : engine_(mix(seed, stream_id)), base_(mix(seed, stream_id)) {}

Rng Rng::split(std::uint64_t child_id) const {
  return Rng(Derived{mix(base_, child_id ^ 0xa5a5a5a5a5a5a5a5ULL)});
}

double Rng::uniform() {
  // 53-bit mantissa construction: uniform in [0,1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  std::uniform_int_distribution<std::uint64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0,1]");
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::binomial: p must be in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  std::binomial_distribution<std::uint64_t> d(n, p);
  return d(engine_);
}

std::uint64_t Rng::geometric(double p) {
  require(p > 0.0 && p <= 1.0, "Rng::geometric: p must be in (0,1]");
  if (p == 1.0) return 0;
  std::geometric_distribution<std::uint64_t> d(p);
  return d(engine_);
}

double Rng::exponential(double mean) {
  require(mean > 0.0, "Rng::exponential: mean must be positive");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: stddev must be non-negative");
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

}  // namespace pimsim
