#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <mutex>
#include <ostream>
#include <set>

namespace pimsim::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

// Canonical bytes for one blob; used to order blobs deterministically.
std::string serialize(const TraceBlob& blob) {
  std::string out;
  for (const std::string& label : blob.labels) {
    out += label;
    out.push_back('\0');
  }
  for (const des::TraceRecord& rec : blob.records) {
    std::uint64_t words[4] = {std::bit_cast<std::uint64_t>(rec.time), rec.a, rec.b,
                              (std::uint64_t{rec.label} << 8U) |
                                  static_cast<std::uint64_t>(rec.kind)};
    for (const std::uint64_t w : words) {
      for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((w >> (8 * i)) & 0xffU));
    }
  }
  return out;
}

void write_meta(std::ostream& os, bool& first, int pid, std::uint64_t tid,
                const char* key, const std::string& value) {
  os << (first ? "\n" : ",\n") << "    {\"name\": \"" << key
     << "\", \"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
     << ", \"args\": {\"name\": \"" << json_escape(value) << "\"}}";
  first = false;
}

void write_blob(std::ostream& os, bool& first, int pid, const TraceBlob& blob) {
  write_meta(os, first, pid, 0, "process_name", "sim " + std::to_string(pid));
  // Thread tracks: 0 is the kernel/component track; async spans carry their
  // node id in `b`.  std::set iteration is sorted, so metadata order is
  // deterministic.
  std::set<std::uint64_t> tids;
  tids.insert(0);
  for (const des::TraceRecord& rec : blob.records) {
    if (rec.kind == des::TraceKind::kAsyncBegin || rec.kind == des::TraceKind::kAsyncEnd) {
      tids.insert(rec.b);
    }
  }
  for (const std::uint64_t tid : tids) {
    write_meta(os, first, pid, tid, "thread_name",
               tid == 0 ? std::string("kernel") : "node " + std::to_string(tid));
  }
  for (const des::TraceRecord& rec : blob.records) {
    const std::string& raw = blob.labels[rec.label];
    const std::string name = json_escape(raw.empty() ? to_string(rec.kind) : raw);
    os << ",\n    {\"name\": \"" << name << "\", \"ts\": " << rec.time
       << ", \"pid\": " << pid;
    switch (rec.kind) {
      case des::TraceKind::kAsyncBegin:
      case des::TraceKind::kAsyncEnd:
        os << ", \"tid\": " << rec.b << ", \"cat\": \"parcel\", \"ph\": \""
           << (rec.kind == des::TraceKind::kAsyncBegin ? 'b' : 'e')
           << "\", \"id\": " << rec.a;
        break;
      case des::TraceKind::kCounter:
        os << ", \"tid\": 0, \"ph\": \"C\", \"args\": {\"value\": " << rec.a << "}";
        break;
      default:
        os << ", \"tid\": 0, \"cat\": \"kernel\", \"ph\": \"i\", \"s\": \"t\", "
           << "\"args\": {\"kind\": \"" << to_string(rec.kind) << "\", \"a\": " << rec.a
           << "}";
        break;
    }
    os << "}";
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceBlob>& blobs) {
  const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
  // Order blobs by content so pid assignment ignores completion order.
  std::vector<std::string> keys;
  keys.reserve(blobs.size());
  for (const TraceBlob& b : blobs) keys.push_back(serialize(b));
  std::vector<std::size_t> order(blobs.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });

  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  os << "{\n  \"traceEvents\": [";
  bool first = true;
  int pid = 0;
  for (const std::size_t k : order) {
    ++pid;
    write_blob(os, first, pid, blobs[k]);
    records += blobs[k].records.size();
    dropped += blobs[k].dropped;
  }
  os << "\n  ],\n  \"displayTimeUnit\": \"ns\",\n  \"pimsim\": {\"schema\": "
        "\"pimsim-trace-v1\", \"simulations\": "
     << blobs.size() << ", \"records\": " << records << ", \"dropped\": " << dropped
     << "}\n}\n";
  os.precision(old_precision);
}

// ---------------------------------------------------------------------------
// TraceHub

struct TraceHub::Impl {
  mutable std::mutex mutex;
  std::vector<TraceBlob> blobs;
};

TraceHub::Impl& TraceHub::impl() {
  // lint:allow(mutable-static): process-scoped by design, mutex-serialized
  static Impl instance;
  return instance;
}

TraceHub& TraceHub::global() {
  // lint:allow(mutable-static): stateless handle to the Impl singleton above
  static TraceHub hub;
  return hub;
}

void TraceHub::absorb(const des::Tracer& tracer) {
  TraceBlob blob{tracer.labels(), tracer.records(), tracer.dropped()};
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.blobs.push_back(std::move(blob));
}

std::uint64_t TraceHub::simulations() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  return i.blobs.size();
}

std::uint64_t TraceHub::records() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  std::uint64_t n = 0;
  for (const TraceBlob& b : i.blobs) n += b.records.size();
  return n;
}

std::uint64_t TraceHub::dropped() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  std::uint64_t n = 0;
  for (const TraceBlob& b : i.blobs) n += b.dropped;
  return n;
}

void TraceHub::write_json(std::ostream& os) const {
  std::vector<TraceBlob> blobs;
  {
    Impl& i = impl();
    const std::lock_guard<std::mutex> lock(i.mutex);
    blobs = i.blobs;
  }
  write_chrome_trace(os, blobs);
}

void TraceHub::reset() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.blobs.clear();
}

}  // namespace pimsim::obs
