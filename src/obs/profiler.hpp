// Kernel self-profiler: attributes dispatch counts and wall time to each
// EventAction kind (empty/resume/small/boxed/static), answering "why is
// this sweep slow" from a table instead of perf.
//
// Dispatch counts are exact and deterministic.  Wall time is sampled — one
// steady_clock pair every kSampleEvery dispatches, attributed to that
// dispatch's kind — so the timer cost is amortized to ~2 clock reads per 64
// events and the run's simulation results stay untouched.  The seconds
// columns are estimates and are inherently not deterministic; only the
// count columns are covered by the determinism contract (the table goes to
// stderr, the commentary channel).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace pimsim::obs {

/// Per-simulation profile accumulator, driven by Simulation::dispatch.
class KernelProfiler {
 public:
  /// EventAction kind ids 0..4 (kEmpty, kResume, kSmall, kBoxed, kStatic).
  static constexpr std::size_t kKinds = 5;

  /// Every kSampleEvery-th dispatch is wall-timed (power of two).
  static constexpr std::uint64_t kSampleEvery = 64;

  struct KindStats {
    std::uint64_t dispatches = 0;  ///< exact
    std::uint64_t sampled = 0;     ///< dispatches that were wall-timed
    double seconds = 0.0;          ///< wall time across sampled dispatches
  };

  void count(std::uint8_t kind) { ++stats_[kind].dispatches; }

  /// True when the next dispatch should be wall-timed.
  [[nodiscard]] bool sample_due() { return (ticks_++ & (kSampleEvery - 1)) == 0; }

  void record_sample(std::uint8_t kind, double seconds) {
    ++stats_[kind].sampled;
    stats_[kind].seconds += seconds;
  }

  [[nodiscard]] const std::array<KindStats, kKinds>& stats() const { return stats_; }

  /// Estimated total wall seconds for a kind: mean sampled cost times the
  /// exact dispatch count (0 when nothing was sampled).
  [[nodiscard]] double estimated_seconds(std::size_t kind) const;

  [[nodiscard]] std::uint64_t total_dispatches() const;

  void merge(const KernelProfiler& other);

  [[nodiscard]] static const char* kind_name(std::size_t kind);

 private:
  std::uint64_t ticks_ = 0;
  std::array<KindStats, kKinds> stats_{};
};

/// Process-wide collection point, mirroring AuditRegistry / MetricsHub.
class ProfileHub {
 public:
  void absorb(const KernelProfiler& profiler);

  [[nodiscard]] std::uint64_t simulations() const;
  [[nodiscard]] KernelProfiler snapshot() const;

  /// Human-readable per-kind table (counts exact, seconds estimated).
  void write_table(std::ostream& os) const;

  void reset();

  [[nodiscard]] static ProfileHub& global();

 private:
  struct Impl;
  [[nodiscard]] static Impl& impl();
};

}  // namespace pimsim::obs
