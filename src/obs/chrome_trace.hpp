// Chrome-trace-event exporter: turns des::Tracer record buffers into the
// JSON Trace Event Format that Perfetto (https://ui.perfetto.dev) and
// chrome://tracing load directly.
//
// Mapping (see docs/OBSERVABILITY.md for the full schema):
//  * kAsyncBegin/kAsyncEnd  -> async spans ("b"/"e"), id = record.a
//    (parcel context), tid = record.b (node) — request->reply lifecycles
//    render as per-node async tracks.
//  * kCounter               -> counter tracks ("C"), value = record.a —
//    bank-queue depth and link occupancy render as graphs.
//  * everything else        -> instant events ("i") on the kernel track.
//
// Each absorbed simulation becomes one "process" (pid); blobs are sorted by
// content fingerprint before pids are assigned, so multi-threaded sweeps
// export bitwise-identical files in any completion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "des/trace.hpp"

namespace pimsim::obs {

/// A detached copy of one Tracer's state (records + label table).
struct TraceBlob {
  std::vector<std::string> labels;
  std::vector<des::TraceRecord> records;
  std::uint64_t dropped = 0;
};

/// Writes `blobs` as a Chrome trace JSON document ({"traceEvents": [...]}).
void write_chrome_trace(std::ostream& os, const std::vector<TraceBlob>& blobs);

/// Process-wide collection point for finished simulations' trace buffers,
/// mirroring AuditRegistry / MetricsHub.
class TraceHub {
 public:
  void absorb(const des::Tracer& tracer);

  [[nodiscard]] std::uint64_t simulations() const;
  [[nodiscard]] std::uint64_t records() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Exports every absorbed blob, fingerprint-sorted (deterministic).
  void write_json(std::ostream& os) const;

  void reset();

  [[nodiscard]] static TraceHub& global();

 private:
  struct Impl;
  [[nodiscard]] static Impl& impl();
};

}  // namespace pimsim::obs
