#include "obs/profiler.hpp"

#include <iomanip>
#include <mutex>
#include <ostream>

namespace pimsim::obs {

const char* KernelProfiler::kind_name(std::size_t kind) {
  switch (kind) {
    case 0: return "empty";
    case 1: return "resume";
    case 2: return "small";
    case 3: return "boxed";
    case 4: return "static";
    default: return "unknown";
  }
}

double KernelProfiler::estimated_seconds(std::size_t kind) const {
  const KindStats& s = stats_[kind];
  if (s.sampled == 0) return 0.0;
  return s.seconds / static_cast<double>(s.sampled) * static_cast<double>(s.dispatches);
}

std::uint64_t KernelProfiler::total_dispatches() const {
  std::uint64_t n = 0;
  for (const KindStats& s : stats_) n += s.dispatches;
  return n;
}

void KernelProfiler::merge(const KernelProfiler& other) {
  for (std::size_t k = 0; k < kKinds; ++k) {
    stats_[k].dispatches += other.stats_[k].dispatches;
    stats_[k].sampled += other.stats_[k].sampled;
    stats_[k].seconds += other.stats_[k].seconds;
  }
}

// ---------------------------------------------------------------------------
// ProfileHub

struct ProfileHub::Impl {
  mutable std::mutex mutex;
  KernelProfiler merged;
  std::uint64_t simulations = 0;
};

ProfileHub::Impl& ProfileHub::impl() {
  // lint:allow(mutable-static): process-scoped by design, mutex-serialized
  static Impl instance;
  return instance;
}

ProfileHub& ProfileHub::global() {
  // lint:allow(mutable-static): stateless handle to the Impl singleton above
  static ProfileHub hub;
  return hub;
}

void ProfileHub::absorb(const KernelProfiler& profiler) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.merged.merge(profiler);
  ++i.simulations;
}

std::uint64_t ProfileHub::simulations() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  return i.simulations;
}

KernelProfiler ProfileHub::snapshot() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  return i.merged;
}

void ProfileHub::reset() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.merged = KernelProfiler{};
  i.simulations = 0;
}

void ProfileHub::write_table(std::ostream& os) const {
  const KernelProfiler prof = snapshot();
  const std::uint64_t total = prof.total_dispatches();
  double total_seconds = 0.0;
  for (std::size_t k = 0; k < KernelProfiler::kKinds; ++k) {
    total_seconds += prof.estimated_seconds(k);
  }
  os << "# kernel profile: " << simulations() << " simulation(s), " << total
     << " dispatches (counts exact; seconds sampled 1/" << KernelProfiler::kSampleEvery
     << ", estimated)\n";
  os << "# " << std::left << std::setw(8) << "kind" << std::right << std::setw(14)
     << "dispatches" << std::setw(10) << "sampled" << std::setw(12) << "est_s"
     << std::setw(9) << "share\n";
  for (std::size_t k = 0; k < KernelProfiler::kKinds; ++k) {
    const auto& s = prof.stats()[k];
    if (s.dispatches == 0) continue;
    const double est = prof.estimated_seconds(k);
    const double share = total_seconds > 0.0 ? est / total_seconds * 100.0 : 0.0;
    os << "# " << std::left << std::setw(8) << KernelProfiler::kind_name(k) << std::right
       << std::setw(14) << s.dispatches << std::setw(10) << s.sampled << std::setw(12)
       << std::setprecision(4) << std::fixed << est << std::setw(8)
       << std::setprecision(1) << share << "%\n";
    os.unsetf(std::ios::fixed);
  }
}

}  // namespace pimsim::obs
