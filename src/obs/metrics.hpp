// Metrics registry: named counters, time-weighted gauges, and streaming
// summaries that simulator components register into when metrics are
// enabled (`PIMSIM_METRICS=1` / `metrics=out.json` on the CLI).
//
// Design constraints, in order:
//  * Zero cost when off — components hold null handles and the hot path is
//    one predicted branch (the same contract as audit mode).
//  * Deterministic output — entries live in a sorted std::map, so the dump
//    order is independent of registration order; node stability means the
//    Counter/Gauge/Summary handles components grab at bind time stay valid
//    for the life of the registry.
//  * Mergeable — registries from independent simulations (sweep points,
//    threaded figure sweeps) combine associatively; MetricsHub sorts
//    snapshots by content fingerprint before folding so floating-point
//    merges are bitwise identical at any sweep_threads.
//
// The Summary reuses common/stats.hpp's Welford accumulator and adds a
// 64-bin power-of-two percentile sketch (integer ilogb binning: exact,
// deterministic, monotone) — the cimba-style cmb_datasummary /
// cmb_wtdsummary primitives the ROADMAP's replication item asks for.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace pimsim::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Time-weighted level (queue depth, occupancy): tracks the time integral
/// of a piecewise-constant value so mean() weights by duration, not by
/// sample count.
class Gauge {
 public:
  /// Sets the level to `value` at simulation time `t` (non-decreasing).
  void set(double t, double value);
  /// Adjusts the level by `delta` at simulation time `t`.
  void add(double t, double delta) { set(t, value_ + delta); }

  [[nodiscard]] double current() const { return value_; }
  [[nodiscard]] double max() const { return max_; }
  /// Time-weighted mean over the observed span (0 if nothing observed).
  [[nodiscard]] double mean() const { return span_ > 0.0 ? area_ / span_ : value_; }
  [[nodiscard]] double span() const { return span_; }

  void merge(const Gauge& other);

  // Serialization support (cross-process chunk sidecars): the exact
  // merge-relevant state, so a restored gauge merges bit-identically.
  [[nodiscard]] double area() const { return area_; }
  [[nodiscard]] double last_time() const { return last_t_; }
  [[nodiscard]] bool seen() const { return seen_; }
  [[nodiscard]] static Gauge restore(double value, double max, double area,
                                     double span, double last_t, bool seen);

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  double area_ = 0.0;
  double span_ = 0.0;
  double last_t_ = 0.0;
  bool seen_ = false;
};

/// Streaming sample summary: Welford mean/variance/min/max plus a fixed
/// 64-bin power-of-two histogram for percentile queries.
class Summary {
 public:
  static constexpr std::size_t kBins = 64;

  void add(double x);

  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t count() const { return static_cast<std::uint64_t>(stats_.count()); }

  /// Upper edge of the bin where the cumulative count crosses q, clamped
  /// to [min, max].  Coarse (power-of-two resolution) but exact and
  /// deterministic.
  [[nodiscard]] double quantile(double q) const;

  void merge(const Summary& other);

  /// Bin index for a sample: 0 for x < 1, else min(63, ilogb(x) + 1).
  [[nodiscard]] static std::size_t bin_of(double x);

  [[nodiscard]] const std::uint64_t* bins() const { return bins_; }

  /// Reconstitutes a summary from its exact accumulator state (the
  /// counterpart of RunningStats::restore, for chunk sidecars).
  [[nodiscard]] static Summary restore(const RunningStats& stats,
                                       const std::uint64_t* bins);

 private:
  RunningStats stats_;
  std::uint64_t bins_[kBins] = {};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kSummary };

[[nodiscard]] const char* to_string(MetricKind kind);

/// Named metric store.  find-or-create accessors return stable references;
/// requesting an existing name with a different kind throws LogicError.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Summary& summary(std::string_view name);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Folds `other` into this registry (entry-wise merge by name).
  void merge(const MetricsRegistry& other);

  /// Self-describing JSON dump (schema "pimsim-metrics-v1").
  void write_json(std::ostream& os, std::uint64_t simulations) const;

  /// CSV dump: one row per metric, empty cells where a column does not
  /// apply to the metric's kind.
  void write_csv(std::ostream& os) const;

  /// FNV-1a hash over the canonical byte serialization; equal content
  /// (bitwise, including double payloads) hashes equal regardless of
  /// registration order.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Rebuilds a registry from serialize()'s canonical bytes.  The round
  /// trip is exact — the restored registry serializes to the same bytes
  /// and merges bit-identically — which is what lets sharded sweep
  /// processes ship their per-simulation snapshots through chunk
  /// sidecars and refold them in the merge process.  Throws ConfigError
  /// on truncated or malformed input.
  [[nodiscard]] static MetricsRegistry deserialize(std::string_view bytes);

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    Summary summary;
  };

  Entry& entry(std::string_view name, MetricKind kind);

  friend class MetricsHub;
  [[nodiscard]] std::string serialize() const;

  std::map<std::string, Entry, std::less<>> entries_;
};

/// Process-wide collection point.  Each Simulation with metrics enabled
/// absorbs its registry here at destruction; `aggregate()` folds the
/// snapshots into one registry in fingerprint-sorted order, so the result
/// is bitwise identical no matter which thread finished first.
class MetricsHub {
 public:
  void absorb(const MetricsRegistry& registry);

  /// Number of absorbed registries (simulations).
  [[nodiscard]] std::uint64_t simulations() const;

  /// Deterministic fold of every absorbed registry.
  [[nodiscard]] MetricsRegistry aggregate() const;

  /// Canonical bytes of every absorbed per-simulation snapshot, sorted —
  /// what a sharded sweep embeds in its chunk sidecar so the merge
  /// process can refold across process boundaries.
  [[nodiscard]] std::vector<std::string> snapshot_bytes() const;
  /// Reinstates one snapshot serialized by snapshot_bytes() (counts as
  /// one absorbed simulation).  Throws ConfigError on malformed bytes.
  void absorb_bytes(std::string_view bytes);

  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  void reset();

  [[nodiscard]] static MetricsHub& global();

 private:
  struct Impl;
  [[nodiscard]] static Impl& impl();
};

}  // namespace pimsim::obs
