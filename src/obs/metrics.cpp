#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/error.hpp"

namespace pimsim::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(v & 0xffU));
    v >>= 8U;
  }
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Gauge

void Gauge::set(double t, double value) {
  if (!seen_) {
    last_t_ = t;
    seen_ = true;
  }
  ensure(t >= last_t_, "Gauge::set: time must be non-decreasing");
  area_ += value_ * (t - last_t_);
  span_ += t - last_t_;
  last_t_ = t;
  value_ = value;
  if (value > max_) max_ = value;
}

void Gauge::merge(const Gauge& other) {
  area_ += other.area_;
  span_ += other.span_;
  if (other.max_ > max_) max_ = other.max_;
  if (!seen_ && other.seen_) {
    value_ = other.value_;
    last_t_ = other.last_t_;
    seen_ = true;
  }
}

Gauge Gauge::restore(double value, double max, double area, double span,
                     double last_t, bool seen) {
  Gauge g;
  g.value_ = value;
  g.max_ = max;
  g.area_ = area;
  g.span_ = span;
  g.last_t_ = last_t;
  g.seen_ = seen;
  return g;
}

// ---------------------------------------------------------------------------
// Summary

std::size_t Summary::bin_of(double x) {
  // Bin 0 holds x < 1 (and non-finite junk); bin k >= 1 holds [2^(k-1), 2^k).
  if (!(x >= 1.0)) return 0;
  const int e = std::ilogb(x) + 1;
  return static_cast<std::size_t>(std::min(e, static_cast<int>(kBins) - 1));
}

void Summary::add(double x) {
  stats_.add(x);
  ++bins_[bin_of(x)];
}

double Summary::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < kBins; ++k) {
    cum += bins_[k];
    if (cum > 0 && static_cast<double>(cum) >= target) {
      // Upper edge of bin k is 2^k (bin 0's edge is 1).
      const double edge = std::ldexp(1.0, static_cast<int>(k));
      return std::clamp(edge, stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

void Summary::merge(const Summary& other) {
  stats_.merge(other.stats_);
  for (std::size_t k = 0; k < kBins; ++k) bins_[k] += other.bins_[k];
}

Summary Summary::restore(const RunningStats& stats, const std::uint64_t* bins) {
  Summary s;
  s.stats_ = stats;
  for (std::size_t k = 0; k < kBins; ++k) s.bins_[k] = bins[k];
  return s;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kSummary: return "summary";
  }
  return "unknown";
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name, MetricKind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.kind = kind;
    return it->second;
  }
  ensure(it->second.kind == kind, [&] {
    return "MetricsRegistry: '" + std::string(name) +
           "' already registered as " + to_string(it->second.kind);
  });
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return entry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return entry(name, MetricKind::kGauge).gauge;
}

Summary& MetricsRegistry::summary(std::string_view name) {
  return entry(name, MetricKind::kSummary).summary;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, e] : other.entries_) {
    Entry& mine = entry(name, e.kind);
    switch (e.kind) {
      case MetricKind::kCounter: mine.counter.merge(e.counter); break;
      case MetricKind::kGauge: mine.gauge.merge(e.gauge); break;
      case MetricKind::kSummary: mine.summary.merge(e.summary); break;
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os, std::uint64_t simulations) const {
  const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"schema\": \"pimsim-metrics-v1\",\n  \"simulations\": " << simulations
     << ",\n  \"metrics\": [";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << json_escape(name)
       << "\", \"type\": \"" << to_string(e.kind) << "\"";
    switch (e.kind) {
      case MetricKind::kCounter:
        os << ", \"value\": " << e.counter.value();
        break;
      case MetricKind::kGauge:
        os << ", \"mean\": " << e.gauge.mean() << ", \"max\": " << e.gauge.max()
           << ", \"span\": " << e.gauge.span();
        break;
      case MetricKind::kSummary: {
        const RunningStats& s = e.summary.stats();
        os << ", \"count\": " << e.summary.count() << ", \"mean\": " << s.mean()
           << ", \"stddev\": " << s.stddev() << ", \"min\": " << s.min()
           << ", \"max\": " << s.max() << ", \"p50\": " << e.summary.quantile(0.5)
           << ", \"p90\": " << e.summary.quantile(0.9)
           << ", \"p99\": " << e.summary.quantile(0.99);
        break;
      }
    }
    os << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << "name,type,count,value,mean,stddev,min,max,p50,p90,p99\n";
  for (const auto& [name, e] : entries_) {
    os << name << ',' << to_string(e.kind) << ',';
    switch (e.kind) {
      case MetricKind::kCounter:
        os << ',' << e.counter.value() << ",,,,,,,";
        break;
      case MetricKind::kGauge:
        os << ",," << e.gauge.mean() << ",,," << e.gauge.max() << ",,,";
        break;
      case MetricKind::kSummary: {
        const RunningStats& s = e.summary.stats();
        os << e.summary.count() << ",," << s.mean() << ',' << s.stddev() << ','
           << s.min() << ',' << s.max() << ',' << e.summary.quantile(0.5) << ','
           << e.summary.quantile(0.9) << ',' << e.summary.quantile(0.99);
        break;
      }
    }
    os << '\n';
  }
  os.precision(old_precision);
}

std::string MetricsRegistry::serialize() const {
  // Canonical bytes covering exactly the merge-relevant state, so equal
  // serializations are interchangeable merge operands and deserialize()
  // can rebuild a bit-identical registry in another process.
  std::string out;
  for (const auto& [name, e] : entries_) {
    out += name;
    out.push_back('\0');
    out.push_back(static_cast<char>(e.kind));
    switch (e.kind) {
      case MetricKind::kCounter:
        put_u64(out, e.counter.value());
        break;
      case MetricKind::kGauge:
        put_f64(out, e.gauge.current());
        put_f64(out, e.gauge.max());
        put_f64(out, e.gauge.area());
        put_f64(out, e.gauge.span());
        put_f64(out, e.gauge.last_time());
        out.push_back(e.gauge.seen() ? '\1' : '\0');
        break;
      case MetricKind::kSummary: {
        const RunningStats& s = e.summary.stats();
        put_u64(out, e.summary.count());
        put_f64(out, s.mean());
        put_f64(out, s.m2());
        put_f64(out, s.min());
        put_f64(out, s.max());
        for (std::size_t k = 0; k < Summary::kBins; ++k) put_u64(out, e.summary.bins()[k]);
        break;
      }
    }
  }
  return out;
}

MetricsRegistry MetricsRegistry::deserialize(std::string_view bytes) {
  std::size_t pos = 0;
  const auto take = [&](std::size_t n) -> std::string_view {
    require(bytes.size() - pos >= n,
            "MetricsRegistry::deserialize: truncated snapshot");
    const std::string_view piece = bytes.substr(pos, n);
    pos += n;
    return piece;
  };
  const auto take_u64 = [&] {
    const std::string_view b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8U) | static_cast<unsigned char>(b[static_cast<std::size_t>(i)]);
    }
    return v;
  };
  const auto take_f64 = [&] { return std::bit_cast<double>(take_u64()); };

  MetricsRegistry reg;
  while (pos < bytes.size()) {
    const std::size_t nul = bytes.find('\0', pos);
    require(nul != std::string_view::npos,
            "MetricsRegistry::deserialize: unterminated metric name");
    const std::string name(bytes.substr(pos, nul - pos));
    require(!name.empty(), "MetricsRegistry::deserialize: empty metric name");
    pos = nul + 1;
    const auto kind = static_cast<MetricKind>(take(1)[0]);
    switch (kind) {
      case MetricKind::kCounter:
        reg.counter(name).add(take_u64());
        break;
      case MetricKind::kGauge: {
        const double value = take_f64();
        const double max = take_f64();
        const double area = take_f64();
        const double span = take_f64();
        const double last_t = take_f64();
        const bool seen = take(1)[0] != '\0';
        reg.entry(name, MetricKind::kGauge).gauge =
            Gauge::restore(value, max, area, span, last_t, seen);
        break;
      }
      case MetricKind::kSummary: {
        const auto n = static_cast<std::size_t>(take_u64());
        const double mean = take_f64();
        const double m2 = take_f64();
        const double min = take_f64();
        const double max = take_f64();
        std::uint64_t bins[Summary::kBins];
        for (std::uint64_t& b : bins) b = take_u64();
        reg.entry(name, MetricKind::kSummary).summary = Summary::restore(
            RunningStats::restore(n, mean, m2, min, max), bins);
        break;
      }
      default:
        throw ConfigError("MetricsRegistry::deserialize: unknown metric kind");
    }
  }
  return reg;
}

std::uint64_t MetricsRegistry::fingerprint() const { return fnv1a(serialize()); }

// ---------------------------------------------------------------------------
// MetricsHub

struct MetricsHub::Impl {
  mutable std::mutex mutex;
  std::vector<MetricsRegistry> snapshots;
};

MetricsHub::Impl& MetricsHub::impl() {
  // lint:allow(mutable-static): process-scoped by design, mutex-serialized
  static Impl instance;
  return instance;
}

MetricsHub& MetricsHub::global() {
  // lint:allow(mutable-static): stateless handle to the Impl singleton above
  static MetricsHub hub;
  return hub;
}

void MetricsHub::absorb(const MetricsRegistry& registry) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.snapshots.push_back(registry);
}

std::uint64_t MetricsHub::simulations() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  return i.snapshots.size();
}

MetricsRegistry MetricsHub::aggregate() const {
  std::vector<MetricsRegistry> snaps;
  {
    Impl& i = impl();
    const std::lock_guard<std::mutex> lock(i.mutex);
    snaps = i.snapshots;
  }
  // Sort snapshots by canonical content before folding: any arrival
  // permutation (threaded sweeps finish in nondeterministic order) yields
  // the same fold order, so floating-point merges are bitwise identical.
  std::vector<std::string> keys;
  keys.reserve(snaps.size());
  for (const MetricsRegistry& r : snaps) keys.push_back(r.serialize());
  std::vector<std::size_t> order(snaps.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  MetricsRegistry out;
  for (const std::size_t k : order) out.merge(snaps[k]);
  return out;
}

std::vector<std::string> MetricsHub::snapshot_bytes() const {
  std::vector<std::string> out;
  {
    Impl& i = impl();
    const std::lock_guard<std::mutex> lock(i.mutex);
    out.reserve(i.snapshots.size());
    for (const MetricsRegistry& r : i.snapshots) out.push_back(r.serialize());
  }
  // Sorted so the sidecar bytes do not depend on which sweep thread's
  // simulation finished first (the fold re-sorts anyway).
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsHub::absorb_bytes(std::string_view bytes) {
  absorb(MetricsRegistry::deserialize(bytes));
}

void MetricsHub::write_json(std::ostream& os) const {
  aggregate().write_json(os, simulations());
}

void MetricsHub::write_csv(std::ostream& os) const { aggregate().write_csv(os); }

void MetricsHub::reset() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.snapshots.clear();
}

}  // namespace pimsim::obs
