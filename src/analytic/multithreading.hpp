// Multithreading at the PIM node, after Saavedra-Barrera, Culler & von
// Eicken's multithreaded-architecture model [27], which the paper cites
// and whose conclusion it extends to PIM: "our model demonstrates that
// multithreading at the node can have tremendous benefit in PIM systems"
// (Section 5.2).
//
// A thread alternates `run_cycles` of execution with `stall_cycles` of
// (overlappable) memory stall; switching threads costs `switch_cost`.
// With K threads per processor:
//   * linear regime   (K < K_sat): throughput grows as K / (R + C + L),
//   * saturated regime (K >= K_sat): bounded by 1 / (R + C),
//   * K_sat = (R + C + L) / (R + C).
//
// The PIM mapping uses the Table 1 abstraction: an LWP thread runs
// R = TLcycle * (1-mix)/mix cycles between accesses and stalls TML on
// each; multithreading overlaps the row-buffer stall with other threads'
// compute, lowering the effective LWP cost per operation and therefore
// the break-even node count NB.
#pragma once

#include <cstddef>

#include "arch/params.hpp"

namespace pimsim::analytic {

/// One thread's steady-state cycle in the Saavedra-Barrera abstraction.
struct MultithreadSpec {
  double run_cycles = 10.0;    ///< R: execution between stalls
  double stall_cycles = 30.0;  ///< L: overlappable memory stall
  double switch_cost = 1.0;    ///< C: context switch (charged for K >= 2)

  void validate() const;
};

/// Threads needed to saturate the processor: (R + C + L) / (R + C).
[[nodiscard]] double saturation_threads(const MultithreadSpec& spec);

/// Processor utilization (busy fraction, switches counted busy) with K
/// threads: min(1, K / K_sat).  K = 1 pays no switches.
[[nodiscard]] double utilization(const MultithreadSpec& spec, std::size_t k);

/// Throughput in segments (one run + one stall) per cycle with K threads.
[[nodiscard]] double segment_rate(const MultithreadSpec& spec, std::size_t k);

/// Speedup of K threads over a single thread.
[[nodiscard]] double speedup(const MultithreadSpec& spec, std::size_t k);

// --- the PIM mapping ------------------------------------------------------

/// The LWP thread cycle implied by the Table 1 parameters.
[[nodiscard]] MultithreadSpec lwp_thread_spec(const arch::SystemParams& params,
                                              double switch_cost);

/// Effective HWP-cycles per LWP operation with K hardware threads.
/// K = 1 reproduces SystemParams::lwp_cost_per_op().
[[nodiscard]] double lwp_cost_per_op_mt(const arch::SystemParams& params,
                                        std::size_t k, double switch_cost);

/// The break-even node count with K-way multithreaded LWP nodes.
[[nodiscard]] double nb_mt(const arch::SystemParams& params, std::size_t k,
                           double switch_cost);

/// Time_relative with multithreaded nodes (Figure 7 extension).
[[nodiscard]] double time_relative_mt(const arch::SystemParams& params,
                                      double n_nodes, double lwp_fraction,
                                      std::size_t k, double switch_cost);

}  // namespace pimsim::analytic
