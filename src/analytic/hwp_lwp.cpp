#include "analytic/hwp_lwp.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pimsim::analytic {

namespace {
void check_point(double n_nodes, double lwp_fraction) {
  require(n_nodes >= 1.0, "analytic: need at least one LWP node");
  require(lwp_fraction >= 0.0 && lwp_fraction <= 1.0,
          "analytic: %WL must be in [0,1]");
}
}  // namespace

double time_relative(const arch::SystemParams& params, double n_nodes,
                     double lwp_fraction) {
  check_point(n_nodes, lwp_fraction);
  return 1.0 - lwp_fraction * (1.0 - params.nb() / n_nodes);
}

double gain(const arch::SystemParams& params, double n_nodes,
            double lwp_fraction) {
  const double t = time_relative(params, n_nodes, lwp_fraction);
  ensure(t > 0.0, "analytic::gain: non-positive relative time");
  return 1.0 / t;
}

double absolute_time_cycles(const arch::SystemParams& params,
                            std::uint64_t total_ops, double n_nodes,
                            double lwp_fraction) {
  check_point(n_nodes, lwp_fraction);
  const double w = static_cast<double>(total_ops);
  const double hwp_part = (1.0 - lwp_fraction) * w * params.hwp_cost_per_op();
  const double lwp_part = lwp_fraction * w * params.lwp_cost_per_op() / n_nodes;
  return hwp_part + lwp_part;
}

double absolute_time_ns(const arch::SystemParams& params,
                        std::uint64_t total_ops, double n_nodes,
                        double lwp_fraction) {
  return params.clock().to_ns(
      absolute_time_cycles(params, total_ops, n_nodes, lwp_fraction));
}

double crossover_nodes(const arch::SystemParams& params) { return params.nb(); }

double max_gain(double lwp_fraction) {
  require(lwp_fraction >= 0.0 && lwp_fraction <= 1.0,
          "analytic: %WL must be in [0,1]");
  if (lwp_fraction >= 1.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (1.0 - lwp_fraction);
}

double time_relative_overlapped(const arch::SystemParams& params,
                                double n_nodes, double lwp_fraction) {
  check_point(n_nodes, lwp_fraction);
  const double hwp_side = 1.0 - lwp_fraction;
  const double lwp_side = lwp_fraction * params.nb() / n_nodes;
  return std::fmax(hwp_side, lwp_side);
}

double balanced_nodes(const arch::SystemParams& params, double lwp_fraction) {
  require(lwp_fraction >= 0.0 && lwp_fraction <= 1.0,
          "balanced_nodes: %WL must be in [0,1]");
  if (lwp_fraction >= 1.0) return std::numeric_limits<double>::infinity();
  return params.nb() * lwp_fraction / (1.0 - lwp_fraction);
}

std::size_t min_nodes_for_gain(const arch::SystemParams& params,
                               double lwp_fraction, double target_gain) {
  require(target_gain > 0.0, "analytic: target gain must be positive");
  if (target_gain <= 1.0) return 1;
  if (target_gain >= max_gain(lwp_fraction)) return 0;  // unattainable
  // Solve 1 - %WL*(1 - NB/N) <= 1/target for N:
  //   N >= NB * %WL / (%WL - 1 + 1/target)
  const double nb = params.nb();
  const double denom = lwp_fraction - 1.0 + 1.0 / target_gain;
  ensure(denom > 0.0, "analytic::min_nodes_for_gain: internal inconsistency");
  const double n = nb * lwp_fraction / denom;
  return static_cast<std::size_t>(std::ceil(n - 1e-12));
}

}  // namespace pimsim::analytic
