#include "analytic/parcel_model.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "queueing/mva.hpp"

namespace pimsim::analytic {

ParcelSegment derive_segment(const parcel::SplitTransactionParams& p) {
  p.validate();
  ParcelSegment s;
  const double m = p.ls_mix;
  const double r = p.p_remote;
  s.mean_gap_ops = (1.0 - m) / m;
  s.work_per_segment = s.mean_gap_ops + 1.0;

  // Control node: compute, then the access. A remote access costs the
  // request composition, the round trip, and the home-memory service.
  s.control_cycle_time = s.mean_gap_ops + r * p.t_send +
                         (1.0 - r) * p.t_local +
                         r * (p.round_trip_latency + p.t_local);

  // Test node processor time per segment: own execution plus the pro-rata
  // service of incoming parcels (one per own remote request, in balance).
  const double own_cpu = s.mean_gap_ops + (1.0 - r) * p.t_local +
                         r * (p.t_send + p.t_switch);
  s.test_cpu_time = own_cpu + r * (p.t_switch + p.t_local);

  // Context suspension per remote access: round trip plus home service.
  s.suspended_time = p.round_trip_latency + p.t_switch + p.t_local;
  return s;
}

double control_throughput(const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  return s.work_per_segment / s.control_cycle_time;
}

double test_throughput_saturated(const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  return s.work_per_segment / s.test_cpu_time;
}

namespace {
/// Per-context wall-clock time of one segment when the processor is idle
/// enough that contexts never queue for it.
double wall_time_per_segment(const parcel::SplitTransactionParams& p,
                             const ParcelSegment& s) {
  const double own_cpu = s.mean_gap_ops + (1.0 - p.p_remote) * p.t_local +
                         p.p_remote * (p.t_send + p.t_switch);
  return own_cpu + p.p_remote * s.suspended_time;
}
}  // namespace

double saturation_parallelism(const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  return wall_time_per_segment(p, s) / s.test_cpu_time;
}

double test_throughput(const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  const double linear = static_cast<double>(p.parallelism) *
                        s.work_per_segment / wall_time_per_segment(p, s);
  return std::min(linear, test_throughput_saturated(p));
}

double predicted_ratio(const parcel::SplitTransactionParams& p) {
  const double control = control_throughput(p);
  ensure(control > 0.0, "parcel_model: zero control throughput");
  return test_throughput(p) / control;
}

double control_idle_fraction(const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  return p.p_remote * (p.round_trip_latency + p.t_local) / s.control_cycle_time;
}

double test_idle_fraction(const parcel::SplitTransactionParams& p) {
  const double util =
      std::min(1.0, static_cast<double>(p.parallelism) /
                        saturation_parallelism(p));
  return 1.0 - util;
}

namespace {

/// The node as a closed network: one circulation = one segment.
/// Station 0: the processor, demanded for the segment's own execution
/// plus the pro-rata service of incoming parcels; station 1: the remote
/// suspension, a pure delay taken on the fraction p_remote of segments.
queueing::MvaResult solve_node_mva(const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  std::vector<queueing::Station> stations(2);
  stations[0] = {queueing::Station::Kind::kQueueing, s.test_cpu_time, 1.0};
  stations[1] = {queueing::Station::Kind::kDelay,
                 p.p_remote * s.suspended_time, 1.0};
  return queueing::mva(stations, p.parallelism);
}

}  // namespace

double test_throughput_mva(const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  return solve_node_mva(p).throughput * s.work_per_segment;
}

double test_idle_fraction_mva(const parcel::SplitTransactionParams& p) {
  return 1.0 - solve_node_mva(p).utilization[0];
}

double predicted_ratio_mva(const parcel::SplitTransactionParams& p) {
  const double control = control_throughput(p);
  ensure(control > 0.0, "parcel_model: zero control throughput");
  return test_throughput_mva(p) / control;
}

double test_throughput_bandwidth_bound(
    const parcel::SplitTransactionParams& p) {
  const ParcelSegment s = derive_segment(p);
  const double messages_per_segment = 2.0 * p.p_remote;
  if (p.nic_gap <= 0.0 || messages_per_segment <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return s.work_per_segment / (messages_per_segment * p.nic_gap);
}

}  // namespace pimsim::analytic
