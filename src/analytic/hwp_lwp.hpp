// The paper's Section 3.1.2 analytical model.
//
//   Time_relative = 1 - %WL * (1 - NB / N)
//
//   NB = [TLcycle + mix*(TML - TLcycle)] / [1 + mix*(TCH - 1 + Pmiss*TMH)]
//
// Time is normalized to the control: the HWP alone executing all W
// operations with its cache behaviour.  NB is the "third orthogonal
// parameter": the number of LWP nodes whose aggregate throughput on
// low-locality work equals one HWP, so N = NB is the break-even node
// count *independent of %WL* (the Figure 7 coincidence point).
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/params.hpp"

namespace pimsim::analytic {

/// Time_relative(N, %WL): normalized time to solution, Figure 7.
[[nodiscard]] double time_relative(const arch::SystemParams& params,
                                   double n_nodes, double lwp_fraction);

/// Performance gain over the control system = 1 / Time_relative (Figure 5).
[[nodiscard]] double gain(const arch::SystemParams& params, double n_nodes,
                          double lwp_fraction);

/// Absolute makespan in HWP cycles for `total_ops` operations (Figure 6).
[[nodiscard]] double absolute_time_cycles(const arch::SystemParams& params,
                                          std::uint64_t total_ops,
                                          double n_nodes, double lwp_fraction);

/// Absolute makespan in nanoseconds (Figure 6 y-axis).
[[nodiscard]] double absolute_time_ns(const arch::SystemParams& params,
                                      std::uint64_t total_ops, double n_nodes,
                                      double lwp_fraction);

/// The coincidence point: N at which PIM neither helps nor hurts (== NB).
[[nodiscard]] double crossover_nodes(const arch::SystemParams& params);

/// Asymptotic gain as N -> infinity: 1 / (1 - %WL) (infinite for %WL = 1).
[[nodiscard]] double max_gain(double lwp_fraction);

/// Smallest integer node count achieving `target_gain` at the given
/// workload split; returns 0 when the target exceeds max_gain().
[[nodiscard]] std::size_t min_nodes_for_gain(const arch::SystemParams& params,
                                             double lwp_fraction,
                                             double target_gain);

// --- concurrent host+PIM extension ----------------------------------------
//
// The paper's flow serializes the host and PIM parts of each phase.  If
// the application lets them overlap (the host "augmented" by PIM memory),
// the phase time is the slower of the two sides:
//   Time_relative_ov = max(1 - %WL, %WL * NB / N).

/// Normalized time to solution with perfectly overlapped phases.
[[nodiscard]] double time_relative_overlapped(const arch::SystemParams& params,
                                              double n_nodes,
                                              double lwp_fraction);

/// Node count at which the two sides take equal time (the point past
/// which more PIM nodes stop helping an overlapped execution):
///   N* = NB * %WL / (1 - %WL); infinity at %WL = 1.
[[nodiscard]] double balanced_nodes(const arch::SystemParams& params,
                                    double lwp_fraction);

}  // namespace pimsim::analytic
