#include "analytic/multithreading.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pimsim::analytic {

void MultithreadSpec::validate() const {
  require(run_cycles > 0.0, "MultithreadSpec: run_cycles must be positive");
  require(stall_cycles >= 0.0,
          "MultithreadSpec: stall_cycles must be non-negative");
  require(switch_cost >= 0.0,
          "MultithreadSpec: switch_cost must be non-negative");
}

double saturation_threads(const MultithreadSpec& spec) {
  spec.validate();
  const double busy = spec.run_cycles + spec.switch_cost;
  return (busy + spec.stall_cycles) / busy;
}

double utilization(const MultithreadSpec& spec, std::size_t k) {
  spec.validate();
  require(k >= 1, "utilization: need at least one thread");
  if (k == 1) {
    // A single thread never switches: busy R out of every R + L.
    return spec.run_cycles / (spec.run_cycles + spec.stall_cycles);
  }
  return std::min(1.0, static_cast<double>(k) / saturation_threads(spec));
}

double segment_rate(const MultithreadSpec& spec, std::size_t k) {
  spec.validate();
  require(k >= 1, "segment_rate: need at least one thread");
  if (k == 1) {
    return 1.0 / (spec.run_cycles + spec.stall_cycles);
  }
  const double busy = spec.run_cycles + spec.switch_cost;
  const double linear = static_cast<double>(k) / (busy + spec.stall_cycles);
  const double saturated = 1.0 / busy;
  return std::min(linear, saturated);
}

double speedup(const MultithreadSpec& spec, std::size_t k) {
  return segment_rate(spec, k) / segment_rate(spec, 1);
}

MultithreadSpec lwp_thread_spec(const arch::SystemParams& params,
                                double switch_cost) {
  params.validate();
  require(params.ls_mix > 0.0,
          "lwp_thread_spec: multithreading needs memory stalls (mix > 0)");
  MultithreadSpec spec;
  // Mean compute ops between accesses: (1-mix)/mix, each TLcycle long.
  spec.run_cycles = params.tl_cycle * (1.0 - params.ls_mix) / params.ls_mix;
  spec.stall_cycles = params.t_ml;
  spec.switch_cost = switch_cost;
  return spec;
}

double lwp_cost_per_op_mt(const arch::SystemParams& params, std::size_t k,
                          double switch_cost) {
  const MultithreadSpec spec = lwp_thread_spec(params, switch_cost);
  // Operations per segment: the compute run plus the access itself.
  const double ops_per_segment = 1.0 / params.ls_mix;
  return 1.0 / (segment_rate(spec, k) * ops_per_segment);
}

double nb_mt(const arch::SystemParams& params, std::size_t k,
             double switch_cost) {
  return lwp_cost_per_op_mt(params, k, switch_cost) / params.hwp_cost_per_op();
}

double time_relative_mt(const arch::SystemParams& params, double n_nodes,
                        double lwp_fraction, std::size_t k,
                        double switch_cost) {
  require(n_nodes >= 1.0, "time_relative_mt: need at least one node");
  require(lwp_fraction >= 0.0 && lwp_fraction <= 1.0,
          "time_relative_mt: %WL must be in [0,1]");
  return 1.0 - lwp_fraction * (1.0 - nb_mt(params, k, switch_cost) / n_nodes);
}

}  // namespace pimsim::analytic
