// Simulation-versus-analytic accuracy study (paper Section 3.1.2).
//
// "The results derived from the simulation ... were reproduced with this
//  analytical model to an accuracy of between 5% and 18%."
//
// compare_grid() reruns the queueing simulation across an (N, %WL) grid
// and reports the relative error of the closed-form model at every point,
// so the bench can state our measured accuracy band next to the paper's.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/host_system.hpp"

namespace pimsim::analytic {

/// One grid point of the accuracy comparison.
struct AccuracyEntry {
  std::size_t nodes = 0;
  double lwp_fraction = 0.0;
  double simulated_cycles = 0.0;
  double model_cycles = 0.0;
  double rel_error = 0.0;  ///< |sim - model| / sim
};

/// Runs the simulation at every (nodes, %WL) combination and compares it
/// with the analytical makespan. `base` supplies all other parameters.
[[nodiscard]] std::vector<AccuracyEntry> compare_grid(
    const arch::HostConfig& base, const std::vector<std::size_t>& node_counts,
    const std::vector<double>& lwp_fractions);

/// Summary band over a set of entries.
struct AccuracyBand {
  double min_rel_error = 0.0;
  double max_rel_error = 0.0;
  double mean_rel_error = 0.0;
};

[[nodiscard]] AccuracyBand summarize(const std::vector<AccuracyEntry>& entries);

}  // namespace pimsim::analytic
