// Closed-form model of the parcel split-transaction study, in the spirit
// of Saavedra-Barrera, Culler & von Eicken's multithreaded-processor
// analysis [27], which the paper cites as the foundation of its Section 4
// experiments.
//
// A node's execution alternates compute runs (geometric, mean
// g = (1-mix)/mix ops) with memory accesses; a fraction p_remote of the
// accesses suspend the context for the round-trip latency L.  The model
// predicts per-node throughput (work per cycle) for the blocking control
// system and for the parcel system in its linear (parallelism-starved)
// and saturated regimes, and the parallelism needed to saturate.
//
// These are contention-free approximations (no memory-port or processor
// queueing), so the simulation should track them tightly in the regimes
// where queueing is light and fall below them when it is not; the test
// suite asserts exactly that relationship.
#pragma once

#include "parcel/system.hpp"

namespace pimsim::analytic {

/// Derived per-segment quantities of one parameter set.
struct ParcelSegment {
  double mean_gap_ops = 0.0;    ///< g: compute ops per memory access
  double work_per_segment = 0.0;  ///< g + 1 (the access itself)
  double control_cycle_time = 0.0;  ///< wall time per segment, control node
  double test_cpu_time = 0.0;   ///< processor time per segment, test node
  double suspended_time = 0.0;  ///< context suspension per remote access
};

[[nodiscard]] ParcelSegment derive_segment(
    const parcel::SplitTransactionParams& params);

/// Control-system work rate per node (work units per cycle).
[[nodiscard]] double control_throughput(
    const parcel::SplitTransactionParams& params);

/// Test-system work rate per node when parallelism saturates the processor.
[[nodiscard]] double test_throughput_saturated(
    const parcel::SplitTransactionParams& params);

/// Test-system work rate per node at the configured parallelism:
/// min(linear estimate, saturated rate).
[[nodiscard]] double test_throughput(
    const parcel::SplitTransactionParams& params);

/// Predicted Figure 11 ratio: test_throughput / control_throughput.
[[nodiscard]] double predicted_ratio(
    const parcel::SplitTransactionParams& params);

/// Parcel contexts per node needed to keep the processor saturated.
[[nodiscard]] double saturation_parallelism(
    const parcel::SplitTransactionParams& params);

/// Control-system idle fraction (time blocked on remote replies).
[[nodiscard]] double control_idle_fraction(
    const parcel::SplitTransactionParams& params);

/// Test-system idle fraction at the configured parallelism.
[[nodiscard]] double test_idle_fraction(
    const parcel::SplitTransactionParams& params);

// --- MVA refinement -------------------------------------------------------
//
// The two-regime (linear/saturated) model above ignores context
// self-contention and is therefore optimistic around the saturation knee
// (P near saturation_parallelism).  Modeling the node as a closed
// queueing network — its P parcel contexts circulate between the
// processor (queueing station) and the remote round trip (delay
// station) — and solving it with exact MVA captures the knee.

/// MVA-exact test-system work rate per node.
[[nodiscard]] double test_throughput_mva(
    const parcel::SplitTransactionParams& params);

/// MVA-exact test-system idle fraction.
[[nodiscard]] double test_idle_fraction_mva(
    const parcel::SplitTransactionParams& params);

/// MVA-refined Figure 11 ratio prediction.
[[nodiscard]] double predicted_ratio_mva(
    const parcel::SplitTransactionParams& params);

/// Injection-bandwidth ceiling on the test system's per-node work rate:
/// a node emits ~2*p_remote messages per segment (its requests plus the
/// replies it owes), each occupying the NIC for nic_gap cycles, so
///   rate <= work_per_segment / (2 * p_remote * nic_gap).
/// Infinite when nic_gap or p_remote is zero.
[[nodiscard]] double test_throughput_bandwidth_bound(
    const parcel::SplitTransactionParams& params);

}  // namespace pimsim::analytic
