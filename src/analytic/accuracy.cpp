#include "analytic/accuracy.hpp"

#include <algorithm>
#include <cmath>

#include "analytic/hwp_lwp.hpp"
#include "common/error.hpp"

namespace pimsim::analytic {

std::vector<AccuracyEntry> compare_grid(
    const arch::HostConfig& base, const std::vector<std::size_t>& node_counts,
    const std::vector<double>& lwp_fractions) {
  require(!node_counts.empty() && !lwp_fractions.empty(),
          "compare_grid: empty sweep axes");
  std::vector<AccuracyEntry> out;
  out.reserve(node_counts.size() * lwp_fractions.size());
  for (std::size_t n : node_counts) {
    for (double pct : lwp_fractions) {
      arch::HostConfig cfg = base;
      cfg.lwp_nodes = n;
      cfg.workload.lwp_fraction = pct;
      const arch::HostResult sim = arch::run_host_system(cfg);
      AccuracyEntry e;
      e.nodes = n;
      e.lwp_fraction = pct;
      e.simulated_cycles = sim.total_cycles;
      e.model_cycles = absolute_time_cycles(
          cfg.params, cfg.workload.total_ops, static_cast<double>(n), pct);
      ensure(e.simulated_cycles > 0.0, "compare_grid: empty simulation run");
      e.rel_error = std::fabs(e.simulated_cycles - e.model_cycles) /
                    e.simulated_cycles;
      out.push_back(e);
    }
  }
  return out;
}

AccuracyBand summarize(const std::vector<AccuracyEntry>& entries) {
  require(!entries.empty(), "summarize: no accuracy entries");
  AccuracyBand band;
  band.min_rel_error = entries.front().rel_error;
  band.max_rel_error = entries.front().rel_error;
  double sum = 0.0;
  for (const auto& e : entries) {
    band.min_rel_error = std::min(band.min_rel_error, e.rel_error);
    band.max_rel_error = std::max(band.max_rel_error, e.rel_error);
    sum += e.rel_error;
  }
  band.mean_rel_error = sum / static_cast<double>(entries.size());
  return band;
}

}  // namespace pimsim::analytic
