// Validation of the DES kernel against Markovian queueing closed forms —
// the qualification step that lets us trust the paper's queuing models on
// this substrate.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "queueing/formulas.hpp"
#include "queueing/network.hpp"
#include "queueing/service_center.hpp"

namespace pimsim::queueing {
namespace {

TEST(Formulas, MM1KnownValues) {
  // rho = 0.5: L = 1, W = 2/mu, Wq = 1/mu, Lq = 0.5.
  EXPECT_NEAR(mm1_mean_in_system(0.5, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(mm1_mean_response(0.5, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(mm1_mean_wait(0.5, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(mm1_mean_queue_length(0.5, 1.0), 0.5, 1e-12);
}

TEST(Formulas, LittleLawConsistency) {
  const double lambda = 0.7, mu = 1.0;
  EXPECT_NEAR(mm1_mean_in_system(lambda, mu),
              lambda * mm1_mean_response(lambda, mu), 1e-12);
  EXPECT_NEAR(mm1_mean_queue_length(lambda, mu),
              lambda * mm1_mean_wait(lambda, mu), 1e-12);
}

TEST(Formulas, ErlangCReducesToMM1WaitProbability) {
  // For c = 1, P(wait) = rho.
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c(rho, 1.0, 1), rho, 1e-12);
  }
}

TEST(Formulas, ErlangCKnownValue) {
  // Classic checked value: lambda=2, mu=1, c=3 (rho=2/3): C ~ 0.44444.
  EXPECT_NEAR(erlang_c(2.0, 1.0, 3), 4.0 / 9.0, 1e-9);
}

TEST(Formulas, MMcWaitDecreasesWithServers) {
  const double lambda = 1.8, mu = 1.0;
  EXPECT_GT(mmc_mean_wait(lambda, mu, 2), mmc_mean_wait(lambda, mu, 3));
  EXPECT_GT(mmc_mean_wait(lambda, mu, 3), mmc_mean_wait(lambda, mu, 4));
}

TEST(Formulas, Mg1ReducesToMM1ForExponentialService) {
  // Exponential service: variance = mean^2, so PK gives the M/M/1 wait.
  const double lambda = 0.6, mu = 1.0;
  const double mean_s = 1.0 / mu;
  EXPECT_NEAR(mg1_mean_wait(lambda, mean_s, mean_s * mean_s),
              mm1_mean_wait(lambda, mu), 1e-12);
}

TEST(Formulas, Md1WaitIsHalfOfMM1) {
  const double lambda = 0.7, service = 1.0;
  EXPECT_NEAR(md1_mean_wait(lambda, service),
              0.5 * mm1_mean_wait(lambda, 1.0), 1e-12);
}

TEST(Formulas, Mg1VarianceIncreasesWait) {
  const double lambda = 0.5, mean_s = 1.0;
  EXPECT_LT(mg1_mean_wait(lambda, mean_s, 0.0),
            mg1_mean_wait(lambda, mean_s, 4.0));
}

TEST(Md1Simulation, DeterministicServiceMatchesPK) {
  // M/D/1 through the DES: Poisson arrivals, fixed service time.
  OpenNetworkSpec spec;
  spec.lambda = 0.7;
  spec.mu = 1.0;  // unused by the center below, kept for stability checks
  spec.jobs = 60000;
  spec.warmup_jobs = 6000;
  spec.seed = 21;

  des::Simulation sim;
  Rng arrivals(spec.seed, 1);
  ServiceCenter center(sim, 1, [] { return 1.0; }, "md1");
  RunningStats response;
  center.set_on_departure([&](const Job& job, double departed) {
    if (job.id >= spec.warmup_jobs) response.add(departed - job.created_at);
  });
  // Inline Poisson source.
  struct Src {
    static des::Process run(des::Simulation& s, ServiceCenter& c, Rng& rng,
                            double lambda, std::uint64_t jobs) {
      for (std::uint64_t i = 0; i < jobs; ++i) {
        co_await des::delay(s, rng.exponential(1.0 / lambda));
        c.submit(Job{i, s.now()});
      }
    }
  };
  sim.spawn(Src::run(sim, center, arrivals, spec.lambda, spec.jobs));
  sim.run();

  const double expected = md1_mean_wait(spec.lambda, 1.0) + 1.0;
  EXPECT_NEAR(response.mean(), expected, 0.06 * expected);
}

TEST(Formulas, RejectUnstableQueues) {
  EXPECT_THROW(
      {
        const double r = mm1_mean_response(1.0, 1.0);
        ADD_FAILURE() << "mm1_mean_response accepted rho = 1, returned " << r;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const double r = mm1_mean_response(1.5, 1.0);
        ADD_FAILURE() << "mm1_mean_response accepted rho > 1, returned " << r;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const double p = erlang_c(3.0, 1.0, 2);
        ADD_FAILURE() << "erlang_c accepted an overloaded group, returned "
                      << p;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const double a = offered_load(0.0, 1.0, 1);
        ADD_FAILURE() << "offered_load accepted lambda = 0, returned " << a;
      },
      ConfigError);
}

// --- Simulation vs closed form (kernel qualification) -------------------

struct MmcCase {
  double lambda;
  double mu;
  std::size_t servers;
};

class MmcValidation : public ::testing::TestWithParam<MmcCase> {};

TEST_P(MmcValidation, ResponseTimeMatchesClosedForm) {
  const MmcCase c = GetParam();
  OpenNetworkSpec spec;
  spec.lambda = c.lambda;
  spec.mu = c.mu;
  spec.servers = c.servers;
  spec.jobs = 60000;
  spec.warmup_jobs = 6000;
  spec.seed = 7;
  const OpenNetworkResult r = run_open_network(spec);

  const double expected = mmc_mean_response(c.lambda, c.mu, c.servers);
  EXPECT_NEAR(r.mean_response, expected, 0.08 * expected)
      << "lambda=" << c.lambda << " mu=" << c.mu << " c=" << c.servers;
}

TEST_P(MmcValidation, UtilizationMatchesOfferedLoad) {
  const MmcCase c = GetParam();
  OpenNetworkSpec spec;
  spec.lambda = c.lambda;
  spec.mu = c.mu;
  spec.servers = c.servers;
  spec.jobs = 60000;
  spec.warmup_jobs = 6000;
  spec.seed = 11;
  const OpenNetworkResult r = run_open_network(spec);
  const double rho = offered_load(c.lambda, c.mu, c.servers);
  EXPECT_NEAR(r.utilization, rho, 0.05 * rho + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, MmcValidation,
    ::testing::Values(MmcCase{0.3, 1.0, 1}, MmcCase{0.5, 1.0, 1},
                      MmcCase{0.7, 1.0, 1}, MmcCase{0.9, 1.0, 1},
                      MmcCase{1.5, 1.0, 2}, MmcCase{2.5, 1.0, 3},
                      MmcCase{3.5, 1.0, 4}, MmcCase{0.8, 2.0, 1}),
    [](const ::testing::TestParamInfo<MmcCase>& info) {
      const auto& p = info.param;
      return "lambda" + std::to_string(static_cast<int>(p.lambda * 10)) +
             "_c" + std::to_string(p.servers);
    });

TEST(ServiceCenter, DeterministicServiceTimesAreExact) {
  des::Simulation sim;
  ServiceCenter center(sim, 1, [] { return 5.0; }, "det");
  for (std::uint64_t i = 0; i < 4; ++i) center.submit(Job{i, 0.0});
  sim.run();
  EXPECT_EQ(center.completed(), 4u);
  // 4 jobs x 5 cycles back to back.
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
  // Response times: 5, 10, 15, 20 -> mean 12.5.
  EXPECT_DOUBLE_EQ(center.response_stats().mean(), 12.5);
}

TEST(ServiceCenter, DepartureHookFires) {
  des::Simulation sim;
  ServiceCenter center(sim, 1, [] { return 1.0; });
  int departures = 0;
  center.set_on_departure([&](const Job&, double) { ++departures; });
  center.submit(Job{0, 0.0});
  center.submit(Job{1, 0.0});
  sim.run();
  EXPECT_EQ(departures, 2);
}

TEST(ServiceCenter, RejectsNegativeServiceTime) {
  des::Simulation sim;
  ServiceCenter center(sim, 1, [] { return -1.0; });
  center.submit(Job{0, 0.0});
  EXPECT_THROW(sim.run(), LogicError);
}

TEST(DelayCenter, JobsDoNotQueue) {
  des::Simulation sim;
  DelayCenter center(sim, [] { return 10.0; });
  for (std::uint64_t i = 0; i < 8; ++i) center.submit(Job{i, 0.0});
  sim.run();
  EXPECT_EQ(center.completed(), 8u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // all in parallel
  EXPECT_DOUBLE_EQ(center.response_stats().mean(), 10.0);
}

TEST(OpenNetwork, RejectsBadSpecs) {
  OpenNetworkSpec spec;
  spec.lambda = 0.0;
  EXPECT_THROW(
      {
        [[maybe_unused]] const auto& r = run_open_network(spec);
        ADD_FAILURE() << "run_open_network accepted lambda = 0";
      },
      ConfigError);
  spec.lambda = 0.5;
  spec.warmup_jobs = spec.jobs;
  EXPECT_THROW(
      {
        [[maybe_unused]] const auto& r = run_open_network(spec);
        ADD_FAILURE() << "run_open_network accepted warmup >= jobs";
      },
      ConfigError);
}

}  // namespace
}  // namespace pimsim::queueing
