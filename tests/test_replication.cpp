// Replication engine tests: the seed-stream contract (disjoint,
// reproducible, prefix-stable per-rep seeds), the reps=1 bypass
// (bitwise-identical to a plain run), the fold's mean ± half-width
// columns and their ~1/sqrt(R) shrink, the exact pimsim-rep-v1 table
// serialization, sharded replication merges (byte-identical to the
// unsharded sweep for N in {1, 2, 4}), and a statistical-correctness
// check: the folded 95% CI covers a closed-form M/M/1 target at near
// nominal rate over 100 pinned meta-trials.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cli.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "queueing/formulas.hpp"

namespace pimsim::core {
namespace {

namespace fs = std::filesystem;

std::string csv_of(const Table& table) {
  std::ostringstream os;
  table.print_csv(os);
  return os.str();
}

// --- seed streams ---------------------------------------------------------

TEST(ReplicationSeeds, DisjointReproducibleAndPrefixStable) {
  const auto seeds = replication_seeds(64, 1);
  ASSERT_EQ(seeds.size(), 64u);
  EXPECT_EQ(std::set<std::uint64_t>(seeds.begin(), seeds.end()).size(), 64u)
      << "per-rep seeds must be pairwise distinct";
  EXPECT_EQ(replication_seeds(64, 1), seeds) << "stream must be reproducible";

  // Raising reps extends the stream without moving earlier reps: rep r is
  // a pure function of (base_seed, r), which is what lets common-random-
  // number comparisons and sharded reruns agree at any R > r.
  const auto prefix = replication_seeds(4, 1);
  for (std::size_t r = 0; r < prefix.size(); ++r) {
    EXPECT_EQ(prefix[r], seeds[r]) << "rep " << r;
  }
  // The stream is the documented SplitMix64 sequence.
  SplitMix64 sm(1);
  EXPECT_EQ(seeds[0], sm.next());
  EXPECT_EQ(seeds[1], sm.next());

  // Different base seeds give different streams.
  EXPECT_NE(replication_seeds(4, 2), prefix);
  EXPECT_THROW((void)replication_seeds(0, 1), InvalidArgument);
}

// --- a synthetic noisy scenario for engine-level tests --------------------

Scenario noisy_scenario() {
  Scenario s;
  s.name = "noisy";
  s.summary = "synthetic noisy observable for replication tests";
  s.paper = "n/a";
  s.params = {
      {"seed", ParamSpec::Kind::kInt, "1", ">= 0", "base RNG seed"},
      {"reps", ParamSpec::Kind::kInt, "1", ">= 1", "replications"},
  };
  s.make = [](const Config& cfg) {
    Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 1)));
    Table t("noisy", {"case", "count", "x"});
    t.add_row({std::string("unit"), std::int64_t{7}, rng.normal(10.0, 2.0)});
    return t;
  };
  return s;
}

TEST(ReplicationFold, AddsCompanionColumnsAndTitleSuffix) {
  const Scenario scn = noisy_scenario();
  const Table folded = run_scenario(scn, Config::from_string("reps=4 seed=1"));
  EXPECT_EQ(folded.title(), "noisy (4 reps, 95% CI)");
  EXPECT_EQ(folded.columns(),
            (std::vector<std::string>{"case", "case ±", "count", "count ±",
                                      "x", "x ±"}));
  ASSERT_EQ(folded.rows(), 1u);
  // String cells agree across reps and keep an empty companion; int cells
  // identical across reps keep a zero int companion.
  EXPECT_EQ(std::get<std::string>(folded.row(0)[0]), "unit");
  EXPECT_EQ(std::get<std::string>(folded.row(0)[1]), "");
  EXPECT_EQ(std::get<std::int64_t>(folded.row(0)[2]), 7);
  EXPECT_EQ(std::get<std::int64_t>(folded.row(0)[3]), 0);
  EXPECT_GT(folded.number_at(0, 5), 0.0) << "noisy column needs a real CI";
}

TEST(ReplicationFold, RepsOneBypassMatchesPlainRunBitwise) {
  // The two figure scenarios the acceptance list names: reps=1 must be
  // bitwise-identical to a run without the knob.
  const Config fig5 = Config::from_string("maxnodes=8 ops=200000 batch=10000");
  const Config fig5_r1 =
      Config::from_string("maxnodes=8 ops=200000 batch=10000 reps=1");
  EXPECT_EQ(csv_of(run_scenario("fig5", fig5_r1)),
            csv_of(run_scenario("fig5", fig5)));

  const Config fig11 = Config::from_string("nodes=4 horizon=20000");
  const Config fig11_r1 = Config::from_string("nodes=4 horizon=20000 reps=1");
  EXPECT_EQ(csv_of(run_scenario("fig11", fig11_r1)),
            csv_of(run_scenario("fig11", fig11)));
}

TEST(ReplicationFold, BadRepsValuesAreRejectedAtParseTime) {
  for (const char* bad : {"reps=0", "reps=-3"}) {
    try {
      (void)run_scenario("fig5", Config::from_string(bad));
      FAIL() << "expected InvalidArgument for " << bad;
    } catch (const InvalidArgument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("reps"), std::string::npos) << bad;
      EXPECT_NE(what.find(">= 1"), std::string::npos)
          << bad << ": message must name the valid range: " << what;
    }
  }
  try {
    (void)run_scenario("fig5", Config::from_string("reps=2.5"));
    FAIL() << "expected InvalidArgument for reps=2.5";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected int"), std::string::npos) << what;
    EXPECT_NE(what.find(">= 1"), std::string::npos) << what;
  }
}

TEST(ReplicationFold, RunReplicationReproducesTheInProcessFold) {
  // run_replication(r) is the unit the sharded fabric computes in a
  // separate process; folding those units must reproduce run_scenario's
  // in-process fold exactly.
  const Scenario scn = noisy_scenario();
  const Config cfg = Config::from_string("reps=4 seed=9");
  std::vector<Table> reps;
  for (std::size_t r = 0; r < 4; ++r) {
    reps.push_back(run_replication(scn, cfg, r));
  }
  EXPECT_EQ(csv_of(fold_replications(reps)), csv_of(run_scenario(scn, cfg)));

  // Reps are reproducible and pairwise distinct (disjoint seed streams).
  EXPECT_EQ(csv_of(run_replication(scn, cfg, 2)), csv_of(reps[2]));
  EXPECT_NE(csv_of(reps[0]), csv_of(reps[1]));

  // Prefix stability at the table level: rep 2 of a reps=16 run is the
  // same table as rep 2 of the reps=4 run (common random numbers).
  const Config wide = Config::from_string("reps=16 seed=9");
  EXPECT_EQ(csv_of(run_replication(scn, wide, 2)), csv_of(reps[2]));

  EXPECT_THROW((void)run_replication(scn, cfg, 4), InvalidArgument);
}

TEST(ReplicationFold, HalfWidthShrinksLikeOneOverSqrtR) {
  // Average the folded half-width over several pinned base seeds so the
  // scale estimate is stable, then check successive R quadruplings
  // shrink it by ~2x (times the Student-t ratio; ~3x for 4 -> 16).
  const Scenario scn = noisy_scenario();
  const std::vector<std::size_t> reps = {4, 16, 64};
  std::vector<double> avg_hw;
  for (const std::size_t r : reps) {
    double sum = 0.0;
    for (int seed = 1; seed <= 10; ++seed) {
      const Config cfg = Config::from_string(
          "reps=" + std::to_string(r) + " seed=" + std::to_string(seed));
      const Table folded = run_scenario(scn, cfg);
      sum += folded.number_at(0, 5);  // "x ±"
    }
    avg_hw.push_back(sum / 10.0);
  }
  EXPECT_GT(avg_hw[0], avg_hw[1]);
  EXPECT_GT(avg_hw[1], avg_hw[2]);
  // Expected ratios with sigma known: t3/t15 * 2 = 2.99 and
  // t15/t63 * 2 = 2.13; the bands absorb the sampling noise of the
  // per-R scale estimates (deterministic under the pinned seeds).
  EXPECT_GT(avg_hw[0] / avg_hw[1], 2.0);
  EXPECT_LT(avg_hw[0] / avg_hw[1], 4.5);
  EXPECT_GT(avg_hw[1] / avg_hw[2], 1.5);
  EXPECT_LT(avg_hw[1] / avg_hw[2], 3.0);
}

TEST(ReplicationFold, MismatchedTablesAreRejected) {
  Table a("t", {"x"});
  a.add_row({1.0});
  Table b("other", {"x"});
  b.add_row({2.0});
  EXPECT_THROW((void)fold_replications({a, b}), InvalidArgument);

  Table c("t", {"x"});  // row-count mismatch
  EXPECT_THROW((void)fold_replications({a, c}), InvalidArgument);

  Table d("t", {"x"});  // string vs numeric cell
  d.add_row({std::string("s")});
  EXPECT_THROW((void)fold_replications({a, d}), InvalidArgument);

  EXPECT_THROW((void)fold_replications({}), InvalidArgument);
  EXPECT_EQ(csv_of(fold_replications({a})), csv_of(a)) << "single table "
                                                          "passes through";
}

// --- pimsim-rep-v1 serialization ------------------------------------------

TEST(RepSerialization, RoundTripsEveryCellBitForBit) {
  Table t("title with \\ and\nnewline", {"s", "i", "d"});
  t.add_row({std::string("text\nwith breaks"), std::int64_t{-42}, 0.1});
  t.add_row({std::string(""), std::int64_t{1} << 62, -1e300});
  t.add_row({std::string("plain"), std::int64_t{0}, 3.141592653589793});
  const std::string bytes = serialize_table(t);
  const Table back = deserialize_table(bytes);
  EXPECT_EQ(back.title(), t.title());
  EXPECT_EQ(back.columns(), t.columns());
  ASSERT_EQ(back.rows(), t.rows());
  // Bitwise identity: re-serializing reproduces the exact bytes.
  EXPECT_EQ(serialize_table(back), bytes);
  EXPECT_EQ(std::get<std::string>(back.row(0)[0]), "text\nwith breaks");
  EXPECT_EQ(std::get<std::int64_t>(back.row(1)[1]), std::int64_t{1} << 62);
  EXPECT_EQ(back.number_at(0, 2), 0.1);
}

TEST(RepSerialization, MalformedBytesThrowInvalidArgument) {
  const std::string good = serialize_table([] {
    Table t("t", {"x"});
    t.add_row({1.5});
    return t;
  }());
  EXPECT_NO_THROW((void)deserialize_table(good));
  for (const std::string& bad : {
           std::string(),                        // empty
           std::string("pimsim-rep-v2\nt\n1\n"), // wrong schema
           good.substr(0, good.size() - 4),      // truncated
           good + "extra",                       // trailing bytes
       }) {
    EXPECT_THROW((void)deserialize_table(bad), InvalidArgument) << bad;
  }
  // A corrupted cell tag is detected, not misparsed.
  std::string tampered = good;
  const auto pos = tampered.rfind("d ");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos] = 'q';
  EXPECT_THROW((void)deserialize_table(tampered), InvalidArgument);
}

// --- sharded replication axis through the real CLI ------------------------

int run_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "pimsim");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return cli_main(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Scratch grid with a replication axis that mixes R=1 (the bypass,
/// which must run on the raw seed) and R=4 (the folded path) points.
class ReplicatedShardEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    fs::remove_all(root_);
    fs::create_directories(root_);
    std::ofstream cfg(root_ / "grid.cfg");
    cfg << "ops=20000\nnodes=2\nbanks=1,2\nreps=1,4\nseed=3\n";
    cfg.close();
    ASSERT_EQ(run_cli({"sweep", "memory_contention", config(), "format=csv",
                       "out=" + (root_ / "unsharded.csv").string(),
                       "metrics=" + (root_ / "unsharded_metrics.json").string()}),
              0);
    unsharded_ = slurp(root_ / "unsharded.csv");
    ASSERT_FALSE(unsharded_.empty());
  }

  [[nodiscard]] std::string config() const {
    return "config=" + (root_ / "grid.cfg").string();
  }

  int run_shard(std::size_t i, std::size_t n, const std::string& dir) {
    return run_cli({"sweep", "memory_contention", config(), "format=csv",
                    "shard=" + std::to_string(i) + "/" + std::to_string(n),
                    "out=" + (root_ / dir).string()});
  }

  const fs::path root_{"test_replication_tmp"};
  std::string unsharded_;
};

TEST_F(ReplicatedShardEndToEnd, MergeIsByteIdenticalForAnyShardCount) {
  const std::string metrics_ref = slurp(root_ / "unsharded_metrics.json");
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::string dir = "chunks" + std::to_string(n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(run_shard(i, n, dir), 0) << "shard " << i << "/" << n;
    }
    ASSERT_EQ(run_cli({"merge", (root_ / dir).string(),
                       "out=" + (root_ / "merged.csv").string(),
                       "metrics=" + (root_ / "merged_metrics.json").string()}),
              0)
        << n;
    EXPECT_EQ(slurp(root_ / "merged.csv"), unsharded_) << "N=" << n;
    EXPECT_EQ(slurp(root_ / "merged_metrics.json"), metrics_ref) << "N=" << n;
  }
  // The manifest records the replication axis explicitly.
  const std::string manifest = slurp(root_ / "chunks2" / "manifest.json");
  EXPECT_NE(manifest.find("\"replicated\": true"), std::string::npos);
  EXPECT_NE(manifest.find("\"units\""), std::string::npos);
  EXPECT_NE(manifest.find("\"total_units\": 5"), std::string::npos)
      << "reps=1,4 axis = 1 + 4 units (banks is list-typed, not an axis)";
}

TEST_F(ReplicatedShardEndToEnd, TamperedRepChunkIsDetectedThenRecomputed) {
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);
  ASSERT_EQ(run_shard(1, 2, "chunks"), 0);
  {
    std::ofstream tamper(root_ / "chunks" / "chunk-1-of-2.csv",
                         std::ios::app | std::ios::binary);
    tamper << "X";
  }
  EXPECT_NE(run_cli({"merge", (root_ / "chunks").string(),
                     "out=" + (root_ / "merged.csv").string()}),
            0);
  ASSERT_EQ(run_shard(1, 2, "chunks"), 0);  // invalid chunk -> recompute
  ASSERT_EQ(run_cli({"merge", (root_ / "chunks").string(),
                     "out=" + (root_ / "merged.csv").string()}),
            0);
  EXPECT_EQ(slurp(root_ / "merged.csv"), unsharded_);
}

// --- statistical correctness against a closed-form target -----------------

/// M/M/1 waiting-time scenario via the Lindley recursion, one table row
/// per run.  The folded CI is checked against queueing::mm1_mean_wait.
Scenario mm1_scenario() {
  Scenario s;
  s.name = "mm1_wait";
  s.summary = "M/M/1 mean wait via Lindley recursion";
  s.paper = "n/a";
  s.params = {
      {"seed", ParamSpec::Kind::kInt, "1", ">= 0", "base RNG seed"},
      {"reps", ParamSpec::Kind::kInt, "1", ">= 1", "replications"},
  };
  s.make = [](const Config& cfg) {
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    Rng arrivals(seed, 1);
    Rng services(seed, 2);
    const double lambda = 0.8;
    const double mu = 1.0;
    const std::size_t warmup = 400;
    const std::size_t measured = 2600;
    double w = 0.0;
    RunningStats waits;
    for (std::size_t i = 0; i < warmup + measured; ++i) {
      if (i >= warmup) waits.add(w);
      const double service = services.exponential(1.0 / mu);
      const double gap = arrivals.exponential(1.0 / lambda);
      w = std::max(0.0, w + service - gap);  // Lindley: W' = max(0, W+S-A)
    }
    Table t("mm1", {"queue", "mean wait"});
    t.add_row({std::string("M/M/1"), waits.mean()});
    return t;
  };
  return s;
}

TEST(ReplicationCoverage, FoldedCiCoversClosedFormMm1AtNominalRate) {
  // 100 pinned meta-trials of a reps=12 fold; the 95% CI must cover the
  // closed-form mean wait in >= 88 of them (~3 binomial sigma below the
  // nominal 95, so the test is deterministic-strict but not seed-lucky).
  const Scenario scn = mm1_scenario();
  const double truth = queueing::mm1_mean_wait(0.8, 1.0);
  ASSERT_NEAR(truth, 4.0, 1e-12);  // rho/(mu-lambda) = 0.8/0.2
  int covered = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const Config cfg = Config::from_string(
        "reps=12 seed=" + std::to_string(1000 + trial));
    const Table folded = run_scenario(scn, cfg);
    const double mean = folded.number_at(0, 2);      // "mean wait"
    const double half = folded.number_at(0, 3);      // "mean wait ±"
    ASSERT_GT(half, 0.0) << "trial " << trial;
    if (std::abs(mean - truth) <= half) ++covered;
  }
  EXPECT_GE(covered, 88) << "95% CI badly undercovers the M/M/1 target";
  EXPECT_LE(covered, 100);
}

}  // namespace
}  // namespace pimsim::core
