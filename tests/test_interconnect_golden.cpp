// Golden timing tests for the packet network rewrite.
//
// The same mixed uniform+hotspot traffic program (golden_traffic.hpp) is
// pinned against two recordings:
//
//  * kPreRewrite — captured from the PRE-REWRITE coroutine/mailbox engine
//    (PR 3) immediately before it was retired.  The rewritten engine's
//    flit-interleaved mode (PacketConfig::wormhole = false) replays that
//    engine's event cascade sequence-exactly, so every per-packet
//    delivery time, the latency histogram, and the flit-hop totals must
//    match bit for bit.
//  * kWormhole — captured from the rewritten engine's default wormhole
//    mode when it shipped.  Same deliveries and identical flit-hop totals
//    (the coalesced engine is work-conserving); contended latencies may
//    differ from the pre-rewrite model only in how same-cycle ties
//    between packets interleave, and this recording locks that behaviour
//    against regressions.
//
// delivery_hash is FNV-1a over the bit patterns of all 384 per-packet
// delivery times in injection order — any timing drift anywhere flips it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/process.hpp"
#include "des/simulation.hpp"
#include "golden_traffic.hpp"
#include "interconnect/network.hpp"
#include "interconnect/topology.hpp"

namespace pimsim::interconnect {
namespace {

using golden::GoldenSummary;

struct GoldenRecord {
  const char* kind;
  std::uint64_t delivered;
  std::uint64_t flit_hops;
  double max_latency;
  std::uint64_t delivery_hash;
  std::vector<double> first_deliveries;
  std::vector<std::pair<std::size_t, std::uint64_t>> hist_bins;
};

// Recorded from the pre-rewrite engine (PR 3 PacketNetwork) with
// tests/golden_traffic.hpp at packets=24, seed=2026, golden_config().
const GoldenRecord kPreRewrite[] = {
    {"flat", 384ull, 2616ull, 319, 0xd1b544a1f3c837e8ull,
     {12, 15, 22, 31, 35, 45, 49, 48},
     {{0, 311ull}, {1, 52ull}, {2, 21ull}}},
    {"ring", 384ull, 10485ull, 86, 0xc9fb23217e75d221ull,
     {23, 170, 309, 349, 419, 500, 584, 737},
     {{0, 384ull}}},
    {"mesh2d", 384ull, 3375ull, 277, 0x7ba93d70415cec2aull,
     {10, 19, 25, 33, 54, 32, 46, 57},
     {{0, 317ull}, {1, 63ull}, {2, 4ull}}},
    {"torus", 384ull, 2617ull, 138, 0x0cb88b7671f3a97cull,
     {10, 11, 17, 33, 38, 32, 48, 44},
     {{0, 373ull}, {1, 11ull}}},
};

// Recorded from the rewritten engine's default wormhole mode.
const GoldenRecord kWormhole[] = {
    {"flat", 384ull, 2616ull, 318, 0x541e442e4cd0be94ull,
     {10, 15, 23, 31, 35, 42, 49, 48},
     {{0, 312ull}, {1, 52ull}, {2, 20ull}}},
    {"ring", 384ull, 10485ull, 86, 0xbb90ec5f033472abull,
     {23, 170, 309, 349, 414, 500, 584, 733},
     {{0, 384ull}}},
    {"mesh2d", 384ull, 3375ull, 278, 0x70d33cb84644b0a9ull,
     {10, 19, 25, 33, 54, 32, 44, 54},
     {{0, 315ull}, {1, 64ull}, {2, 5ull}}},
    {"torus", 384ull, 2617ull, 138, 0xc802b6e91b630294ull,
     {10, 11, 17, 34, 34, 32, 51, 44},
     {{0, 374ull}, {1, 10ull}}},
};

GoldenSummary run_golden_traffic(const std::string& kind, bool wormhole) {
  des::Simulation sim;
  PacketConfig cfg = golden::golden_config();
  cfg.wormhole = wormhole;
  PacketNetwork net(sim, golden::golden_topology(kind), cfg);
  return golden::run_golden(sim, net, /*packets=*/24,
                            golden::golden_gap_scale(kind), /*seed=*/2026);
}

void expect_matches(const GoldenSummary& got, const GoldenRecord& want) {
  EXPECT_EQ(got.delivered, want.delivered) << want.kind;
  EXPECT_EQ(got.flit_hops, want.flit_hops) << want.kind;
  EXPECT_EQ(got.max_latency, want.max_latency) << want.kind;
  EXPECT_EQ(got.delivery_hash, want.delivery_hash) << want.kind;
  ASSERT_EQ(got.first_deliveries.size(), want.first_deliveries.size());
  for (std::size_t i = 0; i < want.first_deliveries.size(); ++i) {
    EXPECT_EQ(got.first_deliveries[i], want.first_deliveries[i])
        << want.kind << " packet " << i;
  }
  EXPECT_EQ(got.hist_bins, want.hist_bins) << want.kind;
}

TEST(GoldenTiming, FlitInterleavedModeMatchesPreRewriteEngineBitExactly) {
  for (const GoldenRecord& want : kPreRewrite) {
    expect_matches(run_golden_traffic(want.kind, /*wormhole=*/false), want);
  }
}

TEST(GoldenTiming, WormholeModeMatchesItsShippedRecording) {
  for (const GoldenRecord& want : kWormhole) {
    expect_matches(run_golden_traffic(want.kind, /*wormhole=*/true), want);
  }
}

TEST(GoldenTiming, WormholeIsWorkConservingAgainstPreRewrite) {
  // Coalescing must never create or destroy traffic: both modes carry the
  // identical flit-hop totals and deliver every packet on every topology.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(kWormhole[i].delivered, kPreRewrite[i].delivered);
    EXPECT_EQ(kWormhole[i].flit_hops, kPreRewrite[i].flit_hops);
  }
}

TEST(GoldenTiming, ModesAgreeWhereverThereAreNoTies) {
  // A single packet at a time (zero load) admits no arbitration ties, so
  // the two modes must be cycle-identical, multi-flit pipelining and all.
  for (const char* kind : {"flat", "ring", "mesh2d", "torus"}) {
    const Topology topo = golden::golden_topology(kind);
    for (NodeId src = 0; src < 16; src = static_cast<NodeId>(src + 5)) {
      for (NodeId dst = 0; dst < 16; dst = static_cast<NodeId>(dst + 3)) {
        double at[2] = {-1.0, -1.0};
        for (int mode = 0; mode < 2; ++mode) {
          des::Simulation sim;
          PacketConfig cfg = golden::golden_config();
          cfg.wormhole = mode == 1;
          PacketNetwork net(sim, golden::golden_topology(kind), cfg);
          net.send(src, dst, 90, [&, mode] { at[mode] = sim.now(); });
          sim.run();
        }
        EXPECT_EQ(at[0], at[1]) << kind << " " << src << "->" << dst;
        EXPECT_GE(at[0], 0.0);
      }
    }
  }
}

TEST(GoldenTiming, ModesAgreeUnderStaggeredContentionWithoutTies) {
  // Two packets converging on one link at different cycles: B (1->2, one
  // flit, sent at t=2) reaches the 1->2 wire while A's train (0->2, two
  // flits, sent at t=0) is still in flight toward it, so FIFO arbitration
  // must serve B first in both modes — the wormhole engine may not
  // reserve an idle wire for a train whose flits have not arrived.
  for (int mode = 0; mode < 2; ++mode) {
    des::Simulation sim;
    PacketConfig cfg = golden::golden_config();
    cfg.wormhole = mode == 1;
    PacketNetwork net(sim, TopologyBuilder::mesh2d(4, 4), cfg);
    double a_at = -1.0;
    double b_at = -1.0;
    net.send(0, 2, 32, [&] { a_at = sim.now(); });
    sim.schedule_in(2.0, [&] { net.send(1, 2, 8, [&] { b_at = sim.now(); }); });
    sim.run();
    EXPECT_EQ(b_at, 6.0) << "mode " << mode;  // 2 + 1 hop at cost 4
    // B clears the wire at t=3, one cycle before A's head flit arrives,
    // so A still finishes at its zero-load time 2*(1+3) + 1 = 9; a wire
    // reserved early for A's train would instead push B out to t=10.
    EXPECT_EQ(a_at, 9.0) << "mode " << mode;
  }
}

// --- saturation observability --------------------------------------------

des::Process saturating_source(des::Simulation& sim, PacketNetwork& net,
                               NodeId src, int packets) {
  const auto nodes = static_cast<NodeId>(net.topology().nodes());
  for (int i = 0; i < packets; ++i) {
    net.send(src, static_cast<NodeId>((src + 1 + i) % nodes), 64);
    co_await des::delay(sim, 1.0);
  }
}

TEST(Saturation, PacketsInFlightExposesUndrainedTrafficPastSaturation) {
  // Sustained injection far beyond a wrap topology's capacity deadlocks
  // its credit cycle (the model has no virtual channels — a documented
  // limitation).  The simulation then goes quiet with traffic stuck in
  // the network, and packets_in_flight() must expose exactly that.
  for (const char* kind : {"ring", "torus"}) {
    des::Simulation sim;
    PacketNetwork net(sim, TopologyBuilder::build(kind, 16),
                      golden::golden_config());
    for (NodeId n = 0; n < 16; ++n) {
      sim.spawn(saturating_source(sim, net, n, 400));
    }
    sim.run();  // returns once the calendar drains — deadlock, not livelock
    EXPECT_EQ(net.packets_sent(), 6400u) << kind;
    EXPECT_GT(net.packets_in_flight(), 0u) << kind;
    EXPECT_EQ(net.packets_in_flight(),
              net.packets_sent() - net.packets_delivered())
        << kind;
  }
}

TEST(Saturation, TreeRoutedOverloadDrainsCompletely) {
  // The flat crossbar routes as a tree (no credit cycles), so even a
  // saturating blast drains and packets_in_flight() returns to zero —
  // the counter flags deadlock, not mere congestion.
  des::Simulation sim;
  PacketNetwork net(sim, TopologyBuilder::flat(16), golden::golden_config());
  for (NodeId n = 1; n < 16; ++n) {
    sim.spawn(saturating_source(sim, net, n, 200));
  }
  sim.run();
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.packets_delivered(), 3000u);
}

}  // namespace
}  // namespace pimsim::interconnect
