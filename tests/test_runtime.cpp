// Tests for the functional parcel machine (microserver runtime).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "parcel/network.hpp"
#include "parcel/runtime.hpp"

namespace pimsim::parcel {
namespace {

Parcel read_parcel(NodeId dst, std::uint64_t vaddr) {
  Parcel p;
  p.dst = dst;
  p.action = ActionKind::kRead;
  p.target_vaddr = vaddr;
  return p;
}

Parcel amo_parcel(NodeId dst, std::uint64_t vaddr, std::uint64_t delta) {
  Parcel p;
  p.dst = dst;
  p.action = ActionKind::kAmoAdd;
  p.target_vaddr = vaddr;
  p.operands = {delta};
  return p;
}

TEST(ParcelMachine, RemoteReadRoundTrip) {
  des::Simulation sim;
  FlatInterconnect net(100.0);
  ParcelMachine machine(sim, 4, net);
  machine.store(2).write(0x40, 77);

  std::uint64_t got = 0;
  double completed_at = -1.0;
  auto client = [](des::Simulation& s, ParcelMachine& m, std::uint64_t* out,
                   double* when) -> des::Process {
    auto handle = m.request(0, read_parcel(2, 0x40));
    co_await handle.wait();
    *out = handle.value();
    *when = s.now();
  };
  sim.spawn(client(sim, machine, &got, &completed_at));
  sim.run_until(10'000.0);

  EXPECT_EQ(got, 77u);
  // Round trip (100) + dispatch+memory (24) + reply issue (1).
  EXPECT_NEAR(completed_at, 125.0, 1e-9);
  EXPECT_EQ(machine.node_stats(2).parcels_executed, 1u);
  EXPECT_EQ(machine.node_stats(2).replies_returned, 1u);
}

TEST(ParcelMachine, AtomicsLinearizeAtHomeNode) {
  des::Simulation sim;
  FlatInterconnect net(50.0);
  ParcelMachine machine(sim, 4, net);

  auto client = [](ParcelMachine& m, NodeId src, int count) -> des::Process {
    for (int i = 0; i < count; ++i) {
      auto handle = m.request(src, amo_parcel(3, 0x8, 1));
      co_await handle.wait();
    }
  };
  // Three concurrent clients on different nodes, all incrementing the
  // same remote word.
  sim.spawn(client(machine, 0, 10));
  sim.spawn(client(machine, 1, 10));
  sim.spawn(client(machine, 2, 10));
  sim.run_until(100'000.0);

  EXPECT_EQ(machine.store(3).read(0x8), 30u);
  EXPECT_EQ(machine.node_stats(3).parcels_executed, 30u);
}

TEST(ParcelMachine, PostIsFireAndForget) {
  des::Simulation sim;
  FlatInterconnect net(10.0);
  ParcelMachine machine(sim, 2, net);
  Parcel w;
  w.dst = 1;
  w.action = ActionKind::kWrite;
  w.target_vaddr = 0x10;
  w.operands = {5};
  machine.post(0, w);
  // An AMO posted fire-and-forget produces a value, which must be dropped.
  machine.post(0, amo_parcel(1, 0x10, 3));
  sim.run_until(1'000.0);
  EXPECT_EQ(machine.store(1).read(0x10), 8u);
  EXPECT_EQ(machine.node_stats(1).replies_returned, 0u);
}

TEST(ParcelMachine, MethodInvocationOnObject) {
  des::Simulation sim;
  FlatInterconnect net(20.0);
  ParcelMachine machine(sim, 2, net);
  // A "list-append" style method: bump the count at the target object and
  // return the new length.
  machine.registry().register_method(
      9, "append", [](MemoryStore& store, std::uint64_t vaddr,
                      std::span<const std::uint64_t> ops) {
        const std::uint64_t len = store.read(vaddr) + 1;
        store.write(vaddr, len);
        if (!ops.empty()) store.write(vaddr + 8 * len, ops[0]);
        return std::optional<std::uint64_t>(len);
      });

  std::uint64_t final_len = 0;
  auto client = [](ParcelMachine& m, std::uint64_t* out) -> des::Process {
    for (int i = 0; i < 4; ++i) {
      Parcel p;
      p.dst = 1;
      p.action = ActionKind::kMethod;
      p.method_id = 9;
      p.target_vaddr = 0x100;
      p.operands = {static_cast<std::uint64_t>(100 + i)};
      auto handle = m.request(0, p);
      co_await handle.wait();
      *out = handle.value();
    }
  };
  sim.spawn(client(machine, &final_len));
  sim.run_until(10'000.0);

  EXPECT_EQ(final_len, 4u);
  EXPECT_EQ(machine.store(1).read(0x100), 4u);
  EXPECT_EQ(machine.store(1).read(0x100 + 8), 100u);
  EXPECT_EQ(machine.store(1).read(0x100 + 32), 103u);
}

TEST(ParcelMachine, WireBytesAreAccounted) {
  des::Simulation sim;
  FlatInterconnect net(10.0);
  ParcelMachine machine(sim, 2, net);
  std::uint64_t got = 0;
  double when = 0.0;
  auto client = [](des::Simulation& s, ParcelMachine& m, std::uint64_t* out,
                   double* when_out) -> des::Process {
    auto handle = m.request(0, read_parcel(1, 0));
    co_await handle.wait();
    *out = handle.value();
    *when_out = s.now();
  };
  sim.spawn(client(sim, machine, &got, &when));
  sim.run_until(1'000.0);
  // One request (41 bytes, no operands) + one reply (49 bytes, 1 operand).
  EXPECT_EQ(machine.node_stats(0).bytes_sent, 41u);
  EXPECT_EQ(machine.node_stats(1).bytes_sent, 49u);
  EXPECT_EQ(machine.total_bytes_on_wire(), 90u);
}

TEST(ParcelMachine, HomeShardingCoversAllNodes) {
  des::Simulation sim;
  FlatInterconnect net(10.0);
  ParcelMachine machine(sim, 4, net);
  std::vector<int> hits(4, 0);
  for (std::uint64_t a = 0; a < 64; ++a) ++hits[machine.home_of(a * 8)];
  for (int h : hits) EXPECT_EQ(h, 16);
}

TEST(ParcelMachine, RejectsBadNodesAndEarlyValue) {
  des::Simulation sim;
  FlatInterconnect net(10.0);
  ParcelMachine machine(sim, 2, net);
  EXPECT_THROW((void)machine.request(7, read_parcel(0, 0)), ConfigError);
  EXPECT_THROW((void)machine.request(0, read_parcel(9, 0)), ConfigError);
  EXPECT_THROW((void)machine.store(5), ConfigError);
  auto handle = machine.request(0, read_parcel(1, 0));
  EXPECT_FALSE(handle.done());
  EXPECT_THROW((void)handle.value(), ConfigError);  // not completed yet
}

}  // namespace
}  // namespace pimsim::parcel
