// Semantics the event-kernel rewrite must preserve (and the bugs it
// fixes): void-action requests completing, step()/run()/run_until()
// equivalence, cancel-during-dispatch, the cancelled-event calendar
// leak, and bitwise determinism of the Figure 12 pipeline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "core/figures.hpp"
#include "des/audit.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "parcel/network.hpp"
#include "parcel/runtime.hpp"

namespace pimsim {
namespace {

// --- void-action request/reply (the split-transaction hang) -------------

parcel::Parcel write_parcel(parcel::NodeId dst, std::uint64_t vaddr,
                            std::uint64_t value) {
  parcel::Parcel p;
  p.dst = dst;
  p.action = parcel::ActionKind::kWrite;
  p.target_vaddr = vaddr;
  p.operands = {value};
  return p;
}

TEST(ParcelMachineSemantics, VoidActionRequestCompletes) {
  des::Simulation sim;
  parcel::FlatInterconnect net(100.0);
  parcel::ParcelMachine machine(sim, 2, net);

  bool completed = false;
  auto client = [](parcel::ParcelMachine& m, bool* done) -> des::Process {
    // A write returns no value; the request must still complete via an
    // empty-operand reply rather than hanging the driver forever.
    auto handle = m.request(0, write_parcel(1, 0x20, 9));
    co_await handle.wait();
    EXPECT_TRUE(handle.done());
    EXPECT_THROW((void)handle.value(), ConfigError);  // no value to read
    *done = true;
  };
  sim.spawn(client(machine, &completed));
  machine.run();

  EXPECT_TRUE(completed);
  EXPECT_EQ(machine.store(1).read(0x20), 9u);
  EXPECT_EQ(machine.node_stats(1).replies_returned, 1u);
  EXPECT_EQ(machine.outstanding_requests(), 0u);
}

TEST(ParcelMachineSemantics, RunSurfacesStuckDrivers) {
  des::Simulation sim;
  parcel::FlatInterconnect net(10.0);
  parcel::ParcelMachine machine(sim, 2, net);

  // A driver that suspends on a trigger nobody fires: the old engine
  // exited run() silently in this situation; now it must throw.
  des::Trigger never(sim);
  auto stuck = [](des::Trigger& t) -> des::Process { co_await t.wait(); };
  sim.spawn(stuck(never));
  EXPECT_THROW(machine.run(), LogicError);
}

TEST(ParcelMachineSemantics, RunToleratesDeclaredIdleProcesses) {
  des::Simulation sim;
  parcel::FlatInterconnect net(10.0);
  parcel::ParcelMachine machine(sim, 2, net);

  // An app-level server that legitimately idles forever, like the node
  // engines do: declaring it keeps run() from calling it a stuck driver.
  des::Mailbox<int> requests(sim, "server.in");
  auto server = [](des::Mailbox<int>& in) -> des::Process {
    for (;;) (void)co_await in.receive();
  };
  sim.spawn(server(requests));
  EXPECT_THROW(machine.run(), LogicError);
  EXPECT_NO_THROW(machine.run(/*extra_idle_processes=*/1));
}

TEST(ParcelMachineSemantics, PostedVoidActionsStillSkipReplies) {
  des::Simulation sim;
  parcel::FlatInterconnect net(10.0);
  parcel::ParcelMachine machine(sim, 2, net);
  machine.post(0, write_parcel(1, 0x8, 3));
  machine.run();
  EXPECT_EQ(machine.store(1).read(0x8), 3u);
  EXPECT_EQ(machine.node_stats(1).replies_returned, 0u);
}

// --- kernel dispatch semantics ------------------------------------------

/// A workload exercising same-time FIFO, future events, and cancels.
struct KernelTrace {
  std::vector<int> order;
  std::uint64_t dispatched = 0;
  double final_time = 0.0;
};

KernelTrace run_workload(int mode /* 0=run, 1=step, 2=sliced run_until */) {
  des::Simulation sim;
  KernelTrace out;
  sim.schedule_at(5.0, [&] { out.order.push_back(1); });
  sim.schedule_at(5.0, [&] {
    out.order.push_back(2);
    sim.schedule_now([&] { out.order.push_back(4); });
    sim.schedule_in(2.5, [&] { out.order.push_back(5); });
  });
  const des::EventId doomed =
      sim.schedule_at(6.0, [&] { out.order.push_back(99); });
  sim.schedule_at(5.0, [&] { out.order.push_back(3); });
  EXPECT_TRUE(sim.cancel(doomed));
  sim.schedule_at(10.0, [&] { out.order.push_back(6); });

  if (mode == 0) {
    sim.run();
  } else if (mode == 1) {
    while (sim.step()) {
    }
  } else {
    for (double t = 0.5; t < 12.0; t += 0.5) sim.run_until(t);
    sim.run();
  }
  out.dispatched = sim.events_dispatched();
  out.final_time = sim.now();
  return out;
}

TEST(SimulationSemantics, StepRunAndRunUntilAreEquivalent) {
  const KernelTrace by_run = run_workload(0);
  const KernelTrace by_step = run_workload(1);
  const KernelTrace by_slice = run_workload(2);

  const std::vector<int> expected{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(by_run.order, expected);
  EXPECT_EQ(by_step.order, expected);
  EXPECT_EQ(by_slice.order, expected);
  EXPECT_EQ(by_run.dispatched, by_step.dispatched);
  EXPECT_EQ(by_run.dispatched, by_slice.dispatched);
  // run_until() parks the clock at the horizon; run()/step() stop at the
  // last event.
  EXPECT_DOUBLE_EQ(by_run.final_time, 10.0);
  EXPECT_DOUBLE_EQ(by_step.final_time, 10.0);
}

TEST(SimulationSemantics, CancelDuringDispatch) {
  des::Simulation sim;
  bool later_fired = false;
  des::EventId later = des::kInvalidEvent;
  // An event that cancels a same-timestamp successor mid-dispatch.
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(later)); });
  later = sim.schedule_at(1.0, [&] { later_fired = true; });
  sim.run();
  EXPECT_FALSE(later_fired);
  EXPECT_EQ(sim.events_dispatched(), 1u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulationSemantics, SelfCancelInsideCallbackIsNoOp) {
  des::Simulation sim;
  des::EventId id = des::kInvalidEvent;
  int fired = 0;
  id = sim.schedule_at(2.0, [&] {
    ++fired;
    EXPECT_FALSE(sim.cancel(id));  // the dispatching event is gone already
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationSemantics, EventIdsAreNotConfusedAcrossSlotReuse) {
  des::Simulation sim;
  bool first_fired = false;
  bool second_fired = false;
  const des::EventId first = sim.schedule_at(1.0, [&] { first_fired = true; });
  EXPECT_TRUE(sim.cancel(first));
  // The slot is recycled: the stale id must not cancel the new event.
  const des::EventId second =
      sim.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.cancel(first));
  sim.run();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
}

// --- the cancelled-event calendar leak ----------------------------------

TEST(SimulationSemantics, CancelledFarFutureEventsDoNotAccumulate) {
  des::Simulation sim;
  // Pre-rewrite, each cancelled far-future timeout left a calendar entry
  // alive until its (never-reached) timestamp: a million cancelled
  // timeouts meant a million dead heap nodes.  The slot-pool kernel
  // bounds the calendar to O(live events).
  constexpr int kTimeouts = 1'000'000;
  std::size_t max_entries = 0;
  for (int i = 0; i < kTimeouts; ++i) {
    const des::EventId id =
        sim.schedule_at(1e12 + static_cast<double>(i), [] {});
    ASSERT_TRUE(sim.cancel(id));
    max_entries = std::max(max_entries, sim.calendar_entries());
  }
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_LE(max_entries, 128u);  // compaction floor, not O(kTimeouts)
  EXPECT_LE(sim.calendar_entries(), 128u);
  sim.run();  // whatever remains must drain without firing anything
  EXPECT_EQ(sim.events_dispatched(), 0u);
}

TEST(SimulationSemantics, CancelHeavyMixedLoadKeepsCalendarBounded) {
  des::Simulation sim;
  std::uint64_t fired = 0;
  constexpr int kOps = 100'000;
  for (int i = 0; i < kOps; ++i) {
    // One live near event per ten cancelled far timeouts.
    for (int j = 0; j < 10; ++j) {
      const des::EventId t = sim.schedule_at(1e9 + i * 10.0 + j, [] {});
      ASSERT_TRUE(sim.cancel(t));
    }
    sim.schedule_at(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_LE(sim.calendar_entries(), 2u * sim.events_pending() + 128u);
  sim.run();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kOps));
}

// --- figure pipeline determinism ----------------------------------------

TEST(FigureDeterminism, Fig12BitwiseIdenticalAcrossSweepThreads) {
  core::ParcelFigureConfig cfg;
  cfg.base.horizon = 4'000.0;
  cfg.base.round_trip_latency = 200.0;
  cfg.base.p_remote = 0.2;
  cfg.base.seed = 7;
  cfg.parallelism = {1, 4, 16};
  cfg.node_counts = {4, 16};
  auto render = [&](std::size_t threads) {
    core::ParcelFigureConfig c = cfg;
    c.sweep_threads = threads;
    std::ostringstream os;
    core::make_fig12(c).print_csv(os);
    return os.str();
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(3));
  EXPECT_EQ(serial, render(8));
  EXPECT_FALSE(serial.empty());
}

// --- determinism audit mode (des/audit.hpp) ------------------------------

/// An audited kernel workload long enough to cross checkpoint windows;
/// `first_time` perturbs the very first dispatched event.
des::AuditLog audited_workload(double first_time) {
  des::Simulation sim;
  sim.set_audit(true);
  sim.schedule_at(first_time, [] {});
  for (int i = 0; i < 1500; ++i) {
    sim.schedule_at(10.0 + i, [] {});
  }
  sim.run();
  EXPECT_TRUE(sim.audit_enabled());
  return *sim.audit_log();
}

TEST(AuditMode, ChainIsIdenticalAcrossReruns) {
  const des::AuditLog a = audited_workload(1.0);
  const des::AuditLog b = audited_workload(1.0);
  EXPECT_EQ(a.events(), 1501u);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.checkpoints(), b.checkpoints());
  EXPECT_FALSE(des::first_divergence(a, b).has_value());
}

TEST(AuditMode, DivergenceIsLocalizedToTheFirstDifferingWindow) {
  const des::AuditLog a = audited_workload(1.0);
  const des::AuditLog c = audited_workload(2.0);  // event 0 differs
  EXPECT_NE(a.hash(), c.hash());
  const auto div = des::first_divergence(a, c);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(*div, 0u);  // start of the first checkpoint window
}

TEST(AuditMode, InvariantSweepCatchesInjectedHeapCorruption) {
  des::Simulation sim;
  sim.set_audit(true);
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(1.0 + i, [] {});
  }
  sim.audit_check_now();  // healthy kernel: no throw
  sim.corrupt_heap_for_test();
  EXPECT_THROW(sim.audit_check_now(), LogicError);
  // The amortized sweep inside dispatch catches it too.
  EXPECT_THROW(sim.run(), LogicError);
}

TEST(AuditMode, Fig12RegistryChainIdenticalAcrossSweepThreads) {
  // The env seam is how `pimsim verify audit=1` reaches simulations
  // constructed inside figure generators on sweep worker threads.
  ::setenv("PIMSIM_AUDIT", "1", 1);
  core::ParcelFigureConfig cfg;
  cfg.base.horizon = 2'000.0;
  cfg.base.seed = 7;
  cfg.parallelism = {1, 4};
  cfg.node_counts = {4};
  auto chain_of = [&](std::size_t threads) {
    core::ParcelFigureConfig c = cfg;
    c.sweep_threads = threads;
    des::AuditRegistry::global().reset();
    std::ostringstream os;
    core::make_fig12(c).print_csv(os);
    return des::AuditRegistry::global().snapshot();
  };
  const auto serial = chain_of(1);
  const auto parallel = chain_of(3);
  ::unsetenv("PIMSIM_AUDIT");
  EXPECT_GT(serial.simulations, 0u);
  EXPECT_GT(serial.events, 0u);
  EXPECT_TRUE(serial == parallel);
  EXPECT_EQ(serial.combined, parallel.combined);
}

}  // namespace
}  // namespace pimsim
