// Tests for the observability layer: metrics registry, Chrome trace
// exporter, bounded Tracer buffer, and the kernel self-profiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "des/trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace pimsim::obs {
namespace {

// --- JSON well-formedness ------------------------------------------------

/// Minimal structural validator: balanced {}/[] outside strings, escape
/// handling, and nothing but whitespace after the document closes.  Not a
/// grammar check (CI additionally runs python3 -m json.tool), but enough
/// to catch truncation, stray commas leaking braces, and unescaped quotes.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool closed = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (closed && c != ' ' && c != '\n' && c != '\t') return false;
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        if (depth == 0) closed = true;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && closed;
}

// --- Tracer buffer -------------------------------------------------------

TEST(Tracer, BoundedBufferKeepsFirstAndCountsDrops) {
  des::Tracer tracer(nullptr, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.record({static_cast<double>(i), static_cast<std::uint64_t>(i), 0, 0,
                   des::TraceKind::kInstant});
  }
  ASSERT_EQ(tracer.records().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Keep-first: the records that survive are the earliest ones, so async
  // span begins are preserved under saturation.
  EXPECT_EQ(tracer.records()[0].a, 0u);
  EXPECT_EQ(tracer.records()[3].a, 3u);
}

TEST(Tracer, InternIsIdempotentAndLabelZeroIsEmpty) {
  des::Tracer tracer;
  EXPECT_EQ(tracer.label(0), "");
  const des::LabelId a = tracer.intern("net.link0");
  const des::LabelId b = tracer.intern("net.link1");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.intern("net.link0"), a);
  EXPECT_EQ(tracer.label(a), "net.link0");
}

TEST(Tracer, KindMaskFiltersRecords) {
  des::Tracer tracer;
  tracer.set_kind_mask(des::Tracer::kDefaultKinds);
  tracer.record({0.0, 1, 0, 0, des::TraceKind::kEventScheduled});  // masked
  tracer.record({0.0, 2, 0, 0, des::TraceKind::kCounter});
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].kind, des::TraceKind::kCounter);
  EXPECT_EQ(tracer.dropped(), 0u);  // masked records are not "drops"
}

// --- metrics primitives --------------------------------------------------

TEST(Metrics, CounterGaugeSummaryBasics) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.counter("c").add(4);
  EXPECT_EQ(reg.counter("c").value(), 7u);

  Gauge& g = reg.gauge("g");
  g.set(0.0, 2.0);
  g.add(10.0, 3.0);  // value 2 held over [0,10)
  g.set(20.0, 0.0);  // value 5 held over [10,20)
  EXPECT_DOUBLE_EQ(g.current(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
  EXPECT_DOUBLE_EQ(g.mean(), (2.0 * 10.0 + 5.0 * 10.0) / 20.0);

  Summary& s = reg.summary("s");
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.stats().min(), 1.0);
  EXPECT_DOUBLE_EQ(s.stats().max(), 100.0);
  EXPECT_NEAR(s.stats().mean(), 50.5, 1e-9);
  // The power-of-two sketch is coarse; quantiles land on bin edges but
  // must be monotone and clamped to the observed range.
  const double p50 = s.quantile(0.5);
  const double p99 = s.quantile(0.99);
  EXPECT_GE(p50, s.stats().min());
  EXPECT_LE(p99, s.stats().max());
  EXPECT_LE(p50, p99);
}

TEST(Metrics, KindClashThrows) {
  MetricsRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), LogicError);
  EXPECT_THROW((void)reg.summary("x"), LogicError);
}

TEST(Metrics, FingerprintIsRegistrationOrderIndependent) {
  MetricsRegistry a;
  a.counter("one").add(1);
  a.summary("two").add(2.0);
  MetricsRegistry b;
  b.summary("two").add(2.0);
  b.counter("one").add(1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Metrics, JsonAndCsvAreWellFormed) {
  MetricsRegistry reg;
  reg.counter("events").add(42);
  reg.gauge("depth").set(0.0, 1.0);
  reg.summary("latency").add(3.5);
  std::ostringstream json;
  reg.write_json(json, /*simulations=*/1);
  EXPECT_TRUE(json_balanced(json.str()));
  std::ostringstream csv;
  reg.write_csv(csv);
  // Header plus one line per metric.
  const std::string csv_text = csv.str();
  EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 4);
}

// --- hub determinism across absorption order -----------------------------

TEST(MetricsHub, AggregateIsAbsorptionOrderIndependent) {
  // Three per-simulation registries with overlapping names, absorbed
  // serially vs from three threads: the aggregate must serialize
  // identically (the hub folds in content order, not arrival order).
  const auto make = [](int i) {
    MetricsRegistry r;
    r.counter("runs").add(1);
    r.summary("latency").add(10.0 * (i + 1));
    r.gauge("depth").set(0.0, static_cast<double>(i));
    r.gauge("depth").set(5.0, 0.0);
    return r;
  };

  MetricsHub& hub = MetricsHub::global();
  hub.reset();
  for (int i = 0; i < 3; ++i) hub.absorb(make(i));
  std::ostringstream serial;
  hub.write_json(serial);

  hub.reset();
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int i = 2; i >= 0; --i) {
    threads.emplace_back([&hub, &make, i] { hub.absorb(make(i)); });
  }
  for (auto& t : threads) t.join();
  std::ostringstream parallel;
  hub.write_json(parallel);

  EXPECT_EQ(serial.str(), parallel.str());
  EXPECT_EQ(hub.simulations(), 3u);
  hub.reset();
}

TEST(MetricsHub, SnapshotBytesRoundTripExactly) {
  // The cross-process seam of the sharded sweep fabric: a snapshot
  // exported by snapshot_bytes() and reinstated with absorb_bytes() (in
  // another process, via a chunk sidecar) must fold bit-identically to
  // absorbing the original registry.
  const auto make = [](int i) {
    MetricsRegistry r;
    r.counter("runs").add(static_cast<std::uint64_t>(i) + 1);
    r.summary("latency").add(0.1 * (i + 1));  // non-representable doubles
    r.summary("latency").add(1e17);           // exercises m2 exactness
    r.gauge("depth").set(0.0, 0.3 * i);
    r.gauge("depth").set(7.7, 0.0);
    return r;
  };

  MetricsHub& hub = MetricsHub::global();
  hub.reset();
  for (int i = 0; i < 3; ++i) hub.absorb(make(i));
  std::ostringstream direct;
  hub.write_json(direct);
  const std::vector<std::string> shipped = hub.snapshot_bytes();
  ASSERT_EQ(shipped.size(), 3u);

  hub.reset();
  for (const std::string& bytes : shipped) {
    // Round trip through deserialize as well as absorb_bytes: the
    // restored registry must fingerprint identically to its source.
    (void)MetricsRegistry::deserialize(bytes);
    hub.absorb_bytes(bytes);
  }
  std::ostringstream refolded;
  hub.write_json(refolded);
  EXPECT_EQ(direct.str(), refolded.str());
  EXPECT_EQ(hub.simulations(), 3u);
  hub.reset();

  EXPECT_THROW(hub.absorb_bytes("corrupt"), ConfigError);
}

// --- Chrome trace exporter -----------------------------------------------

/// Pinned scripted workload exercising mailboxes, resources, async spans,
/// and counter tracks through a traced Simulation.
des::Tracer scripted_trace() {
  des::Simulation sim;
  sim.set_trace(true);
  const des::LabelId span = sim.trace_label("request");
  const des::LabelId depth = sim.trace_label("queue.depth");

  des::Mailbox<int> box(sim, "box");
  des::Resource port(sim, 1, "port");

  sim.spawn([](des::Simulation& s, des::Mailbox<int>& b, des::Resource& p,
               des::LabelId sp, des::LabelId dp) -> des::Process {
    for (int i = 0; i < 3; ++i) {
      if (s.tracing_enabled()) {
        s.trace(des::TraceKind::kAsyncBegin, sp, static_cast<std::uint64_t>(i));
      }
      co_await p.acquire();
      co_await des::delay(s, 2.0);
      p.release();
      if (s.tracing_enabled()) {
        s.trace(des::TraceKind::kCounter, dp, static_cast<std::uint64_t>(i));
      }
      b.send(i);
      if (s.tracing_enabled()) {
        s.trace(des::TraceKind::kAsyncEnd, sp, static_cast<std::uint64_t>(i));
      }
    }
  }(sim, box, port, span, depth));
  sim.spawn([](des::Mailbox<int>& b) -> des::Process {
    for (int i = 0; i < 3; ++i) (void)co_await b.receive();
  }(box));
  sim.run();

  // Detach the owned tracer's state before the Simulation dies.
  des::Tracer copy;
  ensure(sim.tracer() != nullptr, "scripted_trace: tracing is on");
  for (const std::string& l : sim.tracer()->labels()) {
    (void)copy.intern(l);
  }
  for (const des::TraceRecord& r : sim.tracer()->records()) copy.record(r);
  return copy;
}

TEST(ChromeTrace, ExportIsWellFormedAndDeterministic) {
  const des::Tracer first = scripted_trace();
  const des::Tracer second = scripted_trace();
  EXPECT_FALSE(first.records().empty());

  const auto blob = [](const des::Tracer& t) {
    return TraceBlob{t.labels(), t.records(), t.dropped()};
  };
  std::ostringstream a;
  write_chrome_trace(a, {blob(first), blob(second)});
  std::ostringstream b;
  write_chrome_trace(b, {blob(second), blob(first)});

  EXPECT_TRUE(json_balanced(a.str()));
  // Bit-identical across reruns AND across blob arrival order (the
  // exporter sorts by content before assigning pids).
  EXPECT_EQ(a.str(), b.str());
  // The async span and counter tracks survived into the document.
  EXPECT_NE(a.str().find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(a.str().find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(a.str().find("pimsim-trace-v1"), std::string::npos);
}

TEST(ChromeTrace, DropCounterReachesDocumentMetadata) {
  des::Tracer tracer(nullptr, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    tracer.record({0.0, 0, 0, 0, des::TraceKind::kInstant});
  }
  std::ostringstream os;
  write_chrome_trace(os, {TraceBlob{tracer.labels(), tracer.records(),
                                    tracer.dropped()}});
  EXPECT_TRUE(json_balanced(os.str()));
  EXPECT_NE(os.str().find("\"dropped\": 3"), std::string::npos);
}

// --- kernel profiler -----------------------------------------------------

TEST(Profiler, KindCountsAreExact) {
  des::Simulation sim;
  sim.set_profile(true);
  ASSERT_TRUE(sim.profile_enabled());

  // 10 small lambdas (fit the inline buffer)...
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0 + i, [] {});
  }
  // ...one boxed callable (capture larger than EventAction::kInlineSize)...
  std::array<char, 64> big{};
  sim.schedule_at(20.0, [big] { (void)big; });
  // ...one static-call event...
  sim.schedule_static_at(
      21.0, [](void*, std::uint64_t, std::uint64_t) {}, nullptr, 0, 0);
  // ...and a process whose delays dispatch as coroutine resumes.
  sim.spawn([](des::Simulation& s) -> des::Process {
    co_await des::delay(s, 5.0);
    co_await des::delay(s, 5.0);
  }(sim));
  sim.run();

  const KernelProfiler* prof = sim.profiler();
  ASSERT_NE(prof, nullptr);
  const auto& stats = prof->stats();
  EXPECT_EQ(stats[2].dispatches, 10u);  // kSmall
  EXPECT_EQ(stats[3].dispatches, 1u);   // kBoxed
  EXPECT_EQ(stats[4].dispatches, 1u);   // kStatic
  EXPECT_GE(stats[1].dispatches, 2u);   // kResume: two delays at least
  EXPECT_EQ(prof->total_dispatches(), sim.events_dispatched());
}

TEST(Profiler, MergeAddsCountsAndTableRenders) {
  KernelProfiler a;
  a.count(2);
  a.count(2);
  KernelProfiler b;
  b.count(4);
  a.merge(b);
  EXPECT_EQ(a.stats()[2].dispatches, 2u);
  EXPECT_EQ(a.stats()[4].dispatches, 1u);
  EXPECT_EQ(a.total_dispatches(), 3u);
  EXPECT_STREQ(KernelProfiler::kind_name(2), "small");
}

}  // namespace
}  // namespace pimsim::obs
