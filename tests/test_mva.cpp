// Tests for exact Mean Value Analysis and its use in the parcel model.
#include <gtest/gtest.h>

#include "analytic/parcel_model.hpp"
#include "common/error.hpp"
#include "parcel/system.hpp"
#include "queueing/mva.hpp"

namespace pimsim::queueing {
namespace {

TEST(Mva, SingleQueueSaturatesAtOneOverS) {
  const std::vector<Station> net = {{Station::Kind::kQueueing, 2.0, 1.0}};
  for (std::size_t n : {1, 2, 8, 64}) {
    const MvaResult r = mva(net, n);
    EXPECT_NEAR(r.throughput, 0.5, 1e-12) << n;  // always the bottleneck rate
    EXPECT_NEAR(r.queue_length[0], static_cast<double>(n), 1e-9);
  }
}

TEST(Mva, DelayOnlyNetworkScalesLinearly) {
  const std::vector<Station> net = {{Station::Kind::kDelay, 10.0, 1.0}};
  for (std::size_t n : {1, 4, 16}) {
    const MvaResult r = mva(net, n);
    EXPECT_NEAR(r.throughput, static_cast<double>(n) / 10.0, 1e-12);
  }
}

TEST(Mva, HandComputedTwoCustomerCase) {
  // Machine repairman: think time Z = 4 (delay), repair S = 1 (queueing).
  const std::vector<Station> net = {{Station::Kind::kDelay, 4.0, 1.0},
                                    {Station::Kind::kQueueing, 1.0, 1.0}};
  // n=1: R = 4 + 1 = 5, X = 0.2, Q_queue = 0.2.
  const MvaResult one = mva(net, 1);
  EXPECT_NEAR(one.throughput, 0.2, 1e-12);
  // n=2: R_queue = 1*(1+0.2) = 1.2, total = 5.2, X = 2/5.2.
  const MvaResult two = mva(net, 2);
  EXPECT_NEAR(two.throughput, 2.0 / 5.2, 1e-12);
  EXPECT_NEAR(two.utilization[1], 2.0 / 5.2, 1e-12);
}

TEST(Mva, VisitRatiosScaleDemand) {
  // Two queueing stations, the second visited twice per circulation.
  const std::vector<Station> net = {{Station::Kind::kQueueing, 1.0, 1.0},
                                    {Station::Kind::kQueueing, 1.0, 2.0}};
  const MvaResult r = mva(net, 50);
  // Bottleneck demand = 2.0 -> X -> 0.5, station 2 utilization -> 1.
  EXPECT_NEAR(r.throughput, 0.5, 0.01);
  EXPECT_NEAR(r.utilization[1], 1.0, 0.02);
  EXPECT_NEAR(r.utilization[0], 0.5, 0.02);
}

TEST(Mva, ThroughputMonotoneInPopulation) {
  const std::vector<Station> net = {{Station::Kind::kDelay, 20.0, 1.0},
                                    {Station::Kind::kQueueing, 3.0, 1.0}};
  double prev = 0.0;
  for (std::size_t n = 1; n <= 32; ++n) {
    const double x = mva(net, n).throughput;
    EXPECT_GE(x, prev - 1e-12);
    EXPECT_LE(x, 1.0 / 3.0 + 1e-12);  // bottleneck bound
    prev = x;
  }
}

TEST(Mva, LittleLawHoldsPerStation) {
  const std::vector<Station> net = {{Station::Kind::kDelay, 7.0, 1.0},
                                    {Station::Kind::kQueueing, 2.0, 1.5}};
  const MvaResult r = mva(net, 10);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_NEAR(r.queue_length[i], r.throughput * r.residence[i], 1e-9);
  }
  // Populations sum to N.
  EXPECT_NEAR(r.queue_length[0] + r.queue_length[1], 10.0, 1e-9);
}

TEST(Mva, RejectsBadInput) {
  EXPECT_THROW(mva({}, 1), ConfigError);
  EXPECT_THROW(mva({{Station::Kind::kQueueing, 1.0, 1.0}}, 0), ConfigError);
  EXPECT_THROW(mva({{Station::Kind::kQueueing, -1.0, 1.0}}, 1), ConfigError);
}

}  // namespace
}  // namespace pimsim::queueing

namespace pimsim::analytic {
namespace {

parcel::SplitTransactionParams knee_params() {
  parcel::SplitTransactionParams p;
  p.nodes = 8;
  p.horizon = 40'000.0;
  p.round_trip_latency = 500.0;
  p.seed = 7;
  return p;
}

TEST(ParcelMva, AgreesWithTwoRegimeModelAwayFromKnee) {
  auto p = knee_params();
  p.parallelism = 1;  // deeply linear
  EXPECT_NEAR(test_throughput_mva(p) / test_throughput(p), 1.0, 0.03);
  p.parallelism = 64;  // deeply saturated
  EXPECT_NEAR(test_throughput_mva(p) / test_throughput(p), 1.0, 0.03);
}

TEST(ParcelMva, NeverExceedsTwoRegimeBound) {
  // The two-regime model is the contention-free upper envelope; MVA adds
  // queueing and can only be at or below it.
  auto p = knee_params();
  for (std::size_t par : {1, 2, 4, 8, 16, 32}) {
    p.parallelism = par;
    EXPECT_LE(test_throughput_mva(p), test_throughput(p) * 1.0001) << par;
  }
}

TEST(ParcelMva, FixesTheKnee) {
  // At the saturation knee the two-regime model is optimistic; the MVA
  // refinement must land substantially closer to the simulation.  A
  // residual gap remains because a context holds the processor for a
  // whole multi-segment burst (non-preemptive), which congests incoming
  // parcels more than MVA's per-segment service assumption.
  auto p = knee_params();
  p.parallelism = 4;  // saturation_parallelism ~ 4.9 for these values
  const double sim_idle =
      parcel::run_split_transaction_system(p).mean_idle_fraction();
  const double simple = test_idle_fraction(p);
  const double refined = test_idle_fraction_mva(p);
  EXPECT_LT(std::fabs(refined - sim_idle),
            0.5 * std::fabs(simple - sim_idle));  // >= 2x closer
  EXPECT_NEAR(refined, sim_idle, 0.10);
}

TEST(ParcelMva, IdleAcrossParallelismTracksSimulation) {
  auto p = knee_params();
  for (std::size_t par : {1, 2, 4, 8, 16}) {
    p.parallelism = par;
    const double sim_idle =
        parcel::run_split_transaction_system(p).mean_idle_fraction();
    const double simple_err =
        std::fabs(test_idle_fraction(p) - sim_idle);
    const double mva_err = std::fabs(test_idle_fraction_mva(p) - sim_idle);
    EXPECT_NEAR(test_idle_fraction_mva(p), sim_idle, 0.12)
        << "parallelism " << par;
    // MVA is never meaningfully worse than the two-regime model...
    EXPECT_LE(mva_err, simple_err + 0.01) << "parallelism " << par;
  }
  // ...and is strictly better where the simple model clamps to zero.
  p.parallelism = 8;
  EXPECT_LT(std::fabs(test_idle_fraction_mva(p) -
                      parcel::run_split_transaction_system(p)
                          .mean_idle_fraction()),
            std::fabs(test_idle_fraction(p) -
                      parcel::run_split_transaction_system(p)
                          .mean_idle_fraction()));
}

TEST(ParcelMva, RatioPredictionTracksSimulationEverywhere) {
  auto p = knee_params();
  p.p_remote = 0.2;
  for (std::size_t par : {1, 4, 8, 32}) {
    for (double latency : {50.0, 500.0}) {
      p.parallelism = par;
      p.round_trip_latency = latency;
      const double sim = parcel::compare_systems(p).work_ratio;
      EXPECT_NEAR(sim / predicted_ratio_mva(p), 1.0, 0.15)
          << "par=" << par << " L=" << latency;
    }
  }
}

}  // namespace
}  // namespace pimsim::analytic
