// Tests for the coroutine process layer.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "des/process.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {
namespace {

Process sleeper(Simulation& sim, Cycles t, double* finished_at) {
  co_await delay(sim, t);
  *finished_at = sim.now();
}

TEST(Process, DelayAdvancesTime) {
  Simulation sim;
  double finished = -1.0;
  sim.spawn(sleeper(sim, 25.0, &finished));
  sim.run();
  EXPECT_DOUBLE_EQ(finished, 25.0);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Process, BodyDoesNotRunInsideSpawn) {
  Simulation sim;
  double finished = -1.0;
  sim.spawn(sleeper(sim, 0.0, &finished));
  EXPECT_DOUBLE_EQ(finished, -1.0);  // starts only when the calendar runs
  sim.run();
  EXPECT_DOUBLE_EQ(finished, 0.0);
}

Process chain_delays(Simulation& sim, std::vector<double>* times) {
  for (int i = 0; i < 5; ++i) {
    co_await delay(sim, 10.0);
    times->push_back(sim.now());
  }
}

TEST(Process, SequentialDelaysAccumulate) {
  Simulation sim;
  std::vector<double> times;
  sim.spawn(chain_delays(sim, &times));
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{10, 20, 30, 40, 50}));
}

TEST(Process, UnspawnedProcessIsDestroyedSafely) {
  Simulation sim;
  double finished = -1.0;
  {
    Process p = sleeper(sim, 5.0, &finished);
    EXPECT_FALSE(p.done());
  }  // dropped without spawning
  sim.run();
  EXPECT_DOUBLE_EQ(finished, -1.0);
}

Process joiner(Simulation& sim, Process::JoinAwaitable join, double* joined_at) {
  co_await join;
  *joined_at = sim.now();
}

TEST(Process, JoinWaitsForCompletion) {
  Simulation sim;
  double finished = -1.0, joined = -1.0;
  Process worker = sleeper(sim, 30.0, &finished);
  sim.spawn(joiner(sim, worker.join(), &joined));
  sim.spawn(std::move(worker));
  sim.run();
  EXPECT_DOUBLE_EQ(finished, 30.0);
  EXPECT_DOUBLE_EQ(joined, 30.0);
}

TEST(Process, JoinOnFinishedProcessIsImmediate) {
  Simulation sim;
  double finished = -1.0;
  Process worker = sleeper(sim, 1.0, &finished);
  auto join = worker.join();
  sim.spawn(std::move(worker));
  sim.run();
  double joined = -1.0;
  sim.spawn(joiner(sim, std::move(join), &joined));
  sim.run();
  EXPECT_DOUBLE_EQ(joined, 1.0);  // completes at current time, no extra delay
}

Process spawn_join_parent(Simulation& sim, double* child_done, double* parent_done) {
  co_await spawn_join(sim, sleeper(sim, 7.0, child_done));
  *parent_done = sim.now();
}

TEST(Process, SpawnJoinHelper) {
  Simulation sim;
  double child = -1.0, parent = -1.0;
  sim.spawn(spawn_join_parent(sim, &child, &parent));
  sim.run();
  EXPECT_DOUBLE_EQ(child, 7.0);
  EXPECT_DOUBLE_EQ(parent, 7.0);
}

Process thrower(Simulation& sim) {
  co_await delay(sim, 5.0);
  throw std::runtime_error("model failure");
}

TEST(Process, ExceptionsPropagateToRun) {
  Simulation sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Process, SimulationDestructionReclaimsLiveProcesses) {
  double finished = -1.0;
  {
    Simulation sim;
    sim.spawn(sleeper(sim, 1000.0, &finished));
    sim.run_until(10.0);  // process still pending
    EXPECT_EQ(sim.live_processes(), 1u);
  }  // must not leak or crash (ASAN would flag a leak)
  EXPECT_DOUBLE_EQ(finished, -1.0);
}

Process wait_on(Simulation& sim, Trigger& trigger, double* woke_at) {
  co_await trigger.wait();
  *woke_at = sim.now();
}

TEST(Trigger, FireWakesAllWaiters) {
  Simulation sim;
  Trigger trigger(sim);
  double a = -1.0, b = -1.0;
  sim.spawn(wait_on(sim, trigger, &a));
  sim.spawn(wait_on(sim, trigger, &b));
  sim.schedule_at(12.0, [&] { trigger.fire(); });
  sim.run();
  EXPECT_DOUBLE_EQ(a, 12.0);
  EXPECT_DOUBLE_EQ(b, 12.0);
}

TEST(Trigger, LatchedTriggerPassesLateWaitersThrough) {
  Simulation sim;
  Trigger trigger(sim);
  trigger.fire();
  double woke = -1.0;
  sim.schedule_at(5.0, [&] { sim.spawn(wait_on(sim, trigger, &woke)); });
  sim.run();
  EXPECT_DOUBLE_EQ(woke, 5.0);
}

TEST(Trigger, ResetReArms) {
  Simulation sim;
  Trigger trigger(sim);
  trigger.fire();
  trigger.reset();
  double woke = -1.0;
  sim.spawn(wait_on(sim, trigger, &woke));
  sim.schedule_at(9.0, [&] { trigger.fire(); });
  sim.run();
  EXPECT_DOUBLE_EQ(woke, 9.0);
}

Process count_down_later(Simulation& sim, CountdownLatch& latch, Cycles at) {
  co_await delay(sim, at);
  latch.count_down();
}

Process latch_waiter(Simulation& sim, CountdownLatch& latch, double* woke_at) {
  co_await latch.wait();
  *woke_at = sim.now();
}

TEST(CountdownLatch, CompletesAfterNCountdowns) {
  Simulation sim;
  CountdownLatch latch(sim, 3);
  double woke = -1.0;
  sim.spawn(latch_waiter(sim, latch, &woke));
  sim.spawn(count_down_later(sim, latch, 10.0));
  sim.spawn(count_down_later(sim, latch, 20.0));
  sim.spawn(count_down_later(sim, latch, 30.0));
  sim.run();
  EXPECT_DOUBLE_EQ(woke, 30.0);  // the barrier ends at the slowest thread
}

TEST(CountdownLatch, ZeroCountIsImmediatelyOpen) {
  Simulation sim;
  CountdownLatch latch(sim, 0);
  double woke = -1.0;
  sim.spawn(latch_waiter(sim, latch, &woke));
  sim.run();
  EXPECT_DOUBLE_EQ(woke, 0.0);
}

TEST(CountdownLatch, ExtraCountdownsAreIgnored) {
  Simulation sim;
  CountdownLatch latch(sim, 1);
  latch.count_down();
  latch.count_down();  // no underflow
  EXPECT_EQ(latch.remaining(), 0u);
}

}  // namespace
}  // namespace pimsim::des
