// Tests for the table/CSV emitter.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace pimsim {
namespace {

TEST(Table, StoresRowsAndReadsNumbers) {
  Table t("demo", {"a", "b"});
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::int64_t{7}, 2.0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_DOUBLE_EQ(t.number_at(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(t.number_at(1, 0), 7.0);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), ConfigError);
}

TEST(Table, RejectsTextAsNumber) {
  Table t("demo", {"a"});
  t.add_row({std::string("hello")});
  EXPECT_THROW(
      {
        const double v = t.number_at(0, 0);
        ADD_FAILURE() << "number_at read a text cell as " << v;
      },
      ConfigError);
}

TEST(Table, RejectsOutOfRange) {
  Table t("demo", {"a"});
  EXPECT_THROW(
      {
        [[maybe_unused]] const auto& row = t.row(0);
        ADD_FAILURE() << "row(0) succeeded on an empty table";
      },
      ConfigError);
  EXPECT_THROW(Table("t", {}), ConfigError);
}

TEST(Table, PrintContainsHeaderAndValues) {
  Table t("my title", {"col1", "col2"});
  t.add_row({std::string("v"), 3.25});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("my title"), std::string::npos);
  EXPECT_NE(text.find("col1"), std::string::npos);
  EXPECT_NE(text.find("3.25"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t("t", {"name"});
  t.add_row({std::string("a,b\"c")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(Table, CsvHasOneLinePerRow) {
  Table t("t", {"x"});
  t.add_row({1.0});
  t.add_row({2.0});
  std::ostringstream os;
  t.print_csv(os);
  std::string line;
  std::istringstream in(os.str());
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4);  // comment + header + 2 rows
}

TEST(FormatNumber, Regimes) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(3.5), "3.5000");
  EXPECT_EQ(format_number(1.25e9), "1.25e+09");
  EXPECT_EQ(format_number(1e-5), "1e-05");
}

}  // namespace
}  // namespace pimsim
