// Tests for the statistical workload and access-pattern generators,
// including the locality study that grounds Table 1's Pmiss = 0.1.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "memory/cache.hpp"
#include "workload/access_pattern.hpp"
#include "workload/workload.hpp"

namespace pimsim::wl {
namespace {

TEST(WorkloadSpec, SplitsByFraction) {
  WorkloadSpec spec;
  spec.total_ops = 1000;
  spec.lwp_fraction = 0.3;
  EXPECT_EQ(spec.lwp_ops(), 300u);
  EXPECT_EQ(spec.hwp_ops(), 700u);
  EXPECT_EQ(spec.hwp_ops() + spec.lwp_ops(), spec.total_ops);
}

TEST(WorkloadSpec, ExtremesAreExact) {
  WorkloadSpec spec;
  spec.total_ops = 12345;
  spec.lwp_fraction = 0.0;
  EXPECT_EQ(spec.lwp_ops(), 0u);
  spec.lwp_fraction = 1.0;
  EXPECT_EQ(spec.lwp_ops(), spec.total_ops);
}

TEST(WorkloadSpec, RejectsBadValues) {
  WorkloadSpec spec;
  spec.lwp_fraction = 1.5;
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.lwp_fraction = 0.5;
  spec.total_ops = 0;
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(SplitEvenly, DifferencesAtMostOne) {
  const auto parts = split_evenly(103, 10);
  ASSERT_EQ(parts.size(), 10u);
  std::uint64_t total = 0;
  for (auto p : parts) {
    total += p;
    EXPECT_TRUE(p == 10 || p == 11);
  }
  EXPECT_EQ(total, 103u);
}

TEST(SplitEvenly, MorePartsThanOps) {
  const auto parts = split_evenly(3, 8);
  std::uint64_t total = 0;
  for (auto p : parts) total += p;
  EXPECT_EQ(total, 3u);
}

TEST(MakePhases, TotalsAreExact) {
  WorkloadSpec spec;
  spec.total_ops = 1'000'003;
  spec.lwp_fraction = 0.37;
  const auto phases = make_phases(spec, 7);
  ASSERT_EQ(phases.size(), 7u);
  std::uint64_t hwp = 0, lwp = 0;
  for (const auto& ph : phases) {
    hwp += ph.hwp_ops;
    lwp += ph.lwp_ops_total;
  }
  EXPECT_EQ(hwp, spec.hwp_ops());
  EXPECT_EQ(lwp, spec.lwp_ops());
}

TEST(StreamingPattern, SequentialAndWrapping) {
  StreamingPattern p(256, 64);
  EXPECT_EQ(p.next(), 0u);
  EXPECT_EQ(p.next(), 64u);
  EXPECT_EQ(p.next(), 128u);
  EXPECT_EQ(p.next(), 192u);
  EXPECT_EQ(p.next(), 0u);  // wrapped
}

TEST(RandomPattern, StaysInFootprintAndAligned) {
  RandomPattern p(1 << 20, 8, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    const auto a = p.next();
    EXPECT_LT(a, 1u << 20);
    EXPECT_EQ(a % 8, 0u);
  }
}

TEST(PointerChasePattern, VisitsEveryElementOncePerCycle) {
  // Sattolo's construction gives a single cycle: n distinct addresses
  // before the first repeat.
  const std::uint64_t n = 64;
  PointerChasePattern p(n, 8, Rng(9));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(seen.insert(p.next()).second) << "revisit before full cycle";
  }
  EXPECT_FALSE(seen.insert(p.next()).second);  // cycle restarts
}

TEST(HotColdPattern, RespectsHotFraction) {
  const std::uint64_t hot_bytes = 1 << 10;
  HotColdPattern p(hot_bytes, 1 << 20, 8, 0.9, Rng(17));
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hot += (p.next() < hot_bytes);
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.9, 0.01);
}

TEST(Patterns, RejectBadConstruction) {
  EXPECT_THROW(StreamingPattern(0, 8), ConfigError);
  EXPECT_THROW(StreamingPattern(8, 16), ConfigError);
  EXPECT_THROW(RandomPattern(4, 8, Rng(1)), ConfigError);
  EXPECT_THROW(PointerChasePattern(1, 8, Rng(1)), ConfigError);
  EXPECT_THROW(HotColdPattern(1 << 10, 1 << 20, 8, 1.5, Rng(1)), ConfigError);
}

// --- Grounding Pmiss = 0.1 (Table 1) on structural cache behaviour ------

TEST(LocalityStudy, HotColdStreamReachesTableOneMissRate) {
  // A 90%-hot stream whose hot set fits in cache lands near Pmiss = 0.1:
  // this is the "high temporal locality" traffic the paper keeps on the HWP.
  mem::SetAssocCache cache(mem::CacheGeometry{1 << 16, 64, 4});
  HotColdPattern pattern(1 << 14, 1 << 26, 8, 0.9, Rng(23));
  for (int i = 0; i < 30000; ++i) (void)cache.access(pattern.next());
  cache.reset_stats();
  for (int i = 0; i < 100000; ++i) (void)cache.access(pattern.next());
  EXPECT_NEAR(cache.miss_rate(), 0.1, 0.03);
}

TEST(LocalityStudy, PointerChaseMissesAlmostAlways) {
  // The zero-reuse traffic the paper sends to PIM: a pointer chase over a
  // footprint far larger than the cache misses nearly always.
  mem::SetAssocCache cache(mem::CacheGeometry{1 << 16, 64, 4});
  PointerChasePattern pattern(1 << 20, 64, Rng(29));
  for (int i = 0; i < 100000; ++i) (void)cache.access(pattern.next());
  EXPECT_GT(cache.miss_rate(), 0.9);
}

TEST(LocalityStudy, SmallStreamingFootprintHitsAlmostAlways) {
  mem::SetAssocCache cache(mem::CacheGeometry{1 << 16, 64, 4});
  StreamingPattern pattern(1 << 12, 8);
  for (int i = 0; i < 50000; ++i) (void)cache.access(pattern.next());
  EXPECT_LT(cache.miss_rate(), 0.02);
}

}  // namespace
}  // namespace pimsim::wl
