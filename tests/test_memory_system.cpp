// Tests for the MemorySystem seam (src/memory/memory_system.hpp) and the
// banked-DRAM backend (src/memory/contention_memory.hpp): factory error
// contract, analytic-default bitwise equality, zero-load degeneracy,
// bank-conflict serialization, and run-to-run determinism.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "core/scenario.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "memory/contention_memory.hpp"
#include "memory/memory_system.hpp"

namespace pimsim::mem {
namespace {

constexpr double kTml = 30.0;
constexpr double kTmh = 90.0;

TEST(MakeMemory, RejectsUnknownKindListingAlternatives) {
  try {
    (void)make_memory("bogus");
    FAIL() << "make_memory accepted an unknown kind";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("analytic"), std::string::npos);
    EXPECT_NE(msg.find("banked"), std::string::npos);
  }
}

TEST(MakeMemory, ConfigValidation) {
  MemoryConfig mc;
  mc.lwp_row_cycles = 0.0;
  EXPECT_THROW(mc.validate(), ConfigError);
  mc = MemoryConfig{};
  mc.nodes = 0;
  EXPECT_THROW(mc.validate(), ConfigError);
}

TEST(ZeroLoad, BothBackendsDegenerateToAnalyticConstants) {
  MemoryConfig mc;
  mc.lwp_row_cycles = kTml;
  mc.hwp_miss_cycles = kTmh;
  mc.nodes = 4;
  for (const char* kind : {"analytic", "banked"}) {
    mc.kind = kind;
    const auto memory = make_memory(mc);
    EXPECT_DOUBLE_EQ(memory->zero_load_latency(AccessKind::kLwpRow), kTml)
        << kind;
    EXPECT_DOUBLE_EQ(memory->zero_load_latency(AccessKind::kHwpMiss), kTmh)
        << kind;
  }
}

/// Issues `count` dependent accesses from `node`, walking `stride` bytes.
des::Process issue_stream(des::Simulation& sim, const MemorySystem& memory,
                          std::size_t node, std::uint64_t base,
                          std::uint64_t stride, int count) {
  std::uint64_t addr = base;
  for (int i = 0; i < count; ++i) {
    co_await AccessAwaitable{memory, sim, node, addr, AccessKind::kLwpRow};
    addr += stride;
  }
}

TEST(ZeroLoad, UncontendedBankedAccessTakesExactlyTml) {
  MemoryConfig mc;
  mc.kind = "banked";
  mc.nodes = 1;
  const auto memory = make_memory(mc);
  des::Simulation sim;
  sim.spawn(issue_stream(sim, *memory, 0, 0, 32, 1));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), kTml);
}

TEST(Banked, HotspotBankSerializesAllAccesses) {
  // K independent streams all hammering node 0's bank: the per-bank FIFO
  // admits one access at a time, and uncontended service is exactly TML,
  // so the makespan is the full serialization K * n * TML.
  constexpr int kStreams = 4;
  constexpr int kPerStream = 25;
  MemoryConfig mc;
  mc.kind = "banked";
  mc.nodes = 4;
  const auto memory = make_memory(mc);
  des::Simulation sim;
  sim.set_audit(true);  // exercise the queue-conservation invariant
  for (int s = 0; s < kStreams; ++s) {
    sim.spawn(issue_stream(sim, *memory, /*node=*/0,
                           /*base=*/static_cast<std::uint64_t>(s) << 20, 32,
                           kPerStream));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), kStreams * kPerStream * kTml);
  EXPECT_EQ(memory->accesses(),
            static_cast<std::uint64_t>(kStreams) * kPerStream);
}

TEST(Banked, PrivateBanksRunStreamsInParallel) {
  // The same streams spread over private banks overlap perfectly: the
  // makespan is one stream's serial latency, n * TML.
  constexpr int kStreams = 4;
  constexpr int kPerStream = 25;
  MemoryConfig mc;
  mc.kind = "banked";
  mc.nodes = kStreams;  // one bank per node by default
  const auto memory = make_memory(mc);
  des::Simulation sim;
  for (int s = 0; s < kStreams; ++s) {
    sim.spawn(issue_stream(sim, *memory, static_cast<std::size_t>(s),
                           static_cast<std::uint64_t>(s) << 32, 32,
                           kPerStream));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), kPerStream * kTml);
}

TEST(Banked, SharedPortSerializesIndependentBanks) {
  // queue=1 models one shared access port: two streams on private banks
  // still serialize end to end.
  constexpr int kPerStream = 25;
  MemoryConfig mc;
  mc.kind = "banked";
  mc.nodes = 2;
  mc.queue = 1;
  const auto memory = make_memory(mc);
  des::Simulation sim;
  sim.set_audit(true);
  sim.spawn(issue_stream(sim, *memory, 0, 0, 32, kPerStream));
  sim.spawn(issue_stream(sim, *memory, 1, std::uint64_t{1} << 32, 32,
                         kPerStream));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2 * kPerStream * kTml);
}

TEST(Banked, StridedStreamKeepsRowsOpen) {
  // Walking one wide word at a time inside a node's region re-touches
  // each open row words_per_row - 1 times.
  MemoryConfig mc;
  mc.kind = "banked";
  mc.nodes = 1;
  const auto memory = make_memory(mc);
  des::Simulation sim;
  sim.spawn(issue_stream(sim, *memory, 0, 0, 32, 64));
  sim.run();
  // 8 words per row: 8 row openings out of 64 accesses -> 7/8 hit rate.
  EXPECT_DOUBLE_EQ(memory->row_hit_rate(), 56.0 / 64.0);
}

TEST(Banked, RebindToSecondSimulationThrows) {
  MemoryConfig mc;
  mc.kind = "banked";
  const auto memory = make_memory(mc);
  des::Simulation first;
  first.spawn(issue_stream(first, *memory, 0, 0, 32, 1));
  first.run();
  des::Simulation second;
  second.spawn(issue_stream(second, *memory, 0, 0, 32, 1));
  EXPECT_THROW(second.run(), LogicError);
}

TEST(MemorySeam, AnalyticDefaultBitwiseEqualsExplicitAnalytic) {
  // The seam's acceptance gate: the default figures are bit-identical to
  // an explicit memory=analytic run (the scenario wiring adds no state).
  for (const char* name : {"fig5", "fig7"}) {
    const auto& s = core::ScenarioRegistry::global().get(name);
    const Config base = Config::from_string(s.verify_params);
    const Config explicit_cfg =
        Config::from_string(s.verify_params + " memory=analytic");
    const auto fp_default =
        core::table_fingerprint(core::run_scenario(s, base));
    // fig7 is analytic-only and declares no memory knob; fall back to the
    // default config for it (the loop still pins its rerun determinism).
    const bool has_knob = name == std::string("fig5");
    const auto fp_explicit = core::table_fingerprint(
        core::run_scenario(s, has_knob ? explicit_cfg : base));
    EXPECT_EQ(fp_default, fp_explicit) << name;
  }
}

TEST(MemorySeam, BankedRunsAreBitIdenticalAcrossReruns) {
  const auto& s = core::ScenarioRegistry::global().get("memory_contention");
  const Config cfg = Config::from_string(s.verify_params);
  const auto fp1 = core::table_fingerprint(core::run_scenario(s, cfg));
  const auto fp2 = core::table_fingerprint(core::run_scenario(s, cfg));
  EXPECT_EQ(fp1, fp2);
  // The pinned verify_fingerprint itself is compiler/libm sensitive, so
  // only `pimsim verify strict=1` enforces it (scenario.hpp).
}

TEST(MemorySeam, Fig5BankedIsDeterministicAndSlower) {
  const auto& s = core::ScenarioRegistry::global().get("fig5");
  const Config banked =
      Config::from_string(s.verify_params + " memory=banked mem_banks=1");
  const auto fp1 = core::table_fingerprint(core::run_scenario(s, banked));
  const auto fp2 = core::table_fingerprint(core::run_scenario(s, banked));
  EXPECT_EQ(fp1, fp2);
  const Config base = Config::from_string(s.verify_params);
  EXPECT_NE(fp1, core::table_fingerprint(core::run_scenario(s, base)));
}

}  // namespace
}  // namespace pimsim::mem
