// Tests for the multithreaded-node extension (paper Section 5.2 / [27]):
// closed forms, the DES model, and their agreement.
#include <gtest/gtest.h>

#include "analytic/multithreading.hpp"
#include "arch/mtlwp.hpp"
#include "arch/pim_chip.hpp"
#include "common/error.hpp"
#include "des/simulation.hpp"

namespace pimsim::analytic {
namespace {

using arch::SystemParams;

TEST(MultithreadModel, SingleThreadReproducesTableOneCost) {
  const SystemParams p = SystemParams::table1();
  EXPECT_NEAR(lwp_cost_per_op_mt(p, 1, 1.0), p.lwp_cost_per_op(), 1e-12);
  EXPECT_NEAR(nb_mt(p, 1, 1.0), p.nb(), 1e-12);
}

TEST(MultithreadModel, SaturationThreadsForTableOne) {
  const SystemParams p = SystemParams::table1();
  const MultithreadSpec spec = lwp_thread_spec(p, 1.0);
  // R = 5 * (0.7/0.3) = 11.667, C = 1, L = 30:
  // K_sat = (12.667 + 30) / 12.667 = 3.368.
  EXPECT_NEAR(spec.run_cycles, 5.0 * (0.7 / 0.3), 1e-9);
  EXPECT_NEAR(saturation_threads(spec), (12.0 + 2.0 / 3.0 + 30.0) /
                                            (12.0 + 2.0 / 3.0),
              1e-9);
}

TEST(MultithreadModel, SpeedupIsMonotoneAndSaturates) {
  const SystemParams p = SystemParams::table1();
  const MultithreadSpec spec = lwp_thread_spec(p, 1.0);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 16; ++k) {
    const double s = speedup(spec, k);
    EXPECT_GE(s, prev - 1e-12);
    prev = s;
  }
  // Saturated speedup: (R+L)/(R+C) = 41.667/12.667 = 3.289.
  EXPECT_NEAR(speedup(spec, 16), (spec.run_cycles + spec.stall_cycles) /
                                     (spec.run_cycles + spec.switch_cost),
              1e-9);
}

TEST(MultithreadModel, MultithreadingLowersNbBelowOne) {
  // The "tremendous benefit": with 4 threads and a 1-cycle switch, one
  // LWP node out-executes the HWP on low-locality work (NB < 1.2).
  const SystemParams p = SystemParams::table1();
  EXPECT_LT(nb_mt(p, 4, 1.0), 1.2);
  EXPECT_GT(nb_mt(p, 1, 1.0), 3.0);
}

TEST(MultithreadModel, SwitchCostErodesTheBenefit) {
  const SystemParams p = SystemParams::table1();
  EXPECT_LT(nb_mt(p, 4, 0.0), nb_mt(p, 4, 5.0));
  EXPECT_LT(nb_mt(p, 4, 5.0), nb_mt(p, 4, 20.0));
}

TEST(MultithreadModel, TimeRelativeCrossoverShiftsLeft) {
  const SystemParams p = SystemParams::table1();
  // With multithreaded nodes the coincidence point moves to nb_mt.
  const double nb4 = nb_mt(p, 4, 1.0);
  for (double pct : {0.3, 0.7, 1.0}) {
    EXPECT_NEAR(time_relative_mt(p, std::max(nb4, 1.0), pct, 4, 1.0),
                1.0 - pct * (1.0 - nb4 / std::max(nb4, 1.0)), 1e-12);
  }
}

TEST(MultithreadModel, UtilizationRegimes) {
  MultithreadSpec spec{10.0, 40.0, 0.0};
  EXPECT_NEAR(utilization(spec, 1), 0.2, 1e-12);   // 10/50
  EXPECT_NEAR(utilization(spec, 2), 0.4, 1e-12);   // linear
  EXPECT_NEAR(utilization(spec, 5), 1.0, 1e-12);   // exactly saturated
  EXPECT_NEAR(utilization(spec, 50), 1.0, 1e-12);  // clamped
}

TEST(MultithreadModel, Validation) {
  MultithreadSpec bad{0.0, 10.0, 1.0};
  EXPECT_THROW(bad.validate(), ConfigError);
  const SystemParams p = SystemParams::table1();
  EXPECT_THROW(
      {
        const double c = lwp_cost_per_op_mt(p, 0, 1.0);
        ADD_FAILURE() << "lwp_cost_per_op_mt accepted 0 threads, returned "
                      << c;
      },
      ConfigError);
  SystemParams no_mem = p;
  no_mem.ls_mix = 0.0;
  EXPECT_THROW(
      {
        [[maybe_unused]] const auto& spec = lwp_thread_spec(no_mem, 1.0);
        ADD_FAILURE() << "lwp_thread_spec accepted a zero memory mix";
      },
      ConfigError);
}

// --- DES cross-validation -------------------------------------------------

double simulate_cost_per_op(std::size_t threads, double switch_cost,
                            std::uint64_t ops = 60'000) {
  des::Simulation sim;
  arch::MultithreadedLwp node(sim, SystemParams::table1(), Rng(11), threads,
                              switch_cost);
  sim.spawn(node.run(ops));
  sim.run();
  return sim.now() / static_cast<double>(ops);
}

TEST(MtLwpSim, SingleThreadMatchesTableOne) {
  EXPECT_NEAR(simulate_cost_per_op(1, 1.0), 12.5, 0.3);
}

class MtLwpAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MtLwpAgreement, SimTracksClosedForm) {
  const std::size_t k = GetParam();
  const double sim_cost = simulate_cost_per_op(k, 1.0);
  const double model_cost =
      lwp_cost_per_op_mt(SystemParams::table1(), k, 1.0);
  // K_sat = 3.37 for Table 1: at the knee (k = 3, 4) the closed form is
  // optimistic because it ignores thread self-contention; elsewhere tight.
  const double tolerance = (k == 3 || k == 4) ? 0.30 : 0.12;
  EXPECT_NEAR(sim_cost / model_cost, 1.0, tolerance) << "threads=" << k;
  EXPECT_GE(sim_cost, model_cost * 0.97) << "model must not underpredict";
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, MtLwpAgreement,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 16),
                         ::testing::PrintToStringParamName());

TEST(MtLwpSim, UtilizationSaturates) {
  des::Simulation sim;
  arch::MultithreadedLwp node(sim, SystemParams::table1(), Rng(13), 8, 1.0);
  sim.spawn(node.run(60'000));
  sim.run();
  EXPECT_GT(node.utilization(), 0.95);
}

TEST(MtLwpSim, OpsAreConserved) {
  des::Simulation sim;
  arch::MultithreadedLwp node(sim, SystemParams::table1(), Rng(17), 5, 1.0);
  sim.spawn(node.run(12'345));
  sim.run();
  EXPECT_EQ(node.counts().ops, 12'345u);
}

}  // namespace
}  // namespace pimsim::analytic

namespace pimsim::arch {
namespace {

TEST(PimChip, CapacityAndBandwidth) {
  PimChipSpec chip;
  // 4096 rows * 2048 bits = 1 MiB per node, 32 MiB per chip.
  EXPECT_EQ(chip.node_capacity_bytes(), 1u << 20);
  EXPECT_EQ(chip.chip_capacity_bytes(), 32u << 20);
  EXPECT_GT(chip.peak_bandwidth_gbps(), 1000.0);  // > 1 Tbit/s at 32 nodes
}

TEST(PimChip, DerivedParamsMatchTableOneScale) {
  PimChipSpec chip;
  const SystemParams host = SystemParams::table1();
  const SystemParams derived = chip.derive_params(host);
  // TLcycle: 5 ns LWP clock over a 1 ns host cycle -> 5 cycles (Table 1).
  EXPECT_DOUBLE_EQ(derived.tl_cycle, 5.0);
  // TML: 20 + 2 ns row-buffer access -> 22 cycles; Table 1 uses the more
  // conservative 30 (headroom for control/queuing), same regime.
  EXPECT_DOUBLE_EQ(derived.t_ml, 22.0);
  EXPECT_NEAR(derived.nb(), 10.1 / 4.0, 0.01);
}

TEST(PimChip, PeakGops) {
  PimChipSpec chip;
  // mix 0: one op per 5 ns per node -> 32/5 = 6.4 Gops.
  EXPECT_NEAR(chip.peak_gops(0.0), 6.4, 1e-9);
  // mix 1: one access per 22 ns per node.
  EXPECT_NEAR(chip.peak_gops(1.0), 32.0 / 22.0, 1e-9);
}

TEST(PimChip, Validation) {
  PimChipSpec chip;
  chip.nodes = 0;
  EXPECT_THROW(chip.validate(), ConfigError);
  chip = PimChipSpec{};
  chip.lwp_cycle_ns = 0.0;
  EXPECT_THROW(chip.validate(), ConfigError);
  chip = PimChipSpec{};
  EXPECT_THROW(
      {
        const double g = chip.peak_gops(1.5);
        ADD_FAILURE() << "peak_gops accepted IPC > 1, returned " << g;
      },
      ConfigError);
}

TEST(HwpTrace, MissRateEmergesFromAccessStream) {
  des::Simulation sim;
  Hwp hwp(sim, SystemParams::table1(), Rng(19), 1000);
  mem::SetAssocCache cache(mem::CacheGeometry{1 << 16, 64, 4});
  wl::HotColdPattern pattern(1 << 14, 1 << 26, 8, 0.9, Rng(23));
  sim.spawn(hwp.run_trace(60'000, pattern, cache));
  sim.run();
  EXPECT_EQ(hwp.counts().ops, 60'000u);
  // The 90%-hot stream lands near the Table 1 Pmiss = 0.1 (see the
  // locality study in test_workload.cpp).
  EXPECT_NEAR(hwp.observed_miss_rate(), 0.1, 0.04);
  // Mean cycles per op consistent with the emergent miss rate.
  const double expected =
      1.0 + 0.3 * (2.0 - 1.0 + hwp.observed_miss_rate() * 90.0);
  EXPECT_NEAR(sim.now() / 60'000.0, expected, 0.15);
}

TEST(HwpTrace, StreamingTraceBeatsRandomTrace) {
  auto run_with = [](auto make_pattern) {
    des::Simulation sim;
    Hwp hwp(sim, SystemParams::table1(), Rng(29), 1000);
    mem::SetAssocCache cache(mem::CacheGeometry{1 << 16, 64, 4});
    auto pattern = make_pattern();
    sim.spawn(hwp.run_trace(30'000, *pattern, cache));
    sim.run();
    return sim.now();
  };
  const double streaming = run_with([] {
    return std::make_unique<wl::StreamingPattern>(1 << 12, 8);
  });
  const double chasing = run_with([] {
    return std::make_unique<wl::PointerChasePattern>(1 << 20, 64, Rng(31));
  });
  EXPECT_GT(chasing, 2.0 * streaming);
}

}  // namespace
}  // namespace pimsim::arch
