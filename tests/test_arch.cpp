// Tests for the HWP/LWP processor models and the host-system composition
// (the paper's Section 3 simulation).
#include <gtest/gtest.h>

#include "arch/host_system.hpp"
#include "arch/hwp.hpp"
#include "arch/lwp.hpp"
#include "arch/params.hpp"
#include "common/error.hpp"
#include "des/simulation.hpp"
#include "memory/memory_system.hpp"

namespace pimsim::arch {
namespace {

TEST(SystemParams, Table1DerivedQuantities) {
  const SystemParams p = SystemParams::table1();
  // 1 + 0.3*(2 - 1 + 0.1*90) = 4.0 HWP cycles per op.
  EXPECT_DOUBLE_EQ(p.hwp_cost_per_op(), 4.0);
  // 5 + 0.3*(30 - 5) = 12.5 HWP cycles per op.
  EXPECT_DOUBLE_EQ(p.lwp_cost_per_op(), 12.5);
  EXPECT_DOUBLE_EQ(p.nb(), 3.125);
}

TEST(SystemParams, ValidationCatchesBadValues) {
  SystemParams p;
  p.p_miss = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = SystemParams{};
  p.tl_cycle = 0.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = SystemParams{};
  p.th_cycle_ns = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Hwp, MeanTimeMatchesCostModel) {
  des::Simulation sim;
  Hwp hwp(sim, SystemParams::table1(), Rng(3), 10'000);
  const std::uint64_t ops = 1'000'000;
  sim.spawn(hwp.run(ops));
  sim.run();
  // Expected 4.0 cycles/op; binomial sampling keeps it within ~1%.
  EXPECT_NEAR(sim.now() / static_cast<double>(ops), 4.0, 0.04);
  EXPECT_EQ(hwp.counts().ops, ops);
  EXPECT_NEAR(hwp.observed_miss_rate(), 0.1, 0.01);
}

TEST(Hwp, PartialFinalBatch) {
  des::Simulation sim;
  Hwp hwp(sim, SystemParams::table1(), Rng(5), 1000);
  sim.spawn(hwp.run(2500));  // 1000 + 1000 + 500
  sim.run();
  EXPECT_EQ(hwp.counts().ops, 2500u);
}

TEST(Hwp, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    des::Simulation sim;
    Hwp hwp(sim, SystemParams::table1(), Rng(seed), 1000);
    sim.spawn(hwp.run(100'000));
    sim.run();
    return sim.now();
  };
  EXPECT_DOUBLE_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(Lwp, MeanTimeMatchesCostModel) {
  des::Simulation sim;
  Lwp lwp(sim, SystemParams::table1(), Rng(7), 10'000);
  const std::uint64_t ops = 1'000'000;
  sim.spawn(lwp.run(ops));
  sim.run();
  EXPECT_NEAR(sim.now() / static_cast<double>(ops), 12.5, 0.1);
  EXPECT_EQ(lwp.counts().ops, ops);
}

TEST(Lwp, ContendedPathMatchesBatchedMeanWithoutContention) {
  // One thread with a private bank must see the same mean cost as the
  // statistical path (no conflicts to serialize).
  const SystemParams params = SystemParams::table1();
  mem::MemoryConfig mc;
  mc.kind = "banked";
  mc.nodes = 1;
  const auto memory = mem::make_memory(mc);
  des::Simulation sim;
  Lwp lwp(sim, params, Rng(11), 1000, memory.get(), 0);
  const std::uint64_t ops = 20'000;
  sim.spawn(lwp.run(ops));
  sim.run();
  EXPECT_NEAR(sim.now() / static_cast<double>(ops), 12.5, 0.4);
}

TEST(Lwp, SharedBankContentionSlowsThreadsDown) {
  // Ablation sanity: two threads sharing one memory bank must take longer
  // per op than two threads with private banks.
  const SystemParams params = SystemParams::table1();
  auto run_pair = [&params](std::size_t banks) {
    mem::MemoryConfig mc;
    mc.kind = "banked";
    mc.nodes = 2;
    mc.banks = banks;
    const auto memory = mem::make_memory(mc);
    des::Simulation sim;
    Lwp a(sim, params, Rng(13, 1), 1000, memory.get(), 0);
    Lwp b(sim, params, Rng(13, 2), 1000, memory.get(), 1);
    sim.spawn(a.run(20'000));
    sim.spawn(b.run(20'000));
    sim.run();
    return sim.now();
  };
  EXPECT_GT(run_pair(1), 1.2 * run_pair(2));
}

HostConfig small_config(std::size_t nodes, double pct) {
  HostConfig cfg;
  cfg.workload.total_ops = 1'000'000;
  cfg.workload.lwp_fraction = pct;
  cfg.lwp_nodes = nodes;
  cfg.batch_ops = 10'000;
  cfg.seed = 5;
  return cfg;
}

TEST(HostSystem, ControlMatchesHwpCost) {
  const HostResult control = run_control_system(small_config(8, 0.5));
  EXPECT_NEAR(control.total_cycles, 4.0e6, 0.05e6);
  EXPECT_DOUBLE_EQ(control.lwp_cycles, 0.0);
}

TEST(HostSystem, TestRunMatchesAnalyticMakespan) {
  const auto cfg = small_config(8, 0.5);
  const HostResult r = run_host_system(cfg);
  // 0.5*1e6*4.0 + 0.5*1e6*12.5/8 = 2.78e6 cycles.
  EXPECT_NEAR(r.total_cycles, 2.0e6 + 0.78125e6, 0.06e6);
  EXPECT_GT(r.hwp_cycles, 0.0);
  EXPECT_GT(r.lwp_cycles, 0.0);
  EXPECT_EQ(r.hwp_ops + r.lwp_ops, cfg.workload.total_ops);
}

TEST(HostSystem, ZeroLwpFractionEqualsControl) {
  const auto cfg = small_config(8, 0.0);
  const HostResult test = run_host_system(cfg);
  const HostResult control = run_control_system(cfg);
  EXPECT_DOUBLE_EQ(test.total_cycles, control.total_cycles);
}

TEST(HostSystem, AllLwpWorkScalesWithNodes) {
  const HostResult n1 = run_host_system(small_config(1, 1.0));
  const HostResult n8 = run_host_system(small_config(8, 1.0));
  EXPECT_NEAR(n1.total_cycles / n8.total_cycles, 8.0, 0.4);
}

TEST(HostSystem, GainImprovesWithNodesWhenAboveNb) {
  const double g4 = simulated_gain(small_config(4, 0.8));
  const double g16 = simulated_gain(small_config(16, 0.8));
  const double g64 = simulated_gain(small_config(64, 0.8));
  EXPECT_GT(g16, g4);
  EXPECT_GT(g64, g16);
}

TEST(HostSystem, SingleNodeBelowNbIsSlowdown) {
  // N=1 < NB=3.125: PIM hurts (Time_relative > 1, gain < 1).
  EXPECT_LT(simulated_gain(small_config(1, 0.5)), 1.0);
}

TEST(HostSystem, PhaseCountDoesNotChangeTotals) {
  auto cfg = small_config(8, 0.6);
  cfg.phases = 1;
  const double t1 = run_host_system(cfg).total_cycles;
  cfg.phases = 16;
  const double t16 = run_host_system(cfg).total_cycles;
  EXPECT_NEAR(t1, t16, 0.02 * t1);
}

TEST(HostSystem, BatchSizeDoesNotBiasTotals) {
  auto cfg = small_config(8, 0.6);
  cfg.batch_ops = 1'000;
  const double fine = run_host_system(cfg).total_cycles;
  cfg.batch_ops = 100'000;
  const double coarse = run_host_system(cfg).total_cycles;
  EXPECT_NEAR(fine, coarse, 0.02 * fine);
}

TEST(HostSystem, BankConflictAblationSlowsLwpPhases) {
  auto cfg = small_config(8, 1.0);
  cfg.workload.total_ops = 200'000;
  cfg.memory.kind = "banked";
  cfg.memory.banks = 8;  // private banks: no conflicts, baseline
  const double clean = run_host_system(cfg).total_cycles;
  cfg.memory.banks = 2;  // four LWPs share one single-ported bank
  const double conflicted = run_host_system(cfg).total_cycles;
  EXPECT_GT(conflicted, 1.3 * clean);
}

TEST(HostSystem, PrivateBanksMatchContentionFreeModel) {
  // The paper asserts omitting bank conflicts introduces no inaccuracy
  // for this workload; with one LWP per bank the detailed path agrees
  // with the batched contention-free path.
  auto cfg = small_config(8, 1.0);
  cfg.workload.total_ops = 200'000;
  const double batched = run_host_system(cfg).total_cycles;
  cfg.memory.kind = "banked";
  cfg.memory.banks = 8;
  const double detailed = run_host_system(cfg).total_cycles;
  EXPECT_NEAR(detailed, batched, 0.05 * batched);
}

TEST(HostSystem, ConfigValidation) {
  HostConfig cfg;
  cfg.lwp_nodes = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = HostConfig{};
  cfg.memory.kind = "bogus";  // seam config validated by make_memory
  cfg.workload.total_ops = 1000;
  EXPECT_THROW((void)run_host_system(cfg), InvalidArgument);
}

}  // namespace
}  // namespace pimsim::arch
