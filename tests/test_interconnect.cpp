// Tests for the packet-level interconnect subsystem: flit segmentation,
// topology generation and routing, credit backpressure, determinism, and
// the zero-contention degeneracy to the analytic latency models.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "interconnect/contention.hpp"
#include "interconnect/network.hpp"
#include "interconnect/packet.hpp"
#include "interconnect/topology.hpp"
#include "parcel/action.hpp"
#include "parcel/network.hpp"
#include "parcel/runtime.hpp"
#include "parcel/system.hpp"

namespace pimsim::interconnect {
namespace {

// --- flit segmentation --------------------------------------------------

TEST(FlitCount, SegmentsBytesIntoFlits) {
  EXPECT_EQ(flit_count(0, 16), 1u);  // zero-byte message: head flit only
  EXPECT_EQ(flit_count(1, 16), 1u);
  EXPECT_EQ(flit_count(16, 16), 1u);
  EXPECT_EQ(flit_count(17, 16), 2u);
  EXPECT_EQ(flit_count(32, 16), 2u);
  EXPECT_EQ(flit_count(41, 16), 3u);
  EXPECT_EQ(flit_count(100, 1), 100u);
}

TEST(PacketConfigValidate, RejectsBadValues) {
  PacketConfig cfg;
  cfg.flit_bytes = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = PacketConfig{};
  cfg.credits = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = PacketConfig{};
  cfg.link_latency = -1.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

// --- topology generation ------------------------------------------------

TEST(Topology, FlatIsAStarThroughTheCrossbar) {
  const Topology t = TopologyBuilder::flat(4);
  EXPECT_EQ(t.nodes(), 4u);
  EXPECT_EQ(t.routers(), 5u);      // 4 node routers + the crossbar
  EXPECT_EQ(t.links().size(), 8u); // 4 uplinks + 4 downlinks
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      EXPECT_EQ(t.hops(a, b), 2u);  // includes self: up and back down
    }
  }
}

TEST(Topology, RingForwardRouting) {
  const Topology t = TopologyBuilder::ring(8);
  EXPECT_EQ(t.links().size(), 8u);
  EXPECT_EQ(t.hops(0, 5), 5u);
  EXPECT_EQ(t.hops(5, 0), 3u);  // unidirectional: forward past the seam
  EXPECT_EQ(t.hops(3, 3), 0u);
  EXPECT_EQ(t.next_link(3, 3), kNoLink);
}

TEST(Topology, MeshLinkCountAndManhattanHops) {
  const Topology t = TopologyBuilder::mesh2d(3, 2);
  // Directed channels: 2*((w-1)*h) horizontal + 2*(w*(h-1)) vertical.
  EXPECT_EQ(t.links().size(), 14u);
  const parcel::Mesh2DInterconnect analytic(3, 2, 0.0, 1.0);
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = 0; b < 6; ++b) {
      EXPECT_EQ(static_cast<double>(t.hops(a, b)),
                analytic.one_way_latency(a, b))
          << "pair " << a << "->" << b;
    }
  }
}

TEST(Topology, TorusWrapHopsMatchAnalytic) {
  const Topology t = TopologyBuilder::torus2d(4, 4);
  EXPECT_EQ(t.links().size(), 64u);  // 4 directed channels per router
  const parcel::Torus2DInterconnect analytic(4, 4, 0.0, 1.0);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(static_cast<double>(t.hops(a, b)),
                analytic.one_way_latency(a, b))
          << "pair " << a << "->" << b;
    }
  }
}

TEST(Topology, TwoWideTorusHasNoDuplicateChannels) {
  const Topology t = TopologyBuilder::torus2d(2, 2);
  EXPECT_EQ(t.links().size(), 8u);  // one forward channel per dimension
  EXPECT_EQ(t.hops(0, 3), 2u);
  EXPECT_EQ(t.hops(3, 0), 2u);
}

TEST(Topology, DeterministicRoutingTables) {
  const Topology a = TopologyBuilder::torus2d(4, 4);
  const Topology b = TopologyBuilder::torus2d(4, 4);
  for (std::uint32_t r = 0; r < a.routers(); ++r) {
    for (NodeId d = 0; d < a.nodes(); ++d) {
      EXPECT_EQ(a.next_link(r, d), b.next_link(r, d));
    }
  }
}

TEST(TopologyBuilder, BuildByNameValidates) {
  EXPECT_EQ(TopologyBuilder::build("torus", 16).kind(), TopologyKind::kTorus2D);
  EXPECT_THROW(TopologyBuilder::build("mesh2d", 10), InvalidArgument);
  try {
    (void)TopologyBuilder::build("hypercube", 16);
    FAIL() << "accepted unknown topology";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    for (const char* kind : {"flat", "ring", "mesh2d", "torus"}) {
      EXPECT_NE(msg.find(kind), std::string::npos) << msg;
    }
  }
}

// --- zero-load latency: the DES matches the closed form exactly ---------

/// Delivers one `bytes`-byte packet on an otherwise idle network and
/// returns the measured end-to-end latency.
double measure_one(const Topology& topo, const PacketConfig& cfg, NodeId src,
                   NodeId dst, std::size_t bytes) {
  des::Simulation sim;
  PacketNetwork net(sim, topo, cfg);
  double delivered_at = -1.0;
  net.send(src, dst, bytes, [&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_GE(delivered_at, 0.0);
  return delivered_at;
}

PacketConfig integer_config() {
  PacketConfig cfg;
  cfg.flit_bytes = 16;
  cfg.flit_cycle = 1.0;
  cfg.link_latency = 3.0;  // hop cost 4: integer arithmetic stays exact
  cfg.router_latency = 0.0;
  cfg.credits = 8;
  return cfg;
}

TEST(ZeroLoad, RingMatchesAnalyticExactly) {
  const Topology topo = TopologyBuilder::ring(6);
  const PacketConfig cfg = integer_config();
  const parcel::RingInterconnect analytic(6, 0.0, 4.0);
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = 0; b < 6; ++b) {
      const double measured = measure_one(topo, cfg, a, b, 8);
      EXPECT_DOUBLE_EQ(measured, analytic.one_way_latency(a, b));
    }
  }
}

TEST(ZeroLoad, MeshMatchesAnalyticExactly) {
  const Topology topo = TopologyBuilder::mesh2d(3, 3);
  const PacketConfig cfg = integer_config();
  const parcel::Mesh2DInterconnect analytic(3, 3, 0.0, 4.0);
  for (NodeId a = 0; a < 9; ++a) {
    for (NodeId b = 0; b < 9; ++b) {
      EXPECT_DOUBLE_EQ(measure_one(topo, cfg, a, b, 8),
                       analytic.one_way_latency(a, b));
    }
  }
}

TEST(ZeroLoad, TorusMatchesAnalyticExactly) {
  const Topology topo = TopologyBuilder::torus2d(4, 4);
  const PacketConfig cfg = integer_config();
  const parcel::Torus2DInterconnect analytic(4, 4, 0.0, 4.0);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_DOUBLE_EQ(measure_one(topo, cfg, a, b, 8),
                       analytic.one_way_latency(a, b));
    }
  }
}

TEST(ZeroLoad, FlatMatchesAnalyticExactly) {
  const Topology topo = TopologyBuilder::flat(5);
  PacketConfig cfg = integer_config();
  cfg.link_latency = 24.0;  // two links of 25 each way = 50 = L/2
  const parcel::FlatInterconnect analytic(100.0);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = 0; b < 5; ++b) {  // includes a == b: flat charges L/2
      EXPECT_DOUBLE_EQ(measure_one(topo, cfg, a, b, 8),
                       analytic.one_way_latency(a, b));
    }
  }
}

TEST(ZeroLoad, RouterLatencyCountsInnerHopsOnly) {
  const Topology topo = TopologyBuilder::mesh2d(3, 3);
  PacketConfig cfg = integer_config();
  cfg.router_latency = 2.0;
  // 0 -> 8 is 4 hops through 3 intermediate routers.
  const double expected = 4 * (1.0 + 3.0) + 3 * 2.0;
  des::Simulation sim;
  PacketNetwork net(sim, topo, cfg);
  EXPECT_DOUBLE_EQ(net.zero_load_latency(0, 8, 8), expected);
  EXPECT_DOUBLE_EQ(measure_one(topo, cfg, 0, 8, 8), expected);
}

TEST(ZeroLoad, MultiFlitPacketsPipeline) {
  // 3 flits over 2 hops with router latency: body flits stream one
  // flit_cycle behind each other, adding (F-1)*flit_cycle to the tail.
  const Topology topo = TopologyBuilder::ring(4);
  PacketConfig cfg;
  cfg.flit_bytes = 16;
  cfg.flit_cycle = 2.0;
  cfg.link_latency = 5.0;
  cfg.router_latency = 1.0;
  cfg.credits = 8;
  const double expected = 2 * (2.0 + 5.0) + 1 * 1.0 + 2 * 2.0;
  des::Simulation sim;
  PacketNetwork net(sim, topo, cfg);
  EXPECT_DOUBLE_EQ(net.zero_load_latency(0, 2, 40), expected);
  EXPECT_DOUBLE_EQ(measure_one(topo, cfg, 0, 2, 40), expected);
}

TEST(ZeroLoad, LocalDeliveryIsImmediate) {
  const Topology topo = TopologyBuilder::ring(4);
  EXPECT_DOUBLE_EQ(measure_one(topo, integer_config(), 2, 2, 8), 0.0);
}

// --- credit-based flow control ------------------------------------------

TEST(Credits, BackpressureSlowsABurstAndBoundsOccupancy) {
  // 40 single-flit packets blasted 0 -> 2 on a 3-ring: with one credit
  // per link the pipeline stalls on buffer slots; with plenty it streams.
  const Topology topo = TopologyBuilder::ring(3);
  auto run_with_credits = [&](std::size_t credits) {
    PacketConfig cfg = integer_config();
    cfg.credits = credits;
    des::Simulation sim;
    PacketNetwork net(sim, topo, cfg);
    for (int i = 0; i < 40; ++i) net.send(0, 2, 8);
    sim.run();
    EXPECT_EQ(net.packets_delivered(), 40u);
    for (std::uint32_t l = 0; l < topo.links().size(); ++l) {
      EXPECT_LE(net.link_stats(l).peak_occupancy,
                static_cast<double>(credits));
    }
    return net.latency_stats().max();
  };
  const double starved = run_with_credits(1);
  const double streaming = run_with_credits(8);
  EXPECT_GT(starved, streaming);
}

TEST(Credits, ContendedLinkSaturatesAndQueues) {
  // All-to-one on a flat crossbar: the single ejection link serializes
  // every flit, so its utilization approaches 1 and latencies stretch far
  // beyond zero-load — the collapse the analytic models cannot show.
  const Topology topo = TopologyBuilder::flat(8);
  PacketConfig cfg = integer_config();
  des::Simulation sim;
  PacketNetwork net(sim, topo, cfg);
  for (NodeId src = 1; src < 8; ++src) {
    for (int i = 0; i < 10; ++i) net.send(src, 0, 64);  // 4 flits each
  }
  sim.run();
  EXPECT_EQ(net.packets_delivered(), 70u);
  // Ejection link of node 0 is downlink id nodes + 0 = 8.
  const LinkStats eject = net.link_stats(8);
  EXPECT_EQ(eject.flits, 280u);
  EXPECT_GT(eject.utilization, 0.8);
  EXPECT_GT(net.latency_stats().max(), 4.0 * net.zero_load_latency(1, 0, 64));
  EXPECT_EQ(net.latency_histogram().total(), 70u);
}

// --- determinism --------------------------------------------------------

des::Process uniform_traffic(des::Simulation& sim, PacketNetwork& net, Rng rng,
                             int count) {
  const auto nodes = static_cast<std::uint64_t>(net.topology().nodes());
  for (int i = 0; i < count; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    net.send(src, dst, 48);
    co_await des::delay(sim, 3.0);
  }
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  auto run_once = [] {
    des::Simulation sim;
    PacketNetwork net(sim, TopologyBuilder::torus2d(4, 4), PacketConfig{});
    sim.spawn(uniform_traffic(sim, net, Rng(42, 7), 300));
    sim.run();
    EXPECT_EQ(net.packets_in_flight(), 0u);
    return std::tuple{sim.events_dispatched(), net.flit_hops(),
                      net.latency_stats().mean(), net.latency_stats().max(),
                      net.packets_delivered()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- ContentionInterconnect adapter -------------------------------------

TEST(ContentionInterconnect, FactoryMatchesAnalyticZeroLoadPairwise) {
  for (const char* kind : {"flat", "ring", "mesh2d", "torus"}) {
    const auto analytic = parcel::make_interconnect(kind, 16, 300.0);
    const auto packet = make_contention_interconnect(kind, 16, 300.0);
    for (NodeId a = 0; a < 16; ++a) {
      for (NodeId b = 0; b < 16; ++b) {
        EXPECT_NEAR(packet->one_way_latency(a, b),
                    analytic->one_way_latency(a, b), 1e-9)
            << kind << " pair " << a << "->" << b;
      }
    }
  }
}

TEST(ContentionInterconnect, SingleParcelDeliveryMatchesAnalytic) {
  // The acceptance degeneracy: one message in flight, measured through
  // deliver(), lands exactly when the analytic model says it should.
  for (const char* kind : {"flat", "ring", "mesh2d", "torus"}) {
    const auto analytic = parcel::make_interconnect(kind, 16, 300.0);
    for (NodeId a = 0; a < 16; a = static_cast<NodeId>(a + 3)) {
      for (NodeId b = 0; b < 16; b = static_cast<NodeId>(b + 2)) {
        const auto packet = make_contention_interconnect(kind, 16, 300.0);
        des::Simulation sim;
        double delivered_at = -1.0;
        packet->deliver(sim, a, b, 8, [&] { delivered_at = sim.now(); });
        sim.run();
        EXPECT_NEAR(delivered_at, analytic->one_way_latency(a, b), 1e-9)
            << kind << " pair " << a << "->" << b;
      }
    }
  }
}

TEST(ContentionInterconnect, RefusesASecondSimulation) {
  const auto net = make_contention_interconnect("ring", 4, 100.0);
  des::Simulation sim1;
  net->deliver(sim1, 0, 1, 8, [] {});
  sim1.run();
  des::Simulation sim2;
  EXPECT_THROW(net->deliver(sim2, 0, 1, 8, [] {}), LogicError);
}

TEST(ContentionInterconnect, ParcelMachineDegeneratesToAnalytic) {
  // The functional parcel machine issues one request at a time over both
  // interconnects; with single-flit parcels the packet-level run must
  // finish at the identical simulated time with identical results.
  auto run_machine = [](const parcel::Interconnect& net) {
    des::Simulation sim;
    parcel::ParcelMachine machine(sim, 4, net);
    machine.store(2).write(0x40, 77);
    std::uint64_t got = 0;
    auto driver = [](des::Simulation& s, parcel::ParcelMachine& m,
                     std::uint64_t* out) -> des::Process {
      for (int i = 0; i < 5; ++i) {
        parcel::Parcel p;
        p.dst = 2;
        p.target_vaddr = 0x40;
        p.action = parcel::ActionKind::kRead;
        auto h = m.request(0, p);
        co_await h.wait();
        *out += h.value();
        co_await des::delay(s, 7.0);
      }
    };
    sim.spawn(driver(sim, machine, &got));
    machine.run();
    return std::pair{sim.now(), got};
  };

  PacketConfig cfg;
  cfg.flit_bytes = 4096;  // any parcel fits one flit
  const auto analytic = parcel::make_interconnect("ring", 4, 96.0);
  const auto packet = make_contention_interconnect("ring", 4, 96.0, cfg);
  const auto [analytic_end, analytic_sum] = run_machine(*analytic);
  const auto [packet_end, packet_sum] = run_machine(*packet);
  EXPECT_EQ(analytic_sum, packet_sum);
  EXPECT_NEAR(packet_end, analytic_end, 1e-9);
}

// --- the contention knob on the split-transaction study -----------------

TEST(ContentionKnob, SplitTransactionStudyRunsUnderContention) {
  parcel::SplitTransactionParams params;
  params.nodes = 16;
  params.network = "mesh2d";
  params.horizon = 10'000.0;
  params.round_trip_latency = 200.0;
  params.parallelism = 4;
  params.contention = true;
  params.message_bytes = 32;
  const parcel::ComparisonPoint point = parcel::compare_systems(params);
  EXPECT_GT(point.test_work, 0.0);
  EXPECT_GT(point.control_work, 0.0);
  EXPECT_GT(point.work_ratio, 0.0);

  // Contention can only slow deliveries relative to the analytic run of
  // the same seed/topology, so the test system cannot do systematically
  // more work under it.  The packet model's wormhole arbitration may
  // reshuffle same-cycle deliveries versus the analytic event order,
  // which nudges the stochastic work mix by a fraction of a percent in
  // either direction — hence the 1% tolerance, not 0.1%.
  params.contention = false;
  const parcel::SystemRunResult analytic =
      parcel::run_split_transaction_system(params);
  params.contention = true;
  const parcel::SystemRunResult contended =
      parcel::run_split_transaction_system(params);
  EXPECT_LE(contended.total_work(), analytic.total_work() * 1.01);
}

}  // namespace
}  // namespace pimsim::interconnect
