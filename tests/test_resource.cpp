// Tests for the counted FIFO resource.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {
namespace {

Process hold(Simulation& sim, Resource& r, Cycles duration, int id,
             std::vector<std::pair<int, double>>* grants) {
  co_await r.acquire();
  grants->emplace_back(id, sim.now());
  co_await delay(sim, duration);
  r.release();
}

TEST(Resource, SerializesOnSingleServer) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<std::pair<int, double>> grants;
  for (int i = 0; i < 3; ++i) sim.spawn(hold(sim, r, 10.0, i, &grants));
  sim.run();
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_DOUBLE_EQ(grants[0].second, 0.0);
  EXPECT_DOUBLE_EQ(grants[1].second, 10.0);
  EXPECT_DOUBLE_EQ(grants[2].second, 20.0);
}

TEST(Resource, FifoOrderAmongWaiters) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<std::pair<int, double>> grants;
  for (int i = 0; i < 5; ++i) sim.spawn(hold(sim, r, 1.0, i, &grants));
  sim.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(grants[i].first, i);
}

TEST(Resource, MultipleServersRunConcurrently) {
  Simulation sim;
  Resource r(sim, 2);
  std::vector<std::pair<int, double>> grants;
  for (int i = 0; i < 4; ++i) sim.spawn(hold(sim, r, 10.0, i, &grants));
  sim.run();
  EXPECT_DOUBLE_EQ(grants[0].second, 0.0);
  EXPECT_DOUBLE_EQ(grants[1].second, 0.0);
  EXPECT_DOUBLE_EQ(grants[2].second, 10.0);
  EXPECT_DOUBLE_EQ(grants[3].second, 10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

Process hold_n(Simulation& sim, Resource& r, std::size_t n, Cycles duration,
               int id, std::vector<std::pair<int, double>>* grants) {
  co_await r.acquire(n);
  grants->emplace_back(id, sim.now());
  co_await delay(sim, duration);
  r.release(n);
}

TEST(Resource, BulkRequestsBlockUntilEnoughUnits) {
  Simulation sim;
  Resource r(sim, 4);
  std::vector<std::pair<int, double>> grants;
  sim.spawn(hold_n(sim, r, 3, 10.0, 0, &grants));  // grants at 0
  sim.spawn(hold_n(sim, r, 2, 10.0, 1, &grants));  // needs the head to leave
  sim.run();
  EXPECT_DOUBLE_EQ(grants[0].second, 0.0);
  EXPECT_DOUBLE_EQ(grants[1].second, 10.0);
}

TEST(Resource, StrictFifoNoBypass) {
  Simulation sim;
  Resource r(sim, 2);
  std::vector<std::pair<int, double>> grants;
  sim.spawn(hold_n(sim, r, 1, 10.0, 0, &grants));  // grants at 0, 1 unit free
  sim.spawn(hold_n(sim, r, 2, 10.0, 1, &grants));  // queues (head, needs 2)
  // One unit IS free, but granting id 2 now would bypass the queue head.
  sim.spawn(hold_n(sim, r, 1, 10.0, 2, &grants));
  sim.run();
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(grants[1].first, 1);
  EXPECT_DOUBLE_EQ(grants[1].second, 10.0);  // after id 0 releases
  EXPECT_EQ(grants[2].first, 2);
  EXPECT_DOUBLE_EQ(grants[2].second, 20.0);  // after the head releases both
}

TEST(Resource, TryAcquireDoesNotWait) {
  Simulation sim;
  Resource r(sim, 1);
  EXPECT_TRUE(r.try_acquire());
  EXPECT_FALSE(r.try_acquire());
  r.release();
  EXPECT_TRUE(r.try_acquire());
  r.release();
}

TEST(Resource, UtilizationIntegratesBusyTime) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<std::pair<int, double>> grants;
  sim.spawn(hold(sim, r, 10.0, 0, &grants));
  sim.run();
  sim.run_until(20.0);  // idle for another 10 cycles
  EXPECT_NEAR(r.utilization(), 0.5, 1e-9);
}

TEST(Resource, WaitStatsMeasureQueueingDelay) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<std::pair<int, double>> grants;
  for (int i = 0; i < 3; ++i) sim.spawn(hold(sim, r, 10.0, i, &grants));
  sim.run();
  // Waits: 0, 10, 20 -> mean 10.
  EXPECT_NEAR(r.wait_stats().mean(), 10.0, 1e-9);
  EXPECT_EQ(r.grants(), 3u);
}

TEST(Resource, RejectsMisuse) {
  Simulation sim;
  Resource r(sim, 2);
  EXPECT_THROW(
      {
        [[maybe_unused]] const auto& awaitable = r.acquire(0);
        ADD_FAILURE() << "acquire accepted a zero-unit request";
      },
      ConfigError);
  EXPECT_THROW(
      {
        // Requesting more than capacity would deadlock if allowed.
        [[maybe_unused]] const auto& awaitable = r.acquire(3);
        ADD_FAILURE() << "acquire accepted a request above capacity";
      },
      ConfigError);
  EXPECT_THROW(r.release(1), LogicError);   // nothing held
  EXPECT_THROW(Resource(sim, 0), ConfigError);
}

}  // namespace
}  // namespace pimsim::des
