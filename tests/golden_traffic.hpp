// Shared traffic program for the packet-network golden-timing tests.
//
// Drives a deterministic mix of uniform and hotspot traffic through a
// PacketNetwork-compatible model and summarizes the exact delivery times.
// The same program generated the pre-rewrite recordings baked into
// test_interconnect_golden.cpp, so any timing drift in the engine —
// arbitration order, backpressure, coalescing — shows up as a mismatch.
//
// Kept header-only and templated on the network type so a reference
// implementation can be driven by the identical code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "interconnect/packet.hpp"
#include "interconnect/topology.hpp"

namespace pimsim::interconnect::golden {

/// Exact observables of one golden run.  `delivery_hash` is FNV-1a over
/// the bit patterns of every packet's delivery time in injection order —
/// a compact bit-identity witness for the full timing vector.
struct GoldenSummary {
  std::uint64_t delivered = 0;
  std::uint64_t flit_hops = 0;
  double max_latency = 0.0;
  std::uint64_t delivery_hash = 0;
  std::vector<double> first_deliveries;  ///< spot values for diagnostics
  std::vector<std::pair<std::size_t, std::uint64_t>> hist_bins;  ///< nonzero
};

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One generator per node; node ids congruent to 1 mod 4 blast the
/// hotspot victim (node 0), the rest send to uniform random peers.
/// Message sizes span 0..6 flits at 16 B/flit; inter-send gaps of 1..7
/// cycles hold the network in sustained (but drainable) contention.
template <typename Network>
des::Process golden_generator(des::Simulation& sim, Network& net, NodeId src,
                              Rng rng, int packets, double gap_scale,
                              std::vector<double>* deliveries,
                              std::size_t slot0) {
  const auto nodes = static_cast<std::uint64_t>(net.topology().nodes());
  for (int i = 0; i < packets; ++i) {
    NodeId dst;
    if (src % 4 == 1) {
      dst = 0;  // hotspot sources
    } else {
      dst = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    }
    const std::size_t bytes = rng.uniform_int(0, 96);
    const std::size_t slot = slot0 + static_cast<std::size_t>(i);
    net.send(src, dst, bytes, [&sim, deliveries, slot] {
      (*deliveries)[slot] = sim.now();
    });
    co_await des::delay(sim, gap_scale * (1.0 + static_cast<double>(
                                                    rng.uniform_int(0, 6))));
  }
}

/// Runs the golden program on `net` (already bound to `sim`) and
/// summarizes.  `packets` per node; `gap_scale` stretches the injection
/// gaps (1.0 = the recorded contention level).
template <typename Network>
GoldenSummary run_golden(des::Simulation& sim, Network& net, int packets,
                         double gap_scale, std::uint64_t seed) {
  const std::size_t nodes = net.topology().nodes();
  std::vector<double> deliveries(nodes * static_cast<std::size_t>(packets),
                                 -1.0);
  Rng root(seed, /*stream_id=*/0x601d);
  for (std::size_t n = 0; n < nodes; ++n) {
    sim.spawn(golden_generator(sim, net, static_cast<NodeId>(n), root.split(n),
                               packets, gap_scale, &deliveries,
                               n * static_cast<std::size_t>(packets)));
  }
  sim.run();

  GoldenSummary s;
  s.delivered = net.packets_delivered();
  s.flit_hops = net.flit_hops();
  s.max_latency = net.latency_stats().max();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (double d : deliveries) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    h = fnv1a(h, bits);
  }
  s.delivery_hash = h;
  for (std::size_t i = 0; i < deliveries.size() && i < 8; ++i) {
    s.first_deliveries.push_back(deliveries[i]);
  }
  const Histogram& hist = net.latency_histogram();
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    if (hist.bin_count(b) > 0) {
      s.hist_bins.emplace_back(b, hist.bin_count(b));
    }
  }
  return s;
}

/// The four recorded topologies at 16 nodes.
inline Topology golden_topology(const std::string& kind) {
  return TopologyBuilder::build(kind, 16);
}

/// Injection-gap stretch per topology.  The unidirectional ring has no
/// virtual channels, so sustained overload deadlocks its wrap cycle (a
/// documented model limitation); its recording runs at a load where the
/// run drains while still queueing transiently.
inline double golden_gap_scale(const std::string& kind) {
  return kind == "ring" ? 20.0 : 1.0;
}

/// The recorded config: integer timings (exact double arithmetic), deep
/// enough credits that ejection links never credit-starve.
inline PacketConfig golden_config() {
  PacketConfig cfg;
  cfg.flit_bytes = 16;
  cfg.flit_cycle = 1.0;
  cfg.link_latency = 3.0;
  cfg.router_latency = 0.0;
  cfg.credits = 8;
  return cfg;
}

}  // namespace pimsim::interconnect::golden
