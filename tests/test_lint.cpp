// pimsim-lint rule coverage: each determinism rule fires on a minimal
// bad snippet, suppressions with a reason are honored (and unexplained
// or unknown ones are themselves findings), and the token masking keeps
// comments/strings from triggering rules.  The "shipped tree is clean"
// half of the contract is enforced by CI running build/pimsim-lint over
// the repository.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace pimsim::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  const auto rules = rules_of(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- const-cast ----------------------------------------------------------

TEST(LintRules, ConstCastFires) {
  const auto f = lint_source(
      "src/x.cpp", "void f(const int* p) { *const_cast<int*>(p) = 1; }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "const-cast");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[0].file, "src/x.cpp");
}

TEST(LintRules, ConstCastInCommentOrStringDoesNotFire) {
  const auto f = lint_source("src/x.cpp",
                             "// const_cast is bad\n"
                             "const char* s = \"const_cast\";\n"
                             "char c = 'x';  /* const_cast */\n");
  EXPECT_TRUE(f.empty());
}

// --- raw-entropy ---------------------------------------------------------

TEST(LintRules, RawEntropyFiresOnCallsAndTypes) {
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp", "int r = rand();\n"), "raw-entropy"));
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp", "auto t = time(nullptr);\n"), "raw-entropy"));
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp", "std::random_device rd;\n"), "raw-entropy"));
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp",
                  "auto n = std::chrono::system_clock::now();\n"),
      "raw-entropy"));
}

TEST(LintRules, RawEntropySkipsMemberCallsAndDeclarations) {
  // sim.time() / entry->clock() are model accessors, not wall-clock.
  EXPECT_TRUE(lint_source("src/x.cpp", "auto t = sim.time();\n").empty());
  EXPECT_TRUE(lint_source("src/x.cpp", "auto t = e->clock();\n").empty());
  // A declaration `SimTime time() const` is not a call.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "SimTime time() const { return t_; }\n")
          .empty());
  // ...but `return time(...)` is a call.
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp", "long f() { return time(nullptr); }\n"),
      "raw-entropy"));
}

TEST(LintRules, RawEntropyExemptInRngSources) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_TRUE(lint_source("src/common/rng.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/common/rng.hpp", src).empty());
  EXPECT_FALSE(lint_source("src/common/other.cpp", src).empty());
}

// --- mutable-static ------------------------------------------------------

TEST(LintRules, MutableStaticFires) {
  EXPECT_TRUE(has_rule(lint_source("src/x.cpp", "static int counter = 0;\n"),
                       "mutable-static"));
  EXPECT_TRUE(has_rule(lint_source("src/x.cpp", "thread_local int tls;\n"),
                       "mutable-static"));
}

TEST(LintRules, ConstStaticAndFunctionsAreFine) {
  EXPECT_TRUE(
      lint_source("src/x.cpp", "static const int kAnswer = 42;\n").empty());
  EXPECT_TRUE(
      lint_source("src/x.cpp", "static constexpr double kPi = 3.14;\n")
          .empty());
  EXPECT_TRUE(lint_source("src/x.cpp", "static int helper(int a);\n").empty());
  EXPECT_TRUE(lint_source("src/x.cpp", "#define X static int y = 0;\n")
                  .empty());  // preprocessor lines are out of scope
}

// --- unordered containers ------------------------------------------------

TEST(LintRules, UnorderedDeclarationNeedsJustification) {
  const auto f = lint_source(
      "src/x.cpp", "std::unordered_map<int, double> table_;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-container");
}

TEST(LintRules, UnorderedIterationFires) {
  const std::string decl =
      "// lint:allow(unordered-container): test fixture\n"
      "std::unordered_map<int, double> table_;\n";
  // Range-for over the declared name.
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp",
                  decl + "double s() { double t = 0;"
                         " for (const auto& [k, v] : table_) t += v;"
                         " return t; }\n"),
      "unordered-iter"));
  // Explicit iterator traversal.
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp", decl + "auto it = table_.begin();\n"),
      "unordered-iter"));
  // Lookup-only use is fine.
  EXPECT_TRUE(
      lint_source("src/x.cpp", decl + "double g(int k) { return table_.at(k); }\n")
          .empty());
}

// --- unguarded-trace -----------------------------------------------------

TEST(LintRules, UnguardedTraceFires) {
  // A member .trace(...) call with no tracing_enabled() guard nearby.
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp",
                  "void f(Sim& sim) { sim.trace(TraceKind::kCounter, lbl); }\n"),
      "unguarded-trace"));
  // Same for a .metrics() registry access without metrics_enabled().
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp",
                  "void g(Sim& sim) { sim.metrics().counter(\"n\").add(1); }\n"),
      "unguarded-trace"));
  // Arrow calls count too.
  EXPECT_TRUE(has_rule(
      lint_source("src/x.cpp",
                  "void h(Sim* sim) { sim->trace(TraceKind::kInstant, lbl); }\n"),
      "unguarded-trace"));
}

TEST(LintRules, GuardedTraceIsFine) {
  // Guard on the same line.
  EXPECT_TRUE(
      lint_source("src/x.cpp",
                  "void f(Sim& s) { if (s.tracing_enabled()) s.trace(k, l); }\n")
          .empty());
  // Guard up to two lines above (the early-return helper shape).
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "void g(Sim& s) {\n"
                          "  if (!s.tracing_enabled()) return;\n"
                          "  s.trace(k, l);\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "void h(Sim& s) {\n"
                          "  if (s.metrics_enabled()) {\n"
                          "    auto& reg = s.metrics();\n"
                          "    reg.counter(\"n\").add(1);\n"
                          "  }\n"
                          "}\n")
                  .empty());
  // A guard three lines up is out of the window.
  EXPECT_TRUE(has_rule(lint_source("src/x.cpp",
                                   "void i(Sim& s) {\n"
                                   "  if (s.tracing_enabled()) {\n"
                                   "    int a = 0;\n"
                                   "    int b = a;\n"
                                   "    s.trace(k, b);\n"
                                   "  }\n"
                                   "}\n"),
                       "unguarded-trace"));
}

TEST(LintRules, UnguardedTraceScopeAndExemptions) {
  const std::string body =
      "void f(Sim& sim) { sim.trace(TraceKind::kCounter, lbl); }\n";
  // Outside src/ (tests, tools) the rule is silent.
  EXPECT_TRUE(lint_source("tests/x.cpp", body).empty());
  // The observability layer and the Tracer implementation are exempt.
  EXPECT_TRUE(lint_source("src/obs/metrics.cpp", body).empty());
  EXPECT_TRUE(lint_source("src/des/trace.cpp", body).empty());
  // Non-member uses of the bare words are not flagged.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "void trace(int x);\nvoid g() { trace(1); }\n")
          .empty());
  // trace_label()/collect_metrics() are different tokens entirely.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "void g(Sim& s) { auto l = s.trace_label(\"n\"); }\n")
                  .empty());
}

// --- suppressions --------------------------------------------------------

TEST(LintSuppressions, AllowOnSameLineOrLineAboveSilences) {
  EXPECT_TRUE(
      lint_source("src/x.cpp",
                  "static int hits = 0;  // lint:allow(mutable-static): "
                  "test-only tally\n")
          .empty());
  EXPECT_TRUE(
      lint_source("src/x.cpp",
                  "// lint:allow(mutable-static): test-only tally\n"
                  "static int hits = 0;\n")
          .empty());
}

TEST(LintSuppressions, AllowDoesNotLeakToOtherLines) {
  const auto f = lint_source("src/x.cpp",
                             "// lint:allow(mutable-static): only line 2\n"
                             "static int a = 0;\n"
                             "static int b = 0;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
  EXPECT_EQ(f[0].rule, "mutable-static");
}

TEST(LintSuppressions, ReasonIsMandatory) {
  const auto f = lint_source("src/x.cpp",
                             "// lint:allow(mutable-static)\n"
                             "static int a = 0;\n");
  // The bare allow is rejected AND does not suppress.
  EXPECT_TRUE(has_rule(f, "bad-allow"));
  EXPECT_TRUE(has_rule(f, "mutable-static"));
}

TEST(LintSuppressions, UnknownRuleIsAFinding) {
  const auto f = lint_source(
      "src/x.cpp", "// lint:allow(no-such-rule): misspelled\nint x;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "bad-allow");
}

TEST(LintSuppressions, MultiRuleAllowCoversEachListedRule) {
  EXPECT_TRUE(
      lint_source("src/x.cpp",
                  "// lint:allow(mutable-static,unordered-container): fixture\n"
                  "static std::unordered_map<int, int> cache_;\n")
          .empty());
}

// --- output shape --------------------------------------------------------

TEST(LintOutput, FindingsAreLineSortedAndRenderable) {
  const auto f = lint_source("src/x.cpp",
                             "static int z = 0;\n"
                             "int r = rand();\n"
                             "auto* p = const_cast<int*>(q);\n");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_TRUE(std::is_sorted(f.begin(), f.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line < b.line;
                             }));
  EXPECT_EQ(to_string(f[1]).rfind("src/x.cpp:2: [raw-entropy]", 0), 0u);
}

TEST(LintOutput, RuleIdsAreStable) {
  const auto& ids = rule_ids();
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "unordered-iter"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "bad-allow"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "unguarded-trace"), ids.end());
}

}  // namespace
}  // namespace pimsim::lint
