// Tests of the closed-form models: the paper's equations, their algebraic
// properties, and their agreement with the simulations.
#include <gtest/gtest.h>

#include "analytic/accuracy.hpp"
#include "analytic/hwp_lwp.hpp"
#include "analytic/parcel_model.hpp"
#include "common/error.hpp"

namespace pimsim::analytic {
namespace {

using arch::SystemParams;

TEST(HwpLwpModel, PaperEquationAtTableOneValues) {
  const SystemParams p = SystemParams::table1();
  // Time_relative = 1 - %WL * (1 - NB/N) with NB = 3.125.
  EXPECT_DOUBLE_EQ(time_relative(p, 10.0, 0.5), 1.0 - 0.5 * (1.0 - 0.3125));
  EXPECT_DOUBLE_EQ(time_relative(p, 3.125, 0.7), 1.0);
}

TEST(HwpLwpModel, ZeroLwpFractionIsAlwaysOne) {
  const SystemParams p = SystemParams::table1();
  for (double n : {1.0, 2.0, 64.0, 1e6}) {
    EXPECT_DOUBLE_EQ(time_relative(p, n, 0.0), 1.0);
  }
}

// --- The paper's central finding: the coincidence point at N = NB is
// independent of %WL, and NB is orthogonal to N and %WL. -----------------

struct CrossoverCase {
  double tl_cycle, t_mh, t_ch, t_ml, p_miss, ls_mix;
};

class CrossoverProperty : public ::testing::TestWithParam<CrossoverCase> {};

TEST_P(CrossoverProperty, CoincidencePointIndependentOfWorkloadSplit) {
  const CrossoverCase c = GetParam();
  SystemParams p;
  p.tl_cycle = c.tl_cycle;
  p.t_mh = c.t_mh;
  p.t_ch = c.t_ch;
  p.t_ml = c.t_ml;
  p.p_miss = c.p_miss;
  p.ls_mix = c.ls_mix;
  const double nb = crossover_nodes(p);
  if (nb < 1.0) {
    // NB < 1: a single LWP already beats the HWP on low-locality work,
    // so PIM helps at every physical node count and workload split.
    for (double pct : {0.1, 0.5, 1.0}) {
      EXPECT_LT(time_relative(p, 1.0, pct), 1.0);
    }
    return;
  }
  for (double pct : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    EXPECT_NEAR(time_relative(p, nb, pct), 1.0, 1e-12)
        << "%WL=" << pct << " NB=" << nb;
  }
}

TEST_P(CrossoverProperty, AboveNbAlwaysHelpsBelowAlwaysHurts) {
  const CrossoverCase c = GetParam();
  SystemParams p;
  p.tl_cycle = c.tl_cycle;
  p.t_mh = c.t_mh;
  p.t_ch = c.t_ch;
  p.t_ml = c.t_ml;
  p.p_miss = c.p_miss;
  p.ls_mix = c.ls_mix;
  const double nb = crossover_nodes(p);
  for (double pct : {0.2, 0.6, 1.0}) {
    EXPECT_LT(time_relative(p, nb * 2.0, pct), 1.0);
    if (nb / 2.0 >= 1.0) {
      EXPECT_GT(time_relative(p, nb / 2.0, pct), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterFamilies, CrossoverProperty,
    ::testing::Values(CrossoverCase{5, 90, 2, 30, 0.10, 0.30},   // Table 1
                      CrossoverCase{5, 90, 2, 30, 0.05, 0.30},   // better cache
                      CrossoverCase{5, 90, 2, 30, 0.50, 0.30},   // awful cache
                      CrossoverCase{2, 120, 3, 20, 0.10, 0.40},  // fast LWP
                      CrossoverCase{10, 60, 1, 50, 0.20, 0.10},  // slow LWP
                      CrossoverCase{5, 200, 2, 30, 0.10, 0.60}));

TEST(HwpLwpModel, GainIsReciprocalOfTimeRelative) {
  const SystemParams p = SystemParams::table1();
  for (double n : {2.0, 8.0, 64.0}) {
    for (double pct : {0.2, 0.8}) {
      EXPECT_NEAR(gain(p, n, pct) * time_relative(p, n, pct), 1.0, 1e-12);
    }
  }
}

TEST(HwpLwpModel, PaperHeadlineNumbers) {
  const SystemParams p = SystemParams::table1();
  // "even for a small amount of LWP work including PIMs in the system may
  //  double the performance": 30% LWP work on plenty of nodes gives ~1.4,
  //  50% gives 2x asymptotically.
  EXPECT_NEAR(max_gain(0.5), 2.0, 1e-12);
  // "a factor of 100X gain is observed" in the extreme: 100% LWP work.
  EXPECT_NEAR(gain(p, 256.0, 1.0), 256.0 / 3.125, 1e-9);
  EXPECT_GT(gain(p, 320.0, 1.0), 100.0);
}

TEST(HwpLwpModel, AbsoluteTimesMatchFigureSixScale) {
  const SystemParams p = SystemParams::table1();
  // Control (0% LWT): 1e8 ops * 4 cycles * 1ns = 4e8 ns, flat in N.
  EXPECT_DOUBLE_EQ(absolute_time_ns(p, 100'000'000, 1.0, 0.0), 4.0e8);
  EXPECT_DOUBLE_EQ(absolute_time_ns(p, 100'000'000, 64.0, 0.0), 4.0e8);
  // 100% LWT on one node: 1e8 * 12.5 = 1.25e9 ns (the figure's top curve).
  EXPECT_DOUBLE_EQ(absolute_time_ns(p, 100'000'000, 1.0, 1.0), 1.25e9);
  // and on 64 nodes: ~1.95e7 ns (the figure's fast corner).
  EXPECT_NEAR(absolute_time_ns(p, 100'000'000, 64.0, 1.0), 1.953e7, 1e5);
}

TEST(HwpLwpModel, MinNodesForGain) {
  const SystemParams p = SystemParams::table1();
  // Gain 2 at 80% LWP work: 1 - 0.8(1 - 3.125/N) <= 0.5 -> N >= 8.333 -> 9.
  EXPECT_EQ(min_nodes_for_gain(p, 0.8, 2.0), 9u);
  // Verify it is exactly the threshold.
  EXPECT_GE(gain(p, 9.0, 0.8), 2.0);
  EXPECT_LT(gain(p, 8.0, 0.8), 2.0);
  // Unattainable target: gain 10 needs %WL > 0.9.
  EXPECT_EQ(min_nodes_for_gain(p, 0.5, 10.0), 0u);
  // Trivial target.
  EXPECT_EQ(min_nodes_for_gain(p, 0.5, 1.0), 1u);
}

TEST(HwpLwpModel, InputValidation) {
  const SystemParams p = SystemParams::table1();
  EXPECT_THROW(
      {
        const double t = time_relative(p, 0.5, 0.5);
        ADD_FAILURE() << "time_relative accepted N < 1, returned " << t;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const double t = time_relative(p, 4.0, 1.5);
        ADD_FAILURE() << "time_relative accepted %WL > 1, returned " << t;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const double g = max_gain(-0.1);
        ADD_FAILURE() << "max_gain accepted %WL < 0, returned " << g;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const std::size_t n = min_nodes_for_gain(p, 0.5, 0.0);
        ADD_FAILURE() << "min_nodes_for_gain accepted gain <= 0, returned "
                      << n;
      },
      ConfigError);
}

// --- Simulation vs analytic accuracy (Section 3.1.2) --------------------

TEST(Accuracy, SimulationTracksModelAcrossGrid) {
  arch::HostConfig base;
  base.workload.total_ops = 1'000'000;
  base.batch_ops = 10'000;
  base.seed = 11;
  const auto entries =
      compare_grid(base, {1, 2, 4, 8, 16, 32, 64}, {0.1, 0.3, 0.5, 0.9});
  ASSERT_EQ(entries.size(), 28u);
  const AccuracyBand band = summarize(entries);
  // Our reconstruction is much tighter than the paper's 5-18% band
  // because the statistical batching is exact; assert a conservative cap.
  EXPECT_LT(band.max_rel_error, 0.05);
  for (const auto& e : entries) {
    EXPECT_GT(e.simulated_cycles, 0.0);
    EXPECT_GT(e.model_cycles, 0.0);
  }
}

TEST(Accuracy, RejectsEmptyAxes) {
  arch::HostConfig base;
  EXPECT_THROW(compare_grid(base, {}, {0.5}), ConfigError);
  EXPECT_THROW(
      {
        [[maybe_unused]] const auto& band = summarize({});
        ADD_FAILURE() << "summarize accepted an empty grid";
      },
      ConfigError);
}

// --- Parcel closed forms -------------------------------------------------

parcel::SplitTransactionParams parcel_defaults() {
  parcel::SplitTransactionParams p;
  p.nodes = 8;
  p.horizon = 40'000.0;
  p.seed = 7;
  return p;
}

TEST(ParcelModel, SegmentArithmetic) {
  auto p = parcel_defaults();
  const ParcelSegment s = derive_segment(p);
  EXPECT_NEAR(s.mean_gap_ops, (1.0 - 0.3) / 0.3, 1e-12);
  EXPECT_NEAR(s.work_per_segment, s.mean_gap_ops + 1.0, 1e-12);
  EXPECT_GT(s.control_cycle_time, 0.0);
  EXPECT_GT(s.test_cpu_time, 0.0);
}

TEST(ParcelModel, RatioReversalThresholdIsTwiceSwitchCost) {
  // Saturated ratio < 1 exactly when L < 2 * t_switch (derivation in
  // parcel_model.cpp): check both sides of the threshold.
  auto p = parcel_defaults();
  p.parallelism = 64;  // saturated
  p.t_switch = 10.0;
  p.round_trip_latency = 10.0;  // < 2*t_switch
  EXPECT_LT(predicted_ratio(p), 1.0);
  p.round_trip_latency = 40.0;  // > 2*t_switch
  EXPECT_GT(predicted_ratio(p), 1.0);
}

TEST(ParcelModel, SaturationParallelismGrowsWithLatency) {
  auto p = parcel_defaults();
  p.round_trip_latency = 100.0;
  const double p100 = saturation_parallelism(p);
  p.round_trip_latency = 1000.0;
  const double p1000 = saturation_parallelism(p);
  EXPECT_GT(p1000, p100);
  EXPECT_GT(p100, 1.0);
}

TEST(ParcelModel, IdleFractionsBracketSimulation) {
  // The linear/saturated model is exact away from the saturation knee and
  // optimistic (lower idle) at the knee, where context self-contention is
  // ignored: the simulated idle must sit at or above the prediction, and
  // close to it in the clearly-linear and clearly-saturated regimes.
  auto p = parcel_defaults();
  p.round_trip_latency = 500.0;
  for (std::size_t par : {1, 4, 16}) {
    p.parallelism = par;
    const double model = test_idle_fraction(p);
    const double sim =
        parcel::run_split_transaction_system(p).mean_idle_fraction();
    EXPECT_GT(sim, model - 0.05) << "parallelism " << par;
    const double tolerance = (par == 4) ? 0.25 : 0.08;  // par=4 is the knee
    EXPECT_NEAR(sim, model, tolerance) << "parallelism " << par;
  }
}

TEST(ParcelModel, ControlIdleMatchesSimulation) {
  auto p = parcel_defaults();
  for (double latency : {50.0, 200.0, 1000.0}) {
    p.round_trip_latency = latency;
    const double model = control_idle_fraction(p);
    const double sim =
        parcel::run_message_passing_system(p).mean_idle_fraction();
    EXPECT_NEAR(sim, model, 0.08) << "latency " << latency;
  }
}

TEST(ParcelModel, PredictedRatioTracksSimulatedRatio) {
  auto p = parcel_defaults();
  p.p_remote = 0.2;
  for (std::size_t par : {1, 8, 32}) {
    for (double latency : {50.0, 500.0}) {
      p.parallelism = par;
      p.round_trip_latency = latency;
      const double model = predicted_ratio(p);
      const double sim = parcel::compare_systems(p).work_ratio;
      // Contention-free model: tight off the knee, optimistic at it
      // (par=8 sits at the saturation parallelism for L=500).
      EXPECT_NEAR(sim / model, 1.0, 0.35)
          << "par=" << par << " L=" << latency;
      EXPECT_LT(sim, model * 1.15) << "model must not underpredict";
    }
  }
}

}  // namespace
}  // namespace pimsim::analytic
