// Tests for the DRAM macro, banks, and cache models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "des/process.hpp"
#include "memory/cache.hpp"
#include "memory/dram.hpp"

namespace pimsim::mem {
namespace {

TEST(DramMacroSpec, PaperGeometry) {
  const DramMacroSpec spec;
  EXPECT_EQ(spec.row_bits, 2048u);
  EXPECT_EQ(spec.word_bits, 256u);
  EXPECT_EQ(spec.words_per_row(), 8u);
}

TEST(DramMacroSpec, SustainedBandwidthExceedsPaperClaim) {
  // "a single on-chip DRAM macro could sustain a bandwidth of over
  //  50 Gbit/s" with 20 ns row access and 2 ns page access.
  const DramMacroSpec spec;
  EXPECT_GT(spec.sustained_bandwidth_gbps(), 50.0);
  // Row drain: 20 + 8*2 = 36 ns for 2048 bits -> ~56.9 Gbit/s.
  EXPECT_NEAR(spec.sustained_bandwidth_gbps(), 2048.0 / 36.0, 0.01);
}

TEST(DramMacroSpec, BurstBandwidth) {
  const DramMacroSpec spec;
  // 256 bits / 2 ns = 128 Gbit/s.
  EXPECT_NEAR(spec.burst_bandwidth_gbps(), 128.0, 1e-9);
}

TEST(DramMacroSpec, ChipBandwidthExceedsOneTbit) {
  // "an on-chip peak memory bandwidth of greater than 1 Tbit/s is
  //  possible per chip" — holds from ~18 nodes up.
  const DramMacroSpec spec;
  EXPECT_GT(spec.chip_bandwidth_gbps(32), 1000.0);
  EXPECT_LT(spec.chip_bandwidth_gbps(8), 1000.0);
}

TEST(DramMacroSpec, ValidationCatchesBadGeometry) {
  DramMacroSpec spec;
  spec.word_bits = 300;  // not a divisor of 2048
  EXPECT_THROW(spec.validate(), ConfigError);
  spec = DramMacroSpec{};
  spec.row_access_ns = 0.0;
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(DramBank, RowBufferHitsAreFast) {
  DramBank bank;
  const double miss = bank.access_ns(5);   // opens row 5
  const double hit = bank.access_ns(5);    // row buffer hit
  EXPECT_DOUBLE_EQ(miss, 22.0);  // 20 + 2
  EXPECT_DOUBLE_EQ(hit, 2.0);
  EXPECT_EQ(bank.hits(), 1u);
  EXPECT_EQ(bank.misses(), 1u);
  EXPECT_DOUBLE_EQ(bank.hit_rate(), 0.5);
}

TEST(DramBank, ConflictingRowsThrash) {
  DramBank bank;
  (void)bank.access_ns(1);
  (void)bank.access_ns(2);
  (void)bank.access_ns(1);
  EXPECT_EQ(bank.hits(), 0u);
  EXPECT_EQ(bank.misses(), 3u);
  EXPECT_TRUE(bank.row_open(1));
  EXPECT_FALSE(bank.row_open(2));
}

TEST(DramBank, StatsReset) {
  DramBank bank;
  (void)bank.access_ns(1);
  bank.reset_stats();
  EXPECT_EQ(bank.hits() + bank.misses(), 0u);
  EXPECT_DOUBLE_EQ(bank.hit_rate(), 0.0);
}

TEST(BankedMemory, AddressInterleavingCoversAllBanks) {
  des::Simulation sim;
  BankedMemory memory(sim, 4, 4);
  const std::size_t word_bytes = 256 / 8;
  EXPECT_EQ(memory.bank_of(0 * word_bytes), 0u);
  EXPECT_EQ(memory.bank_of(1 * word_bytes), 1u);
  EXPECT_EQ(memory.bank_of(4 * word_bytes), 0u);
  EXPECT_EQ(memory.row_of(0), memory.row_of(3 * word_bytes));
}

TEST(BankedMemory, PortContentionSerializes) {
  des::Simulation sim;
  BankedMemory memory(sim, 4, 1);  // one shared port
  for (int i = 0; i < 3; ++i) {
    sim.spawn(memory.access_for(10.0));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
  EXPECT_EQ(memory.accesses(), 3u);
}

TEST(BankedMemory, FullPortsRunConcurrently) {
  des::Simulation sim;
  BankedMemory memory(sim, 4, 4);
  for (int i = 0; i < 4; ++i) {
    sim.spawn(memory.access_for(10.0));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(BankedMemory, RejectsBadConfig) {
  des::Simulation sim;
  EXPECT_THROW(BankedMemory(sim, 0, 1), ConfigError);
  EXPECT_THROW(BankedMemory(sim, 2, 3), ConfigError);  // ports > banks
}

TEST(StatCache, MissRateConvergesToPmiss) {
  StatCache cache(0.1, Rng(3));
  for (int i = 0; i < 100000; ++i) (void)cache.access();
  EXPECT_NEAR(cache.observed_miss_rate(), 0.1, 0.005);
}

TEST(StatCache, BatchedSamplingMatchesPerAccessStatistics) {
  // Property: misses_among(n) has the same distribution as n access()
  // calls — compare means and variances over many trials.
  StatCache per_access(0.1, Rng(5, 1));
  StatCache batched(0.1, Rng(5, 2));
  RunningStats per_counts, batch_counts;
  const std::uint64_t n = 500;
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint64_t misses = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      misses += per_access.access() == CacheOutcome::kMiss;
    }
    per_counts.add(static_cast<double>(misses));
    batch_counts.add(static_cast<double>(batched.misses_among(n)));
  }
  EXPECT_NEAR(per_counts.mean(), batch_counts.mean(), 1.5);
  EXPECT_NEAR(per_counts.stddev(), batch_counts.stddev(), 0.5);
}

TEST(StatCache, DegenerateRates) {
  StatCache never(0.0, Rng(7));
  EXPECT_EQ(never.misses_among(1000), 0u);
  StatCache always(1.0, Rng(7));
  EXPECT_EQ(always.misses_among(1000), 1000u);
}

TEST(SetAssocCache, GeometryDerivation) {
  CacheGeometry g;
  g.size_bytes = 1 << 16;
  g.line_bytes = 64;
  g.ways = 4;
  EXPECT_EQ(g.sets(), 256u);
  g.size_bytes = 100;  // not divisible
  EXPECT_THROW(g.validate(), ConfigError);
}

TEST(SetAssocCache, RepeatedAccessHits) {
  SetAssocCache cache(CacheGeometry{1 << 12, 64, 2});
  EXPECT_EQ(cache.access(0x100), CacheOutcome::kMiss);
  EXPECT_EQ(cache.access(0x100), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(0x104), CacheOutcome::kHit);  // same line
  EXPECT_EQ(cache.access(0x140), CacheOutcome::kMiss); // next line
}

TEST(SetAssocCache, LruEvictionOrder) {
  // 2-way cache: two blocks mapping to one set survive; a third evicts
  // the least recently used.
  CacheGeometry g{2 * 64 * 4, 64, 2};  // 4 sets, 2 ways
  SetAssocCache cache(g);
  const std::uint64_t setstride = 64 * 4;
  (void)cache.access(0 * setstride);  // A -> miss
  (void)cache.access(1 * setstride);  // B -> miss (same set, other way)
  (void)cache.access(0 * setstride);  // A -> hit, B becomes LRU
  cache.reset_stats();
  (void)cache.access(2 * setstride);  // C -> evicts B
  EXPECT_EQ(cache.access(0 * setstride), CacheOutcome::kHit);   // A survived
  EXPECT_EQ(cache.access(1 * setstride), CacheOutcome::kMiss);  // B evicted
}

TEST(SetAssocCache, FlushColdsTheCache) {
  SetAssocCache cache(CacheGeometry{1 << 12, 64, 2});
  (void)cache.access(0);
  (void)cache.access(0);
  cache.flush();
  EXPECT_EQ(cache.access(0), CacheOutcome::kMiss);
}

TEST(SetAssocCache, StreamingFitsInCacheHasHighHitRate) {
  // A footprint smaller than the cache, swept repeatedly: ~all hits after
  // the first pass (the "high temporal locality" regime of the paper).
  SetAssocCache cache(CacheGeometry{1 << 16, 64, 4});
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t a = 0; a < (1 << 14); a += 64) (void)cache.access(a);
  }
  EXPECT_LT(cache.miss_rate(), 0.11);
}

}  // namespace
}  // namespace pimsim::mem
