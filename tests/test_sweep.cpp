// SweepRunner: parallel correctness, determinism across thread counts,
// and edge cases.  The determinism tests are the engine's contract: the
// schedule may reorder work, but every (point, seed) computation and its
// aggregation are fixed by base_seed alone, so estimates must be
// bitwise-identical for any thread count.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"

namespace pimsim::core {
namespace {

// A measurement with enough per-call work that a racy scheduler would
// actually interleave: walks an Rng stream derived from (point, seed).
double noisy_measure(std::size_t point, std::uint64_t seed) {
  Rng rng(seed, /*stream_id=*/point);
  double acc = 0.0;
  for (int i = 0; i < 500; ++i) acc += rng.uniform();
  return acc / 500.0 + static_cast<double>(point);
}

TEST(SweepRunner, ResolvesThreadCounts) {
  EXPECT_GE(SweepRunner(0).threads(), 1u);  // 0 = hardware concurrency
  EXPECT_EQ(SweepRunner(1).threads(), 1u);
  EXPECT_EQ(SweepRunner(4).threads(), 4u);
}

TEST(SweepRunner, ForEachVisitsEveryIndexExactlyOnce) {
  SweepRunner runner(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  runner.for_each(kCount, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunner, ForEachHandlesEmptyAndSingleton) {
  SweepRunner runner(4);
  std::atomic<int> calls{0};
  runner.for_each(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  runner.for_each(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(SweepRunner, ForEachIsReusableAcrossBatches) {
  SweepRunner runner(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    runner.for_each(round % 7 + 1, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    const std::size_t n = static_cast<std::size_t>(round % 7) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(SweepRunner, ForEachPropagatesExceptions) {
  SweepRunner runner(4);
  EXPECT_THROW(
      runner.for_each(100,
                      [](std::size_t i) {
                        if (i == 37) throw ConfigError("boom at 37");
                      }),
      ConfigError);
  // The pool must survive a failed batch.
  std::atomic<int> calls{0};
  runner.for_each(10, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(SweepRunner, ForEachRejectsEmptyBody) {
  SweepRunner runner(2);
  EXPECT_THROW(runner.for_each(3, std::function<void(std::size_t)>{}),
               ConfigError);
}

TEST(SweepRunner, SweepMatchesSerialReplicatePointwise) {
  constexpr std::size_t kPoints = 12;
  constexpr std::size_t kReps = 5;
  constexpr std::uint64_t kSeed = 2026;
  SweepRunner runner(4);
  const std::vector<Estimate> parallel =
      runner.sweep(kPoints, kReps, kSeed, noisy_measure);
  ASSERT_EQ(parallel.size(), kPoints);
  for (std::size_t p = 0; p < kPoints; ++p) {
    const Estimate serial = replicate(kReps, kSeed, [p](std::uint64_t seed) {
      return noisy_measure(p, seed);
    });
    EXPECT_EQ(parallel[p].mean, serial.mean) << "point " << p;
    EXPECT_EQ(parallel[p].half_width, serial.half_width) << "point " << p;
  }
}

TEST(SweepRunner, SweepIsBitwiseIdenticalAcrossThreadCounts) {
  constexpr std::size_t kPoints = 40;
  constexpr std::size_t kReps = 3;
  constexpr std::uint64_t kSeed = 7;
  SweepRunner serial(1);
  const std::vector<Estimate> reference =
      serial.sweep(kPoints, kReps, kSeed, noisy_measure);
  for (std::size_t threads : {2, 4, 8}) {
    SweepRunner runner(threads);
    const std::vector<Estimate> estimates =
        runner.sweep(kPoints, kReps, kSeed, noisy_measure);
    ASSERT_EQ(estimates.size(), reference.size());
    for (std::size_t p = 0; p < kPoints; ++p) {
      EXPECT_EQ(estimates[p].mean, reference[p].mean)
          << threads << " threads, point " << p;
      EXPECT_EQ(estimates[p].half_width, reference[p].half_width)
          << threads << " threads, point " << p;
    }
  }
}

TEST(SweepRunner, SweepHandlesEmptyAndSingletonGrids) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.sweep(0, 3, 1, noisy_measure).empty());
  const std::vector<Estimate> one = runner.sweep(1, 3, 1, noisy_measure);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(std::isfinite(one[0].mean));
  EXPECT_GE(one[0].half_width, 0.0);
}

TEST(SweepRunner, SweepRejectsEmptyMeasurement) {
  SweepRunner runner(2);
  EXPECT_THROW(
      {
        const auto estimates = runner.sweep(
            3, 3, 1, std::function<double(std::size_t, std::uint64_t)>{});
        ADD_FAILURE() << "sweep accepted an empty measurement, returned "
                      << estimates.size() << " estimates";
      },
      ConfigError);
}

}  // namespace
}  // namespace pimsim::core
