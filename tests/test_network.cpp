// Tests for the interconnect latency models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "parcel/network.hpp"

namespace pimsim::parcel {
namespace {

TEST(FlatInterconnect, HalfRoundTripEachWay) {
  FlatInterconnect net(100.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 5), 50.0);
  EXPECT_DOUBLE_EQ(net.round_trip_latency(3, 9), 100.0);
  EXPECT_STREQ(net.name(), "flat");
}

TEST(FlatInterconnect, IsDistanceIndependent) {
  FlatInterconnect net(64.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 1), net.one_way_latency(0, 255));
}

TEST(RingInterconnect, HopCounting) {
  RingInterconnect net(8, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 1), 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 7), 2.0 + 7 * 3.0);
  // Unidirectional: 7 -> 0 is one hop forward.
  EXPECT_DOUBLE_EQ(net.one_way_latency(7, 0), 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(4, 4), 2.0);
}

TEST(RingInterconnect, RejectsOutOfRange) {
  RingInterconnect net(4, 0.0, 1.0);
  EXPECT_THROW(
      {
        const auto latency = net.one_way_latency(0, 4);
        ADD_FAILURE() << "one_way_latency accepted node 4 of 4, returned "
                      << latency;
      },
      ConfigError);
}

TEST(Mesh2D, ManhattanRouting) {
  Mesh2DInterconnect net(4, 4, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 3), 1.0 + 3 * 2.0);   // same row
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 15), 1.0 + 6 * 2.0);  // corner
  EXPECT_DOUBLE_EQ(net.one_way_latency(5, 10), 1.0 + 2 * 2.0);
}

TEST(Mesh2D, SymmetricDistances) {
  Mesh2DInterconnect net(4, 4, 0.0, 1.0);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_DOUBLE_EQ(net.one_way_latency(a, b), net.one_way_latency(b, a));
    }
  }
}

TEST(MakeInterconnect, FlatByName) {
  auto net = make_interconnect("flat", 16, 200.0);
  EXPECT_STREQ(net->name(), "flat");
  EXPECT_DOUBLE_EQ(net->round_trip_latency(0, 9), 200.0);
}

TEST(MakeInterconnect, CalibratedMeanRoundTrip) {
  // Ring and mesh variants are calibrated so the mean round trip over
  // uniform random pairs is close to the requested latency.
  Rng rng(3);
  for (const char* kind : {"ring", "mesh2d"}) {
    auto net = make_interconnect(kind, 16, 200.0);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      const auto a = static_cast<NodeId>(rng.uniform_int(0, 15));
      const auto b = static_cast<NodeId>(rng.uniform_int(0, 15));
      sum += net->round_trip_latency(a, b);
    }
    EXPECT_NEAR(sum / trials, 200.0, 30.0) << kind;
  }
}

TEST(MakeInterconnect, RejectsUnknownKindAndBadGeometry) {
  EXPECT_THROW(make_interconnect("torus", 16, 100.0), ConfigError);
  EXPECT_THROW(make_interconnect("mesh2d", 10, 100.0), ConfigError);  // not square
}

}  // namespace
}  // namespace pimsim::parcel
