// Tests for the interconnect latency models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "parcel/network.hpp"

namespace pimsim::parcel {
namespace {

TEST(FlatInterconnect, HalfRoundTripEachWay) {
  FlatInterconnect net(100.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 5), 50.0);
  EXPECT_DOUBLE_EQ(net.round_trip_latency(3, 9), 100.0);
  EXPECT_STREQ(net.name(), "flat");
}

TEST(FlatInterconnect, IsDistanceIndependent) {
  FlatInterconnect net(64.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 1), net.one_way_latency(0, 255));
}

TEST(RingInterconnect, HopCounting) {
  RingInterconnect net(8, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 1), 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 7), 2.0 + 7 * 3.0);
  // Unidirectional: 7 -> 0 is one hop forward.
  EXPECT_DOUBLE_EQ(net.one_way_latency(7, 0), 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(4, 4), 2.0);
}

TEST(RingInterconnect, RejectsOutOfRange) {
  RingInterconnect net(4, 0.0, 1.0);
  EXPECT_THROW(
      {
        const auto latency = net.one_way_latency(0, 4);
        ADD_FAILURE() << "one_way_latency accepted node 4 of 4, returned "
                      << latency;
      },
      ConfigError);
}

TEST(Mesh2D, ManhattanRouting) {
  Mesh2DInterconnect net(4, 4, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 3), 1.0 + 3 * 2.0);   // same row
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 15), 1.0 + 6 * 2.0);  // corner
  EXPECT_DOUBLE_EQ(net.one_way_latency(5, 10), 1.0 + 2 * 2.0);
}

TEST(Mesh2D, SymmetricDistances) {
  Mesh2DInterconnect net(4, 4, 0.0, 1.0);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_DOUBLE_EQ(net.one_way_latency(a, b), net.one_way_latency(b, a));
    }
  }
}

TEST(RingInterconnect, SelfAndWrapAround) {
  RingInterconnect net(6, 1.5, 2.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(3, 3), 1.5);  // src == dst: base only
  // Wrap-around: 5 -> 2 crosses the seam in 3 forward hops.
  EXPECT_DOUBLE_EQ(net.one_way_latency(5, 2), 1.5 + 3 * 2.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(2, 5), 1.5 + 3 * 2.0);
}

TEST(RingInterconnect, RoundTripIsSymmetricAndConstant) {
  // One-way distances are asymmetric (unidirectional ring), but forward
  // plus return always circles the whole ring: round trips are symmetric
  // and identical for every distinct pair.
  RingInterconnect net(7, 0.0, 3.0);
  for (NodeId a = 0; a < 7; ++a) {
    for (NodeId b = 0; b < 7; ++b) {
      EXPECT_DOUBLE_EQ(net.round_trip_latency(a, b),
                       net.round_trip_latency(b, a));
      if (a != b) {
        EXPECT_DOUBLE_EQ(net.round_trip_latency(a, b), 7 * 3.0);
      }
    }
  }
}

TEST(Mesh2D, NonSquareGridAndSelf) {
  // 4 wide x 2 tall, row-major: node 7 is (x=3, y=1).
  Mesh2DInterconnect net(4, 2, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 7), 1.0 + 4 * 2.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(3, 4), 1.0 + 4 * 2.0);
  EXPECT_DOUBLE_EQ(net.one_way_latency(5, 5), 1.0);  // src == dst: base only
  EXPECT_DOUBLE_EQ(net.round_trip_latency(0, 7), net.round_trip_latency(7, 0));
}

TEST(Torus2D, WrapAroundDistances) {
  // 4x4 torus: each dimension takes the shorter way around.
  Torus2DInterconnect net(4, 4, 1.0, 2.0);
  EXPECT_STREQ(net.name(), "torus");
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 3), 1.0 + 1 * 2.0);   // wrap: 1 hop
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 15), 1.0 + 2 * 2.0);  // corner: 1+1
  EXPECT_DOUBLE_EQ(net.one_way_latency(0, 2), 1.0 + 2 * 2.0);   // tie: 2 hops
  EXPECT_DOUBLE_EQ(net.one_way_latency(5, 5), 1.0);  // src == dst: base only
}

TEST(Torus2D, RoundTripSymmetryAndMeshUpperBound) {
  Torus2DInterconnect torus(4, 4, 0.0, 1.0);
  Mesh2DInterconnect mesh(4, 4, 0.0, 1.0);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_DOUBLE_EQ(torus.round_trip_latency(a, b),
                       torus.round_trip_latency(b, a));
      // Wrapping can only shorten a path.
      EXPECT_LE(torus.one_way_latency(a, b), mesh.one_way_latency(a, b));
    }
  }
}

TEST(MakeInterconnect, FlatByName) {
  auto net = make_interconnect("flat", 16, 200.0);
  EXPECT_STREQ(net->name(), "flat");
  EXPECT_DOUBLE_EQ(net->round_trip_latency(0, 9), 200.0);
}

TEST(MakeInterconnect, CalibratedMeanRoundTrip) {
  // Ring, mesh, and torus variants are calibrated so the mean round trip
  // over uniform random pairs is close to the requested latency.
  Rng rng(3);
  for (const char* kind : {"ring", "mesh2d", "torus"}) {
    auto net = make_interconnect(kind, 16, 200.0);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      const auto a = static_cast<NodeId>(rng.uniform_int(0, 15));
      const auto b = static_cast<NodeId>(rng.uniform_int(0, 15));
      sum += net->round_trip_latency(a, b);
    }
    EXPECT_NEAR(sum / trials, 200.0, 30.0) << kind;
  }
}

TEST(MakeInterconnect, TorusByName) {
  auto net = make_interconnect("torus", 16, 200.0);
  EXPECT_STREQ(net->name(), "torus");
  // Calibration: mean wrapped hops on a 4x4 torus is 2*floor(16/4)/4 = 2,
  // so per_hop = 100/2 = 50 and the 1-hop wrap neighbour costs 50.
  EXPECT_DOUBLE_EQ(net->one_way_latency(0, 3), 50.0);
}

TEST(MakeInterconnect, RejectsUnknownKindAndBadGeometry) {
  // Unknown names raise InvalidArgument (a ConfigError) listing every
  // valid topology so the ablation CLI fails with an actionable message.
  try {
    (void)make_interconnect("hypercube", 16, 100.0);
    FAIL() << "make_interconnect accepted 'hypercube'";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    for (const char* kind : {"flat", "ring", "mesh2d", "torus"}) {
      EXPECT_NE(msg.find(kind), std::string::npos) << msg;
    }
  }
  // Grid kinds validate width * height == nodes.
  EXPECT_THROW(make_interconnect("mesh2d", 10, 100.0), InvalidArgument);
  EXPECT_THROW(make_interconnect("torus", 12, 100.0), InvalidArgument);
  EXPECT_THROW(make_interconnect("mesh2d", 10, 100.0), ConfigError);
}

}  // namespace
}  // namespace pimsim::parcel
