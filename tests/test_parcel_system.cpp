// Behavioural tests of the Section 4 dual-system experiment: blocking
// message passing (control) versus parcel split transactions (test).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "analytic/parcel_model.hpp"
#include "parcel/system.hpp"

namespace pimsim::parcel {
namespace {

SplitTransactionParams small_params() {
  SplitTransactionParams p;
  p.nodes = 8;
  p.horizon = 20'000.0;
  p.seed = 3;
  return p;
}

TEST(Params, Validation) {
  SplitTransactionParams p = small_params();
  p.nodes = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = small_params();
  p.ls_mix = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = small_params();
  p.parallelism = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = small_params();
  p.horizon = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ControlSystem, NoRemoteAccessesMeansNoIdle) {
  SplitTransactionParams p = small_params();
  p.p_remote = 0.0;
  const SystemRunResult r = run_message_passing_system(p);
  EXPECT_LT(r.mean_idle_fraction(), 0.01);
  EXPECT_GT(r.total_work(), 0.0);
  for (const auto& n : r.nodes) {
    EXPECT_EQ(n.remote_requests, 0u);
    EXPECT_EQ(n.accesses_served, 0u);
  }
}

TEST(ControlSystem, IdleGrowsWithLatency) {
  SplitTransactionParams p = small_params();
  p.round_trip_latency = 50.0;
  const double idle_short = run_message_passing_system(p).mean_idle_fraction();
  p.round_trip_latency = 1000.0;
  const double idle_long = run_message_passing_system(p).mean_idle_fraction();
  EXPECT_GT(idle_long, idle_short);
  EXPECT_GT(idle_long, 0.5);  // mostly waiting at L=1000, 10% remote
}

TEST(ControlSystem, WorkBalancesAcrossSymmetricNodes) {
  const SystemRunResult r = run_message_passing_system(small_params());
  double min_work = r.nodes[0].work(), max_work = r.nodes[0].work();
  for (const auto& n : r.nodes) {
    min_work = std::min(min_work, n.work());
    max_work = std::max(max_work, n.work());
  }
  EXPECT_GT(min_work, 0.6 * max_work);  // statistically similar
}

TEST(ControlSystem, RequestsAreServedSomewhere) {
  const SystemRunResult r = run_message_passing_system(small_params());
  std::uint64_t sent = 0, served = 0;
  for (const auto& n : r.nodes) {
    sent += n.remote_requests;
    served += n.accesses_served;
  }
  EXPECT_GT(sent, 0u);
  // In-flight requests at the horizon make served lag sent slightly.
  EXPECT_NEAR(static_cast<double>(served), static_cast<double>(sent),
              0.05 * static_cast<double>(sent) + 20.0);
}

TEST(TestSystem, SufficientParallelismDrivesIdleToZero) {
  // The paper: "for sufficient parallelism, the idle time drops virtually
  // to zero for the test systems".
  SplitTransactionParams p = small_params();
  p.round_trip_latency = 500.0;
  p.parallelism = 1;
  const double idle_p1 =
      run_split_transaction_system(p).mean_idle_fraction();
  p.parallelism = 32;
  const double idle_p32 =
      run_split_transaction_system(p).mean_idle_fraction();
  EXPECT_GT(idle_p1, 0.5);
  EXPECT_LT(idle_p32, 0.05);
}

TEST(TestSystem, IdleMonotonicallyDecreasesWithParallelism) {
  SplitTransactionParams p = small_params();
  p.round_trip_latency = 200.0;
  double prev = 1.0;
  for (std::size_t par : {1, 2, 4, 8, 16}) {
    p.parallelism = par;
    const double idle = run_split_transaction_system(p).mean_idle_fraction();
    EXPECT_LE(idle, prev + 0.03) << "parallelism " << par;
    prev = idle;
  }
}

TEST(Comparison, ParcelsWinAtHighLatencyWithParallelism) {
  SplitTransactionParams p = small_params();
  p.round_trip_latency = 1000.0;
  p.parallelism = 16;
  p.p_remote = 0.2;
  const ComparisonPoint point = compare_systems(p);
  EXPECT_GT(point.work_ratio, 3.0);  // large win when latency dominates
}

TEST(Comparison, OrderOfMagnitudePossible) {
  // The paper: "sometimes exceeding an order of magnitude".
  SplitTransactionParams p = small_params();
  p.round_trip_latency = 2000.0;
  p.parallelism = 32;
  p.p_remote = 0.5;
  const ComparisonPoint point = compare_systems(p);
  EXPECT_GT(point.work_ratio, 10.0);
}

TEST(Comparison, ReversalAtShortLatencyAndNoParallelism) {
  // The paper: "performance advantage is small or in fact reversed ...
  // when there is little parallelism and short system latencies".
  SplitTransactionParams p = small_params();
  p.round_trip_latency = 2.0;  // below 2 * t_switch
  p.parallelism = 1;
  p.t_switch = 4.0;
  const ComparisonPoint point = compare_systems(p);
  EXPECT_LT(point.work_ratio, 1.0);
}

TEST(Comparison, RatioGrowsWithLatency) {
  SplitTransactionParams p = small_params();
  p.parallelism = 16;
  p.p_remote = 0.2;
  double prev = 0.0;
  for (double latency : {50.0, 200.0, 1000.0}) {
    p.round_trip_latency = latency;
    const double ratio = compare_systems(p).work_ratio;
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
}

TEST(Comparison, SingleNodeSystemRunsSelfParcels) {
  // The paper's Figure 12 includes 1-node systems: remote accesses loop
  // back to the node itself but still pay the network latency.
  SplitTransactionParams p = small_params();
  p.nodes = 1;
  p.parallelism = 8;
  p.round_trip_latency = 200.0;
  const ComparisonPoint point = compare_systems(p);
  EXPECT_GT(point.work_ratio, 1.0);
  EXPECT_GT(point.control_idle, point.test_idle);
}

TEST(Comparison, DeterministicGivenSeed) {
  SplitTransactionParams p = small_params();
  const ComparisonPoint a = compare_systems(p);
  const ComparisonPoint b = compare_systems(p);
  EXPECT_DOUBLE_EQ(a.work_ratio, b.work_ratio);
  p.seed = 4;
  const ComparisonPoint c = compare_systems(p);
  EXPECT_NE(a.work_ratio, c.work_ratio);
}

TEST(Comparison, TopologyAblationStaysQualitativelySimilar) {
  // Replacing the flat network with ring/mesh at the same mean latency
  // must preserve the headline conclusion (parcels win with parallelism
  // at high latency).
  SplitTransactionParams p = small_params();
  p.nodes = 16;
  p.round_trip_latency = 500.0;
  p.parallelism = 16;
  p.p_remote = 0.2;
  for (const char* kind : {"flat", "ring", "mesh2d"}) {
    p.network = kind;
    const ComparisonPoint point = compare_systems(p);
    EXPECT_GT(point.work_ratio, 2.0) << kind;
  }
}

TEST(Bandwidth, ZeroGapMatchesDefaultExactly) {
  // nic_gap = 0 must take the direct delivery path and reproduce the
  // paper's infinite-bandwidth results bit for bit.
  SplitTransactionParams p = small_params();
  const ComparisonPoint base = compare_systems(p);
  p.nic_gap = 0.0;
  const ComparisonPoint zero = compare_systems(p);
  EXPECT_DOUBLE_EQ(base.work_ratio, zero.work_ratio);
  EXPECT_DOUBLE_EQ(base.test_work, zero.test_work);
}

TEST(Bandwidth, LargeGapClampsThroughputNearTheBound) {
  SplitTransactionParams p = small_params();
  p.horizon = 150'000.0;  // long run: the NIC backlog must dominate the
                          // pre-congestion transient in the average
  p.round_trip_latency = 500.0;
  p.parallelism = 32;  // plenty of latency-hiding parallelism
  p.p_remote = 0.2;
  p.nic_gap = 80.0;    // brutally slow NIC
  const auto run = run_split_transaction_system(p);
  const double per_node_rate =
      run.total_work() / (p.horizon * static_cast<double>(p.nodes));
  const double bound = analytic::test_throughput_bandwidth_bound(p);
  EXPECT_LT(per_node_rate, bound * 1.10);
  EXPECT_GT(per_node_rate, bound * 0.7);  // actually near the ceiling
}

TEST(Bandwidth, ParallelismStopsHelpingWhenBandwidthBound) {
  SplitTransactionParams p = small_params();
  p.horizon = 100'000.0;
  p.round_trip_latency = 500.0;
  p.p_remote = 0.2;
  p.nic_gap = 40.0;
  p.parallelism = 16;
  const double w16 = run_split_transaction_system(p).total_work();
  p.parallelism = 64;
  const double w64 = run_split_transaction_system(p).total_work();
  EXPECT_NEAR(w64 / w16, 1.0, 0.1);  // no further scaling
}

TEST(Bandwidth, MildGapBarelyPerturbsUnsaturatedSystem) {
  SplitTransactionParams p = small_params();
  p.parallelism = 2;  // low message rate
  p.nic_gap = 1.0;
  const double with_gap = compare_systems(p).work_ratio;
  p.nic_gap = 0.0;
  const double without = compare_systems(p).work_ratio;
  EXPECT_NEAR(with_gap, without, 0.1 * without);
}

TEST(Comparison, ZeroSwitchCostNeverReverses) {
  // With free context switches the test system can only tie or win.
  SplitTransactionParams p = small_params();
  p.t_switch = 0.0;
  p.t_send = 0.0;
  for (double latency : {5.0, 50.0, 500.0}) {
    p.round_trip_latency = latency;
    EXPECT_GT(compare_systems(p).work_ratio, 0.95) << latency;
  }
}

}  // namespace
}  // namespace pimsim::parcel
