// Tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulation, DispatchesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulation, SameTimeEventsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, ScheduleNowRunsAfterPendingSameTimeEvents) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    sim.schedule_now([&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(Simulation, CancelPreventsDispatch) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(5.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulation sim;
  int count = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&] { ++count; });
  }
  sim.run_until(2.5);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run_until(10.0);
  EXPECT_EQ(count, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulation, RunUntilIncludesEventsExactlyAtHorizon) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, StepDispatchesOneEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), LogicError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), LogicError);
}

TEST(Simulation, RejectsPastHorizon) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.run_until(5.0), LogicError);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
  EXPECT_EQ(sim.events_dispatched(), 100u);
}

TEST(Simulation, TracerRecordsSchedulingAndDispatch) {
  Simulation sim;
  Tracer tracer;
  sim.set_tracer(&tracer);
  sim.schedule_at(1.0, [] {});
  sim.run();
  ASSERT_GE(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].kind, TraceKind::kEventScheduled);
  EXPECT_EQ(tracer.records()[1].kind, TraceKind::kEventDispatched);
  EXPECT_DOUBLE_EQ(tracer.records()[1].time, 1.0);
}

TEST(Simulation, TracerCallbackMode) {
  Simulation sim;
  int callback_count = 0;
  Tracer tracer([&](const TraceRecord&) { ++callback_count; });
  sim.set_tracer(&tracer);
  sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_GE(callback_count, 2);
  EXPECT_TRUE(tracer.records().empty());  // forwarded, not buffered
}

TEST(TraceKind, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(TraceKind::kInstant); ++k) {
    EXPECT_STRNE(to_string(static_cast<TraceKind>(k)), "unknown");
  }
}

}  // namespace
}  // namespace pimsim::des
