// Tests for the parcel wire format and action execution (Figures 8-9).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "parcel/action.hpp"
#include "parcel/parcel.hpp"

namespace pimsim::parcel {
namespace {

Parcel sample_parcel() {
  Parcel p;
  p.src = 3;
  p.dst = 17;
  p.target_vaddr = 0xdeadbeef1234ULL;
  p.action = ActionKind::kAmoAdd;
  p.method_id = 0;
  p.operands = {5, 6, 7};
  p.continuation = {3, 99};
  return p;
}

TEST(ParcelFormat, RoundTripPreservesAllFields) {
  const Parcel p = sample_parcel();
  const auto bytes = serialize(p);
  EXPECT_EQ(bytes.size(), p.wire_size());
  const Parcel q = deserialize(bytes);
  EXPECT_EQ(p, q);
}

TEST(ParcelFormat, RoundTripRandomizedProperty) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    Parcel p;
    p.src = static_cast<NodeId>(rng.uniform_int(0, 1023));
    p.dst = static_cast<NodeId>(rng.uniform_int(0, 1023));
    p.target_vaddr = rng.uniform_int(0, ~0ULL >> 1);
    p.action = static_cast<ActionKind>(rng.uniform_int(0, 4));
    p.method_id = static_cast<std::uint32_t>(rng.uniform_int(0, 100));
    const auto n_ops = rng.uniform_int(0, 8);
    for (std::uint64_t k = 0; k < n_ops; ++k) {
      p.operands.push_back(rng.uniform_int(0, ~0ULL >> 1));
    }
    p.continuation = {static_cast<NodeId>(rng.uniform_int(0, 1023)),
                      rng.uniform_int(0, 1 << 30)};
    EXPECT_EQ(deserialize(serialize(p)), p);
  }
}

TEST(ParcelFormat, EmptyOperandsSupported) {
  Parcel p;
  p.action = ActionKind::kRead;
  EXPECT_EQ(deserialize(serialize(p)), p);
}

TEST(ParcelFormat, TruncationRejected) {
  auto bytes = serialize(sample_parcel());
  bytes.pop_back();
  EXPECT_THROW(deserialize(bytes), ConfigError);
}

TEST(ParcelFormat, TrailingBytesRejected) {
  auto bytes = serialize(sample_parcel());
  bytes.push_back(0);
  EXPECT_THROW(deserialize(bytes), ConfigError);
}

TEST(ParcelFormat, BadMagicRejected) {
  auto bytes = serialize(sample_parcel());
  bytes[0] ^= 0xff;
  EXPECT_THROW(deserialize(bytes), ConfigError);
}

TEST(ParcelFormat, BadActionRejected) {
  auto bytes = serialize(sample_parcel());
  bytes[12] = 200;  // action byte after magic+src+dst
  EXPECT_THROW(deserialize(bytes), ConfigError);
}

TEST(ParcelFormat, ActionNames) {
  EXPECT_STREQ(to_string(ActionKind::kRead), "read");
  EXPECT_STREQ(to_string(ActionKind::kMethod), "method");
  EXPECT_STREQ(to_string(ActionKind::kReply), "reply");
}

TEST(MemoryStore, ReadWriteAmo) {
  MemoryStore store;
  EXPECT_EQ(store.read(0x10), 0u);  // unbacked reads as zero
  store.write(0x10, 42);
  EXPECT_EQ(store.read(0x10), 42u);
  EXPECT_EQ(store.amo_add(0x10, 8), 42u);  // returns old value
  EXPECT_EQ(store.read(0x10), 50u);
  EXPECT_EQ(store.footprint_words(), 1u);
}

TEST(ActionRegistry, RegisterAndInvoke) {
  ActionRegistry registry;
  registry.register_method(7, "double-it",
                           [](MemoryStore& store, std::uint64_t addr,
                              std::span<const std::uint64_t>) {
                             store.write(addr, store.read(addr) * 2);
                             return std::optional<std::uint64_t>(store.read(addr));
                           });
  EXPECT_TRUE(registry.has_method(7));
  EXPECT_EQ(registry.method_name(7), "double-it");
  MemoryStore store;
  store.write(4, 21);
  const auto result = registry.invoke(7, store, 4, {});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 42u);
}

TEST(ActionRegistry, RejectsDuplicatesAndUnknown) {
  ActionRegistry registry;
  auto noop = [](MemoryStore&, std::uint64_t, std::span<const std::uint64_t>) {
    return std::optional<std::uint64_t>{};
  };
  registry.register_method(1, "a", noop);
  EXPECT_THROW(registry.register_method(1, "b", noop), ConfigError);
  MemoryStore store;
  EXPECT_THROW(registry.invoke(2, store, 0, {}), ConfigError);
  EXPECT_THROW(
      {
        const std::string& name = registry.method_name(2);
        ADD_FAILURE() << "method_name resolved unknown id to \"" << name
                      << "\"";
      },
      ConfigError);
}

TEST(ExecuteAction, ReadProducesReplyToContinuation) {
  MemoryStore store;
  store.write(0x20, 7);
  ActionRegistry registry;
  Parcel p;
  p.src = 1;
  p.dst = 2;
  p.action = ActionKind::kRead;
  p.target_vaddr = 0x20;
  p.continuation = {1, 55};
  const auto reply = execute_action(p, store, registry);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->action, ActionKind::kReply);
  EXPECT_EQ(reply->src, 2u);
  EXPECT_EQ(reply->dst, 1u);
  ASSERT_EQ(reply->operands.size(), 1u);
  EXPECT_EQ(reply->operands[0], 7u);
  EXPECT_EQ(reply->continuation.context, 55u);
}

TEST(ExecuteAction, WriteIsSilent) {
  MemoryStore store;
  ActionRegistry registry;
  Parcel p;
  p.action = ActionKind::kWrite;
  p.target_vaddr = 0x8;
  p.operands = {123};
  EXPECT_FALSE(execute_action(p, store, registry).has_value());
  EXPECT_EQ(store.read(0x8), 123u);
}

TEST(ExecuteAction, AmoAddChainsAtomically) {
  MemoryStore store;
  ActionRegistry registry;
  Parcel p;
  p.action = ActionKind::kAmoAdd;
  p.target_vaddr = 0x0;
  p.operands = {10};
  p.continuation = {0, 1};
  for (int i = 0; i < 5; ++i) (void)execute_action(p, store, registry);
  EXPECT_EQ(store.read(0x0), 50u);
}

TEST(ExecuteAction, MissingOperandRejected) {
  MemoryStore store;
  ActionRegistry registry;
  Parcel p;
  p.action = ActionKind::kWrite;
  EXPECT_THROW((void)execute_action(p, store, registry), ConfigError);
}

TEST(ExecuteAction, ReplyParcelsAreNotExecuted) {
  MemoryStore store;
  ActionRegistry registry;
  Parcel p;
  p.action = ActionKind::kReply;
  p.operands = {9};
  EXPECT_FALSE(execute_action(p, store, registry).has_value());
}

}  // namespace
}  // namespace pimsim::parcel
