// Stress and determinism tests of the simulation kernel: randomized
// process populations, cancellation storms, and cross-run reproducibility.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {
namespace {

/// A worker that randomly computes, queues on a resource, and chats
/// through a mailbox ring — a randomized integration of every primitive.
Process chaos_worker(Simulation& sim, Rng rng, Resource& resource,
                     Mailbox<int>& in, Mailbox<int>& out, int rounds,
                     std::uint64_t* work_done) {
  for (int r = 0; r < rounds; ++r) {
    co_await delay(sim, rng.exponential(5.0));
    co_await resource.acquire();
    co_await delay(sim, rng.uniform(0.5, 2.0));
    resource.release();
    out.send(r);
    const int got = co_await in.receive();
    *work_done += static_cast<std::uint64_t>(got) + 1;
  }
}

struct ChaosResult {
  double final_time = 0.0;
  std::uint64_t events = 0;
  std::uint64_t work = 0;
};

ChaosResult run_chaos(std::uint64_t seed, int workers, int rounds) {
  Simulation sim;
  Rng root(seed);
  Resource resource(sim, 3);
  std::vector<std::unique_ptr<Mailbox<int>>> boxes;
  for (int i = 0; i < workers; ++i) {
    boxes.push_back(std::make_unique<Mailbox<int>>(sim));
  }
  std::vector<std::uint64_t> work(workers, 0);
  for (int i = 0; i < workers; ++i) {
    // Ring topology: worker i sends to box i+1, receives from box i.
    sim.spawn(chaos_worker(sim, root.split(i), resource, *boxes[i],
                           *boxes[(i + 1) % workers], rounds, &work[i]));
  }
  sim.run();
  ChaosResult out;
  out.final_time = sim.now();
  out.events = sim.events_dispatched();
  for (auto w : work) out.work += w;
  return out;
}

TEST(DesStress, ChaosRingCompletesAllWork) {
  const int workers = 32, rounds = 50;
  const ChaosResult r = run_chaos(7, workers, rounds);
  // Every worker completed every round: sum over r of (r+1), per worker.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(workers) * rounds * (rounds + 1) / 2;
  EXPECT_EQ(r.work, expected);
  EXPECT_GT(r.events, static_cast<std::uint64_t>(workers * rounds));
}

TEST(DesStress, BitReproducibleAcrossRuns) {
  const ChaosResult a = run_chaos(42, 16, 40);
  const ChaosResult b = run_chaos(42, 16, 40);
  EXPECT_DOUBLE_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.work, b.work);
}

TEST(DesStress, DifferentSeedsDiverge) {
  const ChaosResult a = run_chaos(1, 8, 20);
  const ChaosResult b = run_chaos(2, 8, 20);
  EXPECT_NE(a.final_time, b.final_time);
}

TEST(DesStress, CancellationStorm) {
  Simulation sim;
  Rng rng(5);
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(sim.schedule_at(rng.uniform(0.0, 1000.0), [&] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    cancelled += sim.cancel(ids[i]) ? 1 : 0;
  }
  sim.run();
  EXPECT_EQ(cancelled, 5000);
  EXPECT_EQ(fired, 5000);
  EXPECT_EQ(sim.events_pending(), 0u);
}

Process spawner(Simulation& sim, int depth, int* leaves) {
  if (depth == 0) {
    ++*leaves;
    co_return;
  }
  co_await delay(sim, 1.0);
  sim.spawn(spawner(sim, depth - 1, leaves));
  sim.spawn(spawner(sim, depth - 1, leaves));
}

TEST(DesStress, RecursiveSpawnTree) {
  Simulation sim;
  int leaves = 0;
  sim.spawn(spawner(sim, 10, &leaves));
  sim.run();
  EXPECT_EQ(leaves, 1 << 10);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(DesStress, RunUntilSlicesAreEquivalentToOneRun) {
  auto measure = [](bool sliced) {
    Simulation sim;
    Rng rng(9);
    Resource r(sim, 2);
    std::vector<std::unique_ptr<Mailbox<int>>> boxes;
    boxes.push_back(std::make_unique<Mailbox<int>>(sim));
    boxes.push_back(std::make_unique<Mailbox<int>>(sim));
    std::vector<std::uint64_t> work(2, 0);
    sim.spawn(chaos_worker(sim, rng.split(0), r, *boxes[0], *boxes[1], 30,
                           &work[0]));
    sim.spawn(chaos_worker(sim, rng.split(1), r, *boxes[1], *boxes[0], 30,
                           &work[1]));
    if (sliced) {
      // run_until advances the clock to each horizon even when idle, so
      // equivalence is judged on dispatched events and completed work.
      for (double t = 10.0; t <= 2000.0; t += 10.0) sim.run_until(t);
    }
    sim.run();
    return std::make_pair(sim.events_dispatched(), work[0] + work[1]);
  };
  const auto one_shot = measure(false);
  const auto sliced = measure(true);
  EXPECT_EQ(one_shot.first, sliced.first);
  EXPECT_EQ(one_shot.second, sliced.second);
}

TEST(DesStress, ManyWaitersOnOneResourceStayFifo) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<int> order;
  auto waiter = [](Simulation& s, Resource& res, int id,
                   std::vector<int>* out) -> Process {
    co_await res.acquire();
    out->push_back(id);
    co_await delay(s, 1.0);
    res.release();
  };
  for (int i = 0; i < 500; ++i) sim.spawn(waiter(sim, r, i, &order));
  sim.run();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[i], i);
  EXPECT_DOUBLE_EQ(sim.now(), 500.0);
}

TEST(DesStress, AbandonedWaitersAreReclaimedSafely) {
  // Processes still blocked on resources/mailboxes at teardown must be
  // destroyed without touching freed memory (covered further by ASAN).
  Simulation sim;
  Resource r(sim, 1);
  Mailbox<int> box(sim);
  auto blocked_on_resource = [](Simulation& s, Resource& res) -> Process {
    co_await res.acquire();
    co_await delay(s, 1e9);
    res.release();
  };
  auto blocked_on_mailbox = [](Mailbox<int>& b) -> Process {
    (void)co_await b.receive();
  };
  for (int i = 0; i < 10; ++i) {
    sim.spawn(blocked_on_resource(sim, r));
    sim.spawn(blocked_on_mailbox(box));
  }
  sim.run_until(100.0);
  EXPECT_GT(sim.live_processes(), 0u);
  // Destructor runs here; the test passes if nothing crashes or leaks.
}

}  // namespace
}  // namespace pimsim::des
