// Sharded sweep fabric tests: the shard planner (disjoint cover,
// heaviest-first balance, determinism), shard= parsing, and the
// end-to-end chunk contract through the real CLI — merge of N shards is
// byte-identical to the unsharded sweep (CSV and metrics) for
// N in {1, 2, 4}, a complete chunk is a no-op skip on rerun, and
// corrupted / foreign / missing chunks are detected, not merged.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/chunk.hpp"
#include "core/cli.hpp"
#include "core/sweep.hpp"

namespace pimsim::core {
namespace {

namespace fs = std::filesystem;

TEST(ParseShard, AcceptsValidForms) {
  EXPECT_EQ(parse_shard("0/1").index, 0u);
  EXPECT_EQ(parse_shard("0/1").count, 1u);
  EXPECT_EQ(parse_shard("3/4").index, 3u);
  EXPECT_EQ(parse_shard("3/4").count, 4u);
  EXPECT_EQ(parse_shard("12/100").index, 12u);
}

TEST(ParseShard, RejectsMalformedNamingTheValidForm) {
  for (const char* bad : {"", "2", "a/b", "1/", "/4", "4/4", "5/4", "0/0",
                          "-1/4", "1/-4", "1.5/4", "1 /4", "0x1/4"}) {
    try {
      (void)parse_shard(bad);
      FAIL() << "expected InvalidArgument for '" << bad << "'";
    } catch (const InvalidArgument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("shard=i/N"), std::string::npos) << bad;
      EXPECT_NE(what.find("valid form"), std::string::npos) << bad;
    }
  }
}

TEST(PlanShards, DisjointCoverAndRoundRobinOnEqualWeights) {
  const std::vector<double> weights(10, 1.0);
  const auto plan = plan_shards(weights, 4);
  ASSERT_EQ(plan.size(), 10u);
  std::vector<std::size_t> sizes(4, 0);
  for (const std::size_t s : plan) {
    ASSERT_LT(s, 4u);  // every point owned by exactly one valid shard
    ++sizes[s];
  }
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 10u);
  // Equal weights degrade to round-robin: bin sizes differ by at most 1.
  for (const std::size_t n : sizes) {
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, 3u);
  }
}

TEST(PlanShards, HeaviestFirstBalancesSkewedWeights) {
  // One dominant point plus many small ones: LPT puts the heavy point
  // alone on one shard and spreads the rest over the other.
  const std::vector<double> weights = {100, 1, 1, 1, 1, 1, 1, 1};
  const auto plan = plan_shards(weights, 2);
  std::vector<double> load(2, 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) load[plan[i]] += weights[i];
  // The seven light points all land opposite the heavy one.
  for (std::size_t i = 1; i < weights.size(); ++i) {
    EXPECT_NE(plan[i], plan[0]) << "light point " << i << " shares the "
                                   "heavy shard";
  }
}

TEST(PlanShards, PureFunctionOfInputs) {
  const std::vector<double> weights = {3, 1, 4, 1, 5, 9, 2, 6};
  EXPECT_EQ(plan_shards(weights, 3), plan_shards(weights, 3));
  // Degenerate weights (zero, negative, NaN) still produce a full cover.
  const std::vector<double> weird = {0.0, -1.0,
                                     std::numeric_limits<double>::quiet_NaN(),
                                     1.0};
  const auto plan = plan_shards(weird, 2);
  for (const std::size_t s : plan) EXPECT_LT(s, 2u);
}

// --- end-to-end through the CLI ------------------------------------------

int run_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "pimsim");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return cli_main(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Fixture owning a scratch dir (fixed name, ctest runs in the build
/// dir) with a small 4-point memory_contention grid.
class ShardEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    fs::remove_all(root_);
    fs::create_directories(root_);
    std::ofstream cfg(root_ / "grid.cfg");
    cfg << "ops=20000\nnodes=2\nbanks=1,2\nseed=3,5\n";  // 2x2 grid
    cfg.close();
    ASSERT_EQ(run_cli({"sweep", "memory_contention", config(), "format=csv",
                       "out=" + (root_ / "unsharded.csv").string(),
                       "metrics=" + (root_ / "unsharded_metrics.json").string()}),
              0);
    unsharded_ = slurp(root_ / "unsharded.csv");
    ASSERT_FALSE(unsharded_.empty());
  }

  [[nodiscard]] std::string config() const {
    return "config=" + (root_ / "grid.cfg").string();
  }

  int run_shard(std::size_t i, std::size_t n, const std::string& dir) {
    return run_cli({"sweep", "memory_contention", config(), "format=csv",
                    "shard=" + std::to_string(i) + "/" + std::to_string(n),
                    "out=" + (root_ / dir).string()});
  }

  int merge(const std::string& dir, const std::string& out,
            const std::string& metrics = "") {
    std::vector<std::string> args{"merge", (root_ / dir).string(),
                                  "out=" + (root_ / out).string()};
    if (!metrics.empty()) args.push_back("metrics=" + (root_ / metrics).string());
    return run_cli(args);
  }

  const fs::path root_{"test_shard_tmp"};
  std::string unsharded_;
};

TEST_F(ShardEndToEnd, MergeIsByteIdenticalToUnshardedForAnyShardCount) {
  const std::string metrics_ref = slurp(root_ / "unsharded_metrics.json");
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::string dir = "chunks" + std::to_string(n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(run_shard(i, n, dir), 0) << "shard " << i << "/" << n;
    }
    ASSERT_EQ(merge(dir, "merged.csv", "merged_metrics.json"), 0) << n;
    EXPECT_EQ(slurp(root_ / "merged.csv"), unsharded_) << "N=" << n;
    EXPECT_EQ(slurp(root_ / "merged_metrics.json"), metrics_ref) << "N=" << n;
  }
}

TEST_F(ShardEndToEnd, RerunOfCompleteShardIsANoOpSkip) {
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);
  const std::string csv = slurp(root_ / "chunks" / "chunk-0-of-2.csv");
  const std::string sidecar = slurp(root_ / "chunks" / "chunk-0-of-2.json");
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);  // resume: cache hit
  EXPECT_EQ(slurp(root_ / "chunks" / "chunk-0-of-2.csv"), csv);
  EXPECT_EQ(slurp(root_ / "chunks" / "chunk-0-of-2.json"), sidecar);
}

TEST_F(ShardEndToEnd, DeletedChunkIsRecomputedWithoutTouchingOthers) {
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);
  ASSERT_EQ(run_shard(1, 2, "chunks"), 0);
  const std::string other = slurp(root_ / "chunks" / "chunk-1-of-2.csv");
  fs::remove(root_ / "chunks" / "chunk-0-of-2.csv");
  fs::remove(root_ / "chunks" / "chunk-0-of-2.json");
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);  // recomputes only shard 0
  EXPECT_EQ(slurp(root_ / "chunks" / "chunk-1-of-2.csv"), other);
  ASSERT_EQ(merge("chunks", "merged.csv"), 0);
  EXPECT_EQ(slurp(root_ / "merged.csv"), unsharded_);
}

TEST_F(ShardEndToEnd, CorruptedChunkIsDetectedThenRecomputed) {
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);
  ASSERT_EQ(run_shard(1, 2, "chunks"), 0);
  {
    std::ofstream tamper(root_ / "chunks" / "chunk-1-of-2.csv",
                         std::ios::app | std::ios::binary);
    tamper << "X";  // divergent bytes: fingerprint check must fire
  }
  EXPECT_NE(merge("chunks", "merged.csv"), 0);
  ASSERT_EQ(run_shard(1, 2, "chunks"), 0);  // invalid chunk -> recompute
  ASSERT_EQ(merge("chunks", "merged.csv"), 0);
  EXPECT_EQ(slurp(root_ / "merged.csv"), unsharded_);
}

TEST_F(ShardEndToEnd, MissingChunkAndForeignContentsAreRejected) {
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);
  EXPECT_NE(merge("chunks", "merged.csv"), 0);  // shard 1 missing

  ASSERT_EQ(run_shard(1, 2, "chunks"), 0);
  std::ofstream junk(root_ / "chunks" / "chunk-weird.csv");
  junk << "?";
  junk.close();
  EXPECT_NE(merge("chunks", "merged.csv"), 0);  // unknown chunk-* name
  fs::remove(root_ / "chunks" / "chunk-weird.csv");
  EXPECT_EQ(merge("chunks", "merged.csv"), 0);
}

TEST_F(ShardEndToEnd, DifferentGridIntoSameDirIsRejected) {
  ASSERT_EQ(run_shard(0, 2, "chunks"), 0);
  // Same directory, different grid (ops changed): manifest mismatch.
  EXPECT_NE(run_cli({"sweep", "memory_contention", config(), "format=csv",
                     "ops=30000", "shard=0/2",
                     "out=" + (root_ / "chunks").string()}),
            0);
  // Different shard count is a different manifest too.
  EXPECT_NE(run_shard(0, 3, "chunks"), 0);
}

TEST_F(ShardEndToEnd, ShardWithoutOutDirAndBadDirAreRejected) {
  EXPECT_NE(run_cli({"sweep", "memory_contention", config(), "shard=0/2"}),
            0);  // shard= requires out=DIR
  EXPECT_NE(run_cli({"merge", (root_ / "nonexistent").string()}), 0);
  EXPECT_NE(run_cli({"merge", root_.string()}), 0);  // no manifest.json
}

}  // namespace
}  // namespace pimsim::core
