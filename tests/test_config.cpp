// Tests for the key=value configuration parser.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/error.hpp"

namespace pimsim {
namespace {

TEST(Config, ParsesArgs) {
  const char* argv[] = {"prog", "alpha=1.5", "name=hello", "count=42"};
  Config cfg = Config::from_args(4, argv);
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(cfg.get_string("name", ""), "hello");
  EXPECT_EQ(cfg.get_int("count", 0), 42);
}

TEST(Config, FallbacksApply) {
  Config cfg;
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cfg.get_int("missing", -3), -3);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_string("missing", "dft"), "dft");
}

TEST(Config, BoolSpellings) {
  Config cfg = Config::from_string("a=1 b=true c=yes d=on e=0 f=false g=off");
  for (const char* k : {"a", "b", "c", "d"}) EXPECT_TRUE(cfg.get_bool(k, false));
  for (const char* k : {"e", "f", "g"}) EXPECT_FALSE(cfg.get_bool(k, true));
}

TEST(Config, ListParsing) {
  Config cfg = Config::from_string("xs=1,2.5,4");
  const auto xs = cfg.get_list("xs", {});
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[1], 2.5);
}

TEST(Config, RejectsMalformedToken) {
  const char* argv[] = {"prog", "noequals"};
  EXPECT_THROW(Config::from_args(2, argv), ConfigError);
  const char* argv2[] = {"prog", "=5"};
  EXPECT_THROW(Config::from_args(2, argv2), ConfigError);
}

TEST(Config, IgnoresDashDashFlags) {
  const char* argv[] = {"prog", "--benchmark_filter=all", "k=1"};
  Config cfg = Config::from_args(3, argv);
  EXPECT_EQ(cfg.get_int("k", 0), 1);
}

TEST(Config, RejectsBadNumbers) {
  Config cfg = Config::from_string("x=abc y=1.5z");
  EXPECT_THROW(
      {
        const double v = cfg.get_double("x", 0.0);
        ADD_FAILURE() << "get_double parsed \"abc\" as " << v;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const double v = cfg.get_double("y", 0.0);
        ADD_FAILURE() << "get_double parsed \"1.5z\" as " << v;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const std::int64_t v = cfg.get_int("x", 0);
        ADD_FAILURE() << "get_int parsed \"abc\" as " << v;
      },
      ConfigError);
  EXPECT_THROW(
      {
        const bool v = cfg.get_bool("x", false);
        ADD_FAILURE() << "get_bool parsed \"abc\" as " << v;
      },
      ConfigError);
}

TEST(Config, UnusedKeyDetection) {
  Config cfg = Config::from_string("used=1 typo=2");
  (void)cfg.get_int("used", 0);
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
  EXPECT_THROW(cfg.reject_unused(), ConfigError);
  (void)cfg.get_int("typo", 0);
  EXPECT_NO_THROW(cfg.reject_unused());
}

}  // namespace
}  // namespace pimsim
