// Unit and statistical tests for the random number substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pimsim {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256pp>);
  Xoshiro256pp engine(7);
  EXPECT_NE(engine(), engine());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123, 5), b(123, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DistinctStreamsDiffer) {
  Rng a(123, 1), b(123, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.uniform() == b.uniform());
  EXPECT_LE(same, 1);
}

TEST(Rng, SplitGivesIndependentChildren) {
  Rng parent(9);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = Rng(9).split(1);
  EXPECT_DOUBLE_EQ(c1.uniform(), c1_again.uniform());
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c1.uniform() == c2.uniform());
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BinomialMatchesMeanAndVariance) {
  Rng rng(29);
  const std::uint64_t n = 1000;
  const double p = 0.1;
  double sum = 0.0, sum2 = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    const double x = static_cast<double>(rng.binomial(n, p));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / reps;
  const double var = sum2 / reps - mean * mean;
  EXPECT_NEAR(mean, static_cast<double>(n) * p, 1.0);         // 100 +/- 1
  EXPECT_NEAR(var, static_cast<double>(n) * p * (1 - p), 5.0);  // 90 +/- 5
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(31);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(37);
  const double p = 0.3;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  // Mean number of failures before success: (1-p)/p = 2.333...
  EXPECT_NEAR(sum / n, (1 - p) / p, 0.05);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(47);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 4.0, 0.15);
}

TEST(Rng, RejectsBadParameters) {
  Rng rng(53);
  EXPECT_THROW(rng.bernoulli(-0.1), ConfigError);
  EXPECT_THROW(rng.bernoulli(1.1), ConfigError);
  EXPECT_THROW(rng.geometric(0.0), ConfigError);
  EXPECT_THROW(rng.exponential(0.0), ConfigError);
  EXPECT_THROW(rng.normal(0.0, -1.0), ConfigError);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ConfigError);
  EXPECT_THROW(rng.uniform_int(5, 4), ConfigError);
}

}  // namespace
}  // namespace pimsim
