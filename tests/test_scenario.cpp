// Scenario registry tests: lookup and duplicate rejection, typed
// parameter validation (InvalidArgument listing the valid keys), and the
// CLI-vs-bench equivalence contract — `pimsim run fig5` produces the
// exact table make_fig5 produces, at any sweep_threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/scenario.hpp"

namespace pimsim::core {
namespace {

std::string csv_of(const Table& table) {
  std::ostringstream os;
  table.print_csv(os);
  return os.str();
}

TEST(ScenarioRegistry, GlobalHoldsEveryFigureAndAblation) {
  const ScenarioRegistry& reg = ScenarioRegistry::global();
  for (const char* name :
       {"table1", "bandwidth", "fig5", "fig6", "fig7", "accuracy", "fig11",
        "fig12", "multithreading", "sensitivity", "ablation_bank_conflicts",
        "ablation_topology", "ablation_switch_cost", "ablation_overlap",
        "ablation_bandwidth", "hotspot", "memory_contention"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  EXPECT_EQ(reg.all().size(), 17u);
  // Every scenario is fully self-describing: summary, paper anchor, and a
  // doc string on every parameter.
  for (const Scenario* s : reg.all()) {
    EXPECT_FALSE(s->summary.empty()) << s->name;
    EXPECT_FALSE(s->paper.empty()) << s->name;
    for (const ParamSpec& p : s->params) {
      EXPECT_FALSE(p.doc.empty()) << s->name << "." << p.key;
      EXPECT_FALSE(p.default_value.empty()) << s->name << "." << p.key;
    }
  }
}

TEST(ScenarioRegistry, LookupMissThrowsListingNames) {
  try {
    (void)ScenarioRegistry::global().get("nope");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos);
    EXPECT_NE(what.find("fig5"), std::string::npos);
    EXPECT_NE(what.find("ablation_topology"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsDuplicateAndMalformedRegistrations) {
  ScenarioRegistry reg;
  Scenario s;
  s.name = "dup";
  s.make = [](const Config&) { return Table("t", {"c"}); };
  reg.add(s);
  EXPECT_TRUE(reg.contains("dup"));
  EXPECT_THROW(reg.add(s), InvalidArgument);

  Scenario unnamed;
  unnamed.make = [](const Config&) { return Table("t", {"c"}); };
  EXPECT_THROW(reg.add(unnamed), InvalidArgument);

  Scenario no_generator;
  no_generator.name = "hollow";
  EXPECT_THROW(reg.add(no_generator), InvalidArgument);
  EXPECT_FALSE(reg.contains("hollow"));
}

TEST(RunScenario, UnknownParameterListsValidKeys) {
  try {
    (void)run_scenario("fig5", Config::from_string("maxnodez=8"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("maxnodez"), std::string::npos);
    EXPECT_NE(what.find("valid keys"), std::string::npos);
    EXPECT_NE(what.find("maxnodes"), std::string::npos);
    EXPECT_NE(what.find("threads"), std::string::npos);
  }
}

TEST(RunScenario, TypedParseErrorIsInvalidArgumentListingValidKeys) {
  // int, double, bool, and list parameters all fail the same way.
  for (const char* bad :
       {"ops=many", "horizon=tall", "contention=maybe", "latencies=a,b"}) {
    try {
      (void)run_scenario("fig11", Config::from_string(bad));
      FAIL() << "expected InvalidArgument for " << bad;
    } catch (const InvalidArgument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("valid keys"), std::string::npos) << bad;
      EXPECT_NE(what.find("nodes"), std::string::npos) << bad;
    } catch (const std::exception& e) {
      FAIL() << "wrong exception type for " << bad << ": " << e.what();
    }
  }
}

TEST(RunScenario, ExtraAllowedKeysAreTolerated) {
  const Config cfg = Config::from_string("csv=1");
  EXPECT_THROW((void)run_scenario("table1", cfg), InvalidArgument);
  const Table t = run_scenario("table1", cfg, {"csv"});
  EXPECT_EQ(t.rows(), 13u);
}

TEST(RunScenario, Fig5MatchesDirectGeneratorBitwiseAtAnySweepThreads) {
  // The same reduced grid, once through the registry (as pimsim run and
  // the bench_fig5 wrapper do) and once through make_fig5 directly.
  HostFigureConfig direct = HostFigureConfig::defaults_fig5();
  direct.node_counts = pow2_range(8);
  direct.base.workload.total_ops = 200'000;
  direct.base.batch_ops = 10'000;
  direct.base.seed = 1;
  direct.sweep_threads = 1;
  const std::string expected = csv_of(make_fig5(direct));

  for (const char* threads : {"1", "2", "5"}) {
    const Config cfg = Config::from_string(
        std::string("maxnodes=8 ops=200000 batch=10000 threads=") + threads);
    EXPECT_EQ(csv_of(run_scenario("fig5", cfg)), expected)
        << "sweep_threads=" << threads;
  }
}

TEST(RunScenario, Fig7ListAndScalarDefaultsMatchBenchDefaults) {
  // fig7 has no RNG and runs instantly: spot-check the registry path end
  // to end against make_fig7 with the bench wrapper's exact axis logic.
  const Table via_registry =
      run_scenario("fig7", Config::from_string("maxnodes=16"));
  arch::SystemParams params = arch::SystemParams::table1();
  std::vector<double> nodes;
  for (double n = 1.0; n <= 16.0; n *= 1.25) nodes.push_back(n);
  nodes.push_back(params.nb());
  std::sort(nodes.begin(), nodes.end());
  const Table direct = make_fig7(params, nodes, fraction_range(10));
  EXPECT_EQ(csv_of(via_registry), csv_of(direct));
}

TEST(TableFingerprint, DistinguishesTablesAndIsStable) {
  Table a("t", {"x"});
  a.add_row({1.0});
  Table b("t", {"x"});
  b.add_row({2.0});
  EXPECT_NE(table_fingerprint(a), table_fingerprint(b));
  EXPECT_EQ(table_fingerprint(a), table_fingerprint(a));
  EXPECT_NE(table_fingerprint(a), 0u);
}

}  // namespace
}  // namespace pimsim::core
