// Tests for the statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace pimsim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, HandComputedMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(TimeWeighted, PiecewiseConstantIntegral) {
  TimeWeighted tw(0.0);
  tw.set(10.0, 2.0);   // 0 over [0,10)
  tw.set(20.0, 5.0);   // 2 over [10,20)
  // integral to 30: 0*10 + 2*10 + 5*10 = 70
  EXPECT_DOUBLE_EQ(tw.integral(30.0), 70.0);
  EXPECT_DOUBLE_EQ(tw.mean(30.0), 70.0 / 30.0);
  EXPECT_DOUBLE_EQ(tw.max(), 5.0);
  EXPECT_DOUBLE_EQ(tw.current(), 5.0);
}

TEST(TimeWeighted, AddDeltas) {
  TimeWeighted tw(1.0);
  tw.add(5.0, 2.0);   // 1 over [0,5), then 3
  tw.add(10.0, -3.0); // 3 over [5,10), then 0
  EXPECT_DOUBLE_EQ(tw.integral(10.0), 1.0 * 5 + 3.0 * 5);
  EXPECT_DOUBLE_EQ(tw.current(), 0.0);
}

TEST(TimeWeighted, NonMonotonicTimeRejected) {
  TimeWeighted tw;
  tw.set(10.0, 1.0);
  EXPECT_THROW(tw.set(5.0, 2.0), LogicError);
}

TEST(TimeWeighted, MeanBeforeStartIsCurrentValue) {
  TimeWeighted tw(7.0, 100.0);
  EXPECT_DOUBLE_EQ(tw.mean(100.0), 7.0);
}

TEST(Histogram, BinningAndOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(Confidence, HalfWidthShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(7);
  for (int i = 0; i < 5; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 500; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(confidence_half_width(small, 0.95),
            confidence_half_width(large, 0.95));
}

TEST(Confidence, SingleSampleHasNoInterval) {
  RunningStats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(confidence_half_width(s, 0.95), 0.0);
}

TEST(Confidence, CoversTrueMeanMostOfTheTime) {
  // Property: ~95% of 95% CIs over N(0,1) samples contain 0.
  Rng rng(99);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    RunningStats s;
    for (int i = 0; i < 20; ++i) s.add(rng.normal(0.0, 1.0));
    const double hw = confidence_half_width(s, 0.95);
    if (std::fabs(s.mean()) <= hw) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(Confidence, LevelsAreOrdered) {
  RunningStats s;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) s.add(rng.normal(0, 1));
  EXPECT_LT(confidence_half_width(s, 0.90), confidence_half_width(s, 0.95));
  EXPECT_LT(confidence_half_width(s, 0.95), confidence_half_width(s, 0.99));
}

}  // namespace
}  // namespace pimsim
