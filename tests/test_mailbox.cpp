// Tests for the awaitable mailbox channel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"

namespace pimsim::des {
namespace {

Process receiver(Simulation& sim, Mailbox<int>& box,
                 std::vector<std::pair<int, double>>* received, int count) {
  for (int i = 0; i < count; ++i) {
    const int v = co_await box.receive();
    received->emplace_back(v, sim.now());
  }
}

TEST(Mailbox, DeliversQueuedMessageImmediately) {
  Simulation sim;
  Mailbox<int> box(sim);
  box.send(42);
  std::vector<std::pair<int, double>> got;
  sim.spawn(receiver(sim, box, &got, 1));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 42);
  EXPECT_DOUBLE_EQ(got[0].second, 0.0);
}

TEST(Mailbox, ReceiverBlocksUntilSend) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<int, double>> got;
  sim.spawn(receiver(sim, box, &got, 1));
  sim.schedule_at(15.0, [&] { box.send(7); });
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 7);
  EXPECT_DOUBLE_EQ(got[0].second, 15.0);
}

TEST(Mailbox, MessagesAreFifo) {
  Simulation sim;
  Mailbox<int> box(sim);
  for (int i = 0; i < 5; ++i) box.send(i);
  std::vector<std::pair<int, double>> got;
  sim.spawn(receiver(sim, box, &got, 5));
  sim.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i].first, i);
}

TEST(Mailbox, WaitersAreFifo) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<int, double>> got_a, got_b;
  sim.spawn(receiver(sim, box, &got_a, 1));  // first waiter
  sim.spawn(receiver(sim, box, &got_b, 1));  // second waiter
  sim.schedule_at(1.0, [&] { box.send(100); });
  sim.schedule_at(2.0, [&] { box.send(200); });
  sim.run();
  ASSERT_EQ(got_a.size(), 1u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a[0].first, 100);
  EXPECT_EQ(got_b[0].first, 200);
}

TEST(Mailbox, TryReceive) {
  Simulation sim;
  Mailbox<std::string> box(sim);
  EXPECT_FALSE(box.try_receive().has_value());
  box.send("hello");
  const auto v = box.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello");
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, PendingCountsQueuedMessages) {
  Simulation sim;
  Mailbox<int> box(sim);
  EXPECT_EQ(box.pending(), 0u);
  box.send(1);
  box.send(2);
  EXPECT_EQ(box.pending(), 2u);
}

TEST(Mailbox, ItemsAndWaitersNeverCoexist) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<int, double>> got;
  sim.spawn(receiver(sim, box, &got, 3));
  sim.schedule_at(1.0, [&] {
    box.send(1);
    box.send(2);  // no waiter yet for this one (receiver resumes later)
  });
  sim.schedule_at(2.0, [&] { box.send(3); });
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[1].first, 2);
  EXPECT_EQ(got[2].first, 3);
}

TEST(Mailbox, MoveOnlyPayloadsWork) {
  Simulation sim;
  Mailbox<std::unique_ptr<int>> box(sim);
  box.send(std::make_unique<int>(5));
  auto v = box.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace pimsim::des
