// Integration tests: the figure generators reproduce the paper's
// qualitative shapes on reduced grids.
#include <gtest/gtest.h>

#include "core/design_space.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

namespace pimsim::core {
namespace {

arch::HostConfig fast_base() {
  arch::HostConfig cfg;
  cfg.workload.total_ops = 500'000;
  cfg.batch_ops = 10'000;
  cfg.seed = 13;
  return cfg;
}

TEST(Experiment, Pow2Range) {
  EXPECT_EQ(pow2_range(64),
            (std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(pow2_range(100), (std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(pow2_range(1), (std::vector<std::size_t>{1}));
}

TEST(Experiment, LinspaceEndpoints) {
  const auto xs = linspace(0.0, 1.0, 11);
  ASSERT_EQ(xs.size(), 11u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_NEAR(xs[5], 0.5, 1e-12);
}

TEST(Experiment, ReplicateProducesTightIntervalForDeterministicMeasure) {
  const Estimate e = replicate(5, 1, [](std::uint64_t) { return 3.0; });
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  EXPECT_DOUBLE_EQ(e.half_width, 0.0);
}

TEST(Experiment, ReplicateVariesWithSeed) {
  const Estimate e = replicate(8, 1, [](std::uint64_t seed) {
    return static_cast<double>(seed % 97);
  });
  EXPECT_GT(e.half_width, 0.0);
}

TEST(Table1, ContainsDerivedParameters) {
  const Table t = make_table1(arch::SystemParams::table1());
  EXPECT_EQ(t.rows(), 13u);
  // The last three rows are the derived values: 4.0, 12.5, 3.125.
  EXPECT_DOUBLE_EQ(t.number_at(10, 2), 4.0);
  EXPECT_DOUBLE_EQ(t.number_at(11, 2), 12.5);
  EXPECT_DOUBLE_EQ(t.number_at(12, 2), 3.125);
}

TEST(Fig5, GainGrowsWithNodesAndLwpFraction) {
  HostFigureConfig cfg;
  cfg.base = fast_base();
  cfg.node_counts = {1, 8, 64};
  cfg.lwp_fractions = {0.0, 0.5, 1.0};
  const Table t = make_fig5(cfg);
  ASSERT_EQ(t.rows(), 3u);
  // Row 0 (%WL=0): gain == 1 for every N.
  for (std::size_t c = 1; c <= 3; ++c) {
    EXPECT_NEAR(t.number_at(0, c), 1.0, 0.02);
  }
  // Gain increases along N for %WL=1 (row 2): columns 1 < 2 < 3.
  EXPECT_LT(t.number_at(2, 1), t.number_at(2, 2));
  EXPECT_LT(t.number_at(2, 2), t.number_at(2, 3));
  // Gain increases with %WL at N=64.
  EXPECT_LT(t.number_at(1, 3), t.number_at(2, 3));
  // Headline scale: %WL=1, N=64 -> ~20x.
  EXPECT_NEAR(t.number_at(2, 3), 64.0 / 3.125, 2.0);
}

TEST(Fig6, ResponseTimeShapesMatchPaperAxes) {
  HostFigureConfig cfg;
  cfg.base = fast_base();
  cfg.base.workload.total_ops = 100'000'000;  // the paper's W for absolute ns
  cfg.base.batch_ops = 1'000'000;
  cfg.node_counts = {1, 8, 64};
  cfg.lwp_fractions = {0.0, 0.5, 1.0};
  const Table t = make_fig6(cfg);
  // No-LWT column is flat at 4e8 ns.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(t.number_at(r, 1), 4.0e8, 0.1e8);
  }
  // 100% LWT on 1 node: 1.25e9 ns (the paper's y-axis tops at 1.6e9).
  EXPECT_NEAR(t.number_at(0, 3), 1.25e9, 0.05e9);
  // Response time decreases with N for LWP-heavy workloads.
  EXPECT_GT(t.number_at(0, 3), t.number_at(1, 3));
  EXPECT_GT(t.number_at(1, 3), t.number_at(2, 3));
}

TEST(Fig7, CurvesCoincideAtNb) {
  const arch::SystemParams params = arch::SystemParams::table1();
  const Table t = make_fig7(params, {1.0, 2.0, 3.125, 8.0, 64.0},
                            {0.2, 0.5, 0.8});
  // Row with N = NB: all columns equal 1.
  for (std::size_t c = 1; c <= 3; ++c) {
    EXPECT_NEAR(t.number_at(2, c), 1.0, 1e-9);
  }
  // N=1 rows are above 1 (PIM hurts), N=64 rows below 1.
  EXPECT_GT(t.number_at(0, 2), 1.0);
  EXPECT_LT(t.number_at(4, 2), 1.0);
}

TEST(AccuracyTable, WithinDocumentedBand) {
  HostFigureConfig cfg;
  cfg.base = fast_base();
  cfg.node_counts = {1, 8, 64};
  cfg.lwp_fractions = {0.1, 0.9};
  const Table t = make_accuracy_table(cfg);
  ASSERT_EQ(t.rows(), 6u);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_LT(t.number_at(r, 4), 5.0) << "rel err % at row " << r;
  }
}

parcel::SplitTransactionParams fast_parcel_base() {
  parcel::SplitTransactionParams p;
  p.nodes = 4;
  p.horizon = 10'000.0;
  p.seed = 17;
  return p;
}

TEST(Fig11, RatioColumnsShapeMatchesPaper) {
  ParcelFigureConfig cfg;
  cfg.base = fast_parcel_base();
  cfg.latencies = {20.0, 500.0};
  cfg.remote_fractions = {0.1};
  cfg.parallelism = {1, 16};
  const Table t = make_fig11(cfg);
  // Row order: (L=20, par=1), (L=20, par=16), (L=500, par=1), (L=500, par=16).
  ASSERT_EQ(t.rows(), 4u);
  // With parallelism 16, ratio at L=500 far exceeds ratio at L=20.
  EXPECT_GT(t.number_at(3, 3), t.number_at(1, 3));
  // With parallelism 1, the advantage at L=500 is small.
  EXPECT_LT(t.number_at(2, 3), 2.0);
  // Model column tracks the simulated column loosely.
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_NEAR(t.number_at(r, 3) / t.number_at(r, 4), 1.0, 0.35);
  }
}

TEST(Fig12, TestIdleCollapsesControlIdleDoesNot) {
  ParcelFigureConfig cfg;
  cfg.base = fast_parcel_base();
  cfg.base.round_trip_latency = 200.0;
  cfg.parallelism = {1, 32};
  cfg.node_counts = {1, 8};
  const Table t = make_fig12(cfg);
  ASSERT_EQ(t.rows(), 4u);
  for (std::size_t r : {std::size_t{1}, std::size_t{3}}) {
    // High parallelism: test idle ~ 0 while control idle stays high.
    EXPECT_LT(t.number_at(r, 2), 8.0);
    EXPECT_GT(t.number_at(r, 3), 20.0);
  }
  // Low parallelism: test system also idles.
  EXPECT_GT(t.number_at(0, 2), 20.0);
}

TEST(Bandwidth, TableMatchesPaperClaims) {
  const Table t = make_bandwidth_table();
  // Sustained macro bandwidth row > 50 Gbit/s.
  EXPECT_GT(t.number_at(4, 1), 50.0);
  // Chip bandwidth row > 1 Tbit/s.
  EXPECT_GT(t.number_at(6, 1), 1.0);
}

TEST(DesignSpace, RegimeClassification) {
  const arch::SystemParams p = arch::SystemParams::table1();
  EXPECT_EQ(classify_host_point(p, 1.0, 0.5), Regime::kPimHurts);
  EXPECT_EQ(classify_host_point(p, 3.125, 0.5), Regime::kBreakEven);
  EXPECT_EQ(classify_host_point(p, 8.0, 0.5), Regime::kPimModerate);
  EXPECT_EQ(classify_host_point(p, 64.0, 0.9), Regime::kPimStrong);
  EXPECT_EQ(classify_host_point(p, 512.0, 1.0), Regime::kPimDramatic);
  EXPECT_STREQ(to_string(Regime::kPimDramatic), "pim-dramatic");
}

TEST(DesignSpace, ParcelAdviceMatchesRegimes) {
  parcel::SplitTransactionParams p = fast_parcel_base();
  p.round_trip_latency = 1000.0;
  p.parallelism = 32;
  const ParcelAdvice good = advise_parcels(p);
  EXPECT_TRUE(good.worthwhile);
  EXPECT_GT(good.predicted_ratio, 1.0);
  EXPECT_FALSE(good.reason.empty());

  p.round_trip_latency = 1.0;
  p.t_switch = 5.0;
  p.parallelism = 1;
  const ParcelAdvice bad = advise_parcels(p);
  EXPECT_FALSE(bad.worthwhile);
  EXPECT_FALSE(bad.reason.empty());
}

}  // namespace
}  // namespace pimsim::core
