// Tests for the concurrent host+PIM execution extension (Ablation D) and
// the Zipfian access pattern.
#include <gtest/gtest.h>

#include "analytic/hwp_lwp.hpp"
#include "arch/host_system.hpp"
#include "common/error.hpp"
#include "memory/cache.hpp"
#include "workload/access_pattern.hpp"

namespace pimsim::analytic {
namespace {

using arch::SystemParams;

TEST(OverlapModel, NeverSlowerThanSerialized) {
  const SystemParams p = SystemParams::table1();
  for (double n : {1.0, 4.0, 64.0}) {
    for (double pct : {0.1, 0.5, 0.9}) {
      EXPECT_LE(time_relative_overlapped(p, n, pct),
                time_relative(p, n, pct) + 1e-12);
    }
  }
}

TEST(OverlapModel, GainCapsAtHostBound) {
  // Once the PIM side is faster than the host side, the host dominates:
  // Time_relative_ov floors at 1 - %WL.
  const SystemParams p = SystemParams::table1();
  EXPECT_NEAR(time_relative_overlapped(p, 1e6, 0.7), 0.3, 1e-9);
  EXPECT_NEAR(time_relative_overlapped(p, 1e6, 0.5), 0.5, 1e-9);
}

TEST(OverlapModel, BalancedNodesIsTheKink) {
  const SystemParams p = SystemParams::table1();
  const double pct = 0.7;
  const double n_star = balanced_nodes(p, pct);
  // At N*, both sides take the same time.
  EXPECT_NEAR(time_relative_overlapped(p, n_star, pct), 1.0 - pct, 1e-9);
  // Below N*, adding nodes helps; above it, it does not.
  EXPECT_GT(time_relative_overlapped(p, n_star / 2.0, pct), 1.0 - pct);
  EXPECT_NEAR(time_relative_overlapped(p, n_star * 4.0, pct), 1.0 - pct,
              1e-9);
}

TEST(OverlapModel, AllPimWorkloadHasNoKink) {
  const SystemParams p = SystemParams::table1();
  EXPECT_TRUE(std::isinf(balanced_nodes(p, 1.0)));
  // With %WL = 1 the overlapped and serialized models coincide.
  for (double n : {1.0, 8.0, 256.0}) {
    EXPECT_NEAR(time_relative_overlapped(p, n, 1.0), time_relative(p, n, 1.0),
                1e-12);
  }
}

}  // namespace
}  // namespace pimsim::analytic

namespace pimsim::arch {
namespace {

HostConfig overlap_config(std::size_t nodes, double pct, bool overlap) {
  HostConfig cfg;
  cfg.workload.total_ops = 1'000'000;
  cfg.workload.lwp_fraction = pct;
  cfg.lwp_nodes = nodes;
  cfg.batch_ops = 10'000;
  cfg.seed = 9;
  cfg.overlap_phases = overlap;
  return cfg;
}

TEST(OverlapSim, MatchesAnalyticMax) {
  const HostConfig cfg = overlap_config(8, 0.6, true);
  const HostResult r = run_host_system(cfg);
  const double expected = analytic::time_relative_overlapped(
                              cfg.params, 8.0, 0.6) *
                          static_cast<double>(cfg.workload.total_ops) *
                          cfg.params.hwp_cost_per_op();
  EXPECT_NEAR(r.total_cycles, expected, 0.03 * expected);
}

TEST(OverlapSim, FasterThanSerializedWhenBothSidesHaveWork) {
  const double serial =
      run_host_system(overlap_config(8, 0.6, false)).total_cycles;
  const double overlapped =
      run_host_system(overlap_config(8, 0.6, true)).total_cycles;
  EXPECT_LT(overlapped, 0.8 * serial);
}

TEST(OverlapSim, DegenerateSplitsMatchSerialized) {
  for (double pct : {0.0, 1.0}) {
    const double serial =
        run_host_system(overlap_config(8, pct, false)).total_cycles;
    const double overlapped =
        run_host_system(overlap_config(8, pct, true)).total_cycles;
    EXPECT_NEAR(overlapped, serial, 0.02 * serial) << pct;
  }
}

TEST(OverlapSim, GainSaturatesBeyondBalancedNodes) {
  // %WL=0.6: N* = 3.125*0.6/0.4 = 4.69; N=8 and N=64 must be within noise.
  const double g8 = simulated_gain(overlap_config(8, 0.6, true));
  const double g64 = simulated_gain(overlap_config(64, 0.6, true));
  EXPECT_NEAR(g8, g64, 0.05 * g8);
  EXPECT_NEAR(g8, 1.0 / 0.4, 0.1);  // capped at 1/(1-%WL) = 2.5
}

}  // namespace
}  // namespace pimsim::arch

namespace pimsim::wl {
namespace {

TEST(Zipfian, UniformWhenExponentZero) {
  ZipfianPattern p(1000, 8, 0.0, Rng(3));
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[(p.next() / 8) / 100];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Zipfian, SkewConcentratesOnLowRanks) {
  ZipfianPattern p(100000, 8, 1.2, Rng(5));
  int in_top_100 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) in_top_100 += (p.next() / 8 < 100);
  // With s=1.2 over 1e5 items, the top-100 take the majority of mass.
  EXPECT_GT(static_cast<double>(in_top_100) / n, 0.5);
}

TEST(Zipfian, CacheMissRateFallsWithSkew) {
  auto miss_rate = [](double s) {
    mem::SetAssocCache cache(mem::CacheGeometry{1 << 16, 64, 4});
    ZipfianPattern p(1 << 20, 64, s, Rng(7));
    for (int i = 0; i < 20000; ++i) (void)cache.access(p.next());
    cache.reset_stats();
    for (int i = 0; i < 60000; ++i) (void)cache.access(p.next());
    return cache.miss_rate();
  };
  const double uniform = miss_rate(0.0);
  const double mild = miss_rate(0.8);
  const double heavy = miss_rate(1.4);
  EXPECT_GT(uniform, mild);
  EXPECT_GT(mild, heavy);
  EXPECT_GT(uniform, 0.9);  // the PIM-destined regime
  EXPECT_LT(heavy, 0.25);   // cacheable on the host
}

TEST(Zipfian, RejectsBadParameters) {
  EXPECT_THROW(ZipfianPattern(0, 8, 1.0, Rng(1)), ConfigError);
  EXPECT_THROW(ZipfianPattern(100, 0, 1.0, Rng(1)), ConfigError);
  EXPECT_THROW(ZipfianPattern(100, 8, -1.0, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace pimsim::wl
