// The "hidden bandwidth" of on-chip DRAM (paper Section 2.1).
//
// Reproduces the paper's arithmetic — a 2048-bit row with 20 ns row
// access and 2 ns page-out sustains > 50 Gbit/s per macro, > 1 Tbit/s
// per chip — and then demonstrates *why* the row buffer matters by
// driving one DRAM bank with streaming versus random access patterns.
//
// Build & run:  ./examples/dram_bandwidth
#include <cstdio>

#include "common/rng.hpp"
#include "memory/dram.hpp"
#include "workload/access_pattern.hpp"

int main() {
  using namespace pimsim;

  // --- the paper's closed-form claims ------------------------------------
  const mem::DramMacroSpec spec;
  std::printf("DRAM macro: %zu-bit rows, %zu-bit wide words, %.0f ns row / "
              "%.0f ns page\n",
              spec.row_bits, spec.word_bits, spec.row_access_ns,
              spec.page_access_ns);
  std::printf("  sustained row-drain bandwidth : %6.1f Gbit/s  (paper: >50)\n",
              spec.sustained_bandwidth_gbps());
  std::printf("  row-buffer burst bandwidth    : %6.1f Gbit/s\n",
              spec.burst_bandwidth_gbps());
  for (std::size_t nodes : {8, 16, 32, 64}) {
    std::printf("  chip bandwidth with %2zu nodes  : %6.2f Tbit/s%s\n", nodes,
                spec.chip_bandwidth_gbps(nodes) / 1000.0,
                spec.chip_bandwidth_gbps(nodes) > 1000.0 ? "  (> 1 Tbit/s)"
                                                         : "");
  }

  // --- why the row buffer is the whole story -----------------------------
  // Stream through memory (spatial locality -> row-buffer hits) versus
  // jump randomly (every access pays the row activation).
  const std::uint64_t accesses = 200'000;
  const std::uint64_t word_bytes = spec.word_bits / 8;
  const std::uint64_t footprint = 64ull << 20;

  auto drive = [&](wl::AccessPattern& pattern, const char* name) {
    mem::DramBank bank(spec);
    const std::uint64_t row_bytes = spec.row_bits / 8;
    double ns = 0.0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
      ns += bank.access_ns(pattern.next() / row_bytes);
    }
    const double gbps =
        (static_cast<double>(accesses * spec.word_bits) / 1e9) / (ns * 1e-9);
    std::printf("  %-18s row-buffer hit rate %5.1f%%  ->  %7.2f Gbit/s\n",
                name, bank.hit_rate() * 100.0, gbps);
  };

  std::printf("\none bank, %llu wide-word reads over a %llu MiB footprint:\n",
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(footprint >> 20));
  wl::StreamingPattern streaming(footprint, word_bytes);
  drive(streaming, "streaming");
  wl::RandomPattern random_pattern(footprint, word_bytes, Rng(7));
  drive(random_pattern, "uniform random");

  std::printf("\nthe gap is the PIM opportunity: logic next to the row "
              "buffer sees the\nstreaming number, a cacheless off-chip "
              "consumer sees the random one.\n");
  return 0;
}
