// A microserver-style irregular application on the functional parcel
// runtime: multi-hop traversal of a distributed linked structure, the
// access pattern that defeats caches (paper Sections 1 and 2.2, "remote
// method invocations on objects in memory").
//
// A linked structure of N elements is scattered over the nodes of a
// ParcelMachine; links stay within the home shard with probability
// p_local.  A "chase" method parcel performs hops *at the data*: it
// follows links while they remain in its shard (up to an unroll budget)
// and returns where it got to — computation migrates to the memory
// instead of data migrating to a processor.  Sweeping the unroll budget
// shows how fatter actions amortize the network round trip.
//
// Build & run:  ./examples/microserver_graph
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "parcel/network.hpp"
#include "parcel/runtime.hpp"

namespace {

using namespace pimsim;

constexpr std::uint32_t kChase = 1;
constexpr std::size_t kNodes = 16;
constexpr std::uint64_t kElements = 1 << 14;

/// Locality-biased Hamiltonian cycle over all elements: the traversal
/// visits every element once per lap, staying in its current shard with
/// probability p_local at each step (so shard-local runs average
/// 1/(1-p_local) hops).  A single global cycle cannot trap the walk in a
/// local sub-cycle the way a random successor map would.
std::vector<std::uint64_t> build_links(double p_local, Rng& rng) {
  // Pre-shuffle each shard's elements (element i lives on shard i % kNodes).
  std::vector<std::vector<std::uint64_t>> pool(kNodes);
  const std::uint64_t per_shard = kElements / kNodes;
  for (std::size_t s = 0; s < kNodes; ++s) {
    pool[s].reserve(per_shard);
    for (std::uint64_t row = 0; row < per_shard; ++row) {
      pool[s].push_back(row * kNodes + s);
    }
    for (std::uint64_t i = per_shard - 1; i > 0; --i) {
      std::swap(pool[s][i], pool[s][rng.uniform_int(0, i)]);
    }
  }
  // Emit the global visit order in shard-local runs.
  std::vector<std::uint64_t> order;
  order.reserve(kElements);
  std::size_t shard = 0;
  std::vector<std::size_t> cursor(kNodes, 0);
  auto shard_has = [&](std::size_t s) { return cursor[s] < pool[s].size(); };
  for (std::uint64_t emitted = 0; emitted < kElements; ++emitted) {
    if (!shard_has(shard) || !rng.bernoulli(p_local)) {
      // Jump to a random shard that still has elements.
      std::size_t s = rng.uniform_int(0, kNodes - 1);
      while (!shard_has(s)) s = (s + 1) % kNodes;
      shard = s;
    }
    order.push_back(pool[shard][cursor[shard]++]);
  }
  std::vector<std::uint64_t> next(kElements);
  for (std::uint64_t t = 0; t < kElements; ++t) {
    next[order[t]] = order[(t + 1) % kElements];
  }
  return next;
}

/// Reply packing: hops actually taken in the high bits, element in the low.
constexpr std::uint64_t pack(std::uint64_t hops, std::uint64_t element) {
  return (hops << 32) | element;
}

des::Process traverse(des::Simulation& sim, parcel::ParcelMachine& machine,
                      std::uint64_t hops_wanted, std::uint64_t unroll,
                      double* finished_at, std::uint64_t* parcels) {
  std::uint64_t current = 0;
  std::uint64_t done = 0;
  while (done < hops_wanted) {
    parcel::Parcel p;
    p.dst = machine.home_of(current * 8);
    p.action = parcel::ActionKind::kMethod;
    p.method_id = kChase;
    p.target_vaddr = current * 8;
    p.operands = {std::min(unroll, hops_wanted - done)};
    auto handle = machine.request(0, p);
    co_await handle.wait();
    ++*parcels;
    done += handle.value() >> 32;
    current = handle.value() & 0xffffffffull;
  }
  *finished_at = sim.now();
}

}  // namespace

int main() {
  constexpr std::uint64_t kHops = 2'000;
  constexpr double kPLocal = 0.9;

  std::printf("distributed pointer chase: %llu elements over %zu PIM nodes, "
              "%llu hops, %.0f%% shard-local links\n\n",
              static_cast<unsigned long long>(kElements), kNodes,
              static_cast<unsigned long long>(kHops), kPLocal * 100.0);
  std::printf("%-10s %-14s %-14s %-12s %s\n", "unroll", "cycles",
              "cycles/hop", "parcels", "wire bytes");

  Rng rng(2004);
  const auto links = build_links(kPLocal, rng);

  for (std::uint64_t unroll : {1ull, 2ull, 4ull, 8ull, 16ull}) {
    des::Simulation sim;
    parcel::FlatInterconnect net(200.0);
    parcel::ParcelMachine machine(sim, kNodes, net);

    // The chase method: follow links while they stay in this shard and
    // the unroll budget lasts; report (hops taken, element reached).
    machine.registry().register_method(
        kChase, "chase",
        [&machine](parcel::MemoryStore& store, std::uint64_t vaddr,
                   std::span<const std::uint64_t> ops) {
          const std::uint64_t budget = ops.empty() ? 1 : ops[0];
          const auto home = machine.home_of(vaddr);
          std::uint64_t current = vaddr / 8;
          std::uint64_t taken = 0;
          while (taken < budget) {
            current = store.read(current * 8);
            ++taken;
            if (machine.home_of(current * 8) != home) break;
          }
          return std::optional<std::uint64_t>(pack(taken, current));
        });

    for (std::uint64_t i = 0; i < kElements; ++i) {
      machine.store(machine.home_of(i * 8)).write(i * 8, links[i]);
    }

    double finished = 0.0;
    std::uint64_t parcels = 0;
    sim.spawn(traverse(sim, machine, kHops, unroll, &finished, &parcels));
    sim.run_until(1e9);

    std::printf("%-10llu %-14.0f %-14.1f %-12llu %llu\n",
                static_cast<unsigned long long>(unroll), finished,
                finished / static_cast<double>(kHops),
                static_cast<unsigned long long>(parcels),
                static_cast<unsigned long long>(machine.total_bytes_on_wire()));
  }

  std::printf("\nunrolling lets one parcel chase several links inside its "
              "home shard,\namortizing the 200-cycle round trip — the "
              "message-driven advantage the\npaper's Figure 9 illustrates.\n");
  return 0;
}
