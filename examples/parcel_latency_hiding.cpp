// Parcel latency hiding on a 64-node PIM array (paper Section 4).
//
// Builds the paper's two systems — blocking message passing versus
// parcel-driven split transactions — over the same flat interconnect,
// sweeps the system-wide latency, and prints the work ratio and idle
// times, ending with the design-space recommendation.
//
// Build & run:  ./examples/parcel_latency_hiding
#include <cstdio>

#include "analytic/parcel_model.hpp"
#include "core/design_space.hpp"
#include "parcel/system.hpp"

int main() {
  using namespace pimsim;

  parcel::SplitTransactionParams p;
  p.nodes = 64;
  p.parallelism = 16;   // parcel contexts per node
  p.p_remote = 0.20;    // 20% of memory accesses are remote
  p.horizon = 20'000.0;
  p.seed = 42;

  std::printf("64-node PIM array, %zu parcel contexts/node, %.0f%% remote "
              "accesses\n\n",
              p.parallelism, p.p_remote * 100.0);
  std::printf("%-12s %-12s %-12s %-12s %s\n", "latency", "work ratio",
              "model", "test idle", "control idle");
  for (double latency : {10.0, 50.0, 200.0, 1000.0, 5000.0}) {
    p.round_trip_latency = latency;
    const parcel::ComparisonPoint point = parcel::compare_systems(p);
    char test_idle[16], control_idle[16];
    std::snprintf(test_idle, sizeof test_idle, "%.1f%%",
                  point.test_idle * 100.0);
    std::snprintf(control_idle, sizeof control_idle, "%.1f%%",
                  point.control_idle * 100.0);
    std::printf("%-12.0f %-12.2f %-12.2f %-12s %s\n", latency,
                point.work_ratio, analytic::predicted_ratio(p), test_idle,
                control_idle);
  }

  // How much parallelism does a 1000-cycle machine actually need?
  p.round_trip_latency = 1000.0;
  std::printf("\nidle collapse at L=1000 (paper Figure 12 behaviour):\n");
  std::printf("%-14s %-12s %s\n", "parallelism", "test idle", "model");
  for (std::size_t par : {1, 2, 4, 8, 16, 32, 64}) {
    p.parallelism = par;
    const auto run = parcel::run_split_transaction_system(p);
    char sim_idle[16], model_idle[16];
    std::snprintf(sim_idle, sizeof sim_idle, "%.1f%%",
                  run.mean_idle_fraction() * 100.0);
    std::snprintf(model_idle, sizeof model_idle, "%.1f%%",
                  analytic::test_idle_fraction_mva(p) * 100.0);
    std::printf("%-14zu %-12s %s\n", par, sim_idle, model_idle);
  }

  p.parallelism = 16;
  const core::ParcelAdvice advice = core::advise_parcels(p);
  std::printf("\nrecommendation: %s\n", advice.reason.c_str());
  return 0;
}
