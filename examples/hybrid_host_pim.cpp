// Hybrid host/PIM partitioning of an irregular, data-intensive
// application — the scenario motivating DIVA-style PIM-enabled memory
// (paper Sections 1 and 5.1).
//
// The "application" mixes three kernels:
//   * a dense stencil-like sweep (streaming, cache-friendly),
//   * an indexed gather over a small hot table (cache-friendly),
//   * a pointer chase over a huge irregular structure (no reuse).
//
// Step 1 measures each kernel's cache behaviour with the structural
// set-associative cache simulator, classifying kernels into HWP work
// (good hit rate) and PIM work (no reuse) — exactly the partitioning rule
// of the paper's Section 3 workload model.
// Step 2 feeds the measured split and miss rate into the queueing
// simulation and reports the speedup of the PIM-augmented system.
//
// Build & run:  ./examples/hybrid_host_pim
#include <cstdio>
#include <memory>
#include <vector>

#include "analytic/hwp_lwp.hpp"
#include "arch/host_system.hpp"
#include "memory/cache.hpp"
#include "workload/access_pattern.hpp"

namespace {

struct Kernel {
  const char* name;
  std::unique_ptr<pimsim::wl::AccessPattern> pattern;
  std::uint64_t ops;           // operation count of this kernel
  double measured_miss_rate = 0.0;
  bool offload_to_pim = false;
};

}  // namespace

int main() {
  using namespace pimsim;

  // --- the application's kernels ----------------------------------------
  Rng rng(2026);
  std::vector<Kernel> kernels;
  kernels.push_back(Kernel{
      "dense-sweep", std::make_unique<wl::StreamingPattern>(1 << 14, 8),
      30'000'000});
  kernels.push_back(Kernel{
      "hot-gather",
      std::make_unique<wl::HotColdPattern>(1 << 14, 1 << 28, 8, 0.93,
                                           rng.split(1)),
      20'000'000});
  kernels.push_back(Kernel{
      "pointer-chase",
      std::make_unique<wl::PointerChasePattern>(1 << 20, 64, rng.split(2)),
      50'000'000});

  // --- step 1: measure temporal locality against the host's cache -------
  std::printf("%-14s %-12s %-10s %s\n", "kernel", "miss rate", "ops(M)",
              "placement");
  std::uint64_t total_ops = 0, pim_ops = 0;
  double hwp_weighted_miss = 0.0;
  std::uint64_t hwp_ops = 0;
  for (auto& k : kernels) {
    mem::SetAssocCache cache(mem::CacheGeometry{1 << 16, 64, 4});
    for (int i = 0; i < 20'000; ++i) (void)cache.access(k.pattern->next());
    cache.reset_stats();  // warm the cache before measuring
    for (int i = 0; i < 100'000; ++i) (void)cache.access(k.pattern->next());
    k.measured_miss_rate = cache.miss_rate();
    // The paper's partitioning rule: no-reuse work goes to PIM.
    k.offload_to_pim = k.measured_miss_rate > 0.5;
    total_ops += k.ops;
    if (k.offload_to_pim) {
      pim_ops += k.ops;
    } else {
      hwp_weighted_miss += k.measured_miss_rate * static_cast<double>(k.ops);
      hwp_ops += k.ops;
    }
    std::printf("%-14s %-12.3f %-10.1f %s\n", k.name, k.measured_miss_rate,
                static_cast<double>(k.ops) / 1e6,
                k.offload_to_pim ? "PIM (no reuse)" : "host (cached)");
  }

  const double lwp_fraction =
      static_cast<double>(pim_ops) / static_cast<double>(total_ops);
  const double host_pmiss =
      hwp_ops == 0 ? 0.0 : hwp_weighted_miss / static_cast<double>(hwp_ops);
  std::printf("\nworkload split: %.0f%% PIM, host Pmiss = %.3f\n\n",
              lwp_fraction * 100.0, host_pmiss);

  // --- step 2: simulate the partitioned system --------------------------
  arch::HostConfig cfg;
  cfg.params = arch::SystemParams::table1();
  cfg.params.p_miss = host_pmiss;  // ground the model in the measurement
  cfg.workload.total_ops = total_ops;
  cfg.workload.lwp_fraction = lwp_fraction;
  cfg.batch_ops = 1'000'000;

  std::printf("%-8s %-16s %-10s %s\n", "nodes", "makespan (ms)", "gain",
              "regime");
  const double nb = cfg.params.nb();
  for (std::size_t nodes : {1, 4, 16, 64, 256}) {
    cfg.lwp_nodes = nodes;
    const double test = arch::run_host_system(cfg).total_cycles;
    const double control = arch::run_control_system(cfg).total_cycles;
    const double gain = control / test;
    std::printf("%-8zu %-16.2f %-10.2f %s\n", nodes,
                cfg.params.clock().to_seconds(test) * 1e3, gain,
                gain > 1.0 ? (gain > 2.0 ? "strong win" : "win")
                           : "loss (below NB)");
  }
  std::printf("\nbreak-even NB = %.2f nodes; asymptotic gain = %.2fx\n", nb,
              analytic::max_gain(lwp_fraction));
  return 0;
}
