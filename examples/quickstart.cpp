// Quickstart: the five-minute tour of pimsim.
//
//  1. Describe a machine with the paper's Table 1 parameters.
//  2. Ask the analytic model where PIM breaks even (NB).
//  3. Simulate one design point and compare with the closed form.
//  4. Ask the design-space API how many PIM nodes a target speedup needs.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "analytic/hwp_lwp.hpp"
#include "arch/host_system.hpp"
#include "arch/params.hpp"
#include "core/design_space.hpp"

int main() {
  using namespace pimsim;

  // 1. The machine: a cache-based heavyweight host plus an array of
  //    lightweight PIM processors in its memory (paper Figure 1).
  const arch::SystemParams params = arch::SystemParams::table1();
  std::printf("HWP cost per operation : %.2f cycles\n", params.hwp_cost_per_op());
  std::printf("LWP cost per operation : %.2f cycles\n", params.lwp_cost_per_op());

  // 2. The break-even node count NB — the paper's third orthogonal
  //    parameter. With more than NB PIM nodes, offloading low-locality
  //    work always helps, regardless of how much of it there is.
  std::printf("break-even node count  : NB = %.3f\n\n", params.nb());

  // 3. One design point: 64 PIM nodes, 70%% of the work has no temporal
  //    locality. Simulate it and check the analytic model.
  arch::HostConfig cfg;
  cfg.params = params;
  cfg.workload.total_ops = 100'000'000;  // the paper's W
  cfg.workload.lwp_fraction = 0.70;
  cfg.lwp_nodes = 64;
  cfg.batch_ops = 1'000'000;

  const arch::HostResult sim = arch::run_host_system(cfg);
  const double model_cycles = analytic::absolute_time_cycles(
      params, cfg.workload.total_ops, 64.0, 0.70);
  const double gain = analytic::gain(params, 64.0, 0.70);

  std::printf("simulated makespan     : %.3e cycles (%.1f ms wall)\n",
              sim.total_cycles, params.clock().to_seconds(sim.total_cycles) * 1e3);
  std::printf("analytic makespan      : %.3e cycles (err %.2f%%)\n",
              model_cycles,
              100.0 * (sim.total_cycles - model_cycles) / sim.total_cycles);
  std::printf("gain over host-only    : %.2fx (%s)\n\n", gain,
              core::to_string(core::classify_host_point(params, 64.0, 0.70)));

  // 4. Inverse query: how many PIM nodes buy a 3x speedup here?
  const std::size_t needed = analytic::min_nodes_for_gain(params, 0.70, 3.0);
  if (needed > 0) {
    std::printf("nodes needed for 3x    : %zu\n", needed);
  } else {
    std::printf("3x is unattainable at this workload split\n");
  }
  return 0;
}
