// Hotspot (all-to-one) traffic: what the flat latency model cannot see.
//
// Every node streams parcels at node 0 over a 4x4 mesh and a 4x4 torus,
// both calibrated to the same mean zero-load round trip as the paper's
// flat model.  The analytic interconnects predict a load-independent
// delivery latency; the packet-level model shows the ejection link into
// node 0 saturating, queues backing up the tree of routes, and end-to-end
// latency collapsing as the injection rate rises — while at a trickle the
// packet model reproduces the analytic numbers (its zero-contention
// degenerate).
//
// This walkthrough narrates the registered `hotspot` scenario (the table
// below is exactly `pimsim run hotspot`; re-parameterize with e.g.
// `pimsim run hotspot nodes=64 networks=mesh2d,torus`).
//
// Build & run:  ./examples/hotspot_traffic
#include <cstdio>
#include <iostream>

#include "common/config.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace pimsim;

  constexpr std::size_t kNodes = 16;
  constexpr double kRoundTrip = 200.0;  // calibration target, cycles
  constexpr std::size_t kBytes = 16;    // one flit: zero-load == analytic
  constexpr int kPerNode = 200;         // packets per source node

  std::printf(
      "All-to-one parcel traffic on %zu nodes, %d packets per source,\n"
      "%zu-byte parcels, every topology calibrated to a %.0f-cycle mean\n"
      "round trip.  The analytic column is what the closed-form models\n"
      "predict at ANY load; the packet-level columns are measured.\n\n",
      kNodes, kPerNode, kBytes, kRoundTrip);

  // The scenario's defaults are exactly this walkthrough's grid; set
  // them explicitly so the narrative above cannot drift from the run.
  Config cfg;
  cfg.set("nodes", std::to_string(kNodes));
  cfg.set("roundtrip", std::to_string(kRoundTrip));
  cfg.set("bytes", std::to_string(kBytes));
  cfg.set("packets", std::to_string(kPerNode));
  core::run_scenario("hotspot", cfg).print(std::cout);

  std::printf(
      "\nReading the table: at gap 4096 (staggered sources, one packet in\n"
      "flight at a time) every topology reproduces its analytic\n"
      "prediction exactly — the zero-contention degeneracy.  As the gap\n"
      "shrinks, the links entering node 0 saturate (eject util -> 1) and\n"
      "measured latency runs away from the flat model's constant %.0f\n"
      "cycles.  The torus spreads the approach routes over more incoming\n"
      "links than the mesh, so it collapses later — a difference no\n"
      "fixed-latency model can express.\n",
      kRoundTrip / 2.0);
  return 0;
}
