// Hotspot (all-to-one) traffic: what the flat latency model cannot see.
//
// Every node streams parcels at node 0 over a 4x4 mesh and a 4x4 torus,
// both calibrated to the same mean zero-load round trip as the paper's
// flat model.  The analytic interconnects predict a load-independent
// delivery latency; the packet-level model shows the ejection link into
// node 0 saturating, queues backing up the tree of routes, and end-to-end
// latency collapsing as the injection rate rises — while at a trickle the
// packet model reproduces the analytic numbers (its zero-contention
// degenerate).
//
// Build & run:  ./examples/hotspot_traffic
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "interconnect/contention.hpp"
#include "parcel/network.hpp"

namespace {

using namespace pimsim;
using interconnect::make_contention_interconnect;
using parcel::NodeId;

constexpr std::size_t kNodes = 16;
constexpr double kRoundTrip = 200.0;  // calibration target, cycles
constexpr std::size_t kBytes = 16;    // one flit: zero-load == analytic
constexpr int kPerNode = 200;         // packets per source node

des::Process source(des::Simulation& sim, const parcel::Interconnect& net,
                    NodeId src, double gap) {
  // Phase the sources across one injection period: at the widest gap the
  // offsets exceed any zero-load latency, so exactly one packet is in
  // flight at a time (simultaneous injection would collide even at a
  // trickle); at small gaps the offsets are negligible and the streams
  // overlap fully.
  co_await des::delay(sim, static_cast<double>(src) * gap / 16.0);
  for (int i = 0; i < kPerNode; ++i) {
    net.deliver(sim, src, 0, kBytes, [] {});
    co_await des::delay(sim, gap);
  }
}

/// Runs all-to-one traffic at one injection gap; returns (mean, p95, max,
/// ejection-link utilization).
struct HotspotResult {
  double mean = 0.0, p95 = 0.0, max = 0.0, eject_util = 0.0;
};

HotspotResult run_hotspot(const std::string& kind, double gap) {
  const auto net = make_contention_interconnect(kind, kNodes, kRoundTrip);
  des::Simulation sim;
  for (NodeId src = 1; src < kNodes; ++src) {
    sim.spawn(source(sim, *net, src, gap));
  }
  sim.run();
  const interconnect::PacketNetwork& pn = *net->network();
  HotspotResult out;
  out.mean = pn.latency_stats().mean();
  out.max = pn.latency_stats().max();
  // Coarse histogram bins can interpolate past the true maximum; cap at it.
  out.p95 = std::min(pn.latency_histogram().quantile(0.95), out.max);
  // Every route's last hop is the link entering node 0's router; find the
  // hottest of them (the crossbar downlink / the grid's incoming edges).
  for (std::uint32_t l = 0; l < pn.topology().links().size(); ++l) {
    if (pn.topology().links()[l].dst_router == pn.topology().attach(0)) {
      out.eject_util = std::max(out.eject_util, pn.link_stats(l).utilization);
    }
  }
  return out;
}

double analytic_mean_to_zero(const parcel::Interconnect& net) {
  double sum = 0.0;
  for (NodeId src = 1; src < kNodes; ++src) {
    sum += net.one_way_latency(src, 0);
  }
  return sum / static_cast<double>(kNodes - 1);
}

}  // namespace

int main() {
  std::printf(
      "All-to-one parcel traffic on %zu nodes, %d packets per source,\n"
      "%zu-byte parcels, every topology calibrated to a %.0f-cycle mean\n"
      "round trip.  The analytic column is what the closed-form models\n"
      "predict at ANY load; the packet-level columns are measured.\n\n",
      kNodes, kPerNode, kBytes, kRoundTrip);

  Table table("Hotspot collapse: analytic vs packet-level latency to node 0",
              {"Network", "inj gap", "analytic mean", "measured mean",
               "p95", "max", "eject util"});
  for (const char* kind : {"flat", "mesh2d", "torus"}) {
    const auto analytic = parcel::make_interconnect(kind, kNodes, kRoundTrip);
    const double predicted = analytic_mean_to_zero(*analytic);
    // From a trickle (near zero-load: matches the analytic model) to a
    // flood (the single ejection port serializes 15 streams).
    for (const double gap : {4096.0, 256.0, 32.0, 8.0, 4.0}) {
      const HotspotResult r = run_hotspot(kind, gap);
      table.add_row({std::string(kind), gap, predicted, r.mean, r.p95, r.max,
                     r.eject_util});
    }
  }
  table.print(std::cout);

  std::printf(
      "\nReading the table: at gap 4096 (staggered sources, one packet in\n"
      "flight at a time) every topology reproduces its analytic\n"
      "prediction exactly — the zero-contention degeneracy.  As the gap\n"
      "shrinks, the links entering node 0 saturate (eject util -> 1) and\n"
      "measured latency runs away from the flat model's constant %.0f\n"
      "cycles.  The torus spreads the approach routes over more incoming\n"
      "links than the mesh, so it collapses later — a difference no\n"
      "fixed-latency model can express.\n",
      kRoundTrip / 2.0);
  return 0;
}
