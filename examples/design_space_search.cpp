// Design-space exploration: the "quantitative framework for assessing the
// tradeoff space" of paper Section 2.3, driven from the inverse direction
// a machine architect actually faces — given a target, what does the
// configuration need to be?
//
// Build & run:  ./examples/design_space_search
#include <cstdio>

#include "analytic/hwp_lwp.hpp"
#include "analytic/multithreading.hpp"
#include "analytic/parcel_model.hpp"
#include "arch/host_system.hpp"
#include "arch/params.hpp"
#include "core/design_space.hpp"
#include "core/sweep.hpp"

int main() {
  using namespace pimsim;
  const arch::SystemParams params = arch::SystemParams::table1();

  // --- 1. node provisioning: minimum N for a target speedup -------------
  std::printf("minimum PIM nodes for a target gain (Table 1 machine):\n");
  std::printf("%-10s", "%WL");
  for (double target : {1.5, 2.0, 4.0, 8.0}) std::printf("  gain %.1fx", target);
  std::printf("\n");
  for (double pct : {0.3, 0.5, 0.7, 0.9, 1.0}) {
    std::printf("%-10.0f", pct * 100.0);
    for (double target : {1.5, 2.0, 4.0, 8.0}) {
      const std::size_t n = analytic::min_nodes_for_gain(params, pct, target);
      if (n == 0) {
        std::printf("  %9s", "-");
      } else {
        std::printf("  %9zu", n);
      }
    }
    std::printf("\n");
  }
  std::printf("('-' = unattainable: max gain at %%WL is 1/(1-%%WL))\n\n");

  // --- 2. regime map across the (N, %WL) plane --------------------------
  std::printf("operating regimes (rows: nodes, cols: %%WL):\n%-8s", "");
  for (double pct : {0.1, 0.3, 0.5, 0.7, 0.9}) std::printf("%-14.0f", pct * 100);
  std::printf("\n");
  for (double n : {1.0, 2.0, 4.0, 16.0, 64.0, 256.0}) {
    std::printf("%-8.0f", n);
    for (double pct : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      std::printf("%-14s", core::to_string(core::classify_host_point(params, n, pct)));
    }
    std::printf("\n");
  }

  // --- 3. how machine parameters move the break-even point --------------
  std::printf("\nsensitivity of NB to the machine parameters:\n");
  std::printf("%-34s %s\n", "configuration", "NB");
  auto show = [](const char* label, arch::SystemParams p) {
    std::printf("%-34s %.3f\n", label, p.nb());
  };
  show("Table 1 baseline", params);
  arch::SystemParams v = params;
  v.p_miss = 0.02;
  show("better host cache (Pmiss=0.02)", v);
  v = params;
  v.p_miss = 0.3;
  show("worse host cache (Pmiss=0.3)", v);
  v = params;
  v.t_ml = 10.0;
  show("faster PIM memory (TML=10)", v);
  v = params;
  v.tl_cycle = 2.0;
  show("faster PIM clock (TLcycle=2)", v);
  v = params;
  v.t_mh = 300.0;
  show("slower host DRAM path (TMH=300)", v);

  // --- 4. parcels: provisioning parallelism for a latency budget --------
  std::printf("\nparcel contexts needed to saturate a node (20%% remote):\n");
  std::printf("%-18s %s\n", "round trip (cy)", "contexts (ceil)");
  parcel::SplitTransactionParams pp;
  pp.p_remote = 0.2;
  for (double latency : {50.0, 200.0, 1000.0, 5000.0}) {
    pp.round_trip_latency = latency;
    std::printf("%-18.0f %.0f\n", latency,
                std::ceil(analytic::saturation_parallelism(pp)));
  }

  // --- 5. extensions: what relaxing the paper's assumptions buys --------
  std::printf("\nextensions at a glance (Table 1 machine, %%WL = 70):\n");
  const double pct70 = 0.7;
  std::printf("  serialized phases, N=16      : gain %.2fx\n",
              analytic::gain(params, 16.0, pct70));
  std::printf("  overlapped host+PIM, N=16    : gain %.2fx (cap %.2fx at N* = %.1f)\n",
              1.0 / analytic::time_relative_overlapped(params, 16.0, pct70),
              analytic::max_gain(pct70),
              analytic::balanced_nodes(params, pct70));
  std::printf("  4-way multithreaded LWPs     : NB falls %.2f -> %.2f\n",
              params.nb(), analytic::nb_mt(params, 4, 1.0));
  pp.round_trip_latency = 1000.0;
  pp.parallelism = 16;
  pp.nic_gap = 20.0;
  std::printf("  NIC-aware parcel ceiling     : %.3f work/cycle/node at "
              "20-cycle injection gap\n",
              analytic::test_throughput_bandwidth_bound(pp));

  // --- 6. simulated confirmation of the map, swept in parallel ----------
  // The analytic regime map above is instant; confirming it by simulation
  // is a (N, %WL) x replications grid — exactly what SweepRunner fans
  // across cores.  Means carry 95% CI half-widths from 3 replications.
  const std::vector<std::size_t> sweep_nodes{1, 4, 16, 64};
  const std::vector<double> sweep_fractions{0.3, 0.5, 0.7, 0.9};
  core::SweepRunner runner;  // one thread per core
  std::printf("\nsimulated gain map (%zu-thread sweep, mean +/- 95%% CI):\n",
              runner.threads());
  const std::vector<Estimate> gains = runner.sweep(
      sweep_nodes.size() * sweep_fractions.size(), /*replications=*/3,
      /*base_seed=*/1,
      [&](std::size_t idx, std::uint64_t seed) {
        arch::HostConfig point;
        point.workload.total_ops = 2'000'000;
        point.batch_ops = 20'000;
        point.lwp_nodes = sweep_nodes[idx / sweep_fractions.size()];
        point.workload.lwp_fraction =
            sweep_fractions[idx % sweep_fractions.size()];
        point.seed = seed;
        return arch::simulated_gain(point);
      });
  std::printf("%-8s", "");
  for (double pct : sweep_fractions) std::printf("%-16.0f", pct * 100.0);
  std::printf("\n");
  for (std::size_t ni = 0; ni < sweep_nodes.size(); ++ni) {
    std::printf("%-8zu", sweep_nodes[ni]);
    for (std::size_t fi = 0; fi < sweep_fractions.size(); ++fi) {
      const Estimate& e = gains[ni * sweep_fractions.size() + fi];
      std::printf("%6.2f +/- %-5.2f", e.mean, e.half_width);
    }
    std::printf("\n");
  }
  return 0;
}
