// Functional parcels end to end: remote atomic operations and method
// invocation on objects in memory (paper Figures 8 and 9), with real
// wire-format serialization on every hop.
//
// Scenario: a distributed histogram sharded over an 8-node PIM array.
//  * The driver fires kAmoAdd parcels at remote bins (hardware-supported
//    atomic action).
//  * A registered method code block ("shard-sum") is then invoked on every
//    node — a remote method invocation on the shard object — and the
//    returned partial sums are folded into the final answer.
//
// Build & run:  ./examples/parcel_remote_methods
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "parcel/action.hpp"
#include "parcel/network.hpp"
#include "parcel/parcel.hpp"

namespace {

using namespace pimsim;

constexpr std::uint32_t kShardSumMethod = 1;
constexpr std::uint64_t kBinsPerNode = 64;

/// One PIM node: its memory shard and its parcel inbox (wire bytes).
struct Node {
  explicit Node(des::Simulation& sim, std::uint32_t id)
      : inbox(std::make_unique<des::Mailbox<std::vector<std::uint8_t>>>(
            sim, "node" + std::to_string(id) + ".in")) {}
  parcel::MemoryStore store;
  std::unique_ptr<des::Mailbox<std::vector<std::uint8_t>>> inbox;
  std::uint64_t parcels_executed = 0;
};

struct Machine {
  explicit Machine(std::size_t n_nodes, double round_trip)
      : net(round_trip) {
    nodes.reserve(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      nodes.emplace_back(sim, static_cast<std::uint32_t>(i));
    }
    // The method code block every node knows: sum this shard's bins.
    registry.register_method(
        kShardSumMethod, "shard-sum",
        [](parcel::MemoryStore& store, std::uint64_t,
           std::span<const std::uint64_t>) {
          std::uint64_t sum = 0;
          for (std::uint64_t bin = 0; bin < kBinsPerNode; ++bin) {
            sum += store.read(bin * 8);
          }
          return std::optional<std::uint64_t>(sum);
        });
  }

  /// Serializes and ships a parcel; it arrives after the network latency.
  void send(const parcel::Parcel& p) {
    auto bytes = parcel::serialize(p);
    auto* inbox = nodes[p.dst].inbox.get();
    sim.schedule_in(net.one_way_latency(p.src, p.dst),
                    [inbox, bytes = std::move(bytes)] { inbox->send(bytes); });
  }

  des::Simulation sim;
  parcel::FlatInterconnect net;
  parcel::ActionRegistry registry;
  std::vector<Node> nodes;
  // Replies delivered back to the driver, keyed by continuation context.
  std::uint64_t replies = 0;
  std::uint64_t reply_sum = 0;
};

/// Each node's parcel engine: receive, deserialize, execute the action
/// against the local shard (paying a row access), return the reply.
des::Process node_server(Machine& m, std::uint32_t id) {
  while (true) {
    const auto bytes = co_await m.nodes[id].inbox->receive();
    const parcel::Parcel p = parcel::deserialize(bytes);
    if (p.action == parcel::ActionKind::kReply) {
      // This node is the continuation target: fold in the result.
      ++m.replies;
      m.reply_sum += p.operands.empty() ? 0 : p.operands[0];
      continue;
    }
    co_await des::delay(m.sim, 22.0);  // row access at the home node
    ++m.nodes[id].parcels_executed;
    const auto reply = parcel::execute_action(p, m.nodes[id].store, m.registry);
    if (reply.has_value()) m.send(*reply);
  }
}

/// The driver: scatter atomic increments, then gather shard sums.
des::Process driver(Machine& m, std::uint64_t increments) {
  Rng rng(7);
  const auto n_nodes = static_cast<std::uint32_t>(m.nodes.size());

  // Phase 1: histogram build with remote atomic adds.
  for (std::uint64_t i = 0; i < increments; ++i) {
    parcel::Parcel p;
    p.src = 0;
    p.dst = static_cast<parcel::NodeId>(rng.uniform_int(0, n_nodes - 1));
    p.action = parcel::ActionKind::kAmoAdd;
    p.target_vaddr = rng.uniform_int(0, kBinsPerNode - 1) * 8;
    p.operands = {1};
    p.continuation = {0, i};  // ack back to the driver
    m.send(p);
    co_await des::delay(m.sim, 2.0);  // issue rate of the driver
  }
  while (m.replies < increments) co_await des::delay(m.sim, 50.0);
  std::printf("phase 1: %llu atomic increments acknowledged at t=%.0f cycles\n",
              static_cast<unsigned long long>(m.replies), m.sim.now());

  // Phase 2: remote method invocation on every shard object.
  m.replies = 0;
  m.reply_sum = 0;
  for (std::uint32_t node = 0; node < n_nodes; ++node) {
    parcel::Parcel p;
    p.src = 0;
    p.dst = node;
    p.action = parcel::ActionKind::kMethod;
    p.method_id = kShardSumMethod;
    p.continuation = {0, 1000 + node};
    m.send(p);
  }
  while (m.replies < n_nodes) co_await des::delay(m.sim, 50.0);

  std::printf("phase 2: %zu shard-sum method invocations returned %llu "
              "(expected %llu) at t=%.0f cycles\n",
              m.nodes.size(), static_cast<unsigned long long>(m.reply_sum),
              static_cast<unsigned long long>(increments), m.sim.now());
  std::printf("result: %s\n",
              m.reply_sum == increments ? "histogram verified" : "MISMATCH");
}

}  // namespace

int main() {
  Machine machine(/*n_nodes=*/8, /*round_trip=*/100.0);
  for (std::uint32_t id = 0; id < machine.nodes.size(); ++id) {
    machine.sim.spawn(node_server(machine, id));
  }
  machine.sim.spawn(driver(machine, /*increments=*/2000));
  machine.sim.run_until(1e9);

  std::printf("\nper-node parcels executed:");
  for (const auto& node : machine.nodes) {
    std::printf(" %llu",
                static_cast<unsigned long long>(node.parcels_executed));
  }
  std::printf("\n");
  return 0;
}
