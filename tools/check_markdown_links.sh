#!/usr/bin/env bash
# Fails (exit 1) on intra-repo markdown links pointing at missing files.
#
# Checks every tracked *.md file for inline links `[text](target)`;
# http(s)/mailto links and pure #anchors are skipped, `#section` suffixes
# on file targets are stripped.  Targets are resolved relative to the
# linking file, or to the repo root when they start with '/'.
#
# Usage: tools/check_markdown_links.sh   (from anywhere inside the repo)
set -u
cd "$(dirname "$0")/.."

if git rev-parse --git-dir > /dev/null 2>&1; then
  # --others --exclude-standard: new, not-yet-committed docs count too.
  files=$(git ls-files --cached --others --exclude-standard '*.md')
else
  files=$(find . -name 'build*' -prune -o -name '*.md' -print)
fi

fail=0
checked=0
for md in $files; do
  dir=$(dirname "$md")
  # One link target per line; links in this repo never contain spaces.
  for link in $(grep -oE '\]\([^) ]+\)' "$md" 2>/dev/null |
                sed -e 's/^](//' -e 's/)$//'); do
    case "$link" in
      http://* | https://* | mailto:*) continue ;;
      '#'*) continue ;;
    esac
    target="${link%%#*}"
    case "$target" in
      /*) resolved=".$target" ;;
      *) resolved="$dir/$target" ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$resolved" ]; then
      echo "BROKEN LINK: $md -> $link (no such file: $resolved)"
      fail=1
    fi
  done
done

if [ "$fail" -eq 0 ]; then
  echo "markdown links ok ($checked intra-repo link(s) checked)"
fi
exit "$fail"
