#!/usr/bin/env bash
# Fans one sharded `pimsim sweep` across N OS processes and merges.
#
# Each shard runs `pimsim sweep <scenario> ... shard=i/N out=DIR` in its
# own process; shards whose valid chunk already exists skip instantly
# (the chunk cache), so rerunning this script after a crash or kill only
# recomputes the missing shards.  When every shard has exited zero the
# chunks are merged into OUT — byte-identical to a single unsharded
# `pimsim sweep` (see docs/SWEEPS.md).
#
# Usage:
#   tools/pimsim_sweep_all.sh <pimsim> <shards> <dir> <out> \
#       <scenario> config=FILE [key=value ...]
#
# Example:
#   tools/pimsim_sweep_all.sh build/pimsim 4 results/fig12 results/fig12.csv \
#       fig12 config=sweeps/fig12_smoke.cfg format=csv
set -u

if [ "$#" -lt 5 ]; then
  echo "usage: $0 <pimsim> <shards> <dir> <out> <scenario> [sweep args ...]" >&2
  exit 2
fi

bin=$1
shards=$2
dir=$3
out=$4
shift 4

case "$shards" in
  '' | *[!0-9]* | 0)
    echo "$0: shard count '$shards' must be a positive integer" >&2
    exit 2
    ;;
esac

# One process per shard.  PIDs are collected and waited on individually:
# a bare `wait` would swallow non-zero exit codes.
pids=""
i=0
while [ "$i" -lt "$shards" ]; do
  "$bin" sweep "$@" "shard=$i/$shards" "out=$dir" &
  pids="$pids $!"
  i=$((i + 1))
done

fail=0
for pid in $pids; do
  wait "$pid" || fail=1
done
if [ "$fail" -ne 0 ]; then
  echo "$0: a shard failed; fix and rerun (completed shards are cached)" >&2
  exit 1
fi

exec "$bin" merge "$dir" "out=$out"
