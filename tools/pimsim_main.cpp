// Entry point of the unified `pimsim` scenario CLI (src/core/cli.hpp).
#include "core/cli.hpp"

int main(int argc, char** argv) { return pimsim::core::cli_main(argc, argv); }
