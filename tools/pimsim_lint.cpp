// pimsim-lint — determinism static analysis over the pimsim tree.
//
// Walks src/ tools/ tests/ bench/ (and examples/) under the given repo
// root, applies the repo-specific determinism rules in src/lint/linter.hpp,
// and exits non-zero if any finding survives its suppressions.  No
// libclang: the scanner is token-aware (comments and literals stripped)
// but deliberately line-oriented, so it builds everywhere the simulator
// does and runs over the whole tree in milliseconds.
//
// Usage: pimsim-lint [repo_root=.] [--list-rules]
//
// CI runs it from the repo root; locally:  ./build/pimsim-lint
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace fs = std::filesystem;

namespace {

/// The directories whose sources carry the determinism contract.
constexpr const char* kRoots[] = {"src", "tools", "tests", "bench",
                                  "examples"};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : pimsim::lint::rule_ids()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pimsim-lint [repo_root=.] [--list-rules]\n";
      return 0;
    }
    root = arg;
  }
  if (!fs::exists(root / "src")) {
    std::cerr << "pimsim-lint: '" << root.string()
              << "' does not look like the repo root (no src/)\n";
    return 2;
  }

  // Deterministic order: collect, sort lexicographically, then lint.
  std::vector<fs::path> files;
  for (const char* dir : kRoots) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t finding_count = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      std::cerr << "pimsim-lint: cannot read " << file.string() << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    const auto findings =
        pimsim::lint::lint_source(file.generic_string(), content.str());
    for (const auto& finding : findings) {
      std::cout << pimsim::lint::to_string(finding) << "\n";
    }
    finding_count += findings.size();
  }

  if (finding_count > 0) {
    std::cout << "pimsim-lint: " << finding_count << " finding(s) in "
              << files.size() << " file(s); see docs/DETERMINISM.md for the "
              << "rules and lint:allow(<rule>): <reason> to suppress\n";
    return 1;
  }
  std::cout << "pimsim-lint: clean (" << files.size() << " file(s), "
            << pimsim::lint::rule_ids().size() << " rules)\n";
  return 0;
}
