#!/usr/bin/env bash
# Fails when the scenario registry and docs/MODEL_MAPPING.md drift apart:
# every name printed by `pimsim list names` must appear in the doc's
# command column as `pimsim run <name>`, and every `pimsim run <name>` in
# the doc must name a registered scenario.
#
# Usage: tools/check_scenario_docs.sh <path-to-pimsim-binary> [mapping.md]
set -eu
bin=${1:?usage: check_scenario_docs.sh <pimsim-binary> [mapping.md]}
doc=${2:-"$(dirname "$0")/../docs/MODEL_MAPPING.md"}

registry=$(mktemp)
documented=$(mktemp)
trap 'rm -f "$registry" "$documented"' EXIT

"$bin" list names | sort -u > "$registry"
grep -oE 'pimsim run [A-Za-z0-9_]+' "$doc" | awk '{print $3}' | sort -u \
  > "$documented"

if ! diff -u "$registry" "$documented"; then
  echo ""
  echo "DRIFT: 'pimsim list names' (left) vs 'pimsim run <name>' commands"
  echo "in $doc (right).  Register the scenario or document it."
  exit 1
fi
echo "scenario inventory matches $doc ($(wc -l < "$registry") scenario(s))"
