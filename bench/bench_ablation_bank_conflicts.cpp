// Ablation A: bank conflicts.
//
// The paper states "Bank conflicts are not modeled but the nature of the
// workload modeled for these experiments precludes this kind of resource
// contention so no inaccuracies are introduced".  This bench quantifies
// both halves of that claim: with one LWP per bank (the paper's setting)
// the detailed per-access model matches the contention-free batched model;
// oversubscribing banks (several LWPs per bank) shows how much slowdown
// the assumption would hide on denser chips.
//
// Thin wrapper over the registered `ablation_bank_conflicts` scenario —
// identical to `pimsim run ablation_bank_conflicts [k=v ...]`.
//
// Usage: bench_ablation_bank_conflicts [csv=1] [ops=400000] [nodes=8]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv,
                                          "ablation_bank_conflicts");
}
