// Ablation A: bank conflicts.
//
// The paper states "Bank conflicts are not modeled but the nature of the
// workload modeled for these experiments precludes this kind of resource
// contention so no inaccuracies are introduced".  This bench quantifies
// both halves of that claim: with one LWP per bank (the paper's setting)
// the detailed per-access model matches the contention-free batched model;
// oversubscribing banks (several LWPs per bank) shows how much slowdown
// the assumption would hide on denser chips.
//
// Usage: bench_ablation_bank_conflicts [csv=1] [ops=400000] [nodes=8]
#include "arch/host_system.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    arch::HostConfig base;
    base.workload.total_ops =
        static_cast<std::uint64_t>(cfg.get_int("ops", 400'000));
    base.workload.lwp_fraction = 1.0;  // all work on the LWP array
    base.lwp_nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
    base.batch_ops = 10'000;
    base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

    const double batched = arch::run_host_system(base).total_cycles;

    Table t("Ablation A: bank-conflict modeling (100% LWP work, " +
                std::to_string(base.lwp_nodes) + " LWPs)",
            {"LWPs per bank", "makespan (cycles)", "vs contention-free"});
    t.add_row({std::string("(not modeled, paper)"), batched, 1.0});
    for (std::int64_t per_bank : {1, 2, 4, 8}) {
      arch::HostConfig cfg2 = base;
      cfg2.model_bank_conflicts = true;
      cfg2.lwps_per_bank = static_cast<std::size_t>(per_bank);
      const double cycles = arch::run_host_system(cfg2).total_cycles;
      t.add_row({per_bank, cycles, cycles / batched});
    }
    return t;
  });
}
