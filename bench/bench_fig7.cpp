// Regenerates Figure 7: the analytic normalized time-to-solution
//   Time_relative = 1 - %WL * (1 - NB / N)
// versus node count, one curve per %WL.  All curves coincide at N = NB
// (3.125 for Table 1 parameters) — the paper's "totally unanticipated"
// third orthogonal parameter.
//
// Thin wrapper over the registered `fig7` scenario — identical to
// `pimsim run fig7 [k=v ...]`; parameter docs via `pimsim help fig7`.
//
// Usage: bench_fig7 [csv=1] [maxnodes=64] [pmiss=0.1] [tml=30] ...
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "fig7");
}
