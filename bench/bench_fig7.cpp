// Regenerates Figure 7: the analytic normalized time-to-solution
//   Time_relative = 1 - %WL * (1 - NB / N)
// versus node count, one curve per %WL.  All curves coincide at N = NB
// (3.125 for Table 1 parameters) — the paper's "totally unanticipated"
// third orthogonal parameter.
//
// Usage: bench_fig7 [csv=1] [maxnodes=64] [pmiss=0.1] [tml=30] ...
#include <algorithm>

#include "arch/params.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    arch::SystemParams params = arch::SystemParams::table1();
    params.tl_cycle = cfg.get_double("tlcycle", params.tl_cycle);
    params.t_mh = cfg.get_double("tmh", params.t_mh);
    params.t_ch = cfg.get_double("tch", params.t_ch);
    params.t_ml = cfg.get_double("tml", params.t_ml);
    params.p_miss = cfg.get_double("pmiss", params.p_miss);
    params.ls_mix = cfg.get_double("mix", params.ls_mix);

    // Dense N axis (including the fractional neighborhood of NB) so the
    // coincidence point is visible in the plotted series.
    std::vector<double> nodes;
    const double max_nodes = cfg.get_double("maxnodes", 64.0);
    for (double n = 1.0; n <= max_nodes; n *= 1.25) nodes.push_back(n);
    nodes.push_back(params.nb());  // the crossover itself
    std::sort(nodes.begin(), nodes.end());

    return core::make_fig7(params, nodes, core::fraction_range(10));
  });
}
