// Ablation D: serialized versus overlapped host/PIM execution.
//
// The paper's Figure 4 flow runs the HWP and the LWP array strictly in
// alternation ("at any one time, either the HWP or LWP array is executing
// but not both").  If the application admits concurrency between the two
// parts — the "PIM augmenting a conventional host" mode of the paper's
// introduction — the phase time becomes max(host, PIM) instead of their
// sum:  Time_relative_ov = max(1 - %WL, %WL*NB/N), capped gain
// 1/(1-%WL) reached already at N* = NB*%WL/(1-%WL) nodes.
//
// Usage: bench_ablation_overlap [csv=1] [ops=4000000] [pct=0.7]
#include "analytic/hwp_lwp.hpp"
#include "arch/host_system.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    arch::HostConfig base;
    base.workload.total_ops =
        static_cast<std::uint64_t>(cfg.get_int("ops", 4'000'000));
    base.workload.lwp_fraction = cfg.get_double("pct", 0.7);
    base.batch_ops = 50'000;
    base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

    const double pct = base.workload.lwp_fraction;
    const arch::SystemParams& params = base.params;
    Table t("Ablation D: serialized vs overlapped host/PIM execution "
            "(%WL = " + format_number(pct * 100.0) + ", balanced N* = " +
                format_number(analytic::balanced_nodes(params, pct)) + ")",
            {"Nodes", "serial gain (sim)", "serial gain (model)",
             "overlap gain (sim)", "overlap gain (model)"});
    const double control =
        arch::run_control_system(base).total_cycles;
    for (std::size_t nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
      arch::HostConfig serial = base;
      serial.lwp_nodes = nodes;
      arch::HostConfig overlap = serial;
      overlap.overlap_phases = true;
      const double n = static_cast<double>(nodes);
      t.add_row({static_cast<std::int64_t>(nodes),
                 control / arch::run_host_system(serial).total_cycles,
                 analytic::gain(params, n, pct),
                 control / arch::run_host_system(overlap).total_cycles,
                 1.0 / analytic::time_relative_overlapped(params, n, pct)});
    }
    return t;
  });
}
