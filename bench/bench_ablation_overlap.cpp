// Ablation D: serialized versus overlapped host/PIM execution.
//
// The paper's Figure 4 flow runs the HWP and the LWP array strictly in
// alternation ("at any one time, either the HWP or LWP array is executing
// but not both").  If the application admits concurrency between the two
// parts — the "PIM augmenting a conventional host" mode of the paper's
// introduction — the phase time becomes max(host, PIM) instead of their
// sum:  Time_relative_ov = max(1 - %WL, %WL*NB/N), capped gain
// 1/(1-%WL) reached already at N* = NB*%WL/(1-%WL) nodes.
//
// Thin wrapper over the registered `ablation_overlap` scenario —
// identical to `pimsim run ablation_overlap [k=v ...]`.
//
// Usage: bench_ablation_overlap [csv=1] [ops=4000000] [pct=0.7]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "ablation_overlap");
}
