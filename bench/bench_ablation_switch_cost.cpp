// Ablation C: parcel handling overhead.
//
// The paper concludes that "efficient parcel handling mechanisms are
// required to realize performance gains".  This bench sweeps the context
// switch cost t_switch (plus the request composition cost t_send) and
// locates the reversal region: the closed form predicts the saturated
// ratio dips below 1 when the round trip latency L < 2*t_switch.
//
// Usage: bench_ablation_switch_cost [csv=1] [nodes=8] [horizon=30000]
//                                   [parallelism=16] [premote=0.2]
#include "analytic/parcel_model.hpp"
#include "bench_util.hpp"
#include "parcel/system.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    parcel::SplitTransactionParams base;
    base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
    base.horizon = cfg.get_double("horizon", 30'000.0);
    base.p_remote = cfg.get_double("premote", 0.2);
    base.parallelism = static_cast<std::size_t>(cfg.get_int("parallelism", 16));
    base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

    Table t("Ablation C: parcel handling overhead (reversal when L < 2*t_switch)",
            {"t_switch", "Latency (cycles)", "work ratio", "ratio (model)"});
    for (double t_switch : {0.0, 2.0, 8.0, 32.0}) {
      for (double latency : {10.0, 50.0, 200.0, 1000.0}) {
        parcel::SplitTransactionParams p = base;
        p.t_switch = t_switch;
        p.round_trip_latency = latency;
        const parcel::ComparisonPoint point = parcel::compare_systems(p);
        t.add_row({t_switch, latency, point.work_ratio,
                   analytic::predicted_ratio(p)});
      }
    }
    return t;
  });
}
