// Ablation C: parcel handling overhead.
//
// The paper concludes that "efficient parcel handling mechanisms are
// required to realize performance gains".  This bench sweeps the context
// switch cost t_switch (plus the request composition cost t_send) and
// locates the reversal region: the closed form predicts the saturated
// ratio dips below 1 when the round trip latency L < 2*t_switch.
//
// Thin wrapper over the registered `ablation_switch_cost` scenario —
// identical to `pimsim run ablation_switch_cost [k=v ...]`.
//
// Usage: bench_ablation_switch_cost [csv=1] [nodes=8] [horizon=30000]
//                                   [parallelism=16] [premote=0.2]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "ablation_switch_cost");
}
