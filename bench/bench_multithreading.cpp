// Extension bench (paper Section 5.2): "multithreading at the node can
// have tremendous benefit in PIM systems", quantified with the
// Saavedra-Barrera-style closed form [27] and the DES multithreaded-LWP
// model.  Reports, per hardware thread count K:
//   * the effective LWP cost per operation (model and simulated),
//   * the resulting break-even node count NB(K),
//   * the asymptotic per-node speedup over single-threaded LWPs.
//
// Usage: bench_multithreading [csv=1] [switch=1] [ops=60000]
#include "analytic/multithreading.hpp"
#include "arch/mtlwp.hpp"
#include "bench_util.hpp"
#include "des/simulation.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    const arch::SystemParams params = arch::SystemParams::table1();
    const double switch_cost = cfg.get_double("switch", 1.0);
    const auto ops = static_cast<std::uint64_t>(cfg.get_int("ops", 60'000));
    const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));

    const analytic::MultithreadSpec spec =
        analytic::lwp_thread_spec(params, switch_cost);
    Table t("Multithreading at the PIM node (K_sat = " +
                format_number(analytic::saturation_threads(spec)) +
                ", switch = " + format_number(switch_cost) + " cycles)",
            {"Threads K", "cost/op (model)", "cost/op (sim)", "NB(K)",
             "speedup vs K=1", "utilization (sim)"});
    for (std::size_t k : {1, 2, 3, 4, 6, 8, 16}) {
      des::Simulation sim;
      arch::MultithreadedLwp node(sim, params, Rng(seed), k, switch_cost);
      sim.spawn(node.run(ops));
      sim.run();
      const double sim_cost = sim.now() / static_cast<double>(ops);
      t.add_row({static_cast<std::int64_t>(k),
                 analytic::lwp_cost_per_op_mt(params, k, switch_cost),
                 sim_cost, analytic::nb_mt(params, k, switch_cost),
                 analytic::speedup(spec, k), node.utilization()});
    }
    return t;
  });
}
