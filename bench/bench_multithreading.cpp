// Extension bench (paper Section 5.2): "multithreading at the node can
// have tremendous benefit in PIM systems", quantified with the
// Saavedra-Barrera-style closed form [27] and the DES multithreaded-LWP
// model.  Reports, per hardware thread count K:
//   * the effective LWP cost per operation (model and simulated),
//   * the resulting break-even node count NB(K),
//   * the asymptotic per-node speedup over single-threaded LWPs.
//
// Thin wrapper over the registered `multithreading` scenario — identical
// to `pimsim run multithreading`; docs via `pimsim help multithreading`.
//
// Usage: bench_multithreading [csv=1] [switch=1] [ops=60000]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "multithreading");
}
