// Packet-network microbenchmark: flit-hop throughput of the DES
// interconnect model, plus the contention observables the analytic models
// cannot produce (queued latency, link utilization).
//
// Self-contained (no google-benchmark dependency) so the CI smoke job can
// always build it.  Three traffic patterns per topology:
//
//   uniform   every node streams packets to uniform random destinations
//   neighbor  nearest-neighbor traffic (minimal path overlap)
//   hotspot   all-to-one onto node 0 (worst-case ejection contention)
//
// Each (topology, pattern) cell runs `reps` times; every repetition lands
// in a BENCH_interconnect.json trajectory (best repetition is the headline
// flit-hops/s number).
//
// Usage: bench_interconnect [nodes=64] [packets=400] [bytes=64] [gap=32]
//                           [reps=3] [csv=1]
//                           [json=BENCH_interconnect.json]  (json=- disables)
//                           [floors=bench/baselines.json]   (perf guard)
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "interconnect/network.hpp"
#include "interconnect/topology.hpp"

namespace {

using namespace pimsim;
using interconnect::NodeId;
using interconnect::PacketConfig;
using interconnect::PacketNetwork;
using interconnect::Topology;
using interconnect::TopologyBuilder;

struct BenchParams {
  std::size_t nodes = 64;
  int packets = 400;       // packets injected per node
  std::size_t bytes = 64;  // message size (4 flits at the default 16 B)
  double gap = 32.0;       // injection gap between packets, per node
};

struct Sample {
  std::uint64_t flit_hops = 0;
  double seconds = 0.0;
  double sim_cycles = 0.0;
  double mean_latency = 0.0;
  double p95_latency = 0.0;
  double peak_utilization = 0.0;
  [[nodiscard]] double hops_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(flit_hops) / seconds : 0.0;
  }
};

struct CellResult {
  std::string name;
  std::vector<Sample> samples;
  [[nodiscard]] const Sample& best() const {
    std::size_t best_i = 0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i].hops_per_sec() > samples[best_i].hops_per_sec()) {
        best_i = i;
      }
    }
    return samples[best_i];
  }
};

des::Process generator(des::Simulation& sim, PacketNetwork& net, NodeId src,
                       Rng rng, const BenchParams& p, const std::string& pattern,
                       double gap) {
  const auto nodes = static_cast<std::uint64_t>(p.nodes);
  for (int i = 0; i < p.packets; ++i) {
    NodeId dst;
    if (pattern == "hotspot") {
      dst = 0;
      if (src == 0) co_return;  // the victim only receives
    } else if (pattern == "neighbor") {
      dst = static_cast<NodeId>((src + 1) % nodes);
    } else {
      dst = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    }
    net.send(src, dst, p.bytes);
    co_await des::delay(sim, gap);
  }
}

/// Mean hop count over independent uniform (src, dst) pairs.
double mean_hops(const Topology& topo) {
  double sum = 0.0;
  for (NodeId a = 0; a < topo.nodes(); ++a) {
    for (NodeId b = 0; b < topo.nodes(); ++b) {
      sum += static_cast<double>(topo.hops(a, b));
    }
  }
  return sum / static_cast<double>(topo.nodes() * topo.nodes());
}

Sample run_cell(const std::string& topology, const std::string& pattern,
                const BenchParams& p) {
  des::Simulation sim;
  PacketConfig cfg;  // defaults: 16 B flits, 1-cycle wire, 8 credits
  PacketNetwork net(sim, TopologyBuilder::build(topology, p.nodes), cfg);
  // Uniform traffic must stay below saturation: without virtual channels
  // the wrap cycles of ring/torus can deadlock at sustained overload (see
  // interconnect/network.hpp).  Per-link offered load at injection gap g
  // is nodes * flits * mean_hops / (links * g); cap it at 0.7.  Hotspot
  // and neighbor traffic route as trees, which cannot deadlock, so the
  // hotspot cells are deliberately left saturating.
  double gap = p.gap;
  if (pattern == "uniform") {
    const auto flits =
        static_cast<double>(interconnect::flit_count(p.bytes, cfg.flit_bytes));
    const double per_link = static_cast<double>(p.nodes) * flits *
                            mean_hops(net.topology()) /
                            static_cast<double>(net.topology().links().size());
    gap = std::max(gap, per_link / 0.7);
  }
  Rng root(2026, 0x1C);
  for (std::size_t n = 0; n < p.nodes; ++n) {
    sim.spawn(generator(sim, net, static_cast<NodeId>(n), root.split(n), p,
                        pattern, gap));
  }
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ensure(net.packets_in_flight() == 0,
         "bench_interconnect: undrained traffic (deadlock?)");
  Sample s;
  s.flit_hops = net.flit_hops();
  s.seconds = elapsed;
  s.sim_cycles = sim.now();
  s.mean_latency = net.latency_stats().mean();
  // The histogram's 128-cycle bins interpolate above the true maximum at
  // light load (and clamp at hist_max under saturation); cap the reported
  // p95 at the exact observed maximum so the JSON never exceeds reality.
  s.p95_latency =
      std::min(net.latency_histogram().quantile(0.95), net.latency_stats().max());
  for (std::uint32_t l = 0; l < net.topology().links().size(); ++l) {
    s.peak_utilization =
        std::max(s.peak_utilization, net.link_stats(l).utilization);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    BenchParams p;
    p.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 64));
    p.packets = static_cast<int>(cfg.get_int("packets", 400));
    p.bytes = static_cast<std::size_t>(cfg.get_int("bytes", 64));
    p.gap = cfg.get_double("gap", 32.0);
    const auto reps = static_cast<std::size_t>(cfg.get_int("reps", 3));
    const std::string json_path =
        cfg.get_string("json", "BENCH_interconnect.json");
    const std::string floors_path = cfg.get_string("floors", "");
    require(p.nodes >= 2 && p.packets >= 1 && reps >= 1 && p.gap > 0.0,
            "bench_interconnect: bad nodes=/packets=/reps=/gap=");

    std::vector<CellResult> results;
    for (const char* topology : {"flat", "ring", "mesh2d", "torus"}) {
      for (const char* pattern : {"uniform", "neighbor", "hotspot"}) {
        CellResult cell;
        cell.name = std::string(topology) + "/" + pattern;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          const Sample s = run_cell(topology, pattern, p);
          // Determinism smoke: all repetitions simulate identical traffic.
          if (!cell.samples.empty()) {
            ensure(s.flit_hops == cell.samples.front().flit_hops,
                   "bench_interconnect: non-deterministic flit-hop count");
          }
          cell.samples.push_back(s);
        }
        results.push_back(std::move(cell));
      }
    }

    Table table("Packet interconnect throughput (" + std::to_string(p.nodes) +
                    " nodes, " + std::to_string(p.packets) +
                    " packets/node, best of " + std::to_string(reps) + ")",
                {"Topology/pattern", "flit-hops", "wall s", "flit-hops/s",
                 "mean lat", "p95 lat", "peak util"});
    for (const auto& cell : results) {
      const Sample& best = cell.best();
      table.add_row({cell.name, static_cast<std::int64_t>(best.flit_hops),
                     best.seconds, best.hops_per_sec(), best.mean_latency,
                     best.p95_latency, best.peak_utilization});
    }
    if (cfg.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    std::vector<bench::BenchCell> cells;
    for (const auto& cell : results) {
      bench::BenchCell out{cell.name, {}};
      for (const Sample& s : cell.samples) {
        out.runs.push_back(bench::BenchRun{s.flit_hops, s.seconds});
      }
      cells.push_back(std::move(out));
    }
    if (json_path != "-") {
      const std::string header =
          "\"nodes\": " + std::to_string(p.nodes) +
          ", \"packets_per_node\": " + std::to_string(p.packets) +
          ", \"bytes\": " + std::to_string(p.bytes) +
          ", \"reps\": " + std::to_string(reps) + ",";
      bench::write_bench_json(json_path, "interconnect", "flit_hops", header,
                              cells);
    }
    if (!floors_path.empty()) {
      return bench::check_floors(floors_path, "interconnect", cells);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
