// Sensitivity study: how the break-even node count NB — the paper's third
// orthogonal parameter and the design-space boundary — moves with each
// Table 1 machine parameter, one-at-a-time around the baseline.  This is
// the "contribute to the optimization of its design" use of the model:
// it ranks which knobs matter.
//
// Usage: bench_sensitivity [csv=1]
#include <functional>

#include "arch/params.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config&) {
    const arch::SystemParams base = arch::SystemParams::table1();

    struct Knob {
      const char* name;
      std::function<void(arch::SystemParams&, double)> set;
      std::vector<double> values;
    };
    const std::vector<Knob> knobs = {
        {"Pmiss", [](arch::SystemParams& p, double v) { p.p_miss = v; },
         {0.02, 0.05, 0.1, 0.2, 0.4}},
        {"TMH", [](arch::SystemParams& p, double v) { p.t_mh = v; },
         {45, 90, 180, 360}},
        {"TML", [](arch::SystemParams& p, double v) { p.t_ml = v; },
         {10, 22, 30, 60}},
        {"TLcycle", [](arch::SystemParams& p, double v) { p.tl_cycle = v; },
         {2, 5, 10}},
        {"TCH", [](arch::SystemParams& p, double v) { p.t_ch = v; },
         {1, 2, 4}},
        {"mix l/s", [](arch::SystemParams& p, double v) { p.ls_mix = v; },
         {0.1, 0.3, 0.5}},
    };

    Table t("Sensitivity of NB to the Table 1 parameters (baseline NB = " +
                format_number(base.nb()) + ")",
            {"Parameter", "Value", "HWP cost/op", "LWP cost/op", "NB",
             "NB / baseline"});
    for (const auto& knob : knobs) {
      for (double v : knob.values) {
        arch::SystemParams p = base;
        knob.set(p, v);
        t.add_row({std::string(knob.name), v, p.hwp_cost_per_op(),
                   p.lwp_cost_per_op(), p.nb(), p.nb() / base.nb()});
      }
    }
    return t;
  });
}
