// Sensitivity study: how the break-even node count NB — the paper's third
// orthogonal parameter and the design-space boundary — moves with each
// Table 1 machine parameter, one-at-a-time around the baseline.  This is
// the "contribute to the optimization of its design" use of the model:
// it ranks which knobs matter.
//
// Thin wrapper over the registered `sensitivity` scenario — identical to
// `pimsim run sensitivity`; docs via `pimsim help sensitivity`.
//
// Usage: bench_sensitivity [csv=1]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "sensitivity");
}
