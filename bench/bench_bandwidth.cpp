// Regenerates the Section 2.1 DRAM bandwidth arithmetic: "a single
// on-chip DRAM macro could sustain a bandwidth of over 50 Gbit/s" and
// "an on-chip peak memory bandwidth of greater than 1 Tbit/s is possible
// per chip", from the row/page geometry and timing.
//
// Usage: bench_bandwidth [csv=1]
#include "bench_util.hpp"
#include "core/figures.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config&) {
    return core::make_bandwidth_table();
  });
}
