// Regenerates the Section 2.1 DRAM bandwidth arithmetic: "a single
// on-chip DRAM macro could sustain a bandwidth of over 50 Gbit/s" and
// "an on-chip peak memory bandwidth of greater than 1 Tbit/s is possible
// per chip", from the row/page geometry and timing.
//
// Thin wrapper over the registered `bandwidth` scenario — identical to
// `pimsim run bandwidth`; docs via `pimsim help bandwidth`.
//
// Usage: bench_bandwidth [csv=1]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "bandwidth");
}
