// Memory-seam microbenchmark: access throughput of the MemorySystem
// backends under the streams that exercise their distinct hot paths:
//
//   analytic  the seam's static-event fast path (constant latency)
//   strided   banked, each node walks its region one wide word at a time
//             (open-row hits, no queueing — the zero-load path)
//   uniform   banked, each node touches uniform-random rows of its own
//             bank (row misses, still uncontended)
//   hotspot   banked, every node hammers node 0's bank (worst-case FIFO
//             queueing and waiter-ring churn)
//
// Self-contained (no google-benchmark dependency) so the CI smoke job can
// always build it.  Each cell runs `reps` times; every repetition lands
// in a BENCH_memory.json trajectory (best repetition is the headline
// accesses/s number).
//
// Usage: bench_memory [nodes=16] [accesses=20000] [reps=3] [csv=1]
//                     [json=BENCH_memory.json]  (json=- disables)
//                     [floors=bench/baselines.json]  (perf guard)
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"
#include "memory/memory_system.hpp"

namespace {

using namespace pimsim;

struct BenchParams {
  std::size_t nodes = 16;
  int accesses = 20'000;  // accesses issued per node
};

struct Sample {
  std::uint64_t accesses = 0;
  double seconds = 0.0;
  double sim_cycles = 0.0;
  double row_hit_rate = 0.0;
};

des::Process stream(des::Simulation& sim, const mem::MemorySystem& memory,
                    std::size_t node, Rng rng, const BenchParams& p,
                    const std::string& pattern) {
  const std::uint64_t region = static_cast<std::uint64_t>(node) << 32;
  std::uint64_t addr = region;
  const std::size_t target = pattern == "hotspot" ? 0 : node;
  for (int i = 0; i < p.accesses; ++i) {
    if (pattern == "uniform") {
      // A random row of this node's region: 256 B rows, 1 MiB spread.
      addr = region + rng.uniform_int(0, (1u << 12) - 1) * 256;
    }
    co_await mem::AccessAwaitable{memory, sim, target, addr,
                                  mem::AccessKind::kLwpRow};
    addr += 32;
  }
}

Sample run_cell(const std::string& pattern, const BenchParams& p) {
  mem::MemoryConfig mc;
  mc.kind = pattern == "analytic" ? "analytic" : "banked";
  mc.nodes = p.nodes;
  const auto memory = mem::make_memory(mc);
  des::Simulation sim;
  Rng root(2026, 0x3D);
  for (std::size_t n = 0; n < p.nodes; ++n) {
    sim.spawn(stream(sim, *memory, n, root.split(n), p, pattern));
  }
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  Sample s;
  s.accesses = static_cast<std::uint64_t>(p.nodes) *
               static_cast<std::uint64_t>(p.accesses);
  s.seconds = elapsed;
  s.sim_cycles = sim.now();
  s.row_hit_rate = memory->row_hit_rate();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    BenchParams p;
    p.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
    p.accesses = static_cast<int>(cfg.get_int("accesses", 20'000));
    const auto reps = static_cast<std::size_t>(cfg.get_int("reps", 3));
    const std::string json_path = cfg.get_string("json", "BENCH_memory.json");
    const std::string floors_path = cfg.get_string("floors", "");
    require(p.nodes >= 1 && p.accesses >= 1 && reps >= 1,
            "bench_memory: bad nodes=/accesses=/reps=");

    std::vector<bench::BenchCell> cells;
    Table table("Memory-seam access throughput (" + std::to_string(p.nodes) +
                    " nodes, " + std::to_string(p.accesses) +
                    " accesses/node, best of " + std::to_string(reps) + ")",
                {"Pattern", "accesses", "wall s", "accesses/s", "sim cycles",
                 "row-hit %"});
    for (const char* pattern : {"analytic", "strided", "uniform", "hotspot"}) {
      bench::BenchCell cell{pattern, {}};
      Sample best{};
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const Sample s = run_cell(pattern, p);
        // Determinism smoke: all repetitions simulate identical streams.
        if (!cell.runs.empty()) {
          ensure(s.sim_cycles == best.sim_cycles,
                 "bench_memory: non-deterministic makespan");
        }
        if (cell.runs.empty() || s.seconds < best.seconds) best = s;
        cell.runs.push_back(bench::BenchRun{s.accesses, s.seconds});
      }
      table.add_row({cell.name, static_cast<std::int64_t>(best.accesses),
                     best.seconds, cell.best().per_sec(), best.sim_cycles,
                     best.row_hit_rate * 100.0});
      cells.push_back(std::move(cell));
    }

    if (cfg.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    if (json_path != "-") {
      const std::string header =
          "\"nodes\": " + std::to_string(p.nodes) +
          ", \"accesses_per_node\": " + std::to_string(p.accesses) +
          ", \"reps\": " + std::to_string(reps) + ",";
      bench::write_bench_json(json_path, "memory", "accesses", header, cells);
    }
    if (!floors_path.empty()) {
      return bench::check_floors(floors_path, "memory", cells);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
