// Reproduces the Section 3.1.2 accuracy claim: "The results derived from
// the simulation ... were reproduced with this analytical model to an
// accuracy of between 5% and 18%."  Prints the per-point relative error
// grid and the summary band; our exact binomial batching makes the band
// far tighter than the paper's (see EXPERIMENTS.md).
//
// Usage: bench_accuracy [csv=1] [ops=10000000] [maxnodes=64]
#include <iostream>

#include "analytic/accuracy.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    core::HostFigureConfig fig;
    fig.base.workload.total_ops =
        static_cast<std::uint64_t>(cfg.get_int("ops", 10'000'000));
    fig.base.batch_ops =
        static_cast<std::uint64_t>(cfg.get_int("batch", 100'000));
    fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    fig.node_counts = core::pow2_range(
        static_cast<std::size_t>(cfg.get_int("maxnodes", 64)));
    fig.lwp_fractions = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};

    const auto entries = analytic::compare_grid(fig.base, fig.node_counts,
                                                fig.lwp_fractions);
    const auto band = analytic::summarize(entries);
    std::cerr << "# accuracy band: min " << band.min_rel_error * 100.0
              << "%  mean " << band.mean_rel_error * 100.0 << "%  max "
              << band.max_rel_error * 100.0 << "%  (paper: 5%-18%)\n";
    return core::make_accuracy_table(fig);
  });
}
