// Reproduces the Section 3.1.2 accuracy claim: "The results derived from
// the simulation ... were reproduced with this analytical model to an
// accuracy of between 5% and 18%."  Prints the per-point relative error
// grid and the summary band; our exact binomial batching makes the band
// far tighter than the paper's (see EXPERIMENTS.md).
//
// Thin wrapper over the registered `accuracy` scenario — identical to
// `pimsim run accuracy [k=v ...]`; docs via `pimsim help accuracy`.
//
// Usage: bench_accuracy [csv=1] [ops=10000000] [maxnodes=64]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "accuracy");
}
