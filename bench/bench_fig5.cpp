// Regenerates Figure 5: simulated performance gain of the PIM-augmented
// system over the host-only control, versus the lightweight workload
// fraction, for node counts 1..256.
//
// Usage: bench_fig5 [csv=1] [maxnodes=256] [ops=100000000] [reps=3]
//                   [batch=1000000] [seed=1] [threads=0]
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    core::HostFigureConfig fig = core::HostFigureConfig::defaults_fig5();
    fig.node_counts = core::pow2_range(
        static_cast<std::size_t>(cfg.get_int("maxnodes", 256)));
    fig.base.workload.total_ops =
        static_cast<std::uint64_t>(cfg.get_int("ops", 100'000'000));
    fig.base.batch_ops =
        static_cast<std::uint64_t>(cfg.get_int("batch", 1'000'000));
    fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    fig.replications = static_cast<std::size_t>(cfg.get_int("reps", 3));
    fig.sweep_threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
    return core::make_fig5(fig);
  });
}
