// Regenerates Figure 5: simulated performance gain of the PIM-augmented
// system over the host-only control, versus the lightweight workload
// fraction, for node counts 1..256.
//
// Thin wrapper over the registered `fig5` scenario — identical to
// `pimsim run fig5 [k=v ...]`; parameter docs via `pimsim help fig5`.
//
// Usage: bench_fig5 [csv=1] [maxnodes=256] [ops=100000000] [reps=3]
//                   [batch=1000000] [seed=1] [threads=0]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "fig5");
}
