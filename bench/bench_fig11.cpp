// Regenerates Figure 11: latency hiding with parcels.  For each degree of
// parallelism (the paper's "six major experiments") and each remote-access
// percentage, sweeps the system-wide latency and reports the ratio of work
// completed by the parcel split-transaction system to the blocking
// message-passing control, alongside the closed-form prediction.
//
// contention=1 swaps the analytic interconnect for the packet-level
// model (one simulated network per sweep point, fanned out through
// SweepRunner); bytes= sets the wire size of each request/reply so the
// flit count — and therefore network load — scales with it.
//
// Thin wrapper over the registered `fig11` scenario — identical to
// `pimsim run fig11 [k=v ...]`; parameter docs via `pimsim help fig11`.
//
// Usage: bench_fig11 [csv=1] [nodes=8] [horizon=30000]
//                    [latencies=10,50,100,200,500,1000,2000]
//                    [remotes=0.02,0.05,0.1,0.2,0.5] [pars=1,2,4,8,16,32]
//                    [network=flat] [contention=0] [bytes=16]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "fig11");
}
