// Regenerates Figure 11: latency hiding with parcels.  For each degree of
// parallelism (the paper's "six major experiments") and each remote-access
// percentage, sweeps the system-wide latency and reports the ratio of work
// completed by the parcel split-transaction system to the blocking
// message-passing control, alongside the closed-form prediction.
//
// Usage: bench_fig11 [csv=1] [nodes=8] [horizon=30000]
//                    [latencies=10,50,100,200,500,1000,2000]
//                    [remotes=0.02,0.05,0.1,0.2,0.5] [pars=1,2,4,8,16,32]
//                    [network=flat] [contention=0] [bytes=16]
//
// contention=1 swaps the analytic interconnect for the packet-level
// model (one simulated network per sweep point, fanned out through
// SweepRunner); bytes= sets the wire size of each request/reply so the
// flit count — and therefore network load — scales with it.  The
// generation time printed on stderr is the timed mode's deliverable:
// full-figure contention sweeps complete in seconds.
#include "bench_util.hpp"
#include "core/figures.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    core::ParcelFigureConfig fig = core::ParcelFigureConfig::defaults_fig11();
    fig.base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
    fig.base.horizon = cfg.get_double("horizon", 30'000.0);
    fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    fig.base.t_switch = cfg.get_double("tswitch", fig.base.t_switch);
    fig.base.t_local = cfg.get_double("tlocal", fig.base.t_local);
    fig.base.network = cfg.get_string("network", fig.base.network);
    fig.base.contention = cfg.get_bool("contention", false);
    fig.base.message_bytes = static_cast<std::size_t>(
        cfg.get_int("bytes", static_cast<std::int64_t>(fig.base.message_bytes)));
    fig.latencies = cfg.get_list(
        "latencies", {10, 50, 100, 200, 500, 1000, 2000});
    fig.remote_fractions =
        cfg.get_list("remotes", {0.02, 0.05, 0.10, 0.20, 0.50});
    std::vector<std::size_t> pars;
    for (double p : cfg.get_list("pars", {1, 2, 4, 8, 16, 32})) {
      pars.push_back(static_cast<std::size_t>(p));
    }
    fig.parallelism = pars;
    fig.sweep_threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
    return core::make_fig11(fig);
  });
}
