// Ablation B: interconnect topology.
//
// The paper's parcel study assumes a flat (fixed-delay) system-wide
// latency.  This bench re-runs a Figure 11 slice under ring, 2-D mesh,
// and 2-D torus interconnects calibrated to the same *mean* round trip,
// showing how far the latency-hiding conclusions depend on the
// flat-latency assumption.  With contention=1 the analytic models are
// replaced by the packet-level network (credit-based flow control, queued
// links) of the same topology and zero-load calibration, so the table
// also shows what link contention does to the work ratio.
//
// Thin wrapper over the registered `ablation_topology` scenario —
// identical to `pimsim run ablation_topology [k=v ...]`.
//
// Usage: bench_ablation_topology [csv=1] [nodes=16] [horizon=30000]
//                                [latency=500] [premote=0.2] [contention=0]
//                                [msgbytes=16]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "ablation_topology");
}
