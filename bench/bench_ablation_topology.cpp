// Ablation B: interconnect topology.
//
// The paper's parcel study assumes a flat (fixed-delay) system-wide
// latency.  This bench re-runs a Figure 11 slice under ring and 2-D mesh
// interconnects calibrated to the same *mean* round trip, showing how far
// the latency-hiding conclusions depend on the flat-latency assumption.
//
// Usage: bench_ablation_topology [csv=1] [nodes=16] [horizon=30000]
//                                [latency=500] [premote=0.2]
#include "bench_util.hpp"
#include "parcel/system.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    parcel::SplitTransactionParams base;
    base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
    base.horizon = cfg.get_double("horizon", 30'000.0);
    base.round_trip_latency = cfg.get_double("latency", 500.0);
    base.p_remote = cfg.get_double("premote", 0.2);
    base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

    Table t("Ablation B: topology sensitivity (mean round trip " +
                format_number(base.round_trip_latency) + " cycles, " +
                std::to_string(base.nodes) + " nodes)",
            {"Network", "Parallelism", "work ratio", "test idle %",
             "control idle %"});
    for (const char* network : {"flat", "ring", "mesh2d"}) {
      for (std::int64_t par : {1, 4, 16, 32}) {
        parcel::SplitTransactionParams p = base;
        p.network = network;
        p.parallelism = static_cast<std::size_t>(par);
        const parcel::ComparisonPoint point = parcel::compare_systems(p);
        t.add_row({std::string(network), par, point.work_ratio,
                   point.test_idle * 100.0, point.control_idle * 100.0});
      }
    }
    return t;
  });
}
