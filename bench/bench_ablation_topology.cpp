// Ablation B: interconnect topology.
//
// The paper's parcel study assumes a flat (fixed-delay) system-wide
// latency.  This bench re-runs a Figure 11 slice under ring, 2-D mesh,
// and 2-D torus interconnects calibrated to the same *mean* round trip,
// showing how far the latency-hiding conclusions depend on the
// flat-latency assumption.  With contention=1 the analytic models are
// replaced by the packet-level network (credit-based flow control, queued
// links) of the same topology and zero-load calibration, so the table
// also shows what link contention does to the work ratio.
//
// Usage: bench_ablation_topology [csv=1] [nodes=16] [horizon=30000]
//                                [latency=500] [premote=0.2] [contention=0]
//                                [msgbytes=16]
#include "bench_util.hpp"
#include "parcel/system.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    parcel::SplitTransactionParams base;
    base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
    base.horizon = cfg.get_double("horizon", 30'000.0);
    base.round_trip_latency = cfg.get_double("latency", 500.0);
    base.p_remote = cfg.get_double("premote", 0.2);
    base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    base.contention = cfg.get_bool("contention", false);
    base.message_bytes = static_cast<std::size_t>(cfg.get_int("msgbytes", 16));

    Table t("Ablation B: topology sensitivity (mean round trip " +
                format_number(base.round_trip_latency) + " cycles, " +
                std::to_string(base.nodes) + " nodes, " +
                (base.contention ? "packet-level" : "analytic") + " network)",
            {"Network", "Parallelism", "work ratio", "test idle %",
             "control idle %"});
    for (const char* network : {"flat", "ring", "mesh2d", "torus"}) {
      for (std::int64_t par : {1, 4, 16, 32}) {
        parcel::SplitTransactionParams p = base;
        p.network = network;
        p.parallelism = static_cast<std::size_t>(par);
        const parcel::ComparisonPoint point = parcel::compare_systems(p);
        t.add_row({std::string(network), par, point.work_ratio,
                   point.test_idle * 100.0, point.control_idle * 100.0});
      }
    }
    return t;
  });
}
