// Regenerates Figure 6: unnormalized single-thread/node response time in
// nanoseconds versus node count (1..64), one curve per %LWT workload.
// The paper's axis tops out at 1.6e9 ns; the 100% LWT single-node point
// lands at 1.25e9 ns.
//
// Usage: bench_fig6 [csv=1] [maxnodes=64] [ops=100000000] [reps=3] [threads=0]
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    core::HostFigureConfig fig = core::HostFigureConfig::defaults_fig6();
    fig.node_counts = core::pow2_range(
        static_cast<std::size_t>(cfg.get_int("maxnodes", 64)));
    fig.base.workload.total_ops =
        static_cast<std::uint64_t>(cfg.get_int("ops", 100'000'000));
    fig.base.batch_ops =
        static_cast<std::uint64_t>(cfg.get_int("batch", 1'000'000));
    fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    fig.replications = static_cast<std::size_t>(cfg.get_int("reps", 3));
    fig.sweep_threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
    return core::make_fig6(fig);
  });
}
