// Regenerates Figure 6: unnormalized single-thread/node response time in
// nanoseconds versus node count (1..64), one curve per %LWT workload.
// The paper's axis tops out at 1.6e9 ns; the 100% LWT single-node point
// lands at 1.25e9 ns.
//
// Thin wrapper over the registered `fig6` scenario — identical to
// `pimsim run fig6 [k=v ...]`; parameter docs via `pimsim help fig6`.
//
// Usage: bench_fig6 [csv=1] [maxnodes=64] [ops=100000000] [reps=3] [threads=0]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "fig6");
}
