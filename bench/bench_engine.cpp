// google-benchmark microbenchmarks of the simulation kernel itself:
// event dispatch throughput, coroutine context switching, resource
// queueing, mailbox traffic, and the end-to-end cost of the two paper
// models per simulated point.
#include <benchmark/benchmark.h>

#include "arch/host_system.hpp"
#include "common/rng.hpp"
#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "parcel/system.hpp"

namespace {

using namespace pimsim;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (std::uint64_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

des::Process delay_loop(des::Simulation& sim, std::uint64_t hops) {
  for (std::uint64_t i = 0; i < hops; ++i) {
    co_await des::delay(sim, 1.0);
  }
}

void BM_CoroutineDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    sim.spawn(delay_loop(sim, static_cast<std::uint64_t>(state.range(0))));
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(1000)->Arg(100000);

des::Process contender(des::Simulation& sim, des::Resource& r,
                       std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    co_await r.acquire();
    co_await des::delay(sim, 1.0);
    r.release();
  }
}

void BM_ResourceContention(benchmark::State& state) {
  const auto contenders = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    des::Resource r(sim, 1);
    for (std::size_t c = 0; c < contenders; ++c) {
      sim.spawn(contender(sim, r, 200));
    }
    sim.run();
    benchmark::DoNotOptimize(r.grants());
  }
  state.SetItemsProcessed(state.iterations() * contenders * 200);
}
BENCHMARK(BM_ResourceContention)->Arg(2)->Arg(16)->Arg(64);

des::Process ping(des::Simulation& sim, des::Mailbox<int>& out,
                  des::Mailbox<int>& in, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.send(i);
    co_await in.receive();
    co_await des::delay(sim, 1.0);
  }
}

des::Process pong(des::Mailbox<int>& in, des::Mailbox<int>& out, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const int v = co_await in.receive();
    out.send(v);
  }
}

void BM_MailboxPingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    des::Mailbox<int> a(sim), b(sim);
    sim.spawn(ping(sim, a, b, rounds));
    sim.spawn(pong(a, b, rounds));
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_MailboxPingPong)->Arg(1000)->Arg(10000);

void BM_HostSystemPoint(benchmark::State& state) {
  arch::HostConfig cfg;
  cfg.workload.total_ops = 100'000'000;
  cfg.workload.lwp_fraction = 0.7;
  cfg.lwp_nodes = static_cast<std::size_t>(state.range(0));
  cfg.batch_ops = 1'000'000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(arch::run_host_system(cfg).total_cycles);
  }
}
BENCHMARK(BM_HostSystemPoint)->Arg(8)->Arg(64)->Arg(256);

void BM_ParcelComparisonPoint(benchmark::State& state) {
  parcel::SplitTransactionParams p;
  p.nodes = static_cast<std::size_t>(state.range(0));
  p.horizon = 10'000.0;
  p.parallelism = 8;
  p.round_trip_latency = 200.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    p.seed = seed++;
    benchmark::DoNotOptimize(parcel::compare_systems(p).work_ratio);
  }
}
BENCHMARK(BM_ParcelComparisonPoint)->Arg(4)->Arg(16)->Arg(64);

void BM_RngBinomial(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.binomial(1'000'000, 0.3));
  }
}
BENCHMARK(BM_RngBinomial);

}  // namespace

BENCHMARK_MAIN();
