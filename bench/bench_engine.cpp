// Event-kernel microbenchmark: dispatch throughput in events per second.
//
// Self-contained (no google-benchmark dependency) so the CI smoke job can
// always build it.  Five workloads stress the kernel paths the rest of
// the repo funnels through:
//
//   dispatch    N one-shot callbacks pre-loaded into the calendar
//   delayloop   a coroutine hopping through co_await delay(1.0)
//   pingpong    two coroutines volleying through a pair of mailboxes
//   timerwheel  W self-rescheduling timers with staggered periods
//   cancelheavy timeout pattern: every op arms a far-future timeout and
//               cancels it, exercising O(1) cancel + lazy compaction
//
// Each workload runs `reps` times; every repetition is recorded in a
// BENCH_engine.json trajectory (best repetition is the headline number).
//
// Usage: bench_engine [events=200000] [reps=5] [csv=1]
//                     [json=BENCH_engine.json]   (json=- disables)
//                     [floors=bench/baselines.json]  (perf guard)
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "des/mailbox.hpp"
#include "des/process.hpp"
#include "des/simulation.hpp"

namespace {

using namespace pimsim;

struct Sample {
  std::uint64_t events = 0;
  double seconds = 0.0;
  [[nodiscard]] double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

struct WorkloadResult {
  std::string name;
  std::vector<Sample> samples;
  [[nodiscard]] const Sample& best() const {
    std::size_t best_i = 0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i].events_per_sec() > samples[best_i].events_per_sec()) {
        best_i = i;
      }
    }
    return samples[best_i];
  }
};

/// Times sim.run(); events = events dispatched by the kernel.
Sample timed_run(des::Simulation& sim) {
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return Sample{sim.events_dispatched(), elapsed};
}

/// Builds a fresh simulation, applies `setup`, and times the run.
template <typename Setup>
Sample time_run(Setup&& setup) {
  des::Simulation sim;
  setup(sim);
  return timed_run(sim);
}

// --- dispatch: pre-loaded one-shot callbacks ----------------------------

Sample run_dispatch(std::uint64_t events) {
  std::uint64_t fired = 0;
  const Sample s = time_run([&](des::Simulation& sim) {
    for (std::uint64_t i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<double>(i), [&fired] { ++fired; });
    }
  });
  ensure(fired == events, "bench_engine: dispatch lost events");
  return s;
}

// --- delayloop: coroutine delay hops ------------------------------------

des::Process delay_loop(des::Simulation& sim, std::uint64_t hops) {
  for (std::uint64_t i = 0; i < hops; ++i) {
    co_await des::delay(sim, 1.0);
  }
}

Sample run_delayloop(std::uint64_t events) {
  return time_run(
      [&](des::Simulation& sim) { sim.spawn(delay_loop(sim, events)); });
}

// --- pingpong: two coroutines, two mailboxes ----------------------------

des::Process ping(des::Simulation& sim, des::Mailbox<int>& out,
                  des::Mailbox<int>& in, std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    out.send(static_cast<int>(i));
    (void)co_await in.receive();
    co_await des::delay(sim, 1.0);
  }
}

des::Process pong(des::Mailbox<int>& in, des::Mailbox<int>& out,
                  std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    out.send(co_await in.receive());
  }
}

Sample run_pingpong(std::uint64_t events) {
  const std::uint64_t rounds = events / 3;  // ~3 kernel events per round
  des::Simulation sim;
  des::Mailbox<int> a(sim, "a");
  des::Mailbox<int> b(sim, "b");
  sim.spawn(ping(sim, a, b, rounds));
  sim.spawn(pong(a, b, rounds));
  return timed_run(sim);
}

// --- timerwheel: staggered self-rescheduling timers ---------------------

Sample run_timerwheel(std::uint64_t events) {
  constexpr std::uint64_t kTimers = 256;
  const std::uint64_t per_timer = events / kTimers;
  std::uint64_t fired = 0;
  const Sample s = time_run([&](des::Simulation& sim) {
    for (std::uint64_t t = 0; t < kTimers; ++t) {
      // Periods 1..16 cycles, staggered so the heap stays busy.
      const double period = static_cast<double>(1 + t % 16);
      struct Timer {
        des::Simulation& sim;
        double period;
        std::uint64_t remaining;
        std::uint64_t* fired;
        void operator()() {
          ++*fired;
          if (--remaining > 0) sim.schedule_in(period, *this);
        }
      };
      sim.schedule_in(period, Timer{sim, period, per_timer, &fired});
    }
  });
  ensure(fired == kTimers * per_timer, "bench_engine: timer wheel lost ticks");
  return s;
}

// --- cancelheavy: arm-and-cancel timeout pattern ------------------------

Sample run_cancelheavy(std::uint64_t events) {
  const std::uint64_t ops = events / 2;  // one fired event + one cancel per op
  std::uint64_t timeouts_fired = 0;
  const Sample s = time_run([&](des::Simulation& sim) {
    struct Op {
      des::Simulation& sim;
      std::uint64_t remaining;
      std::uint64_t* timeouts_fired;
      void operator()() {
        // Arm a far-future timeout, do one unit of work, cancel it —
        // the calendar must not accumulate the dead entries.
        const des::EventId timeout = sim.schedule_in(
            1e12, [counter = timeouts_fired] { ++*counter; });
        ensure(sim.cancel(timeout), "bench_engine: cancel failed");
        if (--remaining > 0) sim.schedule_in(1.0, *this);
      }
    };
    sim.schedule_in(1.0, Op{sim, ops, &timeouts_fired});
  });
  ensure(timeouts_fired == 0, "bench_engine: cancelled timeout fired");
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    const std::int64_t events_arg = cfg.get_int("events", 200'000);
    const std::int64_t reps_arg = cfg.get_int("reps", 5);
    const std::string json_path = cfg.get_string("json", "BENCH_engine.json");
    const std::string floors_path = cfg.get_string("floors", "");
    require(events_arg >= 1024 && reps_arg >= 1,
            "bench_engine: bad events=/reps=");
    const auto events = static_cast<std::uint64_t>(events_arg);
    const auto reps = static_cast<std::size_t>(reps_arg);

    std::vector<WorkloadResult> results;
    std::uint64_t pingpong_events_once = 0;
    for (const char* name :
         {"dispatch", "delayloop", "pingpong", "timerwheel", "cancelheavy"}) {
      WorkloadResult r;
      r.name = name;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        Sample s;
        if (r.name == "dispatch") {
          s = run_dispatch(events);
        } else if (r.name == "delayloop") {
          s = run_delayloop(events);
        } else if (r.name == "pingpong") {
          s = run_pingpong(events);
          // Dispatch determinism smoke: every repetition of the same
          // load must dispatch the same number of events.
          if (pingpong_events_once == 0) {
            pingpong_events_once = s.events;
          }
          ensure(s.events == pingpong_events_once,
                 "bench_engine: non-deterministic ping-pong event count");
        } else if (r.name == "timerwheel") {
          s = run_timerwheel(events);
        } else {
          s = run_cancelheavy(events);
        }
        r.samples.push_back(s);
      }
      results.push_back(std::move(r));
    }

    Table table("Event kernel dispatch throughput (" +
                    std::to_string(events) + " events/run, best of " +
                    std::to_string(reps) + ")",
                {"Workload", "events/run", "seconds", "events/sec"});
    for (const auto& r : results) {
      const Sample& best = r.best();
      table.add_row({r.name, static_cast<std::int64_t>(best.events),
                     best.seconds, best.events_per_sec()});
    }
    if (cfg.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    std::vector<bench::BenchCell> cells;
    for (const auto& r : results) {
      bench::BenchCell cell{r.name, {}};
      for (const Sample& s : r.samples) {
        cell.runs.push_back(bench::BenchRun{s.events, s.seconds});
      }
      cells.push_back(std::move(cell));
    }
    if (json_path != "-") {
      const std::string header = "\"events_per_run\": " +
                                 std::to_string(events) +
                                 ", \"reps\": " + std::to_string(reps) + ",";
      bench::write_bench_json(json_path, "engine", "events", header, cells);
    }
    if (!floors_path.empty()) {
      return bench::check_floors(floors_path, "engine", cells);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
