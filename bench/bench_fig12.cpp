// Regenerates Figure 12: idle time with respect to the degree of
// parallelism, across system sizes from 1 to 256 nodes (the paper's "8
// major experimental sets"; its 16-node case failed to complete — ours
// runs).  With sufficient parallelism the test system's idle time drops
// to ~zero while the control system stays idle waiting for replies.
//
// contention=1 runs every sweep point against the packet-level network
// (one simulation per point through SweepRunner); bytes= scales the
// per-message flit count.
//
// Thin wrapper over the registered `fig12` scenario — identical to
// `pimsim run fig12 [k=v ...]`; parameter docs via `pimsim help fig12`.
//
// Usage: bench_fig12 [csv=1] [horizon=20000] [latency=200] [premote=0.1]
//                    [sizes=1,2,4,8,16,32,64,128,256] [pars=1,2,4,8,16,32]
//                    [network=flat] [contention=0] [bytes=16]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  return pimsim::bench::run_scenario_main(argc, argv, "fig12");
}
