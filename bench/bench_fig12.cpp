// Regenerates Figure 12: idle time with respect to the degree of
// parallelism, across system sizes from 1 to 256 nodes (the paper's "8
// major experimental sets"; its 16-node case failed to complete — ours
// runs).  With sufficient parallelism the test system's idle time drops
// to ~zero while the control system stays idle waiting for replies.
//
// Usage: bench_fig12 [csv=1] [horizon=20000] [latency=200] [premote=0.1]
//                    [sizes=1,2,4,8,16,32,64,128,256] [pars=1,2,4,8,16,32]
//                    [network=flat] [contention=0] [bytes=16]
//
// contention=1 runs every sweep point against the packet-level network
// (one simulation per point through SweepRunner); bytes= scales the
// per-message flit count.  The stderr generation time demonstrates the
// timed mode: full-figure contention sweeps complete in seconds.
#include "bench_util.hpp"
#include "core/figures.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    core::ParcelFigureConfig fig = core::ParcelFigureConfig::defaults_fig12();
    fig.base.horizon = cfg.get_double("horizon", 20'000.0);
    fig.base.round_trip_latency = cfg.get_double("latency", 200.0);
    fig.base.p_remote = cfg.get_double("premote", 0.1);
    fig.base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
    fig.base.network = cfg.get_string("network", fig.base.network);
    fig.base.contention = cfg.get_bool("contention", false);
    fig.base.message_bytes = static_cast<std::size_t>(
        cfg.get_int("bytes", static_cast<std::int64_t>(fig.base.message_bytes)));
    std::vector<std::size_t> sizes;
    for (double s : cfg.get_list("sizes", {1, 2, 4, 8, 16, 32, 64, 128, 256})) {
      sizes.push_back(static_cast<std::size_t>(s));
    }
    fig.node_counts = sizes;
    std::vector<std::size_t> pars;
    for (double p : cfg.get_list("pars", {1, 2, 4, 8, 16, 32})) {
      pars.push_back(static_cast<std::size_t>(p));
    }
    fig.parallelism = pars;
    fig.sweep_threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
    return core::make_fig12(fig);
  });
}
