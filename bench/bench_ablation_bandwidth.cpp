// Ablation E: network injection bandwidth.
//
// The paper's parcel study assumes a contention-free network (flat fixed
// latency, infinite bandwidth).  This bench serializes every message
// through its sender's network interface for `nic_gap` cycles and shows
// where latency hiding becomes bandwidth-bound: once the parcel system
// saturates its NICs, adding parallelism stops helping and the Figure 11
// ratio clips at the injection-rate ceiling.
//
// Usage: bench_ablation_bandwidth [csv=1] [nodes=8] [horizon=30000]
//                                 [latency=500] [premote=0.2]
#include "analytic/parcel_model.hpp"
#include "bench_util.hpp"
#include "parcel/system.hpp"

int main(int argc, char** argv) {
  using namespace pimsim;
  return bench::run_figure(argc, argv, [](const Config& cfg) {
    parcel::SplitTransactionParams base;
    base.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 8));
    base.horizon = cfg.get_double("horizon", 30'000.0);
    base.round_trip_latency = cfg.get_double("latency", 500.0);
    base.p_remote = cfg.get_double("premote", 0.2);
    base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

    Table t("Ablation E: injection bandwidth (L = " +
                format_number(base.round_trip_latency) + ", " +
                format_number(base.p_remote * 100.0) + "% remote)",
            {"nic_gap", "Parallelism", "work ratio", "test work/cycle/node",
             "bandwidth bound"});
    for (double gap : {0.0, 5.0, 20.0, 80.0}) {
      for (std::int64_t par : {1, 4, 16, 64}) {
        parcel::SplitTransactionParams p = base;
        p.nic_gap = gap;
        p.parallelism = static_cast<std::size_t>(par);
        const parcel::ComparisonPoint point = parcel::compare_systems(p);
        const double per_node =
            point.test_work / (p.horizon * static_cast<double>(p.nodes));
        const double bound = analytic::test_throughput_bandwidth_bound(p);
        t.add_row({gap, par, point.work_ratio, per_node,
                   std::isinf(bound) ? Cell{std::string("inf")} : Cell{bound}});
      }
    }
    return t;
  });
}
